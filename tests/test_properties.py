"""Cross-cutting property tests: end-to-end invariants under random inputs.

These complement the per-module property tests with whole-pipeline
invariants that must hold for *any* input, not just curated examples.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import delineate_repeats, find_top_alignments
from repro.core.session import TopAlignmentSession
from repro.scoring import GapPenalties, match_mismatch
from repro.sequences import DNA, Sequence


def _scoring():
    return match_mismatch(DNA, 2.0, -1.0, wildcard_score=None), GapPenalties(2.0, 1.0)


def _random_seq(data, min_size=6, max_size=26):
    codes = data.draw(
        st.lists(st.integers(0, 3), min_size=min_size, max_size=max_size)
    )
    return Sequence(np.array(codes, dtype=np.int8), DNA)


@settings(max_examples=25, deadline=None)
@given(data=st.data(), k=st.integers(1, 6))
def test_top_alignment_invariants(data, k):
    """Nonoverlap, monotone scores, split-straddling, bottom-row ends —
    for arbitrary sequences and k."""
    ex, gaps = _scoring()
    seq = _random_seq(data)
    tops, stats = find_top_alignments(seq, k, ex, gaps)
    seen_pairs = set()
    prev_score = float("inf")
    for aln in tops:
        assert aln.score > 0
        assert aln.score <= prev_score
        prev_score = aln.score
        assert not (set(aln.pairs) & seen_pairs)
        seen_pairs.update(aln.pairs)
        for i, j in aln.pairs:
            assert 1 <= i <= aln.r < j <= len(seq)
        assert aln.pairs[-1][0] == aln.r  # ends in the bottom row
        ys = [i for i, _ in aln.pairs]
        xs = [j for _, j in aln.pairs]
        assert ys == sorted(ys) and len(set(ys)) == len(ys)
        assert xs == sorted(xs) and len(set(xs)) == len(xs)
    assert stats.tracebacks == len(tops)


@settings(max_examples=20, deadline=None)
@given(data=st.data(), k=st.integers(1, 5))
def test_delineation_invariants(data, k):
    """Copies lie within bounds, are disjoint and sorted; families have
    at least two copies."""
    ex, gaps = _scoring()
    seq = _random_seq(data, min_size=8, max_size=30)
    tops, _ = find_top_alignments(seq, k, ex, gaps)
    repeats = delineate_repeats(tops, len(seq), max_gap=1)
    for repeat in repeats:
        assert repeat.n_copies >= 2
        spans = list(repeat.copies)
        assert spans == sorted(spans)
        for s, e in spans:
            assert 1 <= s <= e <= len(seq)
        for (s0, e0), (s1, e1) in zip(spans, spans[1:]):
            assert e0 < s1  # disjoint


@settings(max_examples=15, deadline=None)
@given(data=st.data(), k=st.integers(2, 6), split=st.integers(1, 5))
def test_session_split_invariance(data, k, split):
    """extend(a) + extend(b) == find_top_alignments(a + b) for any split."""
    ex, gaps = _scoring()
    seq = _random_seq(data, min_size=8, max_size=22)
    first = min(split, k)
    batch, _ = find_top_alignments(seq, k, ex, gaps)
    session = TopAlignmentSession(seq, ex, gaps)
    got = session.extend(first)
    if first < k:
        got += session.extend(k - first)
    assert [(a.r, a.score, a.pairs) for a in got] == [
        (a.r, a.score, a.pairs) for a in batch
    ]


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_min_score_is_a_pure_filter(data):
    """Raising min_score must yield a prefix of the unfiltered list."""
    ex, gaps = _scoring()
    seq = _random_seq(data, min_size=8, max_size=22)
    full, _ = find_top_alignments(seq, 8, ex, gaps)
    if not full:
        return
    threshold = full[0].score / 2
    filtered, _ = find_top_alignments(seq, 8, ex, gaps, min_score=threshold)
    assert [(a.r, a.pairs) for a in filtered] == [
        (a.r, a.pairs) for a in full[: len(filtered)]
    ]
    assert all(a.score > threshold for a in filtered)
    if len(filtered) < len(full):
        assert full[len(filtered)].score <= threshold


@settings(max_examples=10, deadline=None)
@given(data=st.data(), shift=st.integers(1, 5))
def test_translation_invariance_of_structure(data, shift):
    """Prepending residues shifts all coordinates but preserves the
    repeat structure found in the original window — checked through the
    weaker, always-true invariant that scores of the best alignment can
    only improve or stay equal when the sequence grows."""
    ex, gaps = _scoring()
    seq = _random_seq(data, min_size=8, max_size=20)
    grown = Sequence(
        np.concatenate([seq.codes, seq.codes[:shift]]), DNA
    )
    best_small, _ = find_top_alignments(seq, 1, ex, gaps)
    best_big, _ = find_top_alignments(grown, 1, ex, gaps)
    if best_small:
        assert best_big and best_big[0].score >= best_small[0].score
