"""The Annotation object model: scan -> artifacts, offline documents."""

import json

import pytest

from repro.annot import annotate_document, annotate_scan, validate_gff3
from repro.core import DatabaseScanner
from repro.core.scan import (
    SequenceReport,
    load_scan_payload,
    scan_to_payload,
)
from repro.sequences import Sequence


@pytest.fixture(scope="module")
def scanned():
    seqs = [
        Sequence("MKTAYIAKQR" * 5, id="rep"),
        Sequence("ACDEFGHIKLMNPQRSTVWY", id="plain"),
    ]
    scanner = DatabaseScanner()
    return seqs, scanner.scan(seqs)


class TestAnnotateScan:
    def test_gff3_validates(self, scanned):
        seqs, reports = scanned
        annotation = annotate_scan(reports, seqs)
        assert validate_gff3(annotation.gff3()) == []

    def test_profile_consistency_with_copy_spans(self, scanned):
        seqs, reports = scanned
        annotation = annotate_scan(reports, seqs)
        payload = annotation.profile_payload()
        weighted = 0.0
        for record in payload["sequences"]:
            if "values" not in record:
                continue
            window, length = record["window"], record["length"]
            for i, value in enumerate(record["values"]):
                width = min(window, length - i * window)
                weighted += value * width
        assert weighted == pytest.approx(payload["total_copy_residues"])

    def test_profile_json_parses(self, scanned):
        seqs, reports = scanned
        annotation = annotate_scan(reports, seqs)
        parsed = json.loads(annotation.profile_json())
        assert parsed["format"] == "repro-profile"
        assert [r["id"] for r in parsed["sequences"]] == ["rep", "plain"]

    def test_families_carry_consensus_and_msa(self, scanned):
        seqs, reports = scanned
        annotation = annotate_scan(reports, seqs)
        rep = annotation.sequences[0]
        assert rep.families
        model = rep.families[0]
        assert model.consensus
        assert model.msa is not None
        assert model.identity > 0.5

    def test_error_report_becomes_error_entry(self):
        failed = SequenceReport(id="bad", length=30, result=None, error="boom")
        annotation = annotate_scan([failed], [None])
        entry = annotation.sequences[0]
        assert not entry.ok
        assert entry.error == "boom"
        # Errored records stay out of the GFF3 but appear in the profile.
        assert "bad" not in annotation.gff3()
        payload = annotation.profile_payload()
        assert payload["sequences"][0] == {"id": "bad", "error": "boom"}


class TestCoordinateOnlyFallback:
    def test_missing_sequence_still_annotates_spans(self, scanned):
        seqs, reports = scanned
        annotation = annotate_scan(reports, [None, None])
        entry = annotation.sequences[0]
        assert entry.ok
        assert entry.families
        assert entry.families[0].consensus == ""
        assert entry.track is not None
        assert validate_gff3(annotation.gff3()) == []


class TestScanDocumentRoundTrip:
    def test_annotate_document_matches_direct(self, scanned):
        seqs, reports = scanned
        payload = scan_to_payload(reports, seqs)
        document = load_scan_payload(json.loads(json.dumps(payload)))
        direct = annotate_scan(reports, seqs)
        offline = annotate_document(document)
        assert offline.gff3() == direct.gff3()
        assert offline.profile_payload() == direct.profile_payload()

    def test_rejects_foreign_document(self):
        with pytest.raises(ValueError, match="format"):
            load_scan_payload({"format": "something-else"})
        with pytest.raises(ValueError, match="version"):
            load_scan_payload({"format": "repro-scan", "version": 99})


class TestScannerEntryPoint:
    def test_annotate_scan_method(self):
        seqs = [Sequence("MKTAYIAKQR" * 4, id="rep")]
        annotation = DatabaseScanner().annotate_scan(seqs)
        assert annotation.n_families >= 1
        assert validate_gff3(annotation.gff3()) == []
        assert "rep" in annotation.html()

    def test_short_sequences_are_skipped_not_errored(self):
        seqs = [Sequence("MKT", id="tiny"), Sequence("MKTAYIAKQR" * 4, id="rep")]
        annotation = DatabaseScanner().annotate_scan(seqs)
        assert [e.sequence_id for e in annotation.sequences] == ["rep"]
