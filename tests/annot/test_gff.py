"""GFF3 writer/validator: coordinates, escaping, pragmas, hierarchy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.annot.gff import (
    escape_attribute,
    escape_seqid,
    render_gff3,
    unescape_attribute,
    validate_gff3,
)
from repro.core.report import FamilyModel


def _family(family=0, copies=((3, 12), (15, 24)), **overrides):
    kwargs = dict(
        family=family,
        copies=tuple(copies),
        columns=10,
        unit_length=10.0,
        consensus="MKTAYIAKQR",
        score=42.5,
        identity=0.9,
    )
    kwargs.update(overrides)
    return FamilyModel(**kwargs)


class TestEscaping:
    @pytest.mark.parametrize("raw", [";", "=", "%", "&", ",", "\t", "\n"])
    def test_structural_characters_round_trip(self, raw):
        value = f"a{raw}b"
        escaped = escape_attribute(value)
        if raw != "%":  # the escape character itself must remain, encoded
            assert raw not in escaped
        assert escaped != value
        assert unescape_attribute(escaped) == value

    def test_all_structural_characters_at_once(self):
        value = "x;=%&,\ty"
        escaped = escape_attribute(value)
        for ch in ";=&,\t":
            assert ch not in escaped
        assert unescape_attribute(escaped) == value

    def test_percent_never_double_escapes(self):
        assert escape_attribute("50%") == "50%25"
        assert unescape_attribute("50%25") == "50%"
        assert unescape_attribute(escape_attribute("%3B")) == "%3B"

    def test_seqid_escaping(self):
        assert escape_seqid("sp|P12345|TITIN_HUMAN") == "sp|P12345|TITIN_HUMAN"
        assert escape_seqid("my seq") == "my%20seq"
        assert escape_seqid("a>b") == "a%3Eb"


class TestRenderGff3:
    def test_version_pragma_first(self):
        text = render_gff3([("s", 30, [_family()])])
        assert text.splitlines()[0] == "##gff-version 3"

    def test_sequence_region_pragma_per_sequence(self):
        text = render_gff3([("alpha", 30, []), ("beta", 99, [])])
        lines = text.splitlines()
        assert "##sequence-region alpha 1 30" in lines
        assert "##sequence-region beta 1 99" in lines

    def test_copy_coordinates_round_trip_one_based_closed(self):
        copies = ((3, 12), (15, 24), (27, 30))
        text = render_gff3([("s", 40, [_family(copies=copies)])])
        units = [
            line.split("\t")
            for line in text.splitlines()
            if not line.startswith("#") and line.split("\t")[2] == "repeat_unit"
        ]
        assert [(int(u[3]), int(u[4])) for u in units] == list(copies)

    def test_region_spans_all_copies(self):
        text = render_gff3([("s", 40, [_family(copies=((5, 9), (20, 31)))])])
        region = next(
            line.split("\t")
            for line in text.splitlines()
            if not line.startswith("#")
            and line.split("\t")[2] == "repeat_region"
        )
        assert (int(region[3]), int(region[4])) == (5, 31)

    def test_family_hierarchy_via_id_parent(self):
        text = render_gff3([("s", 40, [_family(family=7)])])
        lines = [
            line for line in text.splitlines() if not line.startswith("#")
        ]
        assert "ID=s.family7" in lines[0]
        assert all("Parent=s.family7" in line for line in lines[1:])

    def test_attributes_carry_family_stats(self):
        text = render_gff3([("s", 40, [_family()])])
        region_attrs = next(
            line.split("\t")[8]
            for line in text.splitlines()
            if "\trepeat_region\t" in line
        )
        assert "n_copies=2" in region_attrs
        assert "consensus_length=10" in region_attrs
        assert "identity=0.900" in region_attrs
        assert "unit_length=10" in region_attrs

    def test_awkward_seqid_and_consensus_validate(self):
        model = _family(consensus="MK;TA=YI,AK%QR")
        text = render_gff3([("my seq;1", 40, [model])])
        assert validate_gff3(text) == []

    def test_emitted_document_is_valid(self):
        text = render_gff3(
            [
                ("alpha", 40, [_family(), _family(family=1, copies=((30, 39),))]),
                ("beta", 25, []),
            ]
        )
        assert validate_gff3(text) == []

    @settings(max_examples=50, deadline=None)
    @given(data=st.data())
    def test_every_feature_lies_within_sequence_bounds(self, data):
        length = data.draw(st.integers(4, 300))
        n_families = data.draw(st.integers(0, 4))
        families = []
        for fam in range(n_families):
            n_copies = data.draw(st.integers(1, 5))
            copies = []
            for _ in range(n_copies):
                start = data.draw(st.integers(1, length))
                end = data.draw(st.integers(start, length))
                copies.append((start, end))
            families.append(_family(family=fam, copies=tuple(copies)))
        text = render_gff3([("s", length, families)])
        assert validate_gff3(text) == []
        for line in text.splitlines():
            if line.startswith("#") or not line.strip():
                continue
            cols = line.split("\t")
            assert 1 <= int(cols[3]) <= int(cols[4]) <= length


class TestValidator:
    def test_missing_version_pragma(self):
        errors = validate_gff3("s\trepro\trepeat_region\t1\t5\t.\t+\t.\tID=x\n")
        assert any("gff-version" in e for e in errors)

    def test_wrong_column_count(self):
        errors = validate_gff3("##gff-version 3\ns\trepro\tonly4\t1\n")
        assert any("9 tab-separated columns" in e for e in errors)

    def test_feature_outside_declared_region(self):
        text = (
            "##gff-version 3\n"
            "##sequence-region s 1 10\n"
            "s\trepro\trepeat_region\t5\t11\t.\t+\t.\tID=x\n"
        )
        errors = validate_gff3(text)
        assert any("outside sequence-region" in e for e in errors)

    def test_zero_based_start_rejected(self):
        text = (
            "##gff-version 3\n"
            "##sequence-region s 1 10\n"
            "s\trepro\trepeat_region\t0\t5\t.\t+\t.\tID=x\n"
        )
        errors = validate_gff3(text)
        assert any("1-based" in e for e in errors)

    def test_unescaped_structural_character_in_value(self):
        text = (
            "##gff-version 3\n"
            "##sequence-region s 1 10\n"
            "s\trepro\trepeat_region\t1\t5\t.\t+\t.\tID=x;Name=a,b\n"
        )
        errors = validate_gff3(text)
        assert any("unescaped structural" in e for e in errors)

    def test_orphan_parent_reference(self):
        text = (
            "##gff-version 3\n"
            "##sequence-region s 1 10\n"
            "s\trepro\trepeat_unit\t1\t5\t.\t+\t.\tID=c;Parent=ghost\n"
        )
        errors = validate_gff3(text)
        assert any("does not reference an earlier ID" in e for e in errors)

    def test_bad_score_strand_phase(self):
        text = (
            "##gff-version 3\n"
            "##sequence-region s 1 10\n"
            "s\trepro\trepeat_region\t1\t5\thigh\t*\t7\tID=x\n"
        )
        errors = validate_gff3(text)
        assert any("score" in e for e in errors)
        assert any("strand" in e for e in errors)
        assert any("phase" in e for e in errors)
