"""The HTML report's self-containment and escaping contracts."""

import re

from repro.annot import annotate_scan
from repro.annot.report_html import render_html
from repro.annot.tracks import build_track
from repro.core import DatabaseScanner
from repro.core.report import FamilyModel
from repro.sequences import Sequence


def _family(**overrides):
    kwargs = dict(
        family=0,
        copies=((1, 10), (11, 20)),
        columns=10,
        unit_length=10.0,
        consensus="MKTAYIAKQR",
        score=42.5,
        identity=0.9,
    )
    kwargs.update(overrides)
    return FamilyModel(**kwargs)


def _entries():
    track = build_track("seq<1>", 20, [(0, ((1, 10), (11, 20)))], window=5)
    return [
        ("seq<1>", 20, track, [_family()], None),
        ("failed & sad", 50, None, [], "ValueError: boom"),
    ]


class TestSelfContainment:
    def test_no_external_references(self):
        html_text = render_html(_entries())
        assert "http" not in html_text
        assert "<script" not in html_text
        assert "<link" not in html_text
        assert "@import" not in html_text

    def test_single_document_with_inline_style_and_svg(self):
        html_text = render_html(_entries())
        assert html_text.startswith("<!DOCTYPE html>")
        assert html_text.count("<style>") == 1
        assert "<svg" in html_text
        assert "<polyline" in html_text

    def test_real_scan_report_is_self_contained(self):
        seqs = [Sequence("MKTAYIAKQR" * 5, id="rep")]
        annotation = DatabaseScanner().annotate_scan(seqs)
        html_text = annotation.html()
        assert "http" not in html_text
        assert "rep" in html_text


class TestEscapingAndContent:
    def test_sequence_ids_are_escaped(self):
        html_text = render_html(_entries())
        assert "seq<1>" not in html_text
        assert "seq&lt;1&gt;" in html_text
        assert "failed &amp; sad" in html_text

    def test_error_records_render_failure(self):
        html_text = render_html(_entries())
        assert "scan failed" in html_text
        assert "ValueError: boom" in html_text

    def test_family_table_and_collapsible_details(self):
        html_text = render_html(_entries())
        assert "<table>" in html_text
        assert "<details>" in html_text
        assert "<summary>" in html_text
        assert "MKTAYIAKQR" in html_text

    def test_msa_block_collapsible_when_present(self):
        seqs = [Sequence("MKTAYIAKQR" * 5, id="rep")]
        annotation = DatabaseScanner().annotate_scan(seqs)
        html_text = annotation.html()
        # The MSA (and its conservation line) renders inside <pre>.
        assert re.search(
            r"<details>.*<pre>.*</pre>.*</details>", html_text, re.DOTALL
        )

    def test_summary_line_counts(self):
        html_text = render_html(_entries())
        assert "2 sequences, 1 repeat" in html_text


class TestEmptyAnnotation:
    def test_no_sequences_still_valid_document(self):
        html_text = render_html([])
        assert html_text.startswith("<!DOCTYPE html>")
        assert "0 sequences" in html_text

    def test_annotate_scan_empty(self):
        annotation = annotate_scan([], [])
        assert "0 sequences" in annotation.html()
