"""Profile tracks: the weighted-sum consistency contract and friends."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.annot.tracks import (
    ProfileTrack,
    auto_window,
    build_track,
    coverage_depth,
    render_wig,
)


def _window_width(track: ProfileTrack, index: int) -> int:
    start, end = track.window_span(index)
    return end - start + 1


class TestCoverageDepth:
    def test_counts_overlapping_copies(self):
        depth = coverage_depth(10, [(1, 5), (4, 8)])
        assert depth.tolist() == [1, 1, 1, 2, 2, 1, 1, 1, 0, 0]

    def test_rejects_out_of_bounds_copy(self):
        with pytest.raises(ValueError, match="outside sequence"):
            coverage_depth(10, [(5, 11)])
        with pytest.raises(ValueError, match="outside sequence"):
            coverage_depth(10, [(0, 3)])

    def test_rejects_inverted_span(self):
        with pytest.raises(ValueError):
            coverage_depth(10, [(6, 5)])


class TestBuildTrack:
    def test_weighted_sum_equals_copy_residues(self):
        families = [(0, ((1, 30), (41, 70))), (1, ((10, 49),))]
        track = build_track("s", 100, families, window=7)
        weighted = sum(
            value * _window_width(track, i)
            for i, value in enumerate(track.values)
        )
        copy_residues = 30 + 30 + 40
        assert weighted == pytest.approx(copy_residues)

    def test_summary_stats(self):
        track = build_track("s", 10, [(0, ((1, 4),)), (1, ((3, 6),))], window=5)
        assert track.n_families == 2
        assert track.n_copies == 2
        assert track.max_depth == 2
        assert track.repetitiveness == pytest.approx(0.6)
        assert track.mean_depth == pytest.approx(0.8)

    def test_auto_window_targets_about_120_windows(self):
        assert auto_window(50) == 1
        assert auto_window(120) == 1
        assert auto_window(121) == 2
        assert 100 <= 36000 // auto_window(36000) <= 120

    def test_zero_window_uses_auto(self):
        track = build_track("s", 360, [], window=0)
        assert track.window == auto_window(360)
        assert len(track.values) == -(-360 // track.window)

    def test_window_span_covers_sequence_exactly(self):
        track = build_track("s", 23, [], window=5)
        spans = [track.window_span(i) for i in range(len(track.values))]
        assert spans[0] == (1, 5)
        assert spans[-1] == (21, 23)
        covered = [p for s, e in spans for p in range(s, e + 1)]
        assert covered == list(range(1, 24))

    def test_to_dict_round_trips_values(self):
        track = build_track("s", 12, [(0, ((1, 6),))], window=4)
        payload = track.to_dict()
        assert payload["id"] == "s"
        assert payload["values"] == list(track.values)
        assert payload["window"] == 4

    @settings(max_examples=50, deadline=None)
    @given(data=st.data())
    def test_weighted_sum_identity_holds_for_any_copies(self, data):
        length = data.draw(st.integers(1, 200))
        n = data.draw(st.integers(0, 8))
        copies = []
        for _ in range(n):
            start = data.draw(st.integers(1, length))
            end = data.draw(st.integers(start, length))
            copies.append((start, end))
        window = data.draw(st.integers(0, 17))
        track = build_track("s", length, [(0, tuple(copies))], window=window)
        weighted = sum(
            value * _window_width(track, i)
            for i, value in enumerate(track.values)
        )
        assert weighted == pytest.approx(
            sum(e - s + 1 for s, e in copies)
        )


class TestRenderWig:
    def test_fixed_step_blocks(self):
        tracks = [
            build_track("alpha", 6, [(0, ((1, 3),))], window=3),
            build_track("beta", 4, [], window=2),
        ]
        text = render_wig(tracks)
        lines = text.splitlines()
        assert lines[0].startswith("track type=wiggle_0")
        assert "fixedStep chrom=alpha start=1 step=3 span=3" in lines
        assert "fixedStep chrom=beta start=1 step=2 span=2" in lines
        assert text.endswith("\n")
