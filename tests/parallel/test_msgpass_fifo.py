"""Envelope semantics both backends must share, under concurrent senders.

§4.3's master/slave protocol relies on exactly two properties of the
message layer: messages from one sender arrive in the order sent
(FIFO per (sender, receiver) pair), and ``recv`` filtering by source
or tag buffers — never drops or reorders — non-matching envelopes.
The multiprocessing-queue backend (:mod:`repro.parallel.msgpass`) and
the TCP backend (:mod:`repro.cluster.transport`) are interchangeable
only because both uphold them; this suite runs the same assertions
against each.
"""

import threading

import pytest

from repro.cluster.transport import Listener, SocketCommunicator, connect
from repro.parallel import ANY, Communicator

N_SENDERS = 2  # ranks 1..N_SENDERS send to rank 0
PER_SENDER = 50


def _queue_world():
    import multiprocessing as mp

    context = mp.get_context("fork")
    inboxes = [context.Queue() for _ in range(N_SENDERS + 1)]
    comms = [Communicator(rank, inboxes) for rank in range(N_SENDERS + 1)]
    return comms, lambda: None


def _socket_world():
    listener = Listener("127.0.0.1", 0, timeout=5.0)
    hub_channels, peer_channels = {}, []

    def _accept_all():
        for peer in range(1, N_SENDERS + 1):
            hub_channels[peer] = listener.accept(timeout=5.0)

    thread = threading.Thread(target=_accept_all)
    thread.start()
    for _ in range(N_SENDERS):
        peer_channels.append(connect("127.0.0.1", listener.port, timeout=5.0))
    thread.join(5)
    listener.close()
    comms = [SocketCommunicator(0, N_SENDERS + 1, hub_channels)]
    for rank, channel in enumerate(peer_channels, start=1):
        comms.append(SocketCommunicator(rank, N_SENDERS + 1, {0: channel}))

    def _close():
        for comm in comms:
            comm.close()

    return comms, _close


@pytest.fixture(params=["queues", "sockets"])
def world(request):
    comms, close = _queue_world() if request.param == "queues" else _socket_world()
    try:
        yield comms
    finally:
        close()


def _blast(comm, tag=0):
    """Send ``PER_SENDER`` numbered messages from ``comm`` to rank 0."""
    for i in range(PER_SENDER):
        comm.send({"n": i, "from": comm.rank}, 0, tag=tag)


def test_fifo_per_sender_under_concurrent_senders(world):
    hub, senders = world[0], world[1:]
    threads = [threading.Thread(target=_blast, args=(c,)) for c in senders]
    for thread in threads:
        thread.start()
    seen = {comm.rank: [] for comm in senders}
    for _ in range(N_SENDERS * PER_SENDER):
        message = hub.recv(source=ANY, tag=ANY, timeout=30.0)
        seen[message.source].append(message.payload["n"])
    for thread in threads:
        thread.join(5)
    # Interleaving across senders is arbitrary; order *within* each
    # sender is not.
    for rank, numbers in seen.items():
        assert numbers == list(range(PER_SENDER)), f"rank {rank} reordered"


def test_source_filter_buffers_other_senders(world):
    hub, senders = world[0], world[1:]
    threads = [threading.Thread(target=_blast, args=(c,)) for c in senders]
    for thread in threads:
        thread.start()
    # Drain one source completely first: the other sources' envelopes
    # must wait in the pending buffer, still in order.
    for source in [comm.rank for comm in senders]:
        numbers = [
            hub.recv(source=source, timeout=30.0).payload["n"]
            for _ in range(PER_SENDER)
        ]
        assert numbers == list(range(PER_SENDER))
    for thread in threads:
        thread.join(5)


def test_tag_filter_under_concurrent_tagged_senders(world):
    hub, senders = world[0], world[1:]
    # Every sender blasts on a tag equal to its own rank.
    threads = [
        threading.Thread(target=_blast, args=(c,), kwargs={"tag": c.rank})
        for c in senders
    ]
    for thread in threads:
        thread.start()
    for tag in [comm.rank for comm in senders]:
        numbers = [
            hub.recv(source=ANY, tag=tag, timeout=30.0).payload["n"]
            for _ in range(PER_SENDER)
        ]
        assert numbers == list(range(PER_SENDER))
    for thread in threads:
        thread.join(5)
