"""Tests for the message-passing substrate."""

import numpy as np
import pytest

from repro.parallel import ANY, Communicator, World


def _echo(comm, payload):
    """Child entry: echo everything back with tag+1 until 'stop'."""
    while True:
        msg = comm.recv(source=0, timeout=30.0)
        if isinstance(msg.payload, str) and msg.payload == "stop":
            return
        comm.send(msg.payload, 0, msg.tag + 1)


def _worker_sum(comm, payload):
    msg = comm.recv(source=0, timeout=30.0)
    comm.send(sum(msg.payload), 0)


class TestCommunicatorLocal:
    """Single-rank loopback semantics (no processes)."""

    def test_self_send_recv(self):
        import multiprocessing as mp

        inboxes = [mp.get_context("fork").Queue()]
        comm = Communicator(0, inboxes)
        comm.send("hello", 0, tag=7)
        msg = comm.recv(timeout=5.0)
        assert (msg.source, msg.tag, msg.payload) == (0, 7, "hello")

    def test_tag_filtering_buffers_mismatches(self):
        import multiprocessing as mp

        inboxes = [mp.get_context("fork").Queue()]
        comm = Communicator(0, inboxes)
        comm.send("a", 0, tag=1)
        comm.send("b", 0, tag=2)
        assert comm.recv(tag=2, timeout=5.0).payload == "b"
        assert comm.recv(tag=1, timeout=5.0).payload == "a"

    def test_invalid_destination(self):
        import multiprocessing as mp

        comm = Communicator(0, [mp.get_context("fork").Queue()])
        with pytest.raises(ValueError):
            comm.send("x", 5)

    def test_timeout_raises(self):
        import multiprocessing as mp

        comm = Communicator(0, [mp.get_context("fork").Queue()])
        with pytest.raises(TimeoutError):
            comm.recv(timeout=0.05)


class TestWorld:
    def test_world_size_validation(self):
        with pytest.raises(ValueError):
            World(0)

    def test_echo_roundtrip(self):
        with World(2) as world:
            world.start(_echo, None)
            world.comm.send({"x": 1}, 1, tag=3)
            msg = world.comm.recv(source=1, timeout=30.0)
            assert msg.payload == {"x": 1}
            assert msg.tag == 4
            world.comm.send("stop", 1)

    def test_numpy_payloads(self):
        with World(2) as world:
            world.start(_echo, None)
            data = np.arange(10, dtype=np.float64)
            world.comm.send(data, 1)
            back = world.comm.recv(source=1, timeout=30.0).payload
            assert np.array_equal(back, data)
            world.comm.send("stop", 1)

    def test_multiple_slaves(self):
        with World(4) as world:
            world.start(_worker_sum, None)
            for rank in (1, 2, 3):
                world.comm.send([rank, rank], rank)
            totals = sorted(
                world.comm.recv(timeout=30.0).payload for _ in range(3)
            )
            assert totals == [2, 4, 6]

    def test_double_start_rejected(self):
        world = World(2)
        try:
            world.start(_echo, None)
            with pytest.raises(RuntimeError):
                world.start(_echo, None)
            world.comm.send("stop", 1)
        finally:
            world.shutdown()

    def test_source_wildcard(self):
        with World(3) as world:
            world.start(_worker_sum, None)
            world.comm.send([10], 1)
            world.comm.send([20], 2)
            got = {world.comm.recv(source=ANY, timeout=30.0).source for _ in range(2)}
            assert got == {1, 2}
