"""End-to-end tests of the distributed master/slave driver.

Kept small: each test spawns real processes on what may be a
single-core machine.
"""

import pytest

from repro.core import find_top_alignments
from repro.parallel import find_top_alignments_distributed
from repro.scoring import GapPenalties
from repro.sequences import tandem_repeat_sequence


def _key(alignments):
    return [(a.index, a.r, a.score, a.pairs) for a in alignments]


class TestDistributed:
    def test_matches_sequential_two_slaves(self, tandem_dna, dna_scoring):
        ex, gaps = dna_scoring
        expected, _ = find_top_alignments(tandem_dna, 3, ex, gaps)
        got, _ = find_top_alignments_distributed(
            tandem_dna, 3, ex, gaps, n_slaves=2
        )
        assert _key(got) == _key(expected)

    def test_smp_slaves(self, small_repeat_protein, protein_scoring):
        """Cluster-of-SMPs mode: threads inside each slave process."""
        ex, gaps = protein_scoring
        expected, _ = find_top_alignments(small_repeat_protein, 4, ex, gaps)
        got, _ = find_top_alignments_distributed(
            small_repeat_protein, 4, ex, gaps, n_slaves=2, threads_per_slave=2
        )
        assert _key(got) == _key(expected)

    def test_exhaustion(self, dna_scoring):
        ex, gaps = dna_scoring
        seq = tandem_repeat_sequence("ACG", 3)
        expected, _ = find_top_alignments(seq, 50, ex, gaps)
        got, _ = find_top_alignments_distributed(seq, 50, ex, gaps, n_slaves=2)
        assert _key(got) == _key(expected)

    def test_stats_counters(self, tandem_dna, dna_scoring):
        ex, gaps = dna_scoring
        tops, stats = find_top_alignments_distributed(
            tandem_dna, 2, ex, gaps, n_slaves=2
        )
        assert stats.alignments >= len(tandem_dna) - 1
        assert stats.tracebacks == len(tops) == 2

    def test_validation(self, tandem_dna, dna_scoring):
        ex, gaps = dna_scoring
        with pytest.raises(ValueError):
            find_top_alignments_distributed(tandem_dna, 1, ex, gaps, n_slaves=0)
        with pytest.raises(ValueError):
            find_top_alignments_distributed(
                tandem_dna, 1, ex, gaps, n_slaves=1, threads_per_slave=0
            )
