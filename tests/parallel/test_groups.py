"""Tests for static neighbour-group scheduling (the SSE/SSE2 mode)."""

import pytest

from repro.core import Task, TopAlignmentState, find_top_alignments
from repro.parallel import (
    GroupedTopAlignmentRunner,
    TaskGroup,
    find_top_alignments_grouped,
)


def _key(alignments):
    return [(a.index, a.r, a.score, a.pairs) for a in alignments]


class TestTaskGroup:
    def test_score_is_member_max(self):
        group = TaskGroup([Task(1, 3.0, 0), Task(2, 9.0, 0), Task(3, 5.0, 0)])
        assert group.score == 9.0
        assert group.best_member().r == 2

    def test_best_member_tie_prefers_smaller_r(self):
        group = TaskGroup([Task(4, 9.0, 0), Task(2, 9.0, 0)])
        assert group.best_member().r == 2

    def test_first_r(self):
        assert TaskGroup([Task(5), Task(6)]).first_r == 5

    def test_stale_members(self):
        group = TaskGroup([Task(1, 3.0, 0), Task(2, 9.0, 1)])
        assert [t.r for t in group.stale_members(1)] == [1]

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            TaskGroup([])


class TestGroupedEquivalence:
    @pytest.mark.parametrize("group_size", [1, 2, 4, 8])
    def test_matches_sequential(
        self, group_size, small_repeat_protein, protein_scoring
    ):
        ex, gaps = protein_scoring
        expected, _ = find_top_alignments(small_repeat_protein, 6, ex, gaps)
        got, _ = find_top_alignments_grouped(
            small_repeat_protein, 6, ex, gaps, group_size=group_size
        )
        assert _key(got) == _key(expected)

    @pytest.mark.parametrize("engine", ["lanes", "lanes-sse", "lanes-sse2", "vector"])
    def test_matches_sequential_any_engine(self, engine, tandem_dna, dna_scoring):
        ex, gaps = dna_scoring
        expected, _ = find_top_alignments(tandem_dna, 3, ex, gaps)
        got, _ = find_top_alignments_grouped(
            tandem_dna, 3, ex, gaps, group_size=4, engine=engine
        )
        assert _key(got) == _key(expected)

    def test_speculation_counter(self, small_repeat_protein, protein_scoring):
        """Groups recompute already-current members — counted as waste."""
        ex, gaps = protein_scoring
        state = TopAlignmentState(small_repeat_protein, ex, gaps, engine="lanes")
        runner = GroupedTopAlignmentRunner(state, 6, group_size=4)
        _, stats = runner.run()
        # Waste exists but is a small fraction of total work (§5.1's
        # <0.70 % holds only at titin scale; here we just bound it).
        assert runner.wasted_alignments >= 0
        assert runner.wasted_alignments < stats.alignments

    def test_validation(self, tandem_dna, dna_scoring):
        ex, gaps = dna_scoring
        state = TopAlignmentState(tandem_dna, ex, gaps)
        with pytest.raises(ValueError):
            GroupedTopAlignmentRunner(state, 0)
        with pytest.raises(ValueError):
            GroupedTopAlignmentRunner(state, 1, group_size=0)

    def test_min_score(self, tandem_dna, dna_scoring):
        ex, gaps = dna_scoring
        got, _ = find_top_alignments_grouped(
            tandem_dna, 10, ex, gaps, group_size=4, min_score=5.0
        )
        assert len(got) == 3
