"""Tests for the shared-memory speculative scheduler."""

import pytest

from repro.core import TopAlignmentState, find_top_alignments
from repro.parallel import ThreadedTopAlignmentRunner, find_top_alignments_threaded
from repro.sequences import tandem_repeat_sequence


def _key(alignments):
    return [(a.index, a.r, a.score, a.pairs) for a in alignments]


class TestThreadedEquivalence:
    @pytest.mark.parametrize("n_threads", [1, 2, 4])
    def test_matches_sequential(self, n_threads, small_repeat_protein, protein_scoring):
        ex, gaps = protein_scoring
        expected, _ = find_top_alignments(small_repeat_protein, 6, ex, gaps)
        got, _ = find_top_alignments_threaded(
            small_repeat_protein, 6, ex, gaps, n_threads=n_threads
        )
        assert _key(got) == _key(expected)

    def test_figure4(self, tandem_dna, dna_scoring):
        ex, gaps = dna_scoring
        expected, _ = find_top_alignments(tandem_dna, 3, ex, gaps)
        got, _ = find_top_alignments_threaded(tandem_dna, 3, ex, gaps, n_threads=3)
        assert _key(got) == _key(expected)

    def test_exhaustion(self, dna_scoring):
        ex, gaps = dna_scoring
        seq = tandem_repeat_sequence("ACG", 3)
        expected, _ = find_top_alignments(seq, 50, ex, gaps)
        got, _ = find_top_alignments_threaded(seq, 50, ex, gaps, n_threads=2)
        assert _key(got) == _key(expected)

    def test_min_score(self, tandem_dna, dna_scoring):
        ex, gaps = dna_scoring
        got, _ = find_top_alignments_threaded(
            tandem_dna, 10, ex, gaps, n_threads=2, min_score=5.0
        )
        assert len(got) == 3 and all(a.score > 5.0 for a in got)

    def test_repeated_runs_deterministic(self, small_repeat_protein, protein_scoring):
        """Thread scheduling noise must never change the output."""
        ex, gaps = protein_scoring
        runs = [
            _key(
                find_top_alignments_threaded(
                    small_repeat_protein, 5, ex, gaps, n_threads=4
                )[0]
            )
            for _ in range(3)
        ]
        assert runs[0] == runs[1] == runs[2]


class TestRunnerValidation:
    def test_bad_k(self, tandem_dna, dna_scoring):
        ex, gaps = dna_scoring
        state = TopAlignmentState(tandem_dna, ex, gaps)
        with pytest.raises(ValueError):
            ThreadedTopAlignmentRunner(state, 0)

    def test_bad_thread_count(self, tandem_dna, dna_scoring):
        ex, gaps = dna_scoring
        state = TopAlignmentState(tandem_dna, ex, gaps)
        with pytest.raises(ValueError):
            ThreadedTopAlignmentRunner(state, 1, n_threads=0)

    def test_worker_errors_propagate(self, tandem_dna, dna_scoring):
        ex, gaps = dna_scoring
        state = TopAlignmentState(tandem_dna, ex, gaps)

        def boom(problem):
            raise RuntimeError("engine exploded")

        state.engine.last_row = boom  # type: ignore[assignment]
        runner = ThreadedTopAlignmentRunner(state, 2, n_threads=2)
        with pytest.raises(RuntimeError, match="engine exploded"):
            runner.run()

    def test_stats_accumulated(self, small_repeat_protein, protein_scoring):
        ex, gaps = protein_scoring
        state = TopAlignmentState(small_repeat_protein, ex, gaps)
        runner = ThreadedTopAlignmentRunner(state, 4, n_threads=2)
        tops, stats = runner.run()
        assert stats.alignments >= len(small_repeat_protein) - 1
        assert stats.tracebacks == len(tops) == 4
