"""Unit tests of the master's scheduling logic with an in-process fake
communicator (no processes: deterministic, fast, failure-injectable)."""

import numpy as np
import pytest

from repro.align import AlignmentProblem, VectorEngine
from repro.core import DenseOverrideTriangle, TopAlignmentState, find_top_alignments
from repro.parallel.master import T_ALIGN, T_MARK, T_ROW, T_STOP, MasterRunner
from repro.parallel.msgpass import ANY, Message


class FakeSlaveComm:
    """Communicator double: executes slave work synchronously in-process.

    ALIGN requests are computed immediately with a local engine+triangle
    replica and queued as ROW replies; MARK updates the replica; recv
    pops pending replies.  This exercises every master code path without
    multiprocessing nondeterminism.
    """

    def __init__(self, codes, exchange, gaps, n_slaves=2):
        self.rank = 0
        self.size = n_slaves + 1
        self._codes = codes
        self._exchange = exchange
        self._gaps = gaps
        self._engine = VectorEngine()
        self._triangles = {
            rank: DenseOverrideTriangle(codes.size)
            for rank in range(1, self.size)
        }
        self._pending: list[Message] = []
        self.align_requests: list[tuple[int, int, int]] = []  # (slave, r, version)
        self.marks_sent = 0
        self.stops = 0

    def send(self, payload, dest, tag=0):
        if tag == T_ALIGN:
            r, version = payload
            self.align_requests.append((dest, r, version))
            triangle = self._triangles[dest]
            assert triangle.version == version, "slave replica out of sync"
            problem = AlignmentProblem(
                self._codes[:r],
                self._codes[r:],
                self._exchange,
                self._gaps,
                triangle.view_for_split(r),
            )
            row = self._engine.last_row(problem)
            self._pending.append(Message(dest, T_ROW, (r, version, row)))
        elif tag == T_MARK:
            self._triangles[dest].mark(payload)
            self.marks_sent += 1
        elif tag == T_STOP:
            self.stops += 1
        else:  # pragma: no cover
            raise AssertionError(f"unexpected tag {tag}")

    def recv(self, source=ANY, tag=ANY, timeout=None):
        for idx, msg in enumerate(self._pending):
            if (source == ANY or msg.source == source) and (
                tag == ANY or msg.tag == tag
            ):
                return self._pending.pop(idx)
        raise TimeoutError("no pending message (protocol deadlock)")


@pytest.fixture()
def setup(small_repeat_protein, protein_scoring):
    ex, gaps = protein_scoring
    state = TopAlignmentState(small_repeat_protein, ex, gaps)
    comm = FakeSlaveComm(small_repeat_protein.codes, ex, gaps, n_slaves=3)
    return small_repeat_protein, ex, gaps, state, comm


class TestMasterLogic:
    def test_results_equal_sequential(self, setup):
        seq, ex, gaps, state, comm = setup
        runner = MasterRunner(comm, state, 5)
        tops, _ = runner.run()
        expected, _ = find_top_alignments(seq, 5, ex, gaps)
        assert [(a.r, a.score, a.pairs) for a in tops] == [
            (a.r, a.score, a.pairs) for a in expected
        ]

    def test_every_slave_gets_work(self, setup):
        _, _, _, state, comm = setup
        MasterRunner(comm, state, 3).run()
        assert {slave for slave, _, _ in comm.align_requests} == {1, 2, 3}

    def test_marks_broadcast_to_all_slaves(self, setup):
        _, _, _, state, comm = setup
        tops, _ = MasterRunner(comm, state, 4).run()
        assert comm.marks_sent == len(tops) * 3

    def test_all_slaves_stopped(self, setup):
        _, _, _, state, comm = setup
        MasterRunner(comm, state, 2).run()
        assert comm.stops == 3

    def test_first_pass_assignments_at_version_zero(self, setup):
        seq, _, _, state, comm = setup
        MasterRunner(comm, state, 2).run()
        m = len(seq)
        first_pass = comm.align_requests[: m - 1]
        assert all(version == 0 for _, _, version in first_pass)
        assert {r for _, r, _ in first_pass} == set(range(1, m))

    def test_capacity_respected(self, setup):
        """With capacity c, a slave never holds more than c outstanding
        tasks; verified by replaying the request/reply interleaving."""
        seq, ex, gaps, state, comm = setup
        runner = MasterRunner(comm, state, 3, slave_capacity=2)
        runner.run()
        # The master may stop with replies still outstanding (k reached),
        # but the load accounting must stay within capacity and agree
        # with the in-flight set.
        assert all(0 <= load <= 2 for load in runner._load.values())
        assert sum(runner._load.values()) == len(runner._inflight)

    def test_bytes_accounted(self, setup):
        _, _, _, state, comm = setup
        runner = MasterRunner(comm, state, 2)
        runner.run()
        assert runner.bytes_received > 0

    def test_validation(self, setup):
        _, _, _, state, comm = setup
        with pytest.raises(ValueError):
            MasterRunner(comm, state, 0)
        comm.size = 1
        with pytest.raises(ValueError):
            MasterRunner(comm, state, 1)

    def test_exhaustion_stops_cleanly(self, dna_scoring):
        from repro.sequences import tandem_repeat_sequence

        ex, gaps = dna_scoring
        seq = tandem_repeat_sequence("ACG", 3)
        state = TopAlignmentState(seq, ex, gaps)
        comm = FakeSlaveComm(seq.codes, ex, gaps, n_slaves=2)
        tops, _ = MasterRunner(comm, state, 50).run()
        expected, _ = find_top_alignments(seq, 50, ex, gaps)
        assert len(tops) == len(expected) < 50
        assert comm.stops == 2
