"""Routing classification: skip / defer / full from the k-mer profile."""

import dataclasses

from repro.index import (
    ROUTE_DEFER,
    ROUTE_FULL,
    ROUTE_SKIP,
    IndexConfig,
    build_profile,
    classify,
    promise_score,
)
from repro.scoring import match_mismatch
from repro.sequences import DNA, Sequence, random_sequence
from repro.sequences.workloads import RepeatSpec, implant_repeats


def _exchange():
    return match_mismatch(DNA, 2.0, -1.0, wildcard_score=None)


def _implanted(seed=0, length=240):
    return implant_repeats(
        length,
        RepeatSpec(unit_length=40, copies=4, substitution_rate=0.12),
        DNA,
        seed=seed,
    ).sequence


class TestClassify:
    def test_implanted_repeats_route_full(self):
        profile = build_profile(_implanted())
        decision = classify(profile, _exchange(), min_score=80.0)
        assert decision.route == ROUTE_FULL

    def test_quiet_background_skips_under_high_threshold(self):
        skipped = 0
        for seed in range(8):
            profile = build_profile(random_sequence(240, DNA, seed=100 + seed))
            decision = classify(profile, _exchange(), min_score=80.0)
            assert decision.route in (ROUTE_SKIP, ROUTE_FULL, ROUTE_DEFER)
            skipped += decision.route == ROUTE_SKIP
        # Most random records fall below an 80-score threshold.
        assert skipped >= 4

    def test_zero_threshold_never_skips(self):
        for seed in range(6):
            profile = build_profile(random_sequence(240, DNA, seed=seed))
            decision = classify(profile, _exchange(), min_score=0.0)
            assert decision.route != ROUTE_SKIP

    def test_threshold_below_background_never_skips(self):
        # Random 240 bp DNA self-aligns in the 40-55 range; the
        # background term keeps estimates above any such threshold.
        for seed in range(6):
            profile = build_profile(random_sequence(240, DNA, seed=seed))
            decision = classify(profile, _exchange(), min_score=20.0)
            assert decision.route != ROUTE_SKIP

    def test_skip_only_when_margin_clears_threshold(self):
        profile = build_profile(random_sequence(240, DNA, seed=1))
        config = IndexConfig()
        decision = classify(profile, _exchange(), min_score=80.0, config=config)
        if decision.route == ROUTE_SKIP:
            assert config.margin * decision.estimate < 80.0

    def test_overflowed_profile_routes_full(self):
        profile = build_profile(Sequence("A" * 300, DNA))
        decision = classify(profile, _exchange(), min_score=1000.0)
        assert decision.route == ROUTE_FULL

    def test_defer_class_exists_for_midweight_records(self):
        # A quiet record under a threshold the estimate cannot rule out
        # lands in defer: scanned, but after the full class.
        profile = build_profile(random_sequence(240, DNA, seed=2))
        decision = classify(profile, _exchange(), min_score=0.0)
        assert decision.route in (ROUTE_DEFER, ROUTE_FULL)


class TestPromise:
    def test_repeats_promise_more_than_background(self):
        hot = promise_score(build_profile(_implanted()), _exchange())
        quiet = promise_score(
            build_profile(random_sequence(240, DNA, seed=3)), _exchange()
        )
        assert hot > quiet

    def test_overflow_saturates(self):
        profile = build_profile(Sequence("A" * 300, DNA))
        assert promise_score(profile, _exchange()) == 2.0 * 300


class TestConfig:
    def test_profile_params_exclude_routing_knobs(self):
        calibrated = IndexConfig(chain_slack=9.0, margin=5.0, full_threshold=0.5)
        assert calibrated.profile_params() == IndexConfig().profile_params()

    def test_profile_params_cover_profile_knobs(self):
        assert set(IndexConfig().profile_params()) == {
            "k",
            "window",
            "hot_fraction",
            "band_width",
            "max_occ",
        }

    def test_frozen(self):
        import pytest

        with pytest.raises(dataclasses.FrozenInstanceError):
            IndexConfig().k = 5
