"""The bucketed k-mer profile: counts, bands, hotspots, wildcards."""

import numpy as np

from repro.index import KmerProfile, build_profile, default_k
from repro.sequences import DNA, PROTEIN, Sequence, random_sequence
from repro.sequences.workloads import RepeatSpec, implant_repeats


def _dna(text, id="seq"):
    return Sequence(text, DNA, id=id)


class TestDefaultK:
    def test_nucleotide_and_protein_words(self):
        assert default_k(DNA.size) == 8
        assert default_k(PROTEIN.size) == 3

    def test_zero_k_resolves_per_alphabet(self):
        profile = build_profile(random_sequence(60, DNA, seed=1))
        assert profile.k == 8
        profile = build_profile(random_sequence(60, PROTEIN, seed=1))
        assert profile.k == 3


class TestBuildProfile:
    def test_exact_tandem_is_maximally_duplicated(self):
        seq = _dna("ACGTTGCA" * 12)
        profile = build_profile(seq, k=8)
        # Every window recurs eight positions later except the last unit.
        assert profile.dup_fraction > 0.9
        assert profile.peak_band > 0
        assert profile.hotspots

    def test_random_sequence_is_quiet(self):
        profile = build_profile(random_sequence(240, DNA, seed=3))
        assert profile.dup_fraction < 0.05
        assert profile.peak_band <= 2
        assert not profile.overflowed

    def test_implanted_repeats_beat_background(self):
        implanted = implant_repeats(
            240,
            RepeatSpec(unit_length=40, copies=4, substitution_rate=0.12),
            DNA,
            seed=5,
        ).sequence
        background = random_sequence(240, DNA, seed=5)
        hot = build_profile(implanted)
        quiet = build_profile(background)
        assert hot.dup_fraction > quiet.dup_fraction
        assert hot.peak_band > quiet.peak_band

    def test_wildcard_windows_are_excluded(self):
        # A run of N is self-similar at every offset but scores zero
        # under wildcard-neutral matrices: it must produce no promise.
        profile = build_profile(_dna("N" * 64), k=8)
        assert profile.n_valid == 0
        assert profile.dup_fraction == 0.0
        assert profile.hotspots == ()

    def test_wildcards_inside_real_sequence(self):
        clean = build_profile(_dna("ACGTTGCA" * 8), k=8)
        broken = build_profile(_dna("ACGTTGCA" * 4 + "N" * 8 + "ACGTTGCA" * 4), k=8)
        assert broken.n_valid < broken.n_positions
        assert broken.dup_positions <= clean.dup_positions

    def test_homopolymer_overflows_instead_of_pair_explosion(self):
        profile = build_profile(_dna("A" * 300), k=8)
        assert profile.overflowed >= 1
        assert profile.pair_hits == 0
        assert profile.max_count > 64

    def test_short_sequence_has_no_windows(self):
        profile = build_profile(_dna("ACG"), k=8)
        assert profile.n_positions == 0
        assert profile.n_valid == 0

    def test_band_width_defaults_to_word_size_floor(self):
        assert build_profile(random_sequence(60, DNA, seed=1), k=4).band_width == 8
        assert (
            build_profile(random_sequence(60, DNA, seed=1), k=12).band_width == 12
        )

    def test_hotspots_lie_within_the_sequence(self):
        seq = implant_repeats(
            240,
            RepeatSpec(unit_length=40, copies=4, substitution_rate=0.12),
            DNA,
            seed=9,
        ).sequence
        profile = build_profile(seq)
        for start, end in profile.hotspots:
            assert 0 <= start < end <= len(seq)


class TestSerialisation:
    def test_roundtrip_is_lossless(self):
        seq = implant_repeats(
            200,
            RepeatSpec(unit_length=30, copies=3, substitution_rate=0.1),
            DNA,
            seed=2,
        ).sequence
        profile = build_profile(seq)
        assert KmerProfile.from_dict(profile.to_dict()) == profile

    def test_json_safe(self):
        import json

        profile = build_profile(random_sequence(120, DNA, seed=4))
        payload = json.loads(json.dumps(profile.to_dict()))
        assert KmerProfile.from_dict(payload) == profile

    def test_deterministic_across_runs(self):
        seq = random_sequence(180, DNA, seed=11)
        assert build_profile(seq) == build_profile(seq)

    def test_codes_and_text_agree(self):
        text = "ACGTTGCA" * 6
        a = build_profile(_dna(text))
        b = build_profile(Sequence(np.asarray(DNA.encode(text)), DNA))
        assert a == b
