"""Property tests of the index tier's two safety contracts.

* **Recall safety** — a sequence whose unindexed scan reports a top
  alignment above the significance threshold is never classed *skip*;
* **Bound dominance** — seeded heap bounds are >= every true
  (realigned) score, so seeding can never change what is accepted.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import find_top_alignments
from repro.index import ROUTE_SKIP, build_profile, classify, seed_score_bounds
from repro.scoring import GapPenalties, match_mismatch
from repro.sequences import DNA, Sequence
from repro.sequences.workloads import RepeatSpec, implant_repeats, random_sequence


def _scoring():
    return match_mismatch(DNA, 2.0, -1.0, wildcard_score=None), GapPenalties(2, 1)


def _workload(data):
    """A random member of the scan workload family: background DNA,
    optionally with an implanted tandem family."""
    length = data.draw(st.integers(60, 200))
    seed = data.draw(st.integers(0, 10_000))
    if data.draw(st.booleans()):
        unit = data.draw(st.integers(10, max(11, length // 5)))
        copies = data.draw(st.integers(2, 4))
        rate = data.draw(st.sampled_from([0.0, 0.1, 0.2]))
        return implant_repeats(
            length,
            RepeatSpec(unit_length=unit, copies=copies, substitution_rate=rate),
            DNA,
            seed=seed,
        ).sequence
    return random_sequence(length, DNA, seed=seed)


@settings(max_examples=30, deadline=None)
@given(data=st.data(), min_score=st.sampled_from([20.0, 40.0, 60.0, 80.0]))
def test_routing_is_recall_safe(data, min_score):
    """If the unindexed scan finds a top above the threshold, the index
    tier must not skip the sequence."""
    exchange, gaps = _scoring()
    seq = _workload(data)
    tops, _ = find_top_alignments(seq, 3, exchange, gaps)
    best = max((a.score for a in tops), default=0.0)
    if best <= min_score:
        return  # nothing significant to protect
    decision = classify(
        build_profile(seq), exchange, min_score=min_score
    )
    assert decision.route != ROUTE_SKIP, (
        f"skip-routed a sequence with a true top of {best} "
        f"(threshold {min_score}, estimate {decision.estimate})"
    )


@settings(max_examples=30, deadline=None)
@given(data=st.data(), k=st.integers(1, 5))
def test_seed_bounds_dominate_and_preserve_tops(data, k):
    """Bounds >= every realigned score; seeded and unseeded runs accept
    byte-identical tops."""
    exchange, gaps = _scoring()
    seq = _workload(data)
    bounds = seed_score_bounds(seq, exchange)
    plain, _ = find_top_alignments(seq, k, exchange, gaps)
    seeded, _ = find_top_alignments(seq, k, exchange, gaps, seed_bounds=bounds)
    assert [(a.index, a.r, a.score, a.pairs) for a in plain] == [
        (a.index, a.r, a.score, a.pairs) for a in seeded
    ]
    # Accepted scores are true realigned scores: each must sit under
    # its split's seed bound.
    for top in seeded:
        assert top.score <= bounds[top.r - 1] + 1e-9


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_bounds_dominate_true_first_pass(data):
    """B(r) >= the version-0 first-pass score for every split."""
    from repro.core.topalign import TopAlignmentState

    exchange, gaps = _scoring()
    codes = data.draw(
        st.lists(st.integers(0, 4), min_size=6, max_size=40)
    )
    seq = Sequence(np.array(codes, dtype=np.int8), DNA)
    bounds = seed_score_bounds(seq, exchange)
    state = TopAlignmentState(seq, exchange, gaps)
    for r in range(1, len(seq)):
        row = np.asarray(state.engine.last_row(state.problem_for(r)))
        assert float(row.max()) <= bounds[r - 1] + 1e-9
