"""Seeded heap bounds: provably >= the true first-pass scores."""

import numpy as np
import pytest

from repro.core.topalign import TopAlignmentState, find_top_alignments
from repro.index import seed_score_bounds
from repro.scoring import GapPenalties, match_mismatch
from repro.scoring.blosum import blosum62
from repro.sequences import DNA, Sequence, pseudo_titin, random_sequence
from repro.sequences.workloads import RepeatSpec, implant_repeats


def _dna_scoring():
    return match_mismatch(DNA, 2.0, -1.0, wildcard_score=None), GapPenalties(2, 1)


def _first_pass_scores(seq, exchange, gaps):
    """The true version-0 first-pass score of every split."""
    state = TopAlignmentState(seq, exchange, gaps)
    scores = []
    for r in range(1, len(seq)):
        row = state.engine.last_row(state.problem_for(r))
        scores.append(float(np.asarray(row).max()))
    return np.array(scores)


class TestShape:
    def test_length_and_dtype(self):
        seq = random_sequence(40, DNA, seed=1)
        exchange, _ = _dna_scoring()
        bounds = seed_score_bounds(seq, exchange)
        assert bounds.shape == (len(seq) - 1,)
        assert bounds.dtype == np.float64
        assert np.isfinite(bounds).all()
        assert (bounds >= 0).all()

    def test_degenerate_sequence(self):
        exchange, _ = _dna_scoring()
        assert seed_score_bounds(Sequence("A", DNA), exchange).size == 0


class TestDominance:
    @pytest.mark.parametrize("seed", [0, 3, 7])
    def test_bounds_dominate_first_pass_dna(self, seed):
        seq = implant_repeats(
            120,
            RepeatSpec(unit_length=20, copies=3, substitution_rate=0.15),
            DNA,
            seed=seed,
        ).sequence
        exchange, gaps = _dna_scoring()
        bounds = seed_score_bounds(seq, exchange)
        truth = _first_pass_scores(seq, exchange, gaps)
        assert (bounds >= truth - 1e-9).all()

    def test_bounds_dominate_first_pass_protein(self):
        seq = pseudo_titin(90, seed=4)
        exchange = blosum62()
        gaps = GapPenalties(8, 1)
        bounds = seed_score_bounds(seq, exchange)
        truth = _first_pass_scores(seq, exchange, gaps)
        assert (bounds >= truth - 1e-9).all()

    def test_accepted_tops_respect_their_seed_bound(self):
        seq = implant_repeats(
            150,
            RepeatSpec(unit_length=25, copies=4, substitution_rate=0.1),
            DNA,
            seed=5,
        ).sequence
        exchange, gaps = _dna_scoring()
        bounds = seed_score_bounds(seq, exchange)
        tops, _ = find_top_alignments(seq, 5, exchange, gaps)
        for top in tops:
            assert top.score <= bounds[top.r - 1] + 1e-9


class TestTightness:
    def test_identity_bound_tightens_dna(self):
        # For +2/-1 (off-diagonal <= 0) the identity bound applies and
        # must never be looser than composition alone.
        seq = random_sequence(80, DNA, seed=6)
        exchange, _ = _dna_scoring()
        weights = np.maximum(exchange.scores, 0.0).max(axis=1)
        wseq = weights[np.asarray(seq.codes)]
        prefix = np.cumsum(wseq)
        composition = np.minimum(prefix[:-1], prefix[-1] - prefix[:-1])
        bounds = seed_score_bounds(seq, exchange)
        assert (bounds <= composition + 1e-9).all()

    def test_blosum_falls_back_to_composition(self):
        # BLOSUM62 has positive off-diagonal entries, so the identity
        # bound is unsound there and the composition bound must be the
        # exact result.
        seq = pseudo_titin(60, seed=8)
        exchange = blosum62()
        weights = np.maximum(exchange.scores, 0.0).max(axis=1)
        wseq = weights[np.asarray(seq.codes)]
        prefix = np.cumsum(wseq)
        composition = np.minimum(prefix[:-1], prefix[-1] - prefix[:-1])
        bounds = seed_score_bounds(seq, exchange)
        assert np.allclose(bounds, np.maximum(composition, 0.0))


class TestSeededEquivalence:
    @pytest.mark.parametrize("k", [1, 4, 8])
    def test_seeded_tops_bit_identical(self, k):
        seq = implant_repeats(
            140,
            RepeatSpec(unit_length=28, copies=4, substitution_rate=0.12),
            DNA,
            seed=2,
        ).sequence
        exchange, gaps = _dna_scoring()
        bounds = seed_score_bounds(seq, exchange)
        plain, plain_stats = find_top_alignments(seq, k, exchange, gaps)
        seeded, seeded_stats = find_top_alignments(
            seq, k, exchange, gaps, seed_bounds=bounds
        )
        assert [(a.index, a.r, a.score, a.pairs) for a in plain] == [
            (a.index, a.r, a.score, a.pairs) for a in seeded
        ]
        assert seeded_stats.alignments <= plain_stats.alignments

    def test_seeding_prunes_first_pass_work(self):
        seq = implant_repeats(
            240,
            RepeatSpec(unit_length=40, copies=4, substitution_rate=0.12),
            DNA,
            seed=7,
        ).sequence
        exchange, gaps = _dna_scoring()
        bounds = seed_score_bounds(seq, exchange)
        # prune=False isolates the seeding effect: exact in-kernel pruning
        # (repro.align.pruning) also skips fills and would otherwise
        # shrink the plain run's alignment count too.
        _, plain_stats = find_top_alignments(seq, 10, exchange, gaps, prune=False)
        _, seeded_stats = find_top_alignments(
            seq, 10, exchange, gaps, seed_bounds=bounds, prune=False
        )
        assert seeded_stats.alignments < plain_stats.alignments
