"""The content-addressed index store: keying, warm reloads, versioning."""

import pytest

from repro.index import INDEX_VERSION, IndexConfig, IndexStore, index_digest
from repro.index.store import sequence_digest
from repro.sequences import DNA, Sequence, random_sequence


@pytest.fixture()
def store(tmp_path):
    return IndexStore(tmp_path / "index")


def _seq(seed=0):
    return random_sequence(120, DNA, seed=seed, id=f"s{seed}")


class TestDigests:
    def test_sequence_digest_depends_on_content(self):
        assert sequence_digest(_seq(0)) != sequence_digest(_seq(1))
        assert sequence_digest(_seq(0)) == sequence_digest(_seq(0))

    def test_sequence_digest_is_alphabet_qualified(self):
        from repro.sequences import RNA

        assert sequence_digest(Sequence("ACAC", DNA)) != sequence_digest(
            Sequence("ACAC", RNA)
        )

    def test_key_includes_profile_params(self):
        seq = _seq(0)
        assert index_digest(seq, IndexConfig()) != index_digest(
            seq, IndexConfig(k=4)
        )
        assert index_digest(seq, IndexConfig()) != index_digest(
            seq, IndexConfig(window=64)
        )

    def test_key_excludes_routing_knobs(self):
        # Routing calibration must not invalidate stored artifacts.
        seq = _seq(0)
        assert index_digest(seq, IndexConfig()) == index_digest(
            seq, IndexConfig(chain_slack=9.0, margin=5.0, full_threshold=0.5)
        )


class TestBuildOrLoad:
    def test_cold_builds_then_warm_loads(self, store):
        seq = _seq(1)
        config = IndexConfig()
        first, built_first = store.build_or_load(seq, config)
        second, built_second = store.build_or_load(seq, config)
        assert built_first and not built_second
        assert first == second
        assert store.builds == 1
        assert store.hits == 1
        assert store.entries() == 1

    def test_store_survives_process_boundary(self, tmp_path):
        seq = _seq(2)
        config = IndexConfig()
        profile, built = IndexStore(tmp_path / "idx").build_or_load(seq, config)
        assert built
        # A brand-new store object over the same directory is warm.
        reloaded, built_again = IndexStore(tmp_path / "idx").build_or_load(
            seq, config
        )
        assert not built_again
        assert reloaded == profile

    def test_distinct_sequences_get_distinct_artifacts(self, store):
        config = IndexConfig()
        store.build_or_load(_seq(1), config)
        store.build_or_load(_seq(2), config)
        assert store.entries() == 2

    def test_version_mismatch_misses(self, store):
        seq = _seq(3)
        config = IndexConfig()
        store.build_or_load(seq, config)
        # Corrupt the stored payload's version: the loader must treat
        # it as absent, not deserialise stale semantics.
        digest = index_digest(seq, config)
        payload = store.cache.get(digest)
        payload["version"] = INDEX_VERSION + 1
        store.cache.put(digest, payload)
        store.cache._mem.clear()  # defeat the LRU front
        assert store.load(seq, config) is None

    def test_malformed_payload_misses(self, store):
        seq = _seq(4)
        config = IndexConfig()
        digest = index_digest(seq, config)
        store.cache.put(digest, {"version": INDEX_VERSION, "profile": {"k": "x"}})
        assert store.load(seq, config) is None
        assert store.misses == 1

    def test_stats_shape(self, store):
        store.build_or_load(_seq(5), IndexConfig())
        stats = store.stats()
        assert stats["builds"] == 1
        assert stats["entries"] == 1
        assert stats["build_seconds"] >= 0.0
