"""Deficit-round-robin lanes: fair share, refunds, starvation bound."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gateway import DeficitRoundRobin, LaneItem


def _fill(drr, tenant, n, weight=1.0):
    drr.set_weight(tenant, weight)
    for i in range(n):
        drr.enqueue(tenant, LaneItem(f"{tenant}-{i}"))


def _drain(drr):
    order = []
    while True:
        granted = drr.grant()
        if granted is None:
            return order
        order.append(granted)


class TestBasics:
    def test_empty_grants_none(self):
        assert DeficitRoundRobin().grant() is None

    def test_single_lane_is_fifo(self):
        drr = DeficitRoundRobin()
        _fill(drr, "a", 3)
        assert [item.job_id for _, item in _drain(drr)] == ["a-0", "a-1", "a-2"]

    def test_equal_weights_alternate(self):
        drr = DeficitRoundRobin()
        _fill(drr, "a", 2)
        _fill(drr, "b", 2)
        tenants = [tenant for tenant, _ in _drain(drr)]
        assert tenants[:2] in (["a", "b"], ["b", "a"])
        assert sorted(tenants) == ["a", "a", "b", "b"]

    def test_weight_skews_share(self):
        drr = DeficitRoundRobin()
        _fill(drr, "heavy", 30, weight=3.0)
        _fill(drr, "light", 30, weight=1.0)
        first_20 = [tenant for tenant, _ in _drain(drr)[:20]]
        heavy = first_20.count("heavy")
        # 3:1 weights → ~15 of the first 20 grants; allow slack for
        # rotation boundary effects but reject anything near 1:1.
        assert 12 <= heavy <= 17

    def test_light_tenant_overtakes_heavy_backlog(self):
        """The tentpole scenario: a saturating tenant cannot starve a light one."""
        drr = DeficitRoundRobin()
        _fill(drr, "heavy", 500)
        _fill(drr, "light", 1)
        order = [tenant for tenant, _ in (drr.grant() for _ in range(4))]
        assert "light" in order

    def test_remove_and_retire(self):
        drr = DeficitRoundRobin()
        _fill(drr, "a", 1)
        assert drr.remove("a", "a-0")
        assert not drr.remove("a", "a-0")
        assert not drr.remove("ghost", "x")
        assert drr.grant() is None
        assert drr.depth() == 0

    def test_requeue_front_refunds_cost(self):
        drr = DeficitRoundRobin()
        _fill(drr, "a", 2)
        tenant, item = drr.grant()
        drr.requeue_front(tenant, item)
        # The refunded head comes straight back on the next grant.
        tenant2, item2 = drr.grant()
        assert (tenant2, item2.job_id) == (tenant, item.job_id)

    def test_idle_lane_accumulates_no_credit(self):
        drr = DeficitRoundRobin()
        _fill(drr, "a", 5)
        _drain(drr)  # lane drains; deficit resets
        _fill(drr, "a", 1)
        _fill(drr, "b", 1)
        snapshot = drr.snapshot()
        assert snapshot["a"]["deficit"] == 0.0

    def test_snapshot_shape(self):
        drr = DeficitRoundRobin()
        _fill(drr, "a", 2, weight=2.0)
        snap = drr.snapshot()
        assert snap["a"]["depth"] == 2
        assert snap["a"]["weight"] == 2.0


class TestStarvationProperty:
    @settings(max_examples=200, deadline=None)
    @given(
        lanes=st.dictionaries(
            keys=st.text(
                alphabet="abcdefghij", min_size=1, max_size=4
            ),
            values=st.tuples(
                st.integers(min_value=1, max_value=8),   # integer weight
                st.integers(min_value=1, max_value=6),   # queued items
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_every_tenant_served_within_bound(self, lanes):
        """DRR is starvation-free: with unit costs and integer weights,
        every backlogged tenant's first grant lands within
        ``sum(weights) + n_tenants`` grants (the bound documented in
        :mod:`repro.gateway.fairshare`)."""
        drr = DeficitRoundRobin()
        for tenant, (weight, items) in lanes.items():
            _fill(drr, tenant, items, weight=float(weight))
        order = _drain(drr)

        # Conservation: every enqueued item granted exactly once.
        expected = sorted(
            f"{tenant}-{i}"
            for tenant, (_w, items) in lanes.items()
            for i in range(items)
        )
        assert sorted(item.job_id for _, item in order) == expected

        bound = sum(w for w, _ in lanes.values()) + len(lanes)
        first_grant = {}
        for position, (tenant, _item) in enumerate(order):
            first_grant.setdefault(tenant, position)
        for tenant, position in first_grant.items():
            assert position < bound, (
                f"tenant {tenant!r} first served at grant {position}, "
                f"bound {bound}"
            )

    @settings(max_examples=50, deadline=None)
    @given(
        weights=st.lists(
            st.integers(min_value=1, max_value=5), min_size=2, max_size=5
        )
    )
    def test_long_run_share_tracks_weights(self, weights):
        """Over a long backlog, each tenant's share converges on its
        weight fraction (within one rotation of slack)."""
        drr = DeficitRoundRobin()
        n = 40
        for i, weight in enumerate(weights):
            _fill(drr, f"t{i}", n, weight=float(weight))
        total_weight = sum(weights)
        window = total_weight * 4
        first = [tenant for tenant, _ in _drain(drr)[:window]]
        for i, weight in enumerate(weights):
            got = first.count(f"t{i}")
            ideal = window * weight / total_weight
            assert abs(got - ideal) <= total_weight + len(weights)
