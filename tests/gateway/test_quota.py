"""Token-bucket rate limiting with an injected clock (no sleeps)."""

import math

import pytest

from repro.gateway import QuotaExceeded, TokenBucket


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


class TestTokenBucket:
    def test_burst_defaults_to_rate_ceiling(self, clock):
        bucket = TokenBucket(2.5, clock=clock)
        assert bucket.take() == 0.0
        assert bucket.take() == 0.0
        assert bucket.take() == 0.0  # ceil(2.5) == 3 tokens up front
        assert bucket.take() > 0.0

    def test_refill_over_time(self, clock):
        bucket = TokenBucket(1.0, burst=1.0, clock=clock)
        assert bucket.take() == 0.0
        assert bucket.take() > 0.0
        clock.advance(1.0)
        assert bucket.take() == 0.0

    def test_wait_reports_time_to_affordability(self, clock):
        bucket = TokenBucket(2.0, burst=1.0, clock=clock)
        assert bucket.take() == 0.0
        wait = bucket.take()
        assert wait == pytest.approx(0.5)

    def test_refusal_spends_nothing(self, clock):
        bucket = TokenBucket(1.0, burst=1.0, clock=clock)
        assert bucket.take() == 0.0
        bucket.take()  # refused
        bucket.take()  # refused again — must not dig the deficit deeper
        clock.advance(1.0)
        assert bucket.take() == 0.0

    def test_rate_zero_is_unlimited(self, clock):
        bucket = TokenBucket(0.0, clock=clock)
        for _ in range(1000):
            assert bucket.take() == 0.0
        assert bucket.peek() == math.inf

    def test_tokens_cap_at_burst(self, clock):
        bucket = TokenBucket(1.0, burst=2.0, clock=clock)
        clock.advance(100.0)  # long idle must not bank unlimited credit
        assert bucket.take() == 0.0
        assert bucket.take() == 0.0
        assert bucket.take() > 0.0

    def test_peek_does_not_spend(self, clock):
        bucket = TokenBucket(1.0, burst=1.0, clock=clock)
        assert bucket.peek() >= 1.0
        assert bucket.peek() >= 1.0
        assert bucket.take() == 0.0


class TestQuotaExceeded:
    def test_fields_and_floor(self):
        exc = QuotaExceeded("acme", "rate", "slow down", retry_after=0.2)
        assert exc.tenant == "acme"
        assert exc.reason == "rate"
        assert exc.retry_after == 1  # floored to at least one second
        assert "slow down" in str(exc)

    def test_retry_after_truncates(self):
        exc = QuotaExceeded("acme", "rate", "m", retry_after=3.9)
        assert exc.retry_after == 3
