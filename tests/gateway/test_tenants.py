"""Tenant directory: parsing, constant-time resolve, hot reload."""

import json

import pytest

from repro.gateway import (
    AuthError,
    ForbiddenError,
    PUBLIC_TENANT,
    TenantDirectory,
)
from repro.gateway.tenants import EXAMPLE_CONFIG, _parse_config


def _write(path, payload):
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


def _config(tmp_path, tenants):
    return _write(tmp_path / "tenants.json", {"tenants": tenants})


class TestParse:
    def test_example_config_parses(self):
        tenants = _parse_config(json.loads(EXAMPLE_CONFIG))
        assert set(tenants) == {"acme", "guest"}
        assert tenants["acme"].weight == 4

    @pytest.mark.parametrize(
        "payload",
        [
            [],
            {},
            {"tenants": []},
            {"tenants": {}},
            {"tenants": {"ok name": {"api_key": "k"}}},
            {"tenants": {"a": "not-an-object"}},
            {"tenants": {"a": {"api_key": "k", "color": "red"}}},
            {"tenants": {"a": {"api_key": ""}}},
            {"tenants": {"a": {"api_key": "k", "weight": 0}}},
            {"tenants": {"a": {"api_key": "k", "rate": -1}}},
            {"tenants": {"a": {"api_key": "k"}, "b": {"api_key": "k"}}},
        ],
        ids=[
            "not-dict",
            "no-tenants",
            "tenants-not-dict",
            "empty",
            "bad-name",
            "spec-not-dict",
            "unknown-field",
            "empty-key",
            "zero-weight",
            "negative-quota",
            "duplicate-key",
        ],
    )
    def test_rejects_bad_config(self, payload):
        with pytest.raises(ValueError):
            _parse_config(payload)


class TestResolve:
    def test_open_mode_resolves_everything_to_public(self):
        directory = TenantDirectory()
        assert directory.open
        assert directory.resolve(None) is PUBLIC_TENANT
        assert directory.resolve("anything") is PUBLIC_TENANT

    def test_missing_and_unknown_keys_raise_auth_error(self, tmp_path):
        path = _config(tmp_path, {"acme": {"api_key": "s3cret"}})
        directory = TenantDirectory(path)
        assert not directory.open
        with pytest.raises(AuthError):
            directory.resolve(None)
        with pytest.raises(AuthError):
            directory.resolve("")
        with pytest.raises(AuthError):
            directory.resolve("wrong")

    def test_valid_key_resolves(self, tmp_path):
        path = _config(
            tmp_path,
            {"acme": {"api_key": "a-key"}, "beta": {"api_key": "b-key"}},
        )
        directory = TenantDirectory(path)
        assert directory.resolve("b-key").name == "beta"

    def test_disabled_tenant_is_forbidden(self, tmp_path):
        path = _config(
            tmp_path, {"acme": {"api_key": "k", "enabled": False}}
        )
        directory = TenantDirectory(path)
        with pytest.raises(ForbiddenError):
            directory.resolve("k")


class TestReload:
    def test_initial_load_fails_fast(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text("{ not json", encoding="utf-8")
        with pytest.raises(ValueError):
            TenantDirectory(path)

    def test_reload_swaps_table(self, tmp_path):
        path = _config(tmp_path, {"acme": {"api_key": "old"}})
        directory = TenantDirectory(path)
        _config(tmp_path, {"acme": {"api_key": "new"}})
        assert directory.reload()
        assert directory.reloads == 1
        directory.resolve("new")
        with pytest.raises(AuthError):
            directory.resolve("old")

    def test_bad_reload_keeps_previous_table(self, tmp_path):
        path = _config(tmp_path, {"acme": {"api_key": "k"}})
        directory = TenantDirectory(path)
        path.write_text("{ broken", encoding="utf-8")
        assert not directory.reload()
        assert directory.reload_errors == 1
        assert directory.resolve("k").name == "acme"

    def test_reload_in_open_mode_is_a_noop(self):
        directory = TenantDirectory()
        assert not directory.reload()


class TestIntrospection:
    def test_snapshot_never_leaks_keys(self, tmp_path):
        path = _config(
            tmp_path, {"acme": {"api_key": "super-secret", "rate": 5}}
        )
        directory = TenantDirectory(path)
        snap = directory.snapshot()
        assert snap["acme"]["rate"] == 5
        assert "super-secret" not in json.dumps(snap)

    def test_names_and_get(self, tmp_path):
        path = _config(
            tmp_path,
            {"b": {"api_key": "1"}, "a": {"api_key": "2"}},
        )
        directory = TenantDirectory(path)
        assert directory.names() == ["a", "b"]
        assert directory.get("a").api_key == "2"
        assert directory.get("ghost") is None
