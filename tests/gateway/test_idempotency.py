"""Idempotency store: claim/commit/replay, races, stale locks."""

import os
import threading
import time

import pytest

from repro.gateway import IdempotencyConflict, IdempotencyStore
from repro.gateway.idempotency import PendingTicket


@pytest.fixture
def store(tmp_path):
    return IdempotencyStore(tmp_path / "idem")


class TestClaimCommit:
    def test_winner_commits_then_replays(self, store):
        ticket = store.claim("acme", "run-1")
        assert isinstance(ticket, PendingTicket)
        ticket.commit("job-abc", "digest-1")
        replay = store.claim("acme", "run-1")
        assert replay == {
            "job_id": "job-abc",
            "digest": "digest-1",
            "created": replay["created"],
        }

    def test_keys_scoped_per_tenant(self, store):
        ticket = store.claim("acme", "run-1")
        ticket.commit("job-acme", "d")
        other = store.claim("beta", "run-1")
        assert isinstance(other, PendingTicket)
        other.abort()

    def test_abort_releases_key_for_retake(self, store):
        ticket = store.claim("acme", "run-1")
        ticket.abort()
        retaken = store.claim("acme", "run-1")
        assert isinstance(retaken, PendingTicket)
        retaken.commit("job-2", "d")
        assert store.peek("acme", "run-1")["job_id"] == "job-2"

    def test_commit_is_idempotent(self, store):
        ticket = store.claim("acme", "run-1")
        ticket.commit("job-1", "d")
        ticket.commit("job-2", "d")  # settled — must not overwrite
        assert store.peek("acme", "run-1")["job_id"] == "job-1"

    def test_peek_without_claim(self, store):
        assert store.peek("acme", "nope") is None
        store.bind("acme", "run-9", "job-9", "d9")
        assert store.peek("acme", "run-9")["job_id"] == "job-9"

    def test_entries_counts(self, store):
        store.bind("acme", "a", "1", "d")
        store.bind("acme", "b", "2", "d")
        store.bind("beta", "a", "3", "d")
        assert store.entries("acme") == 2
        assert store.entries() == 3

    def test_free_text_keys_are_path_safe(self, store):
        nasty = "../../../etc/passwd\n\x00 spaces/slash"
        ticket = store.claim("acme", nasty)
        ticket.commit("job-x", "d")
        assert store.peek("acme", nasty)["job_id"] == "job-x"
        # Nothing escaped the store root.
        for path in store.root.rglob("*"):
            assert store.root in path.parents or path == store.root


class TestRaces:
    def test_exactly_one_concurrent_winner(self, tmp_path):
        store = IdempotencyStore(tmp_path / "idem", wait_timeout=5.0)
        results = []
        barrier = threading.Barrier(8)

        def contend():
            barrier.wait()
            outcome = store.claim("acme", "race-key")
            if isinstance(outcome, PendingTicket):
                time.sleep(0.02)  # hold the lock while losers poll
                outcome.commit("job-won", "d")
                results.append("won")
            else:
                results.append(outcome["job_id"])

        threads = [threading.Thread(target=contend) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results.count("won") == 1
        assert all(r in ("won", "job-won") for r in results)

    def test_loser_times_out_with_conflict(self, tmp_path):
        store = IdempotencyStore(
            tmp_path / "idem", wait_timeout=0.05, poll_interval=0.01
        )
        ticket = store.claim("acme", "slow")
        assert isinstance(ticket, PendingTicket)
        with pytest.raises(IdempotencyConflict):
            store.claim("acme", "slow")
        ticket.abort()

    def test_stale_lock_is_broken(self, tmp_path):
        store = IdempotencyStore(
            tmp_path / "idem", wait_timeout=2.0, stale_lock_seconds=0.01
        )
        ticket = store.claim("acme", "crashed")
        assert isinstance(ticket, PendingTicket)
        # Simulate a crashed winner: age the lock past the stale bound.
        lock = ticket._lock
        old = time.time() - 5.0
        os.utime(lock, (old, old))
        retaken = store.claim("acme", "crashed")
        assert isinstance(retaken, PendingTicket)
        retaken.commit("job-recovered", "d")
        assert store.peek("acme", "crashed")["job_id"] == "job-recovered"
