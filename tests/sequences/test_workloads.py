"""Unit tests for repro.sequences.workloads."""

import numpy as np
import pytest

from repro.sequences import (
    DNA,
    PROTEIN,
    RepeatSpec,
    implant_repeats,
    mutate,
    pseudo_titin,
    random_sequence,
    tandem_repeat_sequence,
)


class TestRandomSequence:
    def test_length_and_alphabet(self):
        seq = random_sequence(500, PROTEIN, seed=1)
        assert len(seq) == 500
        assert seq.alphabet is PROTEIN

    def test_deterministic(self):
        assert random_sequence(100, seed=4) == random_sequence(100, seed=4)
        assert random_sequence(100, seed=4) != random_sequence(100, seed=5)

    def test_no_wildcards_emitted(self):
        seq = random_sequence(2000, DNA, seed=2)
        assert "N" not in seq.text

    def test_protein_composition_plausible(self):
        # Leucine is the most common residue in the background model.
        seq = random_sequence(20000, PROTEIN, seed=3)
        counts = np.bincount(seq.codes, minlength=PROTEIN.size)
        assert counts[PROTEIN.code_of("L")] > counts[PROTEIN.code_of("W")]


class TestMutate:
    def test_zero_rates_identity(self):
        rng = np.random.default_rng(0)
        codes = DNA.encode("ACGTACGT")
        assert np.array_equal(
            mutate(codes, DNA, substitution_rate=0.0, rng=rng), codes
        )

    def test_full_substitution_changes_most(self):
        rng = np.random.default_rng(0)
        codes = DNA.encode("A" * 1000)
        out = mutate(codes, DNA, substitution_rate=1.0, rng=rng)
        # Each position resampled; ~1/4 may stay 'A' by chance.
        assert (out != codes).mean() > 0.5

    def test_indels_change_length(self):
        rng = np.random.default_rng(0)
        codes = DNA.encode("ACGT" * 100)
        out = mutate(codes, DNA, substitution_rate=0.0, indel_rate=0.1, rng=rng)
        assert out.size != codes.size

    def test_invalid_rates_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            mutate(DNA.encode("AC"), DNA, substitution_rate=1.5, rng=rng)
        with pytest.raises(ValueError):
            mutate(DNA.encode("AC"), DNA, substitution_rate=0.1, indel_rate=-1, rng=rng)


class TestTandem:
    def test_exact_tandem(self):
        assert tandem_repeat_sequence("ATGC", 3).text == "ATGCATGCATGC"

    def test_single_copy(self):
        assert tandem_repeat_sequence("ATGC", 1).text == "ATGC"

    def test_zero_copies_rejected(self):
        with pytest.raises(ValueError):
            tandem_repeat_sequence("ATGC", 0)

    def test_diverged_copies_differ(self):
        seq = tandem_repeat_sequence("ATGCATGC", 4, substitution_rate=0.5, seed=1)
        copies = [seq.text[i * 8 : (i + 1) * 8] for i in range(4)]
        assert len(set(copies)) > 1


class TestImplantRepeats:
    def test_ground_truth_intervals_match_spec(self):
        wl = implant_repeats(
            300, RepeatSpec(unit_length=30, copies=4, substitution_rate=0.2), seed=9
        )
        assert len(wl.intervals) == 1
        assert len(wl.intervals[0]) == 4
        for start, end in wl.intervals[0]:
            assert 0 <= start < end <= len(wl.sequence)

    def test_tandem_copies_are_adjacent(self):
        wl = implant_repeats(
            300,
            RepeatSpec(unit_length=30, copies=3, substitution_rate=0.0, tandem=True),
            seed=9,
        )
        spans = wl.intervals[0]
        for (s0, e0), (s1, e1) in zip(spans, spans[1:]):
            assert e0 == s1

    def test_exact_copies_are_identical_text(self):
        wl = implant_repeats(
            200, RepeatSpec(unit_length=20, copies=3, substitution_rate=0.0), seed=2
        )
        texts = {wl.sequence.text[s:e] for s, e in wl.intervals[0]}
        assert len(texts) == 1

    def test_interspersed_copies_inside_sequence(self):
        wl = implant_repeats(
            250,
            RepeatSpec(unit_length=25, copies=3, substitution_rate=0.1, tandem=False),
            seed=5,
        )
        for start, end in wl.intervals[0]:
            assert 0 <= start < end <= len(wl.sequence)

    def test_multiple_families(self):
        wl = implant_repeats(
            400,
            [
                RepeatSpec(unit_length=30, copies=2),
                RepeatSpec(unit_length=15, copies=3),
            ],
            seed=11,
        )
        assert len(wl.intervals) == 2
        assert wl.total_repeat_fraction > 0

    def test_repeat_fraction_bounds(self):
        wl = implant_repeats(
            200, RepeatSpec(unit_length=50, copies=3, substitution_rate=0.0), seed=3
        )
        assert 0.0 < wl.total_repeat_fraction <= 1.0

    def test_deterministic(self):
        spec = RepeatSpec(unit_length=20, copies=3)
        a = implant_repeats(200, spec, seed=1)
        b = implant_repeats(200, spec, seed=1)
        assert a.sequence == b.sequence
        assert a.intervals == b.intervals


class TestPseudoTitin:
    def test_exact_length(self):
        assert len(pseudo_titin(1000, seed=0)) == 1000

    def test_default_is_full_titin_length(self):
        # Just check the declared default, not a 34350-residue build.
        import inspect

        sig = inspect.signature(pseudo_titin)
        assert sig.parameters["length"].default == 34350

    def test_deterministic(self):
        assert pseudo_titin(500, seed=7) == pseudo_titin(500, seed=7)

    def test_is_protein(self):
        assert pseudo_titin(300).alphabet is PROTEIN

    def test_has_repeat_structure(self):
        """Titin-like input must carry detectable internal repeats."""
        from repro.core import find_top_alignments
        from repro.scoring import GapPenalties, blosum62

        seq = pseudo_titin(250, seed=1)
        tops, _ = find_top_alignments(seq, 3, blosum62(), GapPenalties(8, 1))
        assert len(tops) == 3
        assert tops[0].score > 0
