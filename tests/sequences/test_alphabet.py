"""Unit tests for repro.sequences.alphabet."""

import numpy as np
import pytest

from repro.sequences import DNA, PROTEIN, RNA, Alphabet, alphabet_for


class TestBuiltins:
    def test_dna_symbols(self):
        assert DNA.symbols == "ACGTN"
        assert DNA.size == 5

    def test_rna_replaces_t_with_u(self):
        assert "U" in RNA.symbols and "T" not in RNA.symbols

    def test_protein_has_24_symbols(self):
        assert PROTEIN.size == 24
        # The published-matrix residue order, including ambiguity codes.
        assert PROTEIN.symbols.startswith("ARNDCQEGHILKMFPSTWYV")
        assert PROTEIN.symbols.endswith("BZX*")

    def test_wildcards(self):
        assert DNA.wildcard == "N"
        assert PROTEIN.wildcard == "X"
        assert DNA.wildcard_code == DNA.symbols.index("N")

    def test_lookup_by_name(self):
        assert alphabet_for("dna") is DNA
        assert alphabet_for("PROTEIN") is PROTEIN

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown alphabet"):
            alphabet_for("klingon")


class TestEncodeDecode:
    def test_roundtrip(self):
        text = "ACGTACGT"
        assert DNA.decode(DNA.encode(text)) == text

    def test_encode_dtype_is_int8(self):
        assert DNA.encode("ACGT").dtype == np.int8

    def test_encode_is_case_insensitive(self):
        assert np.array_equal(DNA.encode("acgt"), DNA.encode("ACGT"))

    def test_encode_strict_rejects_unknown(self):
        with pytest.raises(ValueError, match="invalid symbol 'Z'"):
            DNA.encode("ACZT")

    def test_encode_error_reports_position(self):
        with pytest.raises(ValueError, match="position 2"):
            DNA.encode("ACZT")

    def test_encode_lenient_maps_to_wildcard(self):
        codes = DNA.encode("ACZT", strict=False)
        assert codes[2] == DNA.wildcard_code

    def test_encode_lenient_without_wildcard_raises(self):
        bare = Alphabet("bare", "AB")
        with pytest.raises(ValueError):
            bare.encode("ABC", strict=False)

    def test_encode_empty(self):
        assert DNA.encode("").size == 0
        assert DNA.decode([]) == ""

    def test_encode_bytes_input(self):
        assert np.array_equal(DNA.encode(b"ACGT"), DNA.encode("ACGT"))

    def test_decode_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            DNA.decode([0, 99])
        with pytest.raises(ValueError, match="out of range"):
            DNA.decode([-1])

    def test_code_of(self):
        assert DNA.code_of("A") == 0
        assert DNA.code_of("t") == 3

    def test_code_of_unknown_raises(self):
        with pytest.raises(KeyError):
            DNA.code_of("Z")

    def test_is_valid(self):
        assert DNA.is_valid("ACGTN")
        assert not DNA.is_valid("ACGU")


class TestCustomAlphabets:
    def test_duplicate_symbols_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Alphabet("bad", "AAB")

    def test_wildcard_must_be_member(self):
        with pytest.raises(ValueError, match="wildcard"):
            Alphabet("bad", "AB", wildcard="N")

    def test_codes_are_positional(self):
        custom = Alphabet("xy", "XY")
        assert custom.code_of("X") == 0 and custom.code_of("Y") == 1

    def test_len_matches_size(self):
        assert len(PROTEIN) == PROTEIN.size
