"""Unit tests for repro.sequences.fasta."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sequences import (
    DNA,
    PROTEIN,
    Sequence,
    format_fasta,
    parse_fasta_text,
    read_fasta,
    write_fasta,
)

SAMPLE = """\
>seq1 first record
ACGTACGT
ACGT
>seq2
TTTT
"""


class TestParsing:
    def test_multi_record(self):
        records = parse_fasta_text(SAMPLE, DNA)
        assert [r.id for r in records] == ["seq1", "seq2"]
        assert records[0].text == "ACGTACGTACGT"
        assert records[1].text == "TTTT"

    def test_description_split(self):
        records = parse_fasta_text(SAMPLE, DNA)
        assert records[0].description == "first record"
        assert records[1].description == ""

    def test_comment_and_blank_lines_skipped(self):
        text = ">a\n; a comment\nAC\n\nGT\n"
        (rec,) = parse_fasta_text(text, DNA)
        assert rec.text == "ACGT"

    def test_headerless_leading_sequence(self):
        (rec,) = parse_fasta_text("ACGT\n", DNA)
        assert rec.id == "" and rec.text == "ACGT"

    def test_spaces_inside_sequence_removed(self):
        (rec,) = parse_fasta_text(">a\nAC GT\n", DNA)
        assert rec.text == "ACGT"

    def test_lenient_by_default(self):
        (rec,) = parse_fasta_text(">a\nACQT\n", DNA)
        assert rec.text == "ACNT"

    def test_strict_mode_raises(self):
        with pytest.raises(ValueError):
            parse_fasta_text(">a\nACQT\n", DNA, strict=True)

    def test_empty_input(self):
        assert parse_fasta_text("", DNA) == []

    def test_alphabet_by_name(self):
        (rec,) = parse_fasta_text(">a\nACGT\n", "dna")
        assert rec.alphabet is DNA


class TestFormatting:
    def test_wrapping(self):
        rec = Sequence("A" * 130, DNA, id="long")
        lines = format_fasta(rec, width=60).splitlines()
        assert lines[0] == ">long"
        assert [len(l) for l in lines[1:]] == [60, 60, 10]

    def test_header_includes_description(self):
        rec = Sequence("ACGT", DNA, id="x", description="hello world")
        assert format_fasta(rec).splitlines()[0] == ">x hello world"

    def test_width_must_be_positive(self):
        with pytest.raises(ValueError):
            format_fasta(Sequence("ACGT", DNA), width=0)

    def test_single_record_accepted(self):
        assert format_fasta(Sequence("AC", DNA, id="a")).startswith(">a")


class TestRoundTrips:
    def test_stringio_roundtrip(self):
        records = parse_fasta_text(SAMPLE, DNA)
        buf = io.StringIO()
        write_fasta(records, buf)
        again = parse_fasta_text(buf.getvalue(), DNA)
        assert again == records
        assert [r.id for r in again] == [r.id for r in records]

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "test.fasta"
        records = parse_fasta_text(SAMPLE, DNA)
        write_fasta(records, path)
        assert read_fasta(path, DNA) == records

    def test_gzip_roundtrip(self, tmp_path):
        path = tmp_path / "test.fasta.gz"
        records = parse_fasta_text(SAMPLE, DNA)
        write_fasta(records, path)
        assert read_fasta(path, DNA) == records

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.text(alphabet="abcdef123_", min_size=1, max_size=8),
                st.text(alphabet="ACGT", min_size=1, max_size=200),
            ),
            min_size=1,
            max_size=5,
        ),
        st.integers(min_value=1, max_value=80),
    )
    def test_property_roundtrip(self, items, width):
        records = [Sequence(text, DNA, id=rid) for rid, text in items]
        again = parse_fasta_text(format_fasta(records, width=width), DNA)
        assert [r.text for r in again] == [r.text for r in records]
        assert [r.id for r in again] == [r.id for r in records]
