"""Tests for sequence statistics and low-complexity masking."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sequences import (
    DNA,
    PROTEIN,
    Sequence,
    composition,
    low_complexity_mask,
    mask_low_complexity,
    shannon_entropy,
    windowed_entropy,
)


class TestComposition:
    def test_simple_counts(self):
        comp = composition(Sequence("AACG", DNA))
        assert comp == {"A": 0.5, "C": 0.25, "G": 0.25}

    def test_empty(self):
        assert composition(Sequence("", DNA)) == {}

    def test_fractions_sum_to_one(self):
        comp = composition(Sequence("ACGTACGTTTT", DNA))
        assert sum(comp.values()) == pytest.approx(1.0)


class TestShannonEntropy:
    def test_uniform_four_letters(self):
        assert shannon_entropy(DNA.encode("ACGT")) == pytest.approx(2.0)

    def test_homopolymer_zero(self):
        assert shannon_entropy(DNA.encode("AAAA")) == 0.0

    def test_empty_zero(self):
        assert shannon_entropy(np.array([], dtype=np.int8)) == 0.0

    def test_two_letter_mix(self):
        assert shannon_entropy(DNA.encode("ACAC")) == pytest.approx(1.0)

    def test_natural_log_base(self):
        got = shannon_entropy(DNA.encode("ACGT"), base=math.e)
        assert got == pytest.approx(math.log(4))

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 3), min_size=1, max_size=200))
    def test_property_bounds(self, codes):
        h = shannon_entropy(np.array(codes, dtype=np.int8))
        assert 0.0 <= h <= 2.0 + 1e-12


class TestWindowedEntropy:
    def test_length(self):
        ent = windowed_entropy(Sequence("ACGTACGTAC", DNA), window=4)
        assert ent.shape == (7,)

    def test_sliding_matches_direct(self):
        seq = Sequence("ACGTTTTTACGT", DNA)
        ent = windowed_entropy(seq, window=4)
        direct = np.array(
            [shannon_entropy(seq.codes[i : i + 4]) for i in range(len(seq) - 3)]
        )
        assert np.allclose(ent, direct)

    def test_short_sequence_empty(self):
        assert windowed_entropy(Sequence("AC", DNA), window=4).size == 0

    def test_window_validation(self):
        with pytest.raises(ValueError):
            windowed_entropy(Sequence("ACGT", DNA), window=0)


class TestLowComplexityMask:
    def test_homopolymer_fully_masked(self):
        mask = low_complexity_mask(Sequence("A" * 30, DNA), window=12)
        assert mask.all()

    def test_diverse_sequence_unmasked(self):
        seq = Sequence("ACGTACGTTGCAACGTGTCA", DNA)
        assert not low_complexity_mask(seq, window=12).any()

    def test_embedded_tract_masked_locally(self):
        text = "ACGTTGCAGTCA" + "A" * 20 + "TGCATCAGTGCA"
        mask = low_complexity_mask(Sequence(text, DNA), window=12)
        assert mask[12:32].all()  # the poly-A core
        assert not mask[:4].any() and not mask[-4:].any()

    def test_short_sequence_single_block(self):
        assert low_complexity_mask(Sequence("AAAA", DNA), window=12).all()
        assert not low_complexity_mask(Sequence("ACGT", DNA), window=12).any()

    def test_empty(self):
        assert low_complexity_mask(Sequence("", DNA)).size == 0


class TestMasking:
    def test_masked_residues_become_wildcard(self):
        seq = Sequence("ACGTTGCAGTCA" + "Q" * 20 + "ACGTTGCAGTCA", PROTEIN)
        masked = mask_low_complexity(seq, window=12, threshold=1.5)
        assert "X" * 10 in masked.text
        assert masked.text.startswith("ACGT")

    def test_no_wildcard_alphabet_rejected(self):
        from repro.sequences import Alphabet

        bare = Alphabet("bare", "AB")
        with pytest.raises(ValueError, match="wildcard"):
            mask_low_complexity(Sequence("ABAB", bare))

    def test_masking_suppresses_spurious_repeats(self):
        """The practical point: a poly-A tract stops dominating the scan."""
        from repro import find_repeats

        seq = Sequence("ACGTTGCAGTCA" + "A" * 24 + "TCGATCAGTGCA", DNA)
        raw = find_repeats(seq, top_alignments=1)
        masked = find_repeats(
            mask_low_complexity(seq, window=12, threshold=1.5), top_alignments=1
        )
        best_raw = raw.top_alignments[0].score if raw.top_alignments else 0
        best_masked = (
            masked.top_alignments[0].score if masked.top_alignments else 0
        )
        assert best_masked < best_raw
