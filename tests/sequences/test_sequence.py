"""Unit tests for repro.sequences.sequence."""

import numpy as np
import pytest

from repro.sequences import DNA, PROTEIN, Sequence


class TestConstruction:
    def test_from_text(self):
        seq = Sequence("ACGT", DNA)
        assert seq.text == "ACGT"
        assert len(seq) == 4

    def test_from_codes(self):
        seq = Sequence(np.array([0, 1, 2, 3], dtype=np.int8), DNA)
        assert seq.text == "ACGT"

    def test_alphabet_by_name(self):
        assert Sequence("ACGT", "dna").alphabet is DNA

    def test_default_alphabet_is_protein(self):
        assert Sequence("ACDEFGHIK").alphabet is PROTEIN

    def test_metadata(self):
        seq = Sequence("ACGT", DNA, id="seq1", description="a test")
        assert seq.id == "seq1"
        assert seq.description == "a test"

    def test_codes_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            Sequence(np.array([0, 99], dtype=np.int16), DNA)

    def test_codes_must_be_1d(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            Sequence(np.zeros((2, 2), dtype=np.int8), DNA)

    def test_codes_are_readonly(self):
        seq = Sequence("ACGT", DNA)
        with pytest.raises(ValueError):
            seq.codes[0] = 1

    def test_strict_flag_passthrough(self):
        seq = Sequence("ACZT", DNA, strict=False)
        assert seq.text == "ACNT"


class TestContainerProtocol:
    def test_indexing_returns_letter(self):
        assert Sequence("ACGT", DNA)[1] == "C"

    def test_slicing_returns_sequence(self):
        sub = Sequence("ACGTACGT", DNA, id="x")[2:6]
        assert isinstance(sub, Sequence)
        assert sub.text == "GTAC"
        assert sub.id == "x"

    def test_iteration(self):
        assert list(Sequence("ACG", DNA)) == ["A", "C", "G"]

    def test_equality_with_sequence(self):
        assert Sequence("ACGT", DNA) == Sequence("ACGT", DNA)
        assert Sequence("ACGT", DNA) != Sequence("ACGA", DNA)

    def test_equality_with_str(self):
        assert Sequence("ACGT", DNA) == "ACGT"

    def test_equality_across_alphabets(self):
        # Same letters, different alphabets: not equal.
        assert Sequence("ACG", DNA) != Sequence("ACG", "rna")

    def test_hashable(self):
        assert len({Sequence("ACGT", DNA), Sequence("ACGT", DNA)}) == 1

    def test_repr_short_and_long(self):
        assert "ACGT" in repr(Sequence("ACGT", DNA))
        long = Sequence("A" * 100, DNA)
        assert "..." in repr(long) and "len=100" in repr(long)


class TestSplitHelpers:
    def test_prefix_suffix_partition(self):
        seq = Sequence("ATGCATGCATGC", DNA)
        for r in range(1, len(seq)):
            assert seq.prefix(r).text + seq.suffix(r).text == seq.text
            assert len(seq.prefix(r)) == r

    def test_split_bounds(self):
        seq = Sequence("ACGT", DNA)
        with pytest.raises(ValueError):
            seq.prefix(0)
        with pytest.raises(ValueError):
            seq.suffix(4)

    def test_reversed(self):
        assert Sequence("ACGT", DNA).reversed().text == "TGCA"

    def test_reversed_roundtrip(self):
        seq = Sequence("ACGTTGCA", DNA)
        assert seq.reversed().reversed() == seq
