"""Tests for reverse complement and translation."""

import pytest

from repro.sequences import DNA, RNA, Sequence
from repro.sequences.translate import (
    GENETIC_CODE,
    reverse_complement,
    transcribe,
    translate,
)


class TestGeneticCode:
    def test_complete(self):
        assert len(GENETIC_CODE) == 64

    def test_stops(self):
        assert {c for c, aa in GENETIC_CODE.items() if aa == "*"} == {
            "TAA", "TAG", "TGA",
        }

    def test_start_codon(self):
        assert GENETIC_CODE["ATG"] == "M"


class TestReverseComplement:
    def test_dna(self):
        seq = Sequence("ATGC", DNA)
        assert reverse_complement(seq).text == "GCAT"

    def test_involution(self):
        seq = Sequence("ACGTTGCAN", DNA)
        assert reverse_complement(reverse_complement(seq)) == seq

    def test_rna(self):
        seq = Sequence("AUGC", RNA)
        assert reverse_complement(seq).text == "GCAU"

    def test_protein_rejected(self):
        with pytest.raises(ValueError):
            reverse_complement(Sequence("MKT"))


class TestTranscribe:
    def test_t_to_u(self):
        assert transcribe(Sequence("ATGT", DNA)).text == "AUGU"
        assert transcribe(Sequence("ATGT", DNA)).alphabet is RNA

    def test_rna_rejected(self):
        with pytest.raises(ValueError):
            transcribe(Sequence("AUG", RNA))


class TestTranslate:
    def test_simple_orf(self):
        seq = Sequence("ATGAAACAGTAA", DNA)  # M K Q *
        assert translate(seq).text == "MKQ*"

    def test_to_stop(self):
        seq = Sequence("ATGAAATAAAAA", DNA)
        assert translate(seq, to_stop=True).text == "MK"

    def test_frames(self):
        seq = Sequence("AATGAAA", DNA)
        assert translate(seq, frame=1).text == "MK"

    def test_partial_codon_ignored(self):
        assert translate(Sequence("ATGAA", DNA)).text == "M"

    def test_rna_input(self):
        assert translate(Sequence("AUGAAA", RNA)).text == "MK"

    def test_n_codon_is_x(self):
        assert translate(Sequence("ATGANA", DNA)).text == "MX"

    def test_invalid_frame(self):
        with pytest.raises(ValueError):
            translate(Sequence("ATG", DNA), frame=3)

    def test_protein_rejected(self):
        with pytest.raises(ValueError):
            translate(Sequence("MKT"))

    def test_cag_tract_becomes_polyq(self):
        """The Huntington connection: (CAG)n -> poly-Q."""
        seq = Sequence("CAG" * 10, DNA)
        assert translate(seq).text == "Q" * 10

    def test_translated_repeat_detectable_at_protein_level(self):
        """A codon-level tandem stays detectable after translation."""
        from repro import find_repeats

        dna = Sequence("ATGGAACGTAAACTG" * 4, DNA)  # 5-codon unit x4
        protein = translate(dna)
        assert protein.text == "MERKL" * 4
        result = find_repeats(protein, top_alignments=3)
        assert result.repeats
        assert result.repeats[0].n_copies >= 3
