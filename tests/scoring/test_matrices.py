"""Unit tests for the published BLOSUM/PAM tables."""

import numpy as np
import pytest

from repro.scoring import blosum50, blosum62, pam120, pam250
from repro.sequences import PROTEIN

ALL = [blosum62, blosum50, pam250, pam120]


@pytest.mark.parametrize("factory", ALL)
class TestCommonProperties:
    def test_symmetric(self, factory):
        ex = factory()
        assert np.array_equal(ex.scores, ex.scores.T)

    def test_covers_protein_alphabet(self, factory):
        assert factory().size == PROTEIN.size

    def test_integral(self, factory):
        factory().as_integers()  # must not raise

    def test_identity_beats_substitution(self, factory):
        """Diagonal dominance for the 20 standard residues.

        Weak inequality: in real PAM250, N-N ties with N-D at 2.
        """
        ex = factory()
        for aa in "ARNDCQEGHILKMFPSTWYV":
            i = PROTEIN.code_of(aa)
            row = np.delete(ex.scores[i, :20], i if i < 20 else None)
            assert ex.scores[i, i] >= row.max(), aa

    def test_cached_singleton(self, factory):
        assert factory() is factory()


class TestBlosum62SpotValues:
    """Well-known BLOSUM62 entries (NCBI table)."""

    @pytest.mark.parametrize(
        "a,b,value",
        [
            ("A", "A", 4), ("W", "W", 11), ("C", "C", 9), ("L", "I", 2),
            ("K", "R", 2), ("W", "G", -2), ("P", "F", -4), ("E", "D", 2),
            ("S", "T", 1), ("Y", "F", 3),
        ],
    )
    def test_entry(self, a, b, value):
        assert blosum62().score(a, b) == value

    def test_stop_column(self):
        assert blosum62().score("*", "*") == 1
        assert blosum62().score("*", "A") == -4


class TestPam250SpotValues:
    @pytest.mark.parametrize(
        "a,b,value",
        [("A", "A", 2), ("W", "W", 17), ("C", "C", 12), ("W", "C", -8), ("F", "Y", 7)],
    )
    def test_entry(self, a, b, value):
        assert pam250().score(a, b) == value


class TestRelativeStringency:
    def test_pam120_harsher_than_pam250_on_w_mismatches(self):
        assert pam120().score("W", "A") < pam250().score("W", "A")

    def test_blosum50_softer_diagonal_scaling(self):
        # BLOSUM50 is in 1/3-bit units: diagonals are generally larger.
        assert blosum50().score("A", "A") > blosum62().score("A", "A")
