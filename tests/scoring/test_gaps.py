"""Unit tests for repro.scoring.gaps."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.scoring import GapPenalties


class TestGapPenalties:
    def test_paper_example_cost(self):
        """§2.1: gap of length 1 costs open 2 + 1*extend 1 = 3."""
        assert GapPenalties(2, 1).cost(1) == 3.0

    def test_cost_zero_length(self):
        assert GapPenalties(2, 1).cost(0) == 0.0

    def test_cost_linear_in_length(self):
        gp = GapPenalties(5, 2)
        assert gp.cost(4) == 5 + 8

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            GapPenalties(2, 1).cost(-1)

    def test_negative_penalties_rejected(self):
        with pytest.raises(ValueError):
            GapPenalties(-1, 1)
        with pytest.raises(ValueError):
            GapPenalties(1, -1)

    def test_cost_vector(self):
        vec = GapPenalties(2, 1).cost_vector(3)
        assert np.array_equal(vec, [0, 3, 4, 5])

    def test_cost_vector_negative_rejected(self):
        with pytest.raises(ValueError):
            GapPenalties(2, 1).cost_vector(-1)

    def test_as_integers(self):
        assert GapPenalties(8, 1).as_integers() == (8, 1)

    def test_as_integers_rejects_fractional(self):
        with pytest.raises(ValueError, match="not integral"):
            GapPenalties(2.5, 1).as_integers()

    def test_frozen(self):
        with pytest.raises(AttributeError):
            GapPenalties(2, 1).open_ = 3

    @given(st.integers(0, 50), st.integers(0, 20), st.integers(0, 100))
    def test_cost_matches_vector(self, open_, ext, g):
        gp = GapPenalties(open_, ext)
        assert gp.cost(g) == gp.cost_vector(max(g, 1))[g] if g > 0 else gp.cost(0) == 0
