"""Unit tests for repro.scoring.exchange."""

import numpy as np
import pytest

from repro.scoring import ExchangeMatrix, from_triangle_text, match_mismatch
from repro.sequences import DNA, PROTEIN, Alphabet


class TestMatchMismatch:
    def test_paper_values(self):
        """§2.1: 'two points for matching elements... one point for different'."""
        ex = match_mismatch(DNA, 2.0, -1.0)
        assert ex.score("A", "A") == 2.0
        assert ex.score("A", "C") == -1.0

    def test_wildcard_neutral_by_default(self):
        ex = match_mismatch(DNA, 2.0, -1.0)
        assert ex.score("N", "A") == 0.0
        assert ex.score("N", "N") == 0.0

    def test_wildcard_score_disabled(self):
        ex = match_mismatch(DNA, 2.0, -1.0, wildcard_score=None)
        assert ex.score("N", "N") == 2.0

    def test_symmetry(self):
        ex = match_mismatch(PROTEIN, 3.0, -2.0)
        assert np.allclose(ex.scores, ex.scores.T)

    def test_name_default(self):
        assert match_mismatch(DNA, 2, -1).name == "simple+2/-1"


class TestExchangeMatrix:
    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            ExchangeMatrix("bad", DNA, np.zeros((4, 5)))

    def test_rejects_size_mismatch(self):
        with pytest.raises(ValueError, match="does not match alphabet"):
            ExchangeMatrix("bad", DNA, np.zeros((3, 3)))

    def test_rejects_asymmetric(self):
        scores = np.zeros((5, 5))
        scores[0, 1] = 1.0
        with pytest.raises(ValueError, match="symmetric"):
            ExchangeMatrix("bad", DNA, scores)

    def test_scores_readonly(self):
        ex = match_mismatch(DNA, 2, -1)
        with pytest.raises(ValueError):
            ex.scores[0, 0] = 5

    def test_lookup_vectorised(self):
        ex = match_mismatch(DNA, 2, -1)
        a = DNA.encode("AAC")
        b = DNA.encode("ACC")
        assert np.array_equal(ex.lookup(a, b), [2, -1, 2])

    def test_row(self):
        ex = match_mismatch(DNA, 2, -1)
        row = ex.row(DNA.code_of("A"))
        assert row[DNA.code_of("A")] == 2
        assert row[DNA.code_of("G")] == -1

    def test_as_integers(self):
        ints = match_mismatch(DNA, 2, -1).as_integers()
        assert ints.dtype == np.int32
        assert ints[0, 0] == 2

    def test_as_integers_rejects_fractional(self):
        with pytest.raises(ValueError, match="not integral"):
            match_mismatch(DNA, 2.5, -1).as_integers()

    def test_max_score(self):
        assert match_mismatch(DNA, 7, -1).max_score == 7.0


class TestFromTriangleText:
    def test_small_triangle(self):
        ab = Alphabet("ab", "AB")
        ex = from_triangle_text("tiny", ab, "AB", "2\n-1 3")
        assert ex.score("A", "A") == 2
        assert ex.score("A", "B") == ex.score("B", "A") == -1
        assert ex.score("B", "B") == 3

    def test_row_count_mismatch(self):
        ab = Alphabet("ab", "AB")
        with pytest.raises(ValueError, match="rows"):
            from_triangle_text("bad", ab, "AB", "2")

    def test_row_length_mismatch(self):
        ab = Alphabet("ab", "AB")
        with pytest.raises(ValueError, match="entries"):
            from_triangle_text("bad", ab, "AB", "2\n-1 3 4")

    def test_missing_residues_score_zero(self):
        abc = Alphabet("abc", "ABC")
        ex = from_triangle_text("partial", abc, "AB", "2\n-1 3")
        assert ex.score("C", "A") == 0.0
