"""The client's 429 retry loop, against a stub shedding server."""

import json
import random
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.service import ClientBacklogFull, ServiceClient, ServiceError


class _SheddingHandler(BaseHTTPRequestHandler):
    """Replies 429 (with Retry-After) until ``shed_count`` runs out."""

    def do_POST(self):  # noqa: N802 - BaseHTTPRequestHandler casing
        state = self.server.state
        state["hits"] += 1
        length = int(self.headers.get("Content-Length", 0))
        self.rfile.read(length)
        if state["hits"] <= state["shed_count"]:
            body = json.dumps({"error": "backlog full"}).encode()
            self.send_response(state.get("code", 429))
            self.send_header("Retry-After", str(state["retry_after"]))
        else:
            body = json.dumps({"id": "j1", "state": "queued"}).encode()
            self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):  # quiet
        pass


@pytest.fixture()
def shedding_server():
    httpd = ThreadingHTTPServer(("127.0.0.1", 0), _SheddingHandler)
    httpd.state = {"hits": 0, "shed_count": 0, "retry_after": 1}
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        yield httpd, f"http://127.0.0.1:{httpd.server_address[1]}"
    finally:
        httpd.shutdown()
        httpd.server_close()
        thread.join(5)


def _client(url, **kwargs):
    kwargs.setdefault("rng", random.Random(7))
    kwargs.setdefault("sleep", lambda _s: None)
    return ServiceClient(url, timeout=10, **kwargs)


def test_submit_retries_through_shedding(shedding_server):
    httpd, url = shedding_server
    httpd.state.update(shed_count=2)
    sleeps = []
    client = _client(url, submit_attempts=4, sleep=sleeps.append)
    record = client.submit({"sequence": "ACDC"})
    assert record["id"] == "j1"
    assert httpd.state["hits"] == 3  # two sheds + the success
    assert len(sleeps) == 2


def test_retry_after_is_the_delay_floor(shedding_server):
    httpd, url = shedding_server
    httpd.state.update(shed_count=1, retry_after=5)
    sleeps = []
    # Tiny backoff curve: the server's Retry-After must win.
    client = _client(url, backoff_base=0.01, backoff_cap=0.01, sleep=sleeps.append)
    client.submit({"sequence": "ACDC"})
    assert sleeps == [5.0]


def test_jittered_exponential_when_retry_after_is_small(shedding_server):
    httpd, url = shedding_server
    httpd.state.update(shed_count=3, retry_after=0)
    sleeps = []
    client = _client(
        url,
        submit_attempts=4,
        backoff_base=1.0,
        backoff_cap=16.0,
        rng=random.Random(0),
        sleep=sleeps.append,
    )
    client.submit({"sequence": "ACDC"})
    assert len(sleeps) == 3
    for attempt, delay in enumerate(sleeps):
        ceiling = 1.0 * 2**attempt
        assert 0.5 * ceiling <= delay <= ceiling  # jitter in [ceil/2, ceil]


def test_attempts_are_bounded(shedding_server):
    httpd, url = shedding_server
    httpd.state.update(shed_count=100)
    client = _client(url, submit_attempts=3)
    with pytest.raises(ClientBacklogFull) as excinfo:
        client.submit({"sequence": "ACDC"})
    assert excinfo.value.retry_after == 1
    assert httpd.state["hits"] == 3  # bounded: no infinite hammering


def test_non_429_errors_fail_fast(shedding_server):
    httpd, url = shedding_server
    httpd.state.update(shed_count=100, code=400)
    client = _client(url, submit_attempts=5)
    with pytest.raises(ServiceError) as excinfo:
        client.submit({"sequence": "ACDC"})
    assert excinfo.value.code == 400
    assert httpd.state["hits"] == 1  # no retry: it is not load shedding


def test_single_attempt_means_no_retry(shedding_server):
    httpd, url = shedding_server
    httpd.state.update(shed_count=1)
    client = _client(url, submit_attempts=1)
    with pytest.raises(ClientBacklogFull):
        client.submit({"sequence": "ACDC"})
    assert httpd.state["hits"] == 1


def test_submit_attempts_validated():
    with pytest.raises(ValueError):
        ServiceClient(submit_attempts=0)
