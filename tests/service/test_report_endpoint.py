"""``GET /jobs/<id>/report`` — annotation artifacts from the result cache.

The contract the CI smoke drill also exercises: the owning tenant gets
all three formats with a ``200``; a *different* tenant gets ``403`` —
not the 404 that ``GET /jobs/<id>`` uses to hide foreign job ids —
because a report request names a job the caller evidently knows about,
and the useful signal is "exists, not yours".  Rendering never re-runs
alignment: everything comes from the cached payload plus the stored
spec's residue text.
"""

import json
import threading
import urllib.error
import urllib.request
from http.server import ThreadingHTTPServer

import pytest

from repro.annot import validate_gff3
from repro.service.server import (
    ReproService,
    ServiceConfig,
    _Handler,
    _ServerState,
)
from repro.service.workers import execute_job

TENANTS = {
    "tenants": {
        "owner": {"api_key": "owner-key"},
        "stranger": {"api_key": "stranger-key"},
    }
}

REPETITIVE = "MKTAYIAKQR" * 5


@pytest.fixture()
def service(tmp_path):
    """A tenant-mode server on an ephemeral port, no worker pool."""
    tenants_file = tmp_path / "tenants.json"
    tenants_file.write_text(json.dumps(TENANTS), encoding="utf-8")
    config = ServiceConfig(
        data_dir=str(tmp_path / "data"),
        port=0,
        workers=0,
        tenants_file=str(tenants_file),
    )
    svc = ReproService(config)
    httpd = ThreadingHTTPServer((config.host, 0), _Handler)
    httpd.daemon_threads = True
    httpd.state = _ServerState(service=svc)
    thread = threading.Thread(
        target=httpd.serve_forever, kwargs={"poll_interval": 0.02}, daemon=True
    )
    thread.start()
    base_url = f"http://127.0.0.1:{httpd.server_address[1]}"
    try:
        yield svc, base_url
    finally:
        httpd.shutdown()
        httpd.server_close()
        thread.join(5)


def _submit_and_run(svc, api_key="owner-key", sequence=REPETITIVE):
    admission = svc.admit(
        {"sequence": sequence, "seq_id": "rep", "top_alignments": 5},
        api_key=api_key,
    )
    job_id = admission.record.id
    if not admission.from_cache:
        svc.gateway.pump()
        claimed = svc.queue.claim()
        execute_job(svc.store, svc.cache, svc.store.get(claimed))
        svc.queue.discard(claimed)
    return job_id


def _get(base_url, path, api_key=None):
    request = urllib.request.Request(f"{base_url}{path}")
    if api_key:
        request.add_header("Authorization", f"Bearer {api_key}")
    with urllib.request.urlopen(request, timeout=10) as response:
        return (
            response.status,
            response.headers.get("Content-Type"),
            response.read().decode("utf-8"),
        )


def _get_error(base_url, path, api_key=None):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(base_url, path, api_key)
    return excinfo.value.code


class TestFormats:
    def test_gff3_report(self, service):
        svc, base_url = service
        job_id = _submit_and_run(svc)
        status, content_type, body = _get(
            base_url, f"/jobs/{job_id}/report?format=gff3", "owner-key"
        )
        assert status == 200
        assert content_type.startswith("text/plain")
        assert validate_gff3(body) == []
        assert "repeat_region" in body

    def test_json_report_is_default_consistent_profile(self, service):
        svc, base_url = service
        job_id = _submit_and_run(svc)
        status, content_type, body = _get(
            base_url, f"/jobs/{job_id}/report?format=json", "owner-key"
        )
        assert status == 200
        assert content_type == "application/json"
        payload = json.loads(body)
        assert payload["format"] == "repro-profile"
        assert payload["sequences"][0]["id"] == "rep"
        assert payload["total_copy_residues"] > 0

    def test_html_report_is_self_contained(self, service):
        svc, base_url = service
        job_id = _submit_and_run(svc)
        status, content_type, body = _get(
            base_url, f"/jobs/{job_id}/report?format=html", "owner-key"
        )
        assert status == 200
        assert content_type.startswith("text/html")
        assert body.startswith("<!DOCTYPE html>")
        assert "http" not in body

    def test_default_format_is_gff3(self, service):
        svc, base_url = service
        job_id = _submit_and_run(svc)
        _, content_type, body = _get(
            base_url, f"/jobs/{job_id}/report", "owner-key"
        )
        assert content_type.startswith("text/plain")
        assert body.splitlines()[0] == "##gff-version 3"

    def test_unknown_format_is_400(self, service):
        svc, base_url = service
        job_id = _submit_and_run(svc)
        code = _get_error(
            base_url, f"/jobs/{job_id}/report?format=pdf", "owner-key"
        )
        assert code == 400

    def test_rendered_without_rerunning_alignment(self, service):
        svc, _ = service
        job_id = _submit_and_run(svc)
        rendered = svc.report(job_id, "gff3", tenant="owner")
        assert rendered is not None
        # The cached payload is the only result source: dropping the
        # cache entry makes the report 404 instead of recomputing.
        record = svc.store.get(job_id)
        svc.cache.path_for(record.digest).unlink()
        svc.cache._mem.clear()
        assert svc.report(job_id, "gff3", tenant="owner") is None


class TestTenantScoping:
    def test_stranger_gets_403(self, service):
        svc, base_url = service
        job_id = _submit_and_run(svc)
        for fmt in ("gff3", "json", "html"):
            code = _get_error(
                base_url,
                f"/jobs/{job_id}/report?format={fmt}",
                "stranger-key",
            )
            assert code == 403

    def test_owner_of_shared_digest_is_allowed(self, service):
        svc, base_url = service
        job_id = _submit_and_run(svc, "owner-key")
        # The stranger submits the identical spec: same digest, own
        # grant — their *own* job id reports fine, and the grant also
        # opens the owner's job id (digest-level ownership).
        stranger_job = _submit_and_run(svc, "stranger-key")
        status, _, _ = _get(
            base_url, f"/jobs/{stranger_job}/report", "stranger-key"
        )
        assert status == 200
        status, _, _ = _get(
            base_url, f"/jobs/{job_id}/report", "stranger-key"
        )
        assert status == 200

    def test_missing_key_is_401(self, service):
        svc, base_url = service
        job_id = _submit_and_run(svc)
        assert _get_error(base_url, f"/jobs/{job_id}/report") == 401


class TestNotFound:
    def test_unknown_job_is_404(self, service):
        _, base_url = service
        assert _get_error(base_url, "/jobs/nope/report", "owner-key") == 404

    def test_unfinished_job_is_404(self, service):
        svc, base_url = service
        admission = svc.admit(
            {"sequence": REPETITIVE, "top_alignments": 5},
            api_key="owner-key",
        )
        code = _get_error(
            base_url, f"/jobs/{admission.record.id}/report", "owner-key"
        )
        assert code == 404
