"""The HTTP JSON API, driven through the real client over a socket."""

import threading
from http.server import ThreadingHTTPServer

import pytest

from repro.sequences import pseudo_titin
from repro.service import ClientBacklogFull, ServiceClient, ServiceError
from repro.service.server import ReproService, ServiceConfig, _Handler, _ServerState
from repro.service.workers import execute_job


@pytest.fixture()
def service(tmp_path):
    """A live server on an ephemeral port, with no worker pool.

    Jobs are executed inline via :func:`run_one`, which keeps every
    lifecycle transition deterministic for assertions.
    """
    config = ServiceConfig(
        data_dir=str(tmp_path / "data"), port=0, workers=0, queue_capacity=4
    )
    svc = ReproService(config)
    httpd = ThreadingHTTPServer((config.host, 0), _Handler)
    httpd.daemon_threads = True
    httpd.state = _ServerState(service=svc)
    thread = threading.Thread(
        target=httpd.serve_forever, kwargs={"poll_interval": 0.02}, daemon=True
    )
    thread.start()
    client = ServiceClient(f"http://127.0.0.1:{httpd.server_address[1]}", timeout=10)
    try:
        yield svc, client
    finally:
        httpd.shutdown()
        httpd.server_close()
        thread.join(5)


def run_one(svc):
    """Claim and execute the next queued job (an inline stand-in worker)."""
    job_id = svc.queue.claim()
    assert job_id is not None
    outcome = execute_job(svc.store, svc.cache, svc.store.get(job_id))
    svc.queue.discard(job_id)
    return job_id, outcome


def _spec(**overrides):
    payload = {"sequence": pseudo_titin(60, seed=2).text, "top_alignments": 3}
    payload.update(overrides)
    return payload


class TestBasics:
    def test_healthz(self, service):
        _, client = service
        assert client.healthz() == {"ok": True}

    def test_unknown_endpoint_404(self, service):
        _, client = service
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.code == 404

    def test_missing_job_404(self, service):
        _, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.status("deadbeef00000000")
        assert excinfo.value.code == 404


class TestSubmission:
    def test_submit_queues_job(self, service):
        svc, client = service
        record = client.submit(_spec())
        assert record["state"] == "queued"
        assert not record["from_cache"]
        assert len(record["digest"]) == 64
        assert client.status(record["id"])["state"] == "queued"
        assert client.stats()["queue"]["depth"] == 1

    def test_malformed_spec_400(self, service):
        _, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"sequence": "ACGT" * 5, "alphabet": "klingon"})
        assert excinfo.value.code == 400
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"top_alignments": 3})
        assert excinfo.value.code == 400

    def test_backpressure_429_with_retry_after(self, service):
        svc, client = service
        for seed in range(4):
            client.submit(_spec(sequence=pseudo_titin(60, seed=seed + 10).text))
        with pytest.raises(ClientBacklogFull) as excinfo:
            client.submit(_spec(sequence=pseudo_titin(60, seed=99).text))
        assert excinfo.value.retry_after >= 1
        # The rejected job left no orphan record behind.
        assert svc.store.states()["queued"] == 4

    def test_events_stream(self, service):
        svc, client = service
        record = client.submit(_spec())
        run_one(svc)
        events = list(client.events(record["id"]))
        names = [e["event"] for e in events]
        assert names[0] == "queued"
        assert "progress" in names
        assert names[-1] == "done"
        since = len(events) - 1
        assert [e["event"] for e in client.events(record["id"], since=since)] == ["done"]


class TestResultsAndCache:
    def test_result_by_digest_and_job_id(self, service):
        svc, client = service
        record = client.submit(_spec())
        run_one(svc)
        by_digest = client.result(record["digest"])
        by_job = client.result(record["id"])
        assert by_digest == by_job
        assert len(by_digest["top_alignments"]) == 3
        assert client.status(record["id"])["state"] == "done"

    def test_result_by_digest_prefix(self, service):
        """The truncated digest shown by ``repro submit`` is fetchable."""
        svc, client = service
        record = client.submit(_spec())
        run_one(svc)
        assert client.result(record["digest"][:16]) == client.result(record["digest"])

    def test_result_404_before_completion(self, service):
        _, client = service
        record = client.submit(_spec())
        with pytest.raises(ServiceError) as excinfo:
            client.result(record["digest"])
        assert excinfo.value.code == 404

    def test_duplicate_submission_is_born_done(self, service):
        svc, client = service
        first = client.submit(_spec())
        run_one(svc)
        duplicate = client.submit(_spec())
        assert duplicate["from_cache"]
        assert duplicate["state"] == "done"
        assert duplicate["served_from_cache"]
        assert duplicate["digest"] == first["digest"]
        assert duplicate["id"] != first["id"]
        # Born-done jobs never touch the queue.
        assert client.stats()["queue"]["depth"] == 0
        assert client.result(duplicate["id"]) == client.result(first["id"])

    def test_execution_knobs_share_one_cache_entry(self, service):
        svc, client = service
        client.submit(_spec())
        run_one(svc)
        grouped = client.submit(_spec(engine="lanes", group=8, priority=3))
        assert grouped["from_cache"]


class TestCancel:
    def test_cancel_queued_job_is_immediate(self, service):
        svc, client = service
        record = client.submit(_spec())
        cancelled = client.cancel(record["id"])
        assert cancelled["state"] == "cancelled"
        assert client.stats()["queue"]["depth"] == 0

    def test_cancel_terminal_job_is_noop(self, service):
        svc, client = service
        record = client.submit(_spec())
        client.cancel(record["id"])
        again = client.cancel(record["id"])
        assert again["state"] == "cancelled"

    def test_cancel_missing_job_404(self, service):
        _, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.cancel("deadbeef00000000")
        assert excinfo.value.code == 404


class TestFollowStreaming:
    def test_follow_tails_until_terminal(self, service):
        svc, client = service
        record = client.submit(_spec())

        def finish_later():
            import time

            time.sleep(0.3)
            run_one(svc)

        worker = threading.Thread(target=finish_later, daemon=True)
        worker.start()
        events = list(client.events(record["id"], follow=True))
        worker.join(10)
        names = [e["event"] for e in events]
        assert names[0] == "queued"
        assert names[-1] == "done"


class TestStats:
    def test_stats_shape(self, service):
        svc, client = service
        client.submit(_spec())
        run_one(svc)
        stats = client.stats()
        assert stats["jobs"]["done"] == 1
        assert stats["cache"]["disk_entries"] == 1
        assert stats["queue"]["capacity"] == 4
        assert "workers" in stats and "uptime" in stats
