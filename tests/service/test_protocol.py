"""Job specs and content addressing."""

import dataclasses
import json

import pytest

from repro.service import ALGORITHM_VERSION, JobSpec, SpecError, job_digest
from repro.service.protocol import result_to_dict


def _spec(**overrides):
    payload = {"sequence": "ACDEFGHIKLMNPQRSTVWY" * 3}
    payload.update(overrides)
    return JobSpec(**payload)


class TestSpecValidation:
    def test_minimal_spec(self):
        spec = _spec()
        assert spec.alphabet == "protein"
        assert spec.top_alignments == 20

    def test_rejects_empty_sequence(self):
        with pytest.raises(SpecError):
            JobSpec(sequence="")

    def test_rejects_bad_alphabet(self):
        with pytest.raises(SpecError):
            _spec(alphabet="klingon")

    def test_rejects_unencodable_residue(self):
        with pytest.raises(SpecError):
            JobSpec(sequence="ACGTU", alphabet="dna")

    def test_rejects_protein_matrix_on_dna(self):
        with pytest.raises(SpecError):
            JobSpec(sequence="ACGT" * 5, alphabet="dna", matrix="blosum62")

    def test_rejects_group_on_old_algorithm(self):
        with pytest.raises(SpecError):
            _spec(algorithm="old", group=4)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(SpecError, match="unknown"):
            JobSpec.from_dict({"sequence": "ACDE" * 10, "jitter": 3})

    def test_from_dict_requires_sequence(self):
        with pytest.raises(SpecError, match="sequence"):
            JobSpec.from_dict({"alphabet": "protein"})


class TestDigest:
    def test_stable_across_calls(self):
        assert job_digest(_spec()) == job_digest(_spec())
        assert len(job_digest(_spec())) == 64

    def test_case_insensitive_sequence(self):
        upper = _spec()
        lower = JobSpec(sequence=upper.sequence.lower())
        assert job_digest(upper) == job_digest(lower)

    def test_execution_knobs_do_not_fragment_cache(self):
        base = _spec()
        for knob in (
            {"engine": "lanes"},
            {"group": 8},
            {"priority": 5},
            {"seq_id": "other-name"},
        ):
            assert job_digest(_spec(**knob)) == job_digest(base), knob

    def test_result_affecting_knobs_change_digest(self):
        base = _spec()
        for knob in (
            {"top_alignments": 7},
            {"gap_open": 10.0},
            {"gap_extend": 2.0},
            {"matrix": "blosum50"},
            {"min_score": 5.0},
            {"max_gap": 3},
            {"min_score_fraction": 0.5},
            {"algorithm": "old"},
        ):
            assert job_digest(_spec(**knob)) != job_digest(base), knob

    def test_digest_includes_algorithm_version(self):
        assert _spec().digest_fields()["version"] == ALGORITHM_VERSION


class TestResultPayload:
    def test_round_trips_through_json(self):
        from repro.core import RepeatFinder
        from repro.sequences import pseudo_titin

        spec = JobSpec(sequence=pseudo_titin(60, seed=2).text, top_alignments=3)
        result = RepeatFinder(top_alignments=3).find(
            pseudo_titin(60, seed=2)
        )
        payload = result_to_dict(result, digest=job_digest(spec), spec=spec)
        # Every leaf must be a plain JSON type — no numpy scalars.
        assert json.loads(json.dumps(payload)) == payload
        assert payload["length"] == 60
        assert len(payload["top_alignments"]) == len(result.top_alignments)
        assert payload["stats"]["alignments"] == result.stats.alignments

    def test_spec_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            _spec().sequence = "MUTATED"
