"""The job executor: equivalence with the library, cache hits, failures."""

import pytest

from repro.sequences import Sequence, pseudo_titin
from repro.service import JobSpec, JobState, job_digest
from repro.service.protocol import result_to_dict
from repro.service.workers import (
    WorkerStats,
    build_finder,
    execute_job,
    open_stores,
    recover,
)


@pytest.fixture()
def stores(tmp_path):
    return open_stores(tmp_path / "data")


def _submit(store, queue, spec):
    record = store.new_job(spec.to_dict(), job_digest(spec), spec.priority)
    queue.submit(record.id, spec.priority)
    store.append_event(record.id, "queued")
    return record


def _titin_spec(**overrides):
    payload = {"sequence": pseudo_titin(60, seed=2).text, "top_alignments": 4}
    payload.update(overrides)
    return JobSpec(**payload)


class TestBuildFinder:
    def test_mirrors_spec_knobs(self):
        spec = _titin_spec(engine="lanes", group=8, min_score=3.0, matrix="pam250")
        finder = build_finder(spec)
        assert finder.engine == "lanes"
        assert finder.group == 8
        assert finder.min_score == 3.0
        assert finder.top_alignments == 4

    def test_simple_matrix_for_dna(self):
        spec = JobSpec(sequence="ATGCATGCATGC", alphabet="dna", matrix="simple")
        finder = build_finder(spec)
        result = finder.find(Sequence("ATGCATGCATGC", "dna"))
        assert result.top_alignments


class TestExecuteJob:
    def test_matches_direct_library_call(self, stores):
        store, queue, cache = stores
        spec = _titin_spec()
        record = _submit(store, queue, spec)
        assert execute_job(store, cache, record) == "done"

        refreshed = store.get(record.id)
        assert refreshed.state == JobState.DONE
        assert refreshed.found == 4
        payload = cache.get(record.digest)
        baseline = result_to_dict(
            build_finder(spec).find(
                Sequence(spec.normalized_sequence(), spec.alphabet)
            ),
            digest=record.digest,
            spec=spec,
        )
        assert payload["top_alignments"] == baseline["top_alignments"]
        assert payload["repeats"] == baseline["repeats"]

    def test_grouped_driver_same_results(self, stores):
        store, queue, cache = stores
        plain = _titin_spec()
        grouped = _titin_spec(engine="lanes", group=4)
        assert job_digest(plain) == job_digest(grouped)
        r1 = _submit(store, queue, plain)
        assert execute_job(store, cache, r1) == "done"
        first = cache.get(r1.digest)
        # Clear the cache so the grouped run actually aligns.
        cache.path_for(r1.digest).unlink()
        fresh_cache = type(cache)(cache.root)
        r2 = _submit(store, queue, grouped)
        assert execute_job(store, fresh_cache, r2) == "done"
        second = fresh_cache.get(r2.digest)
        assert second["top_alignments"] == first["top_alignments"]
        assert second["repeats"] == first["repeats"]

    def test_index_seeded_job_same_results(self, stores):
        store, queue, cache = stores
        plain = _titin_spec()
        seeded = _titin_spec(index=True)
        # index/index_k are execution knobs, not semantics: same digest.
        assert job_digest(plain) == job_digest(seeded)
        r1 = _submit(store, queue, plain)
        assert execute_job(store, cache, r1) == "done"
        first = cache.get(r1.digest)
        cache.path_for(r1.digest).unlink()
        fresh_cache = type(cache)(cache.root)
        r2 = _submit(store, queue, seeded)
        stats = WorkerStats()
        assert execute_job(store, fresh_cache, r2, stats=stats) == "done"
        second = fresh_cache.get(r2.digest)
        assert second["top_alignments"] == first["top_alignments"]
        assert second["repeats"] == first["repeats"]
        assert stats.index_seeded == 1

    def test_old_algorithm_runs_one_shot(self, stores):
        store, queue, cache = stores
        spec = JobSpec(
            sequence=pseudo_titin(40, seed=3).text,
            top_alignments=2,
            algorithm="old",
        )
        record = _submit(store, queue, spec)
        assert execute_job(store, cache, record) == "done"
        assert cache.get(record.digest)["stats"]["alignments"] > 0

    def test_duplicate_served_from_cache_with_zero_work(self, stores):
        store, queue, cache = stores
        spec = _titin_spec()
        first = _submit(store, queue, spec)
        stats = WorkerStats()
        execute_job(store, cache, first, stats=stats)
        aligned_once = stats.alignments
        assert aligned_once > 0

        duplicate = _submit(store, queue, spec)
        assert execute_job(store, cache, duplicate, stats=stats) == "done"
        refreshed = store.get(duplicate.id)
        assert refreshed.served_from_cache
        assert refreshed.state == JobState.DONE
        assert stats.cache_hits == 1
        assert stats.alignments == aligned_once  # no new alignment work
        events = [e["event"] for e in store.read_events(duplicate.id)]
        assert "cache-hit" in events

    def test_invalid_spec_fails_without_killing_caller(self, stores):
        store, queue, cache = stores
        record = store.new_job({"nonsense": True}, "ab" + "0" * 62, 0)
        stats = WorkerStats()
        assert execute_job(store, cache, record, stats=stats) == "failed"
        refreshed = store.get(record.id)
        assert refreshed.state == JobState.FAILED
        assert refreshed.error

    def test_runtime_error_marks_failed(self, stores, monkeypatch):
        store, queue, cache = stores
        import repro.service.workers as workers_mod

        def boom(_spec):
            raise RuntimeError("engine exploded")

        monkeypatch.setattr(workers_mod, "build_finder", boom)
        record = _submit(store, queue, _titin_spec())
        stats = WorkerStats()
        assert execute_job(store, cache, record, stats=stats) == "failed"
        refreshed = store.get(record.id)
        assert refreshed.state == JobState.FAILED
        assert "engine exploded" in refreshed.error
        assert stats.jobs_failed == 1
        assert cache.get(record.digest) is None

    def test_pre_claim_cancel(self, stores):
        store, queue, cache = stores
        record = _submit(store, queue, _titin_spec())
        store.request_cancel(record.id)
        assert execute_job(store, cache, record) == "cancelled"
        assert store.get(record.id).state == JobState.CANCELLED
        assert not store.cancel_requested(record.id)  # flag cleared


class TestProgressEvents:
    def test_chunked_run_emits_checkpointed_progress(self, stores):
        store, queue, cache = stores
        record = _submit(store, queue, _titin_spec())
        execute_job(store, cache, record, checkpoint_every=1)
        events = store.read_events(record.id)
        progress = [e for e in events if e["event"] == "progress"]
        assert progress and all(e["checkpointed"] for e in progress)
        assert progress[-1]["found"] == 4
        assert events[-1]["event"] == "done"

    def test_checkpoint_cleared_after_done(self, stores):
        store, queue, cache = stores
        record = _submit(store, queue, _titin_spec())
        execute_job(store, cache, record, checkpoint_every=1)
        assert not store.checkpoint_path(record.id).exists()


class TestRecover:
    def test_flips_running_records_back_to_queued(self, stores):
        store, queue, cache = stores
        record = _submit(store, queue, _titin_spec())
        claimed = queue.claim()
        assert claimed == record.id
        store.update(record.id, state=JobState.RUNNING, worker="worker-0")
        # Simulated worker death: marker stranded in claimed/.
        assert recover(store, queue) == [record.id]
        refreshed = store.get(record.id)
        assert refreshed.state == JobState.QUEUED
        assert refreshed.worker == ""
        events = [e for e in store.read_events(record.id) if e["event"] == "requeued"]
        assert events and events[-1]["reason"] == "worker lost"
        assert queue.claim() == record.id  # claimable again
