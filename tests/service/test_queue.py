"""The disk-spool job queue: ordering, backpressure, claims, recovery."""

import pytest

from repro.service import BacklogFull, SpoolQueue


@pytest.fixture()
def queue(tmp_path):
    return SpoolQueue(tmp_path / "spool", capacity=4)


class TestOrdering:
    def test_fifo_within_one_priority(self, queue):
        for job in ("alpha", "beta", "gamma"):
            queue.submit(job)
        assert [queue.claim() for _ in range(3)] == ["alpha", "beta", "gamma"]

    def test_higher_priority_first(self, queue):
        queue.submit("low", priority=0)
        queue.submit("high", priority=10)
        queue.submit("mid", priority=5)
        assert [queue.claim() for _ in range(3)] == ["high", "mid", "low"]

    def test_negative_priority_sorts_last(self, queue):
        queue.submit("background", priority=-5)
        queue.submit("normal", priority=0)
        assert queue.claim() == "normal"

    def test_claim_empty_returns_none(self, queue):
        assert queue.claim() is None


class TestBackpressure:
    def test_submit_raises_at_capacity(self, queue):
        for i in range(4):
            queue.submit(f"job{i}")
        with pytest.raises(BacklogFull) as excinfo:
            queue.submit("overflow")
        err = excinfo.value
        assert err.depth == 4
        assert err.capacity == 4
        assert err.retry_after >= 1

    def test_claimed_jobs_count_against_capacity(self, queue):
        for i in range(4):
            queue.submit(f"job{i}")
        queue.claim()
        assert queue.depth() == 3
        assert queue.in_flight() == 1
        with pytest.raises(BacklogFull):
            queue.submit("overflow")

    def test_zero_capacity_is_unbounded(self, tmp_path):
        queue = SpoolQueue(tmp_path / "s", capacity=0)
        for i in range(100):
            queue.submit(f"job{i}")
        assert queue.depth() == 100

    def test_terminal_discard_frees_a_slot(self, queue):
        for i in range(4):
            queue.submit(f"job{i}")
        queue.claim()
        queue.discard("job0")
        queue.submit("replacement")  # must not raise


class TestClaims:
    def test_claim_moves_marker(self, queue):
        queue.submit("job")
        assert queue.claim() == "job"
        assert queue.depth() == 0
        assert queue.in_flight() == 1

    def test_each_marker_claimed_exactly_once(self, queue):
        queue.submit("solo")
        assert queue.claim() == "solo"
        assert queue.claim() is None

    def test_release_requeues(self, queue):
        queue.submit("job")
        queue.claim()
        assert queue.release("job")
        assert queue.depth() == 1
        assert queue.claim() == "job"  # claimable again

    def test_release_preserves_priority_position(self, queue):
        queue.submit("urgent", priority=9)
        queue.submit("routine", priority=0)
        assert queue.claim() == "urgent"
        queue.release("urgent")
        assert queue.claim() == "urgent"  # still ahead of routine

    def test_discard_from_either_side(self, queue):
        queue.submit("queued-side")
        queue.submit("claimed-side")
        queue.claim()  # claims queued-side (FIFO)
        assert queue.discard("claimed-side")
        assert queue.discard("queued-side")
        assert not queue.discard("queued-side")
        assert queue.depth() == 0 and queue.in_flight() == 0


class TestRecovery:
    def test_recover_requeues_stranded_claims(self, queue):
        queue.submit("a")
        queue.submit("b")
        queue.claim()
        queue.claim()
        assert sorted(queue.recover()) == ["a", "b"]
        assert queue.depth() == 2
        assert queue.in_flight() == 0

    def test_recover_empty_is_noop(self, queue):
        assert queue.recover() == []

    def test_state_survives_reopen(self, tmp_path):
        first = SpoolQueue(tmp_path / "s", capacity=4)
        first.submit("persisted", priority=3)
        reopened = SpoolQueue(tmp_path / "s", capacity=4)
        assert reopened.depth() == 1
        assert reopened.claim() == "persisted"
