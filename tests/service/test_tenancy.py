"""Multi-tenant gateway behavior over a live socket.

Covers the admission contract end to end: API-key auth (401/403),
quota shedding (429 + Retry-After), tenant-scoped reads, idempotent
replay — including concurrent duplicate POSTs — and fair-share
dispatch overtaking a saturating tenant's backlog.
"""

import json
import threading
import urllib.request
from http.server import ThreadingHTTPServer

import pytest

from repro.sequences import pseudo_titin
from repro.service import (
    ClientBacklogFull,
    ServiceAuthError,
    ServiceClient,
    ServiceError,
)
from repro.service.server import ReproService, ServiceConfig, _Handler, _ServerState
from repro.service.workers import execute_job

TENANTS = {
    "tenants": {
        # Saturating bulk tenant: low weight, no quotas.
        "heavy": {"api_key": "heavy-key", "weight": 1},
        # Interactive tenant: high fair-share weight.
        "light": {"api_key": "light-key", "weight": 4},
        # One request per ~100 s: the second POST always sheds.
        "capped": {"api_key": "capped-key", "rate": 0.01},
        # One admitted-but-not-terminal job at a time.
        "boxed": {"api_key": "boxed-key", "max_in_flight": 1},
        "locked": {"api_key": "locked-key", "enabled": False},
    }
}


@pytest.fixture()
def service(tmp_path):
    """A tenant-mode server on an ephemeral port, no worker pool."""
    tenants_file = tmp_path / "tenants.json"
    tenants_file.write_text(json.dumps(TENANTS), encoding="utf-8")
    config = ServiceConfig(
        data_dir=str(tmp_path / "data"),
        port=0,
        workers=0,
        queue_capacity=16,
        tenants_file=str(tenants_file),
        dispatch_window=1,
    )
    svc = ReproService(config)
    httpd = ThreadingHTTPServer((config.host, 0), _Handler)
    httpd.daemon_threads = True
    httpd.state = _ServerState(service=svc)
    thread = threading.Thread(
        target=httpd.serve_forever, kwargs={"poll_interval": 0.02}, daemon=True
    )
    thread.start()
    base_url = f"http://127.0.0.1:{httpd.server_address[1]}"
    try:
        yield svc, base_url
    finally:
        httpd.shutdown()
        httpd.server_close()
        thread.join(5)


def client_for(base_url, key, **kwargs):
    kwargs.setdefault("submit_attempts", 1)  # surface 429s, don't retry
    return ServiceClient(base_url, timeout=10, api_key=key, **kwargs)


def run_one(svc):
    """Execute the next spooled job inline (pump first: lanes → spool)."""
    svc.gateway.reap()
    svc.gateway.pump()
    job_id = svc.queue.claim()
    assert job_id is not None
    execute_job(svc.store, svc.cache, svc.store.get(job_id))
    svc.queue.discard(job_id)
    return job_id


def _spec(seed=2, **overrides):
    payload = {"sequence": pseudo_titin(60, seed=seed).text, "top_alignments": 3}
    payload.update(overrides)
    return payload


class TestAuth:
    def test_missing_key_is_401(self, service):
        _, base_url = service
        with pytest.raises(ServiceAuthError) as excinfo:
            client_for(base_url, None).submit(_spec())
        assert excinfo.value.code == 401

    def test_unknown_key_is_401(self, service):
        _, base_url = service
        with pytest.raises(ServiceAuthError) as excinfo:
            client_for(base_url, "nope").submit(_spec())
        assert excinfo.value.code == 401

    def test_disabled_tenant_is_403(self, service):
        _, base_url = service
        with pytest.raises(ServiceAuthError) as excinfo:
            client_for(base_url, "locked-key").submit(_spec())
        assert excinfo.value.code == 403

    def test_reads_need_a_key_too(self, service):
        _, base_url = service
        anonymous = client_for(base_url, None)
        with pytest.raises(ServiceAuthError):
            anonymous.status("deadbeef00000000")
        with pytest.raises(ServiceAuthError):
            anonymous.result("deadbeef00000000")

    def test_operator_endpoints_stay_open(self, service):
        _, base_url = service
        anonymous = client_for(base_url, None)
        assert anonymous.healthz() == {"ok": True}
        assert "gateway" in anonymous.stats()
        with urllib.request.urlopen(f"{base_url}/metrics", timeout=10) as resp:
            assert resp.status == 200

    def test_x_api_key_header_works(self, service):
        _, base_url = service
        request = urllib.request.Request(
            f"{base_url}/jobs/deadbeef00000000",
            headers={"X-Api-Key": "heavy-key"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 404  # authenticated; job just missing


class TestQuotas:
    def test_rate_quota_sheds_with_retry_after(self, service):
        _, base_url = service
        capped = client_for(base_url, "capped-key")
        capped.submit(_spec(seed=11))
        with pytest.raises(ClientBacklogFull) as excinfo:
            capped.submit(_spec(seed=12))
        assert excinfo.value.retry_after >= 1

    def test_in_flight_quota_frees_on_completion(self, service):
        svc, base_url = service
        boxed = client_for(base_url, "boxed-key")
        boxed.submit(_spec(seed=21))
        with pytest.raises(ClientBacklogFull):
            boxed.submit(_spec(seed=22))
        run_one(svc)  # first job reaches a terminal state
        record = boxed.submit(_spec(seed=22))
        assert record["state"] == "queued"

    def test_rejections_show_up_in_metrics(self, service):
        _, base_url = service
        capped = client_for(base_url, "capped-key")
        capped.submit(_spec(seed=31))
        with pytest.raises(ClientBacklogFull):
            capped.submit(_spec(seed=32))
        with urllib.request.urlopen(f"{base_url}/metrics", timeout=10) as resp:
            text = resp.read().decode("utf-8")
        assert 'repro_gateway_rejections_total{reason="rate",tenant="capped"}' in text
        assert 'repro_gateway_admissions_total' in text


class TestScoping:
    def test_foreign_job_and_result_are_404(self, service):
        svc, base_url = service
        heavy = client_for(base_url, "heavy-key")
        light = client_for(base_url, "light-key")
        record = heavy.submit(_spec(seed=41))
        run_one(svc)
        assert heavy.status(record["id"])["state"] == "done"
        assert heavy.result(record["digest"])
        for probe in (record["id"], record["digest"]):
            with pytest.raises(ServiceError) as excinfo:
                light.result(probe)
            assert excinfo.value.code == 404
        with pytest.raises(ServiceError) as excinfo:
            light.status(record["id"])
        assert excinfo.value.code == 404
        with pytest.raises(ServiceError) as excinfo:
            list(light.events(record["id"]))
        assert excinfo.value.code == 404

    def test_foreign_cancel_is_404_and_harmless(self, service):
        svc, base_url = service
        heavy = client_for(base_url, "heavy-key")
        light = client_for(base_url, "light-key")
        record = heavy.submit(_spec(seed=42))
        with pytest.raises(ServiceError) as excinfo:
            light.cancel(record["id"])
        assert excinfo.value.code == 404
        assert heavy.status(record["id"])["state"] == "queued"

    def test_shared_digest_readable_after_own_admission(self, service):
        """A cache hit shared across tenants still requires each tenant
        to have submitted the work before the result is readable."""
        svc, base_url = service
        heavy = client_for(base_url, "heavy-key")
        light = client_for(base_url, "light-key")
        first = heavy.submit(_spec(seed=43))
        run_one(svc)
        with pytest.raises(ServiceError):  # no grant yet
            light.result(first["digest"])
        duplicate = light.submit(_spec(seed=43))
        assert duplicate["from_cache"]
        assert duplicate["digest"] == first["digest"]
        assert light.result(first["digest"]) == heavy.result(first["digest"])


class TestIdempotency:
    def test_replay_returns_original_job(self, service):
        svc, base_url = service
        heavy = client_for(base_url, "heavy-key")
        first = heavy.submit(_spec(seed=51), idempotency_key="batch-7")
        assert not first["replayed"]
        again = heavy.submit(_spec(seed=51), idempotency_key="batch-7")
        assert again["replayed"]
        assert again["id"] == first["id"]
        run_one(svc)
        done = heavy.submit(_spec(seed=51), idempotency_key="batch-7")
        assert done["id"] == first["id"]
        assert done["state"] == "done"

    def test_keys_scoped_per_tenant(self, service):
        _, base_url = service
        heavy = client_for(base_url, "heavy-key")
        light = client_for(base_url, "light-key")
        a = heavy.submit(_spec(seed=52), idempotency_key="shared-name")
        b = light.submit(_spec(seed=53), idempotency_key="shared-name")
        assert a["id"] != b["id"]
        assert not b["replayed"]

    def test_concurrent_duplicate_posts_admit_exactly_once(self, service):
        """The satellite-3 race: N threads POST the same idempotency key
        simultaneously; exactly one admission, everyone gets its id."""
        svc, base_url = service
        results = []
        errors = []
        barrier = threading.Barrier(6)

        def duplicate_post():
            client = client_for(base_url, "heavy-key")
            barrier.wait()
            try:
                results.append(
                    client.submit(_spec(seed=54), idempotency_key="race-1")
                )
            except Exception as exc:  # noqa: BLE001 - collected for assertion
                errors.append(exc)

        threads = [threading.Thread(target=duplicate_post) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert not errors
        assert len(results) == 6
        ids = {r["id"] for r in results}
        assert len(ids) == 1
        assert sum(1 for r in results if not r["replayed"]) == 1
        # Exactly one job record exists for the burst.
        assert svc.store.states()["queued"] == 1


class TestFairShare:
    def test_light_tenant_overtakes_heavy_backlog(self, service):
        """Six heavy jobs saturate the lane; a light job submitted last
        still runs within the first few grants (weight 4 vs 1)."""
        svc, base_url = service
        heavy = client_for(base_url, "heavy-key")
        light = client_for(base_url, "light-key")
        for seed in range(6):
            heavy.submit(_spec(seed=60 + seed))
        light_record = light.submit(_spec(seed=59))
        executed = []
        while len(executed) < 7:
            executed.append(run_one(svc))
        position = executed.index(light_record["id"])
        assert position <= 3, (
            f"light job ran {position + 1}th behind a 6-deep heavy backlog"
        )
        assert light.status(light_record["id"])["state"] == "done"

    def test_stats_exposes_lanes_and_tenants(self, service):
        _, base_url = service
        heavy = client_for(base_url, "heavy-key")
        for seed in range(3):
            heavy.submit(_spec(seed=70 + seed))
        stats = client_for(base_url, None).stats()
        gateway = stats["gateway"]
        assert gateway["mode"] == "tenants"
        assert gateway["lanes"]["heavy"]["depth"] >= 1  # window=1 holds the rest
        assert gateway["tenants"]["heavy"]["weight"] == 1
        assert "api_key" not in json.dumps(gateway)
