"""Checkpoint/resume: suspended and killed jobs finish bit-identically.

``stats`` counters legitimately differ between an interrupted and an
uninterrupted run (a resumed run only counts post-resume work), so the
bit-identical comparisons cover ``top_alignments`` and ``repeats``.
"""

import time

import pytest

from repro.sequences import Sequence, pseudo_titin
from repro.service import JobSpec, JobState, job_digest
from repro.service.protocol import result_to_dict
from repro.service.workers import (
    CHUNK_DELAY_ENV,
    WorkerPool,
    build_finder,
    execute_job,
    open_stores,
    recover,
)


def _spec(k=6, length=80, seed=5, **overrides):
    payload = {"sequence": pseudo_titin(length, seed=seed).text, "top_alignments": k}
    payload.update(overrides)
    return JobSpec(**payload)


def _submit(store, queue, spec):
    record = store.new_job(spec.to_dict(), job_digest(spec), spec.priority)
    queue.submit(record.id, spec.priority)
    return record


def _baseline_payload(spec, digest):
    result = build_finder(spec).find(
        Sequence(spec.normalized_sequence(), spec.alphabet)
    )
    return result_to_dict(result, digest=digest, spec=spec)


class TestSuspendResume:
    def _stop_after(self, chunks):
        calls = {"n": 0}

        def should_stop():
            calls["n"] += 1
            return calls["n"] > chunks

        return should_stop

    @pytest.mark.parametrize("knobs", [{}, {"engine": "lanes", "group": 4}])
    def test_resumed_run_is_bit_identical(self, tmp_path, knobs):
        store, queue, cache = open_stores(tmp_path / "data")
        spec = _spec(**knobs)
        record = _submit(store, queue, spec)

        outcome = execute_job(
            store, cache, record, should_stop=self._stop_after(2), checkpoint_every=1
        )
        assert outcome == "suspended"
        suspended = store.get(record.id)
        assert suspended.found == 2
        assert store.checkpoint_path(record.id).exists()
        assert cache.get(record.digest) is None  # nothing published yet

        # A fresh executor (fresh process in real life) picks it up.
        assert execute_job(store, cache, store.get(record.id)) == "done"
        events = [e["event"] for e in store.read_events(record.id)]
        assert "resumed" in events
        payload = cache.get(record.digest)
        baseline = _baseline_payload(spec, record.digest)
        assert payload["top_alignments"] == baseline["top_alignments"]
        assert payload["repeats"] == baseline["repeats"]

    def test_resume_repays_no_accepted_alignments(self, tmp_path):
        store, queue, cache = open_stores(tmp_path / "data")
        spec = _spec()
        record = _submit(store, queue, spec)
        execute_job(
            store, cache, record, should_stop=self._stop_after(3), checkpoint_every=1
        )
        execute_job(store, cache, store.get(record.id))
        resumed = next(
            e for e in store.read_events(record.id) if e["event"] == "resumed"
        )
        # Everything accepted before the suspension was restored, not recomputed.
        assert resumed["found"] == 3

    def test_mid_run_cancel_wins_over_resume(self, tmp_path):
        store, queue, cache = open_stores(tmp_path / "data")
        record = _submit(store, queue, _spec())
        execute_job(
            store, cache, record, should_stop=self._stop_after(1), checkpoint_every=1
        )
        store.request_cancel(record.id)
        assert execute_job(store, cache, store.get(record.id)) == "cancelled"
        assert store.get(record.id).state == JobState.CANCELLED
        assert not store.checkpoint_path(record.id).exists()

    def test_corrupt_checkpoint_restarts_cleanly(self, tmp_path):
        store, queue, cache = open_stores(tmp_path / "data")
        spec = _spec(k=3, length=60, seed=2)
        record = _submit(store, queue, spec)
        store.checkpoint_path(record.id).write_bytes(b"not an npz file")
        assert execute_job(store, cache, record) == "done"
        events = [e["event"] for e in store.read_events(record.id)]
        assert "checkpoint-invalid" in events
        payload = cache.get(record.digest)
        baseline = _baseline_payload(spec, record.digest)
        assert payload["top_alignments"] == baseline["top_alignments"]


class TestKilledWorker:
    def test_sigkilled_worker_loses_at_most_one_chunk(self, tmp_path, monkeypatch):
        # Slow each chunk down so the kill reliably lands mid-job.
        monkeypatch.setenv(CHUNK_DELAY_ENV, "0.3")
        data = tmp_path / "data"
        store, queue, cache = open_stores(data)
        spec = _spec(k=6)
        record = _submit(store, queue, spec)

        pool = WorkerPool(data, workers=1, poll_interval=0.02, checkpoint_every=1)
        pool.start()
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                progress = [
                    e
                    for e in store.read_events(record.id)
                    if e["event"] == "progress" and e.get("checkpointed")
                ]
                if len(progress) >= 2:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("worker never checkpointed two chunks")
            # SIGKILL: no drain, no requeue — the crash case.
            pool.processes[0].kill()
        finally:
            pool.stop(graceful=False, timeout=10)

        stranded = store.get(record.id)
        assert stranded.state == JobState.RUNNING  # record still says running
        assert queue.in_flight() == 1  # marker stranded in claimed/
        assert store.checkpoint_path(record.id).exists()

        # Next pool start requeues; an inline executor stands in for it.
        assert recover(store, queue) == [record.id]
        assert store.get(record.id).state == JobState.QUEUED
        assert queue.claim() == record.id
        monkeypatch.setenv(CHUNK_DELAY_ENV, "0")
        assert execute_job(store, cache, store.get(record.id)) == "done"

        events = [e["event"] for e in store.read_events(record.id)]
        assert "requeued" in events and "resumed" in events
        payload = cache.get(record.digest)
        baseline = _baseline_payload(spec, record.digest)
        assert payload["top_alignments"] == baseline["top_alignments"]
        assert payload["repeats"] == baseline["repeats"]

    def test_pool_restart_finishes_interrupted_job(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CHUNK_DELAY_ENV, "0.3")
        data = tmp_path / "data"
        store, queue, cache = open_stores(data)
        spec = _spec(k=5)
        record = _submit(store, queue, spec)

        first = WorkerPool(data, workers=1, poll_interval=0.02, checkpoint_every=1)
        first.start()
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if any(
                    e["event"] == "progress"
                    for e in store.read_events(record.id)
                ):
                    break
                time.sleep(0.05)
            first.processes[0].kill()
        finally:
            first.stop(graceful=False, timeout=10)

        monkeypatch.setenv(CHUNK_DELAY_ENV, "0")
        second = WorkerPool(data, workers=1, poll_interval=0.02, checkpoint_every=1)
        requeued = second.start()  # start() runs recovery itself
        try:
            assert requeued == [record.id]
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                refreshed = store.get(record.id)
                if refreshed.terminal:
                    break
                time.sleep(0.05)
            assert store.get(record.id).state == JobState.DONE
        finally:
            assert second.stop(graceful=True, timeout=15)

        payload = cache.get(record.digest)
        baseline = _baseline_payload(spec, record.digest)
        assert payload["top_alignments"] == baseline["top_alignments"]
        assert payload["repeats"] == baseline["repeats"]
