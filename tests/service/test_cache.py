"""Content-addressed result cache: disk layer, memory LRU, atomicity."""

import json

import pytest

from repro.service import ResultCache

D1 = "a1" + "0" * 62
D2 = "b2" + "0" * 62
D3 = "c3" + "0" * 62


@pytest.fixture()
def cache(tmp_path):
    return ResultCache(tmp_path / "cache", memory_items=2)


class TestDiskLayer:
    def test_put_get_round_trip(self, cache):
        payload = {"digest": D1, "top_alignments": [{"score": 4.0}]}
        path = cache.put(D1, payload)
        assert path.exists()
        assert cache.get(D1) == payload

    def test_sharded_layout(self, cache):
        cache.put(D1, {"x": 1})
        assert cache.path_for(D1).parent.name == D1[:2]
        assert cache.entries() == 1

    def test_miss_returns_none(self, cache):
        assert cache.get(D1) is None
        assert cache.stats()["misses"] == 1

    def test_rejects_non_hex_digest(self, cache):
        with pytest.raises(ValueError):
            cache.path_for("../../etc/passwd")
        with pytest.raises(ValueError):
            cache.path_for("zz" + "0" * 62)

    def test_corrupt_entry_reads_as_miss_and_is_dropped(self, cache):
        cache.put(D1, {"x": 1})
        path = cache.path_for(D1)
        path.write_text("{torn", encoding="utf-8")
        fresh = ResultCache(cache.root, memory_items=2)  # cold memory layer
        assert fresh.get(D1) is None
        assert not path.exists()

    def test_no_tmp_files_left_behind(self, cache, tmp_path):
        cache.put(D1, {"x": 1})
        assert not list((tmp_path / "cache").rglob("*.tmp"))

    def test_shared_between_instances(self, cache):
        cache.put(D1, {"x": 1})
        other = ResultCache(cache.root)
        assert other.get(D1) == {"x": 1}
        assert other.stats()["hits_disk"] == 1


class TestPrefixResolution:
    def test_unique_prefix_resolves(self, cache):
        cache.put(D1, {"x": 1})
        assert cache.resolve(D1[:16]) == D1
        assert cache.resolve(D1[:6]) == D1

    def test_full_digest_resolves_to_itself(self, cache):
        assert cache.resolve(D1) == D1

    def test_ambiguous_prefix_returns_none(self, cache):
        twin = D1[:16] + "f" * 48
        cache.put(D1, {"x": 1})
        cache.put(twin, {"x": 2})
        assert cache.resolve(D1[:16]) is None
        assert cache.resolve(D1[:17]) == D1

    def test_short_or_malformed_prefix_returns_none(self, cache):
        cache.put(D1, {"x": 1})
        assert cache.resolve(D1[:5]) is None
        assert cache.resolve("zzzzzz") is None
        assert cache.resolve("") is None

    def test_unknown_prefix_returns_none(self, cache):
        assert cache.resolve("abcdef123456") is None


class TestMemoryLRU:
    def test_memory_hit_after_disk_hit(self, cache):
        cache.put(D1, {"x": 1})
        fresh = ResultCache(cache.root, memory_items=2)
        fresh.get(D1)  # disk hit, now remembered
        fresh.get(D1)
        stats = fresh.stats()
        assert stats["hits_disk"] == 1
        assert stats["hits_memory"] == 1

    def test_lru_evicts_oldest(self, cache):
        for digest in (D1, D2, D3):
            cache.put(digest, {"d": digest})
        assert cache.stats()["memory_entries"] == 2
        # D1 was evicted; serving it again must fall back to disk.
        cache.get(D1)
        assert cache.stats()["hits_disk"] == 1

    def test_get_refreshes_recency(self, cache):
        cache.put(D1, {"d": D1})
        cache.put(D2, {"d": D2})
        cache.get(D1)  # D1 becomes most-recent; D2 is now eviction victim
        cache.put(D3, {"d": D3})
        stats_before = cache.stats()["hits_disk"]
        cache.get(D1)
        assert cache.stats()["hits_disk"] == stats_before  # still in memory

    def test_memory_disabled(self, tmp_path):
        cache = ResultCache(tmp_path / "c0", memory_items=0)
        cache.put(D1, {"x": 1})
        assert cache.stats()["memory_entries"] == 0
        assert cache.get(D1) == {"x": 1}  # disk still serves

    def test_contains(self, cache):
        assert D1 not in cache
        cache.put(D1, {"x": 1})
        assert D1 in cache


class TestPayloadFidelity:
    def test_bytes_on_disk_are_canonical_json(self, cache):
        payload = {"b": 2, "a": [1, 2.5]}
        cache.put(D1, payload)
        text = cache.path_for(D1).read_text(encoding="utf-8")
        assert text == json.dumps(payload, sort_keys=True, separators=(",", ":"))
