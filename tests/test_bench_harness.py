"""Tests for the benchmark harness itself (small parameters)."""

import pytest

from repro.bench import (
    BenchTable,
    bench_sequence,
    default_scoring,
    figure8_series,
    realignment_rows,
    table1_rows,
)


class TestBenchTable:
    def test_add_and_render(self):
        table = BenchTable("t", ["a", "b"])
        table.add(1, 2.5)
        table.add("x", 3.0)
        text = table.render()
        assert text.splitlines()[0] == "t"
        assert "2.5" in text and "x" in text

    def test_add_arity_checked(self):
        table = BenchTable("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add(1)

    def test_notes_rendered(self):
        table = BenchTable("t", ["a"])
        table.notes.append("hello")
        assert "note: hello" in table.render()


class TestWorkloads:
    def test_bench_sequence_deterministic(self):
        assert bench_sequence(100) == bench_sequence(100)

    def test_default_scoring(self):
        exchange, gaps = default_scoring()
        assert exchange.name == "blosum62"
        assert (gaps.open_, gaps.extend) == (8.0, 1.0)


class TestTable1:
    def test_rows_and_consistency(self):
        table = table1_rows(lengths=(60, 80), k=3)
        assert len(table.rows) == 2
        for length, t_old, t_new, speedup, old_n, new_n in table.rows:
            assert t_old > 0 and t_new > 0
            assert speedup == pytest.approx(t_old / t_new)
            assert new_n < old_n


class TestRealignmentRows:
    def test_percentages(self):
        table = realignment_rows(lengths=(80,), k=4)
        ((length, k, performed, naive, avoided),) = table.rows
        assert naive == 3 * 79
        assert avoided == pytest.approx(100.0 * (1 - performed / naive))


class TestFigure8Series:
    def test_structure(self):
        series = figure8_series(length=80, ks=(1, 2), processors=(2, 4))
        assert set(series) == {1, 2}
        for points in series.values():
            assert [p for p, _, _ in points] == [2, 4]
            for _, vs_conv, vs_sse in points:
                assert vs_conv > 0 and vs_sse > 0
                # Conventional baseline is ~6.9x slower than SSE.
                assert vs_conv > vs_sse
