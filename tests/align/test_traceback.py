"""Tests for traceback and alignment rendering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align import (
    AlignmentProblem,
    full_matrix,
    render_alignment,
    traceback,
)
from repro.scoring import GapPenalties, match_mismatch
from repro.sequences import DNA


def _trace_best(problem):
    matrix = full_matrix(problem)
    y, x = np.unravel_index(np.argmax(matrix), matrix.shape)
    return matrix, traceback(problem, matrix, int(y), int(x))


class TestPaperExample:
    def test_alignment_of_section_21(self, figure2_problem):
        """§2.1's worked optimum: TTACAGA over TTGC-GA, score 6."""
        _, path = _trace_best(figure2_problem)
        assert path.score == 6.0
        top, mid, bot = render_alignment(figure2_problem, path)
        assert top == "TTGC-GA"
        assert bot == "TTACAGA"
        assert mid == "|| | ||"

    def test_path_pairs_are_strictly_increasing(self, figure2_problem):
        _, path = _trace_best(figure2_problem)
        for a, b in zip(path.pairs, path.pairs[1:]):
            assert b.y > a.y and b.x > a.x

    def test_start_end_accessors(self, figure2_problem):
        _, path = _trace_best(figure2_problem)
        assert path.start == path.pairs[0]
        assert path.end == path.pairs[-1]
        assert len(path) == len(path.pairs)

    def test_local_alignment_skips_prefix(self, figure2_problem):
        """'the initial mismatching prefixes C and A are omitted'."""
        _, path = _trace_best(figure2_problem)
        assert path.start.y == 2 and path.start.x == 2


class TestTracebackMechanics:
    def test_rejects_nonpositive_cell(self, figure2_problem):
        matrix = full_matrix(figure2_problem)
        with pytest.raises(ValueError, match="non-positive"):
            traceback(figure2_problem, matrix, 1, 1)

    def test_perfect_match_has_no_gaps(self, dna_scoring):
        ex, gaps = dna_scoring
        p = AlignmentProblem.from_sequences("ACGT", "ACGT", ex, gaps)
        _, path = _trace_best(p)
        assert [(s.y, s.x) for s in path.pairs] == [(1, 1), (2, 2), (3, 3), (4, 4)]
        assert path.score == 8.0

    def test_horizontal_gap_recovered(self, dna_scoring):
        """AC-GT vs ACAGT: one horizontal gap of length 1."""
        ex, gaps = dna_scoring
        p = AlignmentProblem.from_sequences("ACGT", "ACAGT", ex, gaps)
        _, path = _trace_best(p)
        top, mid, bot = render_alignment(p, path)
        assert top == "AC-GT"
        assert bot == "ACAGT"
        # score: 4 matches * 2 - (open 2 + 1 * ext 1) = 5
        assert path.score == 5.0

    def test_vertical_gap_recovered(self, dna_scoring):
        ex, gaps = dna_scoring
        p = AlignmentProblem.from_sequences("ACAGT", "ACGT", ex, gaps)
        _, path = _trace_best(p)
        top, _, bot = render_alignment(p, path)
        assert top == "ACAGT"
        assert bot == "AC-GT"

    def test_score_consistency_with_pairs(self, dna_scoring):
        """Recomputing the score from pairs + gaps matches the matrix value."""
        ex, gaps = dna_scoring
        rng = np.random.default_rng(3)
        for _ in range(20):
            s1 = rng.integers(0, 4, 15).astype(np.int8)
            s2 = rng.integers(0, 4, 15).astype(np.int8)
            p = AlignmentProblem(s1, s2, ex, gaps)
            matrix = full_matrix(p)
            if matrix.max() <= 0:
                continue
            _, path = _trace_best(p)
            score = 0.0
            prev = None
            for step in path.pairs:
                score += ex.scores[s1[step.y - 1], s2[step.x - 1]]
                if prev is not None:
                    gy, gx = step.y - prev.y - 1, step.x - prev.x - 1
                    assert gy == 0 or gx == 0
                    if gy + gx:
                        score -= gaps.cost(gy + gx)
                prev = step
            assert score == path.score


@settings(max_examples=40, deadline=None)
@given(
    data=st.data(),
    open_=st.integers(0, 5),
    ext=st.integers(0, 3),
    match=st.integers(1, 6),
    mismatch=st.integers(-4, 0),
)
def test_traceback_total_property(data, open_, ext, match, mismatch):
    """Property: every traced path's arithmetic reproduces its cell score."""
    ex = match_mismatch(DNA, float(match), float(mismatch), wildcard_score=None)
    gaps = GapPenalties(float(open_), float(ext))
    s1 = np.array(data.draw(st.lists(st.integers(0, 4), min_size=2, max_size=18)), dtype=np.int8)
    s2 = np.array(data.draw(st.lists(st.integers(0, 4), min_size=2, max_size=18)), dtype=np.int8)
    p = AlignmentProblem(s1, s2, ex, gaps)
    matrix = full_matrix(p)
    if matrix.max() <= 0:
        return
    y, x = np.unravel_index(np.argmax(matrix), matrix.shape)
    path = traceback(p, matrix, int(y), int(x))
    total = 0.0
    prev = None
    for step in path.pairs:
        total += ex.scores[s1[step.y - 1], s2[step.x - 1]]
        if prev is not None:
            gap = (step.y - prev.y - 1) + (step.x - prev.x - 1)
            if gap:
                total -= gaps.cost(gap)
        prev = step
    assert total == path.score
    assert path.score == matrix[y, x]


class TestAlignmentIdentity:
    def test_paper_example(self, figure2_problem):
        """TTGC-GA / TTACAGA: 5 identities over 7 columns."""
        from repro.align import alignment_identity

        matrix = full_matrix(figure2_problem)
        y, x = np.unravel_index(np.argmax(matrix), matrix.shape)
        path = traceback(figure2_problem, matrix, int(y), int(x))
        assert alignment_identity(figure2_problem, path) == pytest.approx(5 / 7)

    def test_perfect_match(self, dna_scoring):
        from repro.align import alignment_identity

        ex, gaps = dna_scoring
        p = AlignmentProblem.from_sequences("ACGT", "ACGT", ex, gaps)
        _, path = _trace_best(p)
        assert alignment_identity(p, path) == 1.0

    def test_empty_path(self, figure2_problem):
        from repro.align import alignment_identity
        from repro.align.traceback import AlignmentPath

        assert alignment_identity(figure2_problem, AlignmentPath((), 0.0)) == 0.0
