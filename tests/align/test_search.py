"""Tests for batched database search (the §6 generalisation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align import AlignmentProblem, full_matrix
from repro.align.lanes import LanesEngine
from repro.align.search import (
    best_local_score,
    best_scores_batch,
    search_database,
)
from repro.scoring import GapPenalties, blosum62, match_mismatch
from repro.sequences import DNA, PROTEIN, Sequence, mutate, random_sequence


class TestBestLocalScore:
    def test_matches_full_matrix_max(self, figure2_problem):
        assert best_local_score(figure2_problem) == 6.0
        assert best_local_score(figure2_problem) == full_matrix(figure2_problem).max()

    def test_empty(self, dna_scoring):
        ex, gaps = dna_scoring
        p = AlignmentProblem(np.array([], dtype=np.int8), DNA.encode("AC"), ex, gaps)
        assert best_local_score(p) == 0.0

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_property_equals_matrix_max(self, data, dna_scoring):
        ex, gaps = dna_scoring
        s1 = np.array(data.draw(st.lists(st.integers(0, 4), min_size=1, max_size=20)), dtype=np.int8)
        s2 = np.array(data.draw(st.lists(st.integers(0, 4), min_size=1, max_size=20)), dtype=np.int8)
        p = AlignmentProblem(s1, s2, ex, gaps)
        assert best_local_score(p) == full_matrix(p).max()


class TestBatchScores:
    def test_matches_single_scores(self, dna_scoring):
        ex, gaps = dna_scoring
        rng = np.random.default_rng(5)
        problems = [
            AlignmentProblem(
                rng.integers(0, 4, rng.integers(2, 30)).astype(np.int8),
                rng.integers(0, 4, rng.integers(2, 30)).astype(np.int8),
                ex,
                gaps,
            )
            for _ in range(7)
        ]
        batch = best_scores_batch(problems)
        singles = [best_local_score(p) for p in problems]
        assert batch == singles

    def test_empty_batch(self):
        assert best_scores_batch([]) == []

    def test_rejects_int_modes(self, figure2_problem):
        with pytest.raises(ValueError, match="float64"):
            best_scores_batch(
                [figure2_problem], engine=LanesEngine(dtype="int16")
            )

    def test_rejects_mixed_gaps(self, dna_scoring):
        ex, _ = dna_scoring
        p1 = AlignmentProblem(DNA.encode("AC"), DNA.encode("AC"), ex, GapPenalties(2, 1))
        p2 = AlignmentProblem(DNA.encode("AC"), DNA.encode("AC"), ex, GapPenalties(3, 1))
        with pytest.raises(ValueError, match="gap"):
            best_scores_batch([p1, p2])


class TestSearchDatabase:
    @pytest.fixture()
    def database(self):
        """Query motif planted into 2 of 6 random proteins."""
        rng = np.random.default_rng(7)
        query = Sequence("HQRTHTGEKPYKCPECGKSF", PROTEIN, id="query")
        db = []
        for i in range(6):
            body = random_sequence(60, PROTEIN, seed=100 + i).codes.copy()
            if i in (1, 4):  # implant a diverged copy of the query
                motif = mutate(
                    query.codes, PROTEIN, substitution_rate=0.15, rng=rng
                )
                body[10 : 10 + motif.size] = motif[: max(0, 60 - 10)][: motif.size]
            db.append(Sequence(body, PROTEIN, id=f"db{i}"))
        return query, db

    def test_planted_motifs_rank_first(self, database):
        query, db = database
        hits = search_database(query, db, blosum62(), GapPenalties(8, 1))
        assert {hits[0].id, hits[1].id} == {"db1", "db4"}
        assert hits[0].score > hits[2].score

    def test_top_limits_results(self, database):
        query, db = database
        hits = search_database(
            query, db, blosum62(), GapPenalties(8, 1), top=2
        )
        assert len(hits) == 2

    def test_lane_width_does_not_change_scores(self, database):
        query, db = database
        by_width = [
            [
                (h.id, h.score)
                for h in search_database(
                    query, db, blosum62(), GapPenalties(8, 1), lanes=lanes
                )
            ]
            for lanes in (1, 3, 8)
        ]
        assert by_width[0] == by_width[1] == by_width[2]

    def test_lanes_validation(self, database):
        query, db = database
        with pytest.raises(ValueError):
            search_database(query, db, blosum62(), lanes=0)

    def test_empty_database(self):
        query = Sequence("ACGT", DNA)
        assert search_database(query, [], match_mismatch(DNA, 2, -1)) == []
