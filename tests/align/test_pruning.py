"""Tests for the exact in-fill pruning bounds (:mod:`repro.align.pruning`).

The contract under test is absolute: pruning may only skip work it can
*prove* is irrelevant, so accepted top alignments must be byte-identical
with pruning on or off — across engines, group widths, saturating
integer modes, wildcard-bearing sequences and the linear-memory store —
and every bound the gate ever computes must dominate the exhaustively
computed true score of the fill it skipped.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align import INT16_MAX, PruneContext, PruneGate
from repro.align.vector import iter_rows
from repro.core import TopAlignmentState, find_top_alignments
from repro.scoring import GapPenalties, match_mismatch
from repro.sequences import DNA, RepeatSpec, Sequence, implant_repeats, pseudo_titin


def _key(tops):
    return [(a.r, a.score, a.pairs) for a in tops]


@pytest.fixture(scope="module")
def repeat_dna():
    """DNA with one strong implanted repeat — the pruning-friendly regime."""
    return implant_repeats(
        200,
        RepeatSpec(unit_length=60, copies=2, substitution_rate=0.05),
        DNA,
        seed=3,
    ).sequence


class TestByteEquality:
    """Pruning must change the work done, never the answer."""

    @pytest.mark.parametrize("engine", ["vector", "striped", "lanes", "scalar"])
    @pytest.mark.parametrize("group", [1, 4])
    @pytest.mark.parametrize("min_score", [0.0, 60.0])
    def test_tops_identical_on_vs_off(
        self, repeat_dna, dna_scoring, engine, group, min_score
    ):
        exchange, gaps = dna_scoring
        off, _ = find_top_alignments(
            repeat_dna, 5, exchange, gaps,
            engine=engine, group=group, min_score=min_score, prune=False,
        )
        on, stats = find_top_alignments(
            repeat_dna, 5, exchange, gaps,
            engine=engine, group=group, min_score=min_score, prune=True,
        )
        assert _key(on) == _key(off)
        # Skipped + evaluated work must never lose cells relative to the
        # exhaustive run (a pruned lane accounts for its whole matrix).
        assert stats.pruned_cells >= 0
        assert stats.pruned_lanes >= 0

    def test_pruning_actually_fires(self, repeat_dna, dna_scoring):
        exchange, gaps = dna_scoring
        _, stats = find_top_alignments(
            repeat_dna, 5, exchange, gaps, min_score=60.0, prune=True
        )
        assert stats.pruned_lanes > 0
        assert stats.pruned_cells > 0
        # The counters are mirrored into the repro_prune_* metric family.
        from repro.core.result import _STAT_MIRRORS

        assert _STAT_MIRRORS["pruned_cells"][0] == "repro_prune_cells_total"
        assert _STAT_MIRRORS["pruned_lanes"][0] == "repro_prune_lanes_total"

    def test_prune_off_runs_clean(self, repeat_dna, dna_scoring):
        exchange, gaps = dna_scoring
        _, stats = find_top_alignments(
            repeat_dna, 5, exchange, gaps, min_score=60.0, prune=False
        )
        assert stats.pruned_lanes == 0
        assert stats.pruned_cells == 0


class TestSaturation:
    """Bounds stay sound as scores approach and hit INT16_MAX."""

    def test_tops_identical_near_int16_max(self):
        # +270 per match on a pure tandem pushes accepted scores to
        # within ~10 % of the signed-short ceiling without crossing it
        # (the accept path's exact recompute forbids clamped tops), so
        # this drives the int16 lanes engine through the whole search
        # at the top of its representable range.
        seq = Sequence("ATGC" * 60, DNA, id="tandem")
        exchange = match_mismatch(DNA, 270.0, -1.0)
        gaps = GapPenalties(2.0, 1.0)
        off, off_stats = find_top_alignments(
            seq, 4, exchange, gaps,
            engine="lanes-sse", min_score=500.0, prune=False,
        )
        on, on_stats = find_top_alignments(
            seq, 4, exchange, gaps,
            engine="lanes-sse", min_score=500.0, prune=True,
        )
        assert _key(on) == _key(off)
        assert off and INT16_MAX * 0.8 < off[0].score < INT16_MAX
        assert on_stats.cells <= off_stats.cells

    def test_bounds_dominate_saturated_scores(self):
        # Genuine saturation: +30000 per match clamps every deep cell
        # at INT16_MAX.  Clamping only lowers values, so the float
        # bound tables (computed from the unsaturated profile) must
        # still dominate the saturated fill — a gate with the floor
        # above the clamp prunes, and its bound covers the true row.
        from repro.align import LanesEngine

        exchange = match_mismatch(DNA, 30000.0, -1.0, wildcard_score=None)
        gaps = GapPenalties(2.0, 1.0)
        seq = Sequence("AAAAAAAA", DNA, id="sat")
        state = TopAlignmentState(seq, exchange, gaps, engine="lanes-sse")
        r = 4
        truth = LanesEngine(dtype="int16").last_row(
            state.problem_for(r, with_override=False)
        )
        assert truth.max() == INT16_MAX  # clamp engaged
        ctx = state.prune_context
        ctx.configure(INT16_MAX + 1.0)
        gate = ctx.gate_for(r)
        assert gate.upfront_bound >= truth.max()
        row = state.engine.last_row(
            state.problem_for(r, with_override=False, prune=gate)
        )
        if gate.pruned:
            assert gate.bound >= truth.max()
        else:
            assert np.array_equal(row, truth)


class TestWildcards:
    """Wildcard columns (all entries <= 0) contribute zero gain, not noise."""

    def test_wildcard_columns_have_zero_gain(self, dna_scoring):
        exchange, gaps = dna_scoring  # wildcard pairings score 0.0
        seq = Sequence("ATGCATGC" + "N" * 24 + "ATGCATGC" * 3, DNA, id="wc")
        state = TopAlignmentState(seq, exchange, gaps)
        ctx = state.prune_context
        wc = DNA.wildcard_code
        wildcard_cols = seq.codes == wc
        assert wildcard_cols.any()
        # max(P[a, x], 0) is 0 everywhere in a wildcard column, so the
        # per-column gain — and hence its term in every bound — is 0.
        assert np.all(ctx.gain[wildcard_cols] == 0.0)
        # col_suffix is flat across the wildcard run (no gain accrues).
        run = np.flatnonzero(wildcard_cols)
        assert ctx.col_suffix[run[0]] == ctx.col_suffix[run[0] + 1] + 0.0

    def test_tops_identical_with_wildcards(self, dna_scoring):
        exchange, gaps = dna_scoring
        seq = Sequence("ATGCATGC" + "N" * 24 + "ATGCATGC" * 3, DNA, id="wc")
        off, _ = find_top_alignments(seq, 4, exchange, gaps, prune=False)
        on, _ = find_top_alignments(seq, 4, exchange, gaps, prune=True)
        assert _key(on) == _key(off)


class TestLinearMemory:
    """Pruned tasks cache no bottom row; the linear store must cope."""

    def test_linear_space_recompute_of_pruned_search(self, repeat_dna, dna_scoring):
        exchange, gaps = dna_scoring
        baseline, _ = find_top_alignments(
            repeat_dna, 5, exchange, gaps, min_score=60.0, prune=False
        )
        state = TopAlignmentState(
            repeat_dna, exchange, gaps,
            memory="linear", linear_capacity=2, prune=True,
        )
        linear, stats = find_top_alignments(
            repeat_dna, 5, exchange, gaps, min_score=60.0, state=state
        )
        assert _key(linear) == _key(baseline)
        assert stats.pruned_lanes > 0
        assert state.bottom_rows.resident_rows <= 2
        # The store's gate-free recompute path produced exact rows even
        # though the first pass pruned some of the splits it re-derives.
        assert state.bottom_rows.recomputations >= 0


class TestGateMechanics:
    def _context(self, text="ATGCATGCATGC", match=2.0, mismatch=-1.0):
        seq = Sequence(text, DNA)
        exchange = match_mismatch(DNA, match, mismatch)
        state = TopAlignmentState(seq, exchange, GapPenalties(2.0, 1.0))
        return state.prune_context

    def test_invalid_split_rejected(self):
        ctx = self._context()
        with pytest.raises(ValueError, match="split"):
            ctx.gate_for(0)
        with pytest.raises(ValueError, match="split"):
            ctx.gate_for(12)

    def test_prune_requires_strict_progress(self):
        # A prune that would not lower the task's heap score must fall
        # through to a real fill (livelock guard), no matter how high
        # the live threshold is.
        ctx = self._context()
        ctx.configure(0.0)
        ctx.threshold = float("inf")
        gate = ctx.gate_for(6)
        gate_at_bound = ctx.gate_for(6, cap=gate.upfront_bound)
        assert gate_at_bound.prune_before_fill() is False
        assert not gate_at_bound.pruned

    def test_lane_prune_defers_below_threshold(self):
        ctx = self._context()
        ctx.configure(0.0)
        gate = ctx.gate_for(6)
        ctx.threshold = gate.upfront_bound + 1.0
        gate = ctx.gate_for(6)  # cap=inf > bound: strict progress holds
        assert gate.prune_before_fill() is True
        assert gate.pruned
        assert gate.bound == gate.upfront_bound
        assert gate.cells_filled == 0
        assert gate.pruned_cells == gate.rows * gate.cols

    def test_row_cutoffs_opt_out_at_zero_floor(self):
        # floor=0 makes every cutoff negative (best >= 0 always), so
        # gating a fill could never fire — the gate must opt out.
        ctx = self._context()
        ctx.configure(0.0)
        assert ctx.gate_for(6).row_cutoffs() is None

    def test_counters_cover_the_matrix(self):
        ctx = self._context()
        ctx.configure(10.0)
        gate = ctx.gate_for(6)
        gate.record_row_prune(2, 1.0)
        assert gate.pruned
        assert gate.cells_filled == 2 * gate.cols
        assert gate.cells_filled + gate.pruned_cells == gate.rows * gate.cols


# No max_examples pin: the nightly ci-deep profile deepens this sweep.
@given(
    codes=st.lists(st.integers(0, 3), min_size=8, max_size=36),
    r_frac=st.floats(0.05, 0.95),
    match=st.integers(1, 5),
    mismatch=st.integers(-4, 0),
)
@settings(deadline=None)
def test_every_bound_dominates_the_true_score(codes, r_frac, match, mismatch):
    """Exhaustively fill each sampled block; every gate bound dominates.

    This is the pruning soundness theorem stated as a property: for a
    random sequence, scoring and split, the pre-fill bound, every
    per-row bound and every per-column bound is >= the true task score
    (the bottom-row maximum of the fully computed matrix).
    """
    seq = Sequence("".join("ACGT"[c] for c in codes), DNA)
    exchange = match_mismatch(DNA, float(match), float(mismatch))
    state = TopAlignmentState(seq, exchange, GapPenalties(2.0, 1.0))
    ctx = state.prune_context
    m = len(seq)
    r = min(m - 1, max(1, round(r_frac * m)))
    gate = ctx.gate_for(r)

    problem = state.problem_for(r, with_override=False)
    filled = [row.copy() for _, row in iter_rows(problem)]
    matrix = np.stack(filled)  # matrix[y - 1] is row y, cols 0..m-r
    true_score = float(matrix[r - 1].max())

    assert gate.upfront_bound >= true_score - 1e-9

    best = 0.0
    for y in range(1, r + 1):
        best = max(best, float(matrix[y - 1].max()))
        row_bound = max(best, 0.0) + float(gate.rem[y])
        assert row_bound >= true_score - 1e-9

    cols = m - r
    for cols_done in range(1, cols):
        filled_max = float(matrix[:, : cols_done + 1].max())
        col_bound = max(filled_max, 0.0) + float(ctx.col_suffix[r + cols_done])
        assert col_bound >= true_score - 1e-9
