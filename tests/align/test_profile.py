"""Tests for the query-profile cache and its engine plumbing."""

import numpy as np
import pytest

from repro.align import (
    AlignmentProblem,
    LanesEngine,
    ProfileView,
    QueryProfile,
    StripedEngine,
    VectorEngine,
)
from repro.core import DenseOverrideTriangle
from repro.scoring import GapPenalties, blosum62
from repro.sequences.workloads import pseudo_titin

ENGINES = [
    VectorEngine(),
    LanesEngine(lanes=4, dtype="float64"),
    LanesEngine(lanes=4, dtype="int32"),
    LanesEngine(lanes=4, dtype="int16"),
    StripedEngine(stripe=7),
]


@pytest.fixture(scope="module")
def scoring():
    return blosum62(), GapPenalties(8, 1)


@pytest.fixture(scope="module")
def codes():
    return pseudo_titin(60, seed=2).codes


class TestQueryProfile:
    def test_matches_direct_gather(self, codes, scoring):
        exchange, _ = scoring
        profile = QueryProfile(codes, exchange)
        expected = exchange.scores[:, codes.astype(np.int64)]
        assert np.array_equal(profile.scores, expected)
        assert profile.scores.shape == (exchange.scores.shape[0], codes.size)

    def test_views_are_zero_copy_slices(self, codes, scoring):
        exchange, _ = scoring
        profile = QueryProfile(codes, exchange)
        view = profile.view(10, 40)
        assert view.cols == 30
        assert view.scores.base is not None
        assert np.shares_memory(view.scores, profile.scores)
        assert np.array_equal(view.scores, profile.scores[:, 10:40])
        suffix = profile.suffix(25)
        assert suffix.cols == codes.size - 25
        assert np.array_equal(suffix.scores, profile.scores[:, 25:])

    def test_integer_scores_cached(self, codes, scoring):
        exchange, _ = scoring
        profile = QueryProfile(codes, exchange)
        ints = profile.integer_scores()
        assert ints.dtype == np.int64
        assert ints is profile.integer_scores()  # computed once
        view = profile.view(5, 20)
        assert np.array_equal(view.integer_scores(), ints[:, 5:20])

    def test_bounds_validated(self, codes, scoring):
        exchange, _ = scoring
        profile = QueryProfile(codes, exchange)
        with pytest.raises(ValueError):
            profile.view(-1, 10)
        with pytest.raises(ValueError):
            profile.view(10, 5)
        with pytest.raises(ValueError):
            profile.view(0, codes.size + 1)

    def test_problem_width_mismatch(self, codes, scoring):
        exchange, gaps = scoring
        profile = QueryProfile(codes, exchange)
        with pytest.raises(ValueError, match="profile window"):
            AlignmentProblem(
                codes[:10], codes[10:], exchange, gaps,
                profile=profile.suffix(20),
            )


class TestEnginesWithProfile:
    def _problem_pair(self, codes, scoring, r, override=None):
        exchange, gaps = scoring
        profile = QueryProfile(codes, exchange)
        plain = AlignmentProblem(codes[:r], codes[r:], exchange, gaps, override)
        cached = AlignmentProblem(
            codes[:r], codes[r:], exchange, gaps, override,
            profile=profile.suffix(r),
        )
        return plain, cached

    @pytest.mark.parametrize("engine", ENGINES, ids=lambda e: e.describe())
    def test_identical_rows(self, engine, codes, scoring):
        for r in (1, 17, 30, codes.size - 1):
            plain, cached = self._problem_pair(codes, scoring, r)
            assert np.array_equal(engine.last_row(cached), engine.last_row(plain))

    @pytest.mark.parametrize("engine", ENGINES, ids=lambda e: e.describe())
    def test_identical_rows_with_override(self, engine, codes, scoring):
        triangle = DenseOverrideTriangle(codes.size)
        triangle.mark(tuple((i, i + 30) for i in range(5, 15)))
        r = 25
        override = triangle.view_for_split(r)
        plain, cached = self._problem_pair(codes, scoring, r, override)
        assert np.array_equal(engine.last_row(cached), engine.last_row(plain))

    def test_lane_batches_with_mixed_shapes(self, codes, scoring):
        """Scratch buffers are reused across differently-shaped batches
        without contaminating later results."""
        engine = LanesEngine(lanes=4, dtype="int16")
        exchange, gaps = scoring
        profile = QueryProfile(codes, exchange)
        for splits in ((30, 40), (5, 50, 29, 12), (45,), (20, 21, 22, 23)):
            problems = [
                AlignmentProblem(
                    codes[:r], codes[r:], exchange, gaps,
                    profile=profile.suffix(r),
                )
                for r in splits
            ]
            rows = engine.last_rows_batch(problems)
            for r, row in zip(splits, rows):
                plain = AlignmentProblem(codes[:r], codes[r:], exchange, gaps)
                assert np.array_equal(row, VectorEngine().last_row(plain))

    def test_substitution_rows_fallback(self, codes, scoring):
        """Without a profile the problem re-gathers; results agree."""
        plain, cached = self._problem_pair(codes, scoring, 20)
        assert np.array_equal(plain.substitution_rows(), cached.substitution_rows())
        assert np.array_equal(
            plain.substitution_rows_int(), cached.substitution_rows_int()
        )
