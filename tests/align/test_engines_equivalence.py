"""Cross-engine equivalence: every engine must reproduce the scalar reference.

This is the correctness core of the SIMD reproduction — the paper's
lane-parallel kernels compute "exactly the same" matrices as the
conventional code, and so must ours, bit for bit on integral scores.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align import (
    AlignmentProblem,
    LanesEngine,
    ScalarEngine,
    StripedEngine,
    VectorEngine,
)
from repro.scoring import GapPenalties, blosum62, match_mismatch
from repro.sequences import DNA, PROTEIN
from repro.sequences.workloads import pseudo_titin

ENGINES = [
    VectorEngine(),
    LanesEngine(lanes=4, dtype="float64"),
    LanesEngine(lanes=4, dtype="int32"),
    LanesEngine(lanes=4, dtype="int16"),
    StripedEngine(stripe=7),
    StripedEngine(stripe=64),
]


def _random_problem(rng, ex, gaps, max_len=40):
    s1 = rng.integers(0, 4, rng.integers(1, max_len)).astype(np.int8)
    s2 = rng.integers(0, 4, rng.integers(1, max_len)).astype(np.int8)
    return AlignmentProblem(s1, s2, ex, gaps)


@pytest.mark.parametrize("engine", ENGINES, ids=lambda e: repr(e))
class TestAgainstScalar:
    def test_figure2(self, engine, figure2_problem):
        expected = ScalarEngine().last_row(figure2_problem)
        assert np.array_equal(engine.last_row(figure2_problem), expected)

    def test_random_dna(self, engine, dna_scoring):
        ex, gaps = dna_scoring
        rng = np.random.default_rng(42)
        for _ in range(10):
            p = _random_problem(rng, ex, gaps)
            expected = ScalarEngine().last_row(p)
            assert np.array_equal(engine.last_row(p), expected)

    def test_protein_blosum(self, engine, protein_scoring):
        ex, gaps = protein_scoring
        seq = pseudo_titin(70, seed=3)
        p = AlignmentProblem(seq.codes[:30], seq.codes[30:], ex, gaps)
        expected = ScalarEngine().last_row(p)
        assert np.array_equal(engine.last_row(p), expected)

    def test_empty_sequences(self, engine, dna_scoring):
        ex, gaps = dna_scoring
        p = AlignmentProblem(
            np.array([], dtype=np.int8), DNA.encode("ACG"), ex, gaps
        )
        assert np.array_equal(engine.last_row(p), np.zeros(4))


class TestLaneBatches:
    def test_batch_matches_individual(self, protein_scoring):
        ex, gaps = protein_scoring
        seq = pseudo_titin(60, seed=5)
        problems = [
            AlignmentProblem(seq.codes[:r], seq.codes[r:], ex, gaps)
            for r in range(20, 28)
        ]
        engine = LanesEngine(lanes=8, dtype="float64")
        batch = engine.last_rows_batch(problems)
        scalar = ScalarEngine()
        for p, row in zip(problems, batch):
            assert np.array_equal(row, scalar.last_row(p))

    def test_mixed_sizes_padding(self, dna_scoring):
        """Lanes of wildly different shapes must not contaminate each other."""
        ex, gaps = dna_scoring
        rng = np.random.default_rng(9)
        problems = [
            AlignmentProblem(
                rng.integers(0, 4, n1).astype(np.int8),
                rng.integers(0, 4, n2).astype(np.int8),
                ex,
                gaps,
            )
            for n1, n2 in [(3, 40), (40, 3), (1, 1), (17, 17), (2, 30)]
        ]
        batch = LanesEngine(dtype="float64").last_rows_batch(problems)
        scalar = ScalarEngine()
        for p, row in zip(problems, batch):
            assert np.array_equal(row, scalar.last_row(p))

    def test_batch_with_empty_lane(self, dna_scoring):
        ex, gaps = dna_scoring
        problems = [
            AlignmentProblem(DNA.encode("ACGT"), DNA.encode("ACGT"), ex, gaps),
            AlignmentProblem(np.array([], dtype=np.int8), DNA.encode("AC"), ex, gaps),
        ]
        batch = LanesEngine().last_rows_batch(problems)
        assert batch[0][4] > 0
        assert np.array_equal(batch[1], np.zeros(3))

    def test_empty_batch(self):
        assert LanesEngine().last_rows_batch([]) == []

    def test_scratch_cache_is_bounded(self, dna_scoring):
        """Cycling batch shapes must not pin one scratch block per shape."""
        ex, gaps = dna_scoring
        engine = LanesEngine(lanes=2, dtype="float64")
        for group in range(1, engine._SCRATCH_CACHE_MAX + 5):
            problems = [
                AlignmentProblem(DNA.encode("ACGT"), DNA.encode("ACGT"), ex, gaps)
                for _ in range(group)
            ]
            engine.last_rows_batch(problems)
        assert len(engine._tls.cache) <= engine._SCRATCH_CACHE_MAX

    def test_scratch_cache_reuses_recent_shape(self, dna_scoring):
        ex, gaps = dna_scoring
        engine = LanesEngine(lanes=4, dtype="float64")
        problems = [
            AlignmentProblem(DNA.encode("ACGT"), DNA.encode("ACGT"), ex, gaps)
        ]
        engine.last_rows_batch(problems)
        scratch = next(iter(engine._tls.cache.values()))
        engine.last_rows_batch(problems)
        assert next(iter(engine._tls.cache.values())) is scratch

    def test_mismatched_gaps_rejected(self, dna_scoring):
        ex, _ = dna_scoring
        p1 = AlignmentProblem(DNA.encode("AC"), DNA.encode("AC"), ex, GapPenalties(2, 1))
        p2 = AlignmentProblem(DNA.encode("AC"), DNA.encode("AC"), ex, GapPenalties(3, 1))
        with pytest.raises(ValueError, match="gap penalties"):
            LanesEngine().last_rows_batch([p1, p2])

    def test_mismatched_exchange_rejected(self):
        gaps = GapPenalties(2, 1)
        p1 = AlignmentProblem(
            DNA.encode("AC"), DNA.encode("AC"), match_mismatch(DNA, 2, -1), gaps
        )
        p2 = AlignmentProblem(
            DNA.encode("AC"), DNA.encode("AC"), match_mismatch(DNA, 3, -1), gaps
        )
        with pytest.raises(ValueError, match="exchange"):
            LanesEngine().last_rows_batch([p1, p2])

    def test_int16_mode_rejects_fractional_penalties(self, dna_scoring):
        ex, _ = dna_scoring
        p = AlignmentProblem(
            DNA.encode("AC"), DNA.encode("AC"), ex, GapPenalties(2.5, 1)
        )
        with pytest.raises(ValueError):
            LanesEngine(dtype="int16").last_row(p)

    def test_int16_saturation(self):
        """Scores clamp at 32767, mirroring SSE signed-short saturation."""
        ex = match_mismatch(DNA, 30000.0, -1.0, wildcard_score=None)
        gaps = GapPenalties(2, 1)
        p = AlignmentProblem(DNA.encode("AAAA"), DNA.encode("AAAA"), ex, gaps)
        row16 = LanesEngine(dtype="int16").last_row(p)
        assert row16.max() == 32767
        row64 = LanesEngine(dtype="float64").last_row(p)
        assert row64.max() > 32767


class TestEngineConstruction:
    def test_invalid_lanes(self):
        with pytest.raises(ValueError):
            LanesEngine(lanes=0)

    def test_invalid_dtype(self):
        with pytest.raises(ValueError):
            LanesEngine(dtype="int8")

    def test_invalid_stripe(self):
        with pytest.raises(ValueError):
            StripedEngine(stripe=0)

    def test_repr(self):
        assert "int16" in repr(LanesEngine(dtype="int16"))
        assert "2730" in repr(StripedEngine())


@settings(max_examples=30, deadline=None)
@given(
    data=st.data(),
    stripe=st.integers(1, 20),
    open_=st.integers(0, 6),
    ext=st.integers(0, 3),
)
def test_striped_equals_scalar_property(data, stripe, open_, ext):
    """Property: any stripe width reproduces the single-pass result."""
    ex = match_mismatch(DNA, 2.0, -1.0, wildcard_score=None)
    gaps = GapPenalties(float(open_), float(ext))
    s1 = np.array(data.draw(st.lists(st.integers(0, 4), min_size=1, max_size=25)), dtype=np.int8)
    s2 = np.array(data.draw(st.lists(st.integers(0, 4), min_size=1, max_size=25)), dtype=np.int8)
    p = AlignmentProblem(s1, s2, ex, gaps)
    assert np.array_equal(
        StripedEngine(stripe=stripe).last_row(p), ScalarEngine().last_row(p)
    )


@settings(max_examples=30, deadline=None)
@given(
    data=st.data(),
    group=st.integers(1, 6),
    dtype=st.sampled_from(["float64", "int32", "int16"]),
)
def test_lanes_batch_equals_scalar_property(data, group, dtype):
    """Property: lockstep lane groups of any width match per-problem scalar."""
    ex = match_mismatch(DNA, 2.0, -1.0, wildcard_score=None)
    gaps = GapPenalties(2.0, 1.0)
    rng_lists = st.lists(st.integers(0, 4), min_size=1, max_size=20)
    problems = [
        AlignmentProblem(
            np.array(data.draw(rng_lists), dtype=np.int8),
            np.array(data.draw(rng_lists), dtype=np.int8),
            ex,
            gaps,
        )
        for _ in range(group)
    ]
    batch = LanesEngine(dtype=dtype).last_rows_batch(problems)
    scalar = ScalarEngine()
    for p, row in zip(problems, batch):
        assert np.array_equal(row, scalar.last_row(p))
