"""Tests for the scalar reference engine against the paper and a brute force."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align import AlignmentProblem, ScalarEngine, full_matrix
from repro.scoring import GapPenalties, match_mismatch
from repro.sequences import DNA

from ..conftest import brute_force_matrix

#: Figure 2's matrix (CTTACAGA horizontal, ATTGCGA vertical).  The
#: published figure's last row is garbled by PDF text extraction; this
#: is the unique matrix satisfying Equation 1, verified against the
#: brute-force oracle, and it contains the paper's score-6 optimum at
#: the A/A cell in the bottom-right region with traceback
#: TTACAGA / TTGC-GA.
FIGURE2 = np.array(
    [
        [0, 0, 0, 2, 0, 2, 0, 2],
        [0, 2, 2, 0, 1, 0, 1, 0],
        [0, 2, 4, 1, 0, 0, 0, 0],
        [0, 0, 1, 3, 0, 0, 2, 0],
        [2, 0, 0, 0, 5, 0, 0, 1],
        [0, 1, 0, 0, 0, 4, 4, 0],
        [0, 0, 0, 2, 0, 4, 3, 6],
    ],
    dtype=np.float64,
)


class TestFigure2:
    def test_full_matrix_matches_paper(self, figure2_problem):
        matrix = full_matrix(figure2_problem)
        assert np.array_equal(matrix[1:, 1:], FIGURE2)

    def test_boundaries_are_zero(self, figure2_problem):
        matrix = full_matrix(figure2_problem)
        assert not matrix[0, :].any()
        assert not matrix[:, 0].any()

    def test_best_score_is_six(self, figure2_problem):
        assert full_matrix(figure2_problem).max() == 6.0

    def test_brute_force_agrees(self, figure2_problem):
        assert np.array_equal(
            full_matrix(figure2_problem), brute_force_matrix(figure2_problem)
        )

    def test_scalar_last_row(self, figure2_problem):
        row = ScalarEngine().last_row(figure2_problem)
        assert np.array_equal(row[1:], FIGURE2[-1])


class TestEdgeCases:
    def test_empty_vertical(self, dna_scoring):
        ex, gaps = dna_scoring
        p = AlignmentProblem(np.array([], dtype=np.int8), DNA.encode("ACGT"), ex, gaps)
        assert np.array_equal(ScalarEngine().last_row(p), np.zeros(5))

    def test_empty_horizontal(self, dna_scoring):
        ex, gaps = dna_scoring
        p = AlignmentProblem(DNA.encode("ACGT"), np.array([], dtype=np.int8), ex, gaps)
        assert np.array_equal(ScalarEngine().last_row(p), np.zeros(1))

    def test_single_cell_match(self, dna_scoring):
        ex, gaps = dna_scoring
        p = AlignmentProblem(DNA.encode("A"), DNA.encode("A"), ex, gaps)
        assert ScalarEngine().last_row(p)[1] == 2.0

    def test_single_cell_mismatch_clamps_to_zero(self, dna_scoring):
        ex, gaps = dna_scoring
        p = AlignmentProblem(DNA.encode("A"), DNA.encode("C"), ex, gaps)
        assert ScalarEngine().last_row(p)[1] == 0.0

    def test_score_helper(self, figure2_problem):
        assert ScalarEngine().score(figure2_problem) == 6.0

    def test_all_values_nonnegative(self, dna_scoring):
        ex, gaps = dna_scoring
        rng = np.random.default_rng(0)
        p = AlignmentProblem(
            rng.integers(0, 4, 20).astype(np.int8),
            rng.integers(0, 4, 25).astype(np.int8),
            ex,
            gaps,
        )
        assert (full_matrix(p) >= 0).all()


@settings(max_examples=40, deadline=None)
@given(
    data=st.data(),
    rows=st.integers(1, 12),
    cols=st.integers(1, 12),
    match=st.integers(1, 8),
    mismatch=st.integers(-5, 0),
    open_=st.integers(0, 6),
    ext=st.integers(0, 3),
)
def test_scalar_matches_brute_force(data, rows, cols, match, mismatch, open_, ext):
    """Property: the Figure 3 recurrence equals the direct Equation 1."""
    ex = match_mismatch(DNA, float(match), float(mismatch), wildcard_score=None)
    gaps = GapPenalties(float(open_), float(ext))
    s1 = np.array(data.draw(st.lists(st.integers(0, 4), min_size=rows, max_size=rows)), dtype=np.int8)
    s2 = np.array(data.draw(st.lists(st.integers(0, 4), min_size=cols, max_size=cols)), dtype=np.int8)
    p = AlignmentProblem(s1, s2, ex, gaps)
    expected = brute_force_matrix(p)
    assert np.array_equal(full_matrix(p), expected)
    assert np.array_equal(ScalarEngine().last_row(p)[1:], expected[-1, 1:])
