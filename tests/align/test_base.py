"""Tests for the engine registry and AlignmentProblem plumbing."""

import numpy as np
import pytest

from repro.align import (
    AlignmentEngine,
    AlignmentProblem,
    ScalarEngine,
    VectorEngine,
    available_engines,
    get_engine,
    register_engine,
)
from repro.scoring import GapPenalties
from repro.sequences import DNA, Sequence


class TestRegistry:
    def test_builtins_registered(self):
        names = available_engines()
        for expected in ("scalar", "vector", "lanes", "lanes-sse", "lanes-sse2", "striped"):
            assert expected in names

    def test_get_engine_by_name(self):
        assert isinstance(get_engine("scalar"), ScalarEngine)
        assert isinstance(get_engine("vector"), VectorEngine)

    def test_get_engine_passthrough(self):
        engine = VectorEngine()
        assert get_engine(engine) is engine

    def test_unknown_engine(self):
        with pytest.raises(KeyError, match="unknown engine"):
            get_engine("quantum")

    def test_sse_presets(self):
        sse = get_engine("lanes-sse")
        sse2 = get_engine("lanes-sse2")
        assert (sse.lanes, sse.dtype) == (4, "int16")
        assert (sse2.lanes, sse2.dtype) == (8, "int16")

    def test_register_custom(self):
        class Dummy(AlignmentEngine):
            name = "dummy-test"

            def last_row(self, problem):
                return np.zeros(problem.cols + 1)

        register_engine("dummy-test", Dummy)
        try:
            assert isinstance(get_engine("dummy-test"), Dummy)
        finally:
            from repro.align.base import _ENGINES

            _ENGINES.pop("dummy-test")


class TestAlignmentProblem:
    def test_from_sequences_with_strings(self, dna_scoring):
        ex, gaps = dna_scoring
        p = AlignmentProblem.from_sequences("ACG", "ACGT", ex, gaps)
        assert p.rows == 3 and p.cols == 4 and p.cells == 12

    def test_from_sequences_with_sequence_objects(self, dna_scoring):
        ex, gaps = dna_scoring
        p = AlignmentProblem.from_sequences(
            Sequence("ACG", DNA), Sequence("ACGT", DNA), ex, gaps
        )
        assert p.rows == 3

    def test_codes_coerced_to_int8(self, dna_scoring):
        ex, gaps = dna_scoring
        p = AlignmentProblem(
            np.array([0, 1], dtype=np.int64), np.array([2], dtype=np.int64), ex, gaps
        )
        assert p.seq1.dtype == np.int8 and p.seq2.dtype == np.int8

    def test_default_score_method(self, figure2_problem):
        assert get_engine("vector").score(figure2_problem) == 6.0

    def test_default_batch_loops(self, figure2_problem):
        rows = get_engine("scalar").last_rows_batch([figure2_problem] * 3)
        assert len(rows) == 3
        assert all(np.array_equal(r, rows[0]) for r in rows)
