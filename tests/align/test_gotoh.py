"""Tests for the Smith–Waterman–Gotoh comparator engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align import AlignmentProblem, full_matrix
from repro.align.gotoh import GotohEngine, gotoh_matrix
from repro.scoring import GapPenalties, match_mismatch
from repro.sequences import DNA


def brute_force_gotoh(problem) -> np.ndarray:
    """Direct, stateless evaluation of the textbook recurrence."""
    rows, cols = problem.rows, problem.cols
    E = problem.exchange.scores
    open_, ext = problem.gaps.open_, problem.gaps.extend
    H = np.zeros((rows + 1, cols + 1))
    for y in range(1, rows + 1):
        for x in range(1, cols + 1):
            best = H[y - 1, x - 1] + E[problem.seq1[y - 1], problem.seq2[x - 1]]
            for k in range(0, x):  # gap in the horizontal sequence
                best = max(best, H[y, k] - (open_ + ext * (x - k)))
            for k in range(0, y):  # gap in the vertical sequence
                best = max(best, H[k, x] - (open_ + ext * (y - k)))
            H[y, x] = max(0.0, best)
    return H


class TestAgainstBruteForce:
    def test_small_example(self, dna_scoring):
        ex, gaps = dna_scoring
        p = AlignmentProblem.from_sequences("ATTGCGA", "CTTACAGA", ex, gaps)
        assert np.array_equal(gotoh_matrix(p), brute_force_gotoh(p))

    @settings(max_examples=30, deadline=None)
    @given(
        data=st.data(),
        open_=st.integers(0, 5),
        ext=st.integers(0, 3),
        match=st.integers(1, 5),
        mismatch=st.integers(-4, 0),
    )
    def test_property(self, data, open_, ext, match, mismatch):
        ex = match_mismatch(DNA, float(match), float(mismatch), wildcard_score=None)
        gaps = GapPenalties(float(open_), float(ext))
        s1 = np.array(data.draw(st.lists(st.integers(0, 4), min_size=1, max_size=12)), dtype=np.int8)
        s2 = np.array(data.draw(st.lists(st.integers(0, 4), min_size=1, max_size=12)), dtype=np.int8)
        p = AlignmentProblem(s1, s2, ex, gaps)
        assert np.array_equal(gotoh_matrix(p), brute_force_gotoh(p))


class TestRelationToEquation1:
    """Semantic relationships between the textbook and the paper's
    recurrences."""

    def test_paper_example_same_optimum(self, figure2_problem):
        """On §2.1's example both formulations find score 6."""
        assert gotoh_matrix(figure2_problem).max() == 6.0
        assert full_matrix(figure2_problem).max() == 6.0

    def test_gapless_alignments_identical(self, dna_scoring):
        """With gaps priced out, both recurrences reduce to the same
        gap-free local alignment."""
        ex, _ = dna_scoring
        gaps = GapPenalties(1000.0, 1000.0)
        rng = np.random.default_rng(6)
        for _ in range(10):
            s1 = rng.integers(0, 4, 15).astype(np.int8)
            s2 = rng.integers(0, 4, 15).astype(np.int8)
            p = AlignmentProblem(s1, s2, ex, gaps)
            assert gotoh_matrix(p).max() == full_matrix(p).max()

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_gotoh_upper_bounds_equation1(self, data, dna_scoring):
        """Property: every Equation 1 alignment is also a valid textbook
        alignment (gaps from row i-1/column j-1 are expressible as
        textbook gap chains of the same cost), so Gotoh's optimum is an
        upper bound for Equation 1's."""
        ex, gaps = dna_scoring
        s1 = np.array(data.draw(st.lists(st.integers(0, 4), min_size=1, max_size=14)), dtype=np.int8)
        s2 = np.array(data.draw(st.lists(st.integers(0, 4), min_size=1, max_size=14)), dtype=np.int8)
        p = AlignmentProblem(s1, s2, ex, gaps)
        assert gotoh_matrix(p).max() >= full_matrix(p).max()


class TestEngineInterface:
    def test_registered(self):
        from repro.align import get_engine

        assert isinstance(get_engine("gotoh"), GotohEngine)

    def test_last_row_shape(self, figure2_problem):
        row = GotohEngine().last_row(figure2_problem)
        assert row.shape == (figure2_problem.cols + 1,)
        assert row[0] == 0.0

    def test_score_is_global_max(self, figure2_problem):
        assert GotohEngine().score(figure2_problem) == 6.0

    def test_empty(self, dna_scoring):
        ex, gaps = dna_scoring
        p = AlignmentProblem(np.array([], dtype=np.int8), DNA.encode("AC"), ex, gaps)
        assert np.array_equal(GotohEngine().last_row(p), np.zeros(3))

    def test_override_respected(self, dna_scoring):
        from repro.core import DenseOverrideTriangle

        ex, gaps = dna_scoring
        tri = DenseOverrideTriangle(8)
        tri.mark([(i, i + 4) for i in range(1, 5)])
        codes = DNA.encode("ATGCATGC")
        p = AlignmentProblem(codes[:4], codes[4:], ex, gaps, tri.view_for_split(4))
        H = gotoh_matrix(p)
        for i in range(1, 5):
            assert H[i, i] == 0.0
