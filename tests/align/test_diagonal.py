"""Tests for the anti-diagonal wavefront engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align import (
    AlignmentProblem,
    DiagonalEngine,
    ScalarEngine,
    full_matrix,
    get_engine,
)
from repro.core import DenseOverrideTriangle
from repro.scoring import GapPenalties, match_mismatch
from repro.sequences import DNA


class TestDiagonalEngine:
    def test_registered(self):
        assert isinstance(get_engine("diagonal"), DiagonalEngine)

    def test_figure2_matrix(self, figure2_problem):
        assert np.array_equal(
            DiagonalEngine().full_matrix(figure2_problem),
            full_matrix(figure2_problem),
        )

    def test_last_row_matches_scalar(self, figure2_problem):
        assert np.array_equal(
            DiagonalEngine().last_row(figure2_problem),
            ScalarEngine().last_row(figure2_problem),
        )

    def test_empty(self, dna_scoring):
        ex, gaps = dna_scoring
        p = AlignmentProblem(np.array([], dtype=np.int8), DNA.encode("AC"), ex, gaps)
        assert np.array_equal(DiagonalEngine().last_row(p), np.zeros(3))

    def test_single_cell(self, dna_scoring):
        ex, gaps = dna_scoring
        p = AlignmentProblem(DNA.encode("A"), DNA.encode("A"), ex, gaps)
        assert DiagonalEngine().last_row(p)[1] == 2.0

    def test_override_respected(self, dna_scoring):
        ex, gaps = dna_scoring
        tri = DenseOverrideTriangle(8)
        tri.mark([(i, i + 4) for i in range(1, 5)])
        codes = DNA.encode("ATGCATGC")
        p = AlignmentProblem(codes[:4], codes[4:], ex, gaps, tri.view_for_split(4))
        M = DiagonalEngine().full_matrix(p)
        for i in range(1, 5):
            assert M[i, i] == 0.0
        assert np.array_equal(M, full_matrix(p))

    def test_rectangular_shapes(self, dna_scoring):
        ex, gaps = dna_scoring
        rng = np.random.default_rng(2)
        for rows, cols in [(1, 20), (20, 1), (3, 17), (17, 3)]:
            p = AlignmentProblem(
                rng.integers(0, 4, rows).astype(np.int8),
                rng.integers(0, 4, cols).astype(np.int8),
                ex,
                gaps,
            )
            assert np.array_equal(
                DiagonalEngine().last_row(p), ScalarEngine().last_row(p)
            )

    @settings(max_examples=30, deadline=None)
    @given(
        data=st.data(),
        open_=st.integers(0, 5),
        ext=st.integers(0, 3),
    )
    def test_property_matches_scalar(self, data, open_, ext):
        ex = match_mismatch(DNA, 2.0, -1.0, wildcard_score=None)
        gaps = GapPenalties(float(open_), float(ext))
        s1 = np.array(data.draw(st.lists(st.integers(0, 4), min_size=1, max_size=20)), dtype=np.int8)
        s2 = np.array(data.draw(st.lists(st.integers(0, 4), min_size=1, max_size=20)), dtype=np.int8)
        p = AlignmentProblem(s1, s2, ex, gaps)
        assert np.array_equal(
            DiagonalEngine().last_row(p), ScalarEngine().last_row(p)
        )

    def test_usable_by_top_alignment_driver(self, tandem_dna, dna_scoring):
        from repro.core import find_top_alignments

        ex, gaps = dna_scoring
        base, _ = find_top_alignments(tandem_dna, 3, ex, gaps)
        diag, _ = find_top_alignments(tandem_dna, 3, ex, gaps, engine="diagonal")
        assert [(a.r, a.pairs) for a in diag] == [(a.r, a.pairs) for a in base]
