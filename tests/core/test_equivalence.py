"""The paper's central claim: every execution mode computes *exactly the
same top alignments* as the original algorithm.

``new sequential == old quartic`` is §3's correctness statement; the
parallel modes are covered in ``tests/parallel``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import find_top_alignments, old_find_top_alignments
from repro.scoring import GapPenalties, match_mismatch
from repro.sequences import DNA, Sequence, tandem_repeat_sequence


def _key(alignments):
    return [(a.index, a.r, a.score, a.pairs) for a in alignments]


class TestNewEqualsOld:
    def test_figure4(self, tandem_dna, dna_scoring):
        ex, gaps = dna_scoring
        new, _ = find_top_alignments(tandem_dna, 3, ex, gaps)
        old, _ = old_find_top_alignments(tandem_dna, 3, ex, gaps)
        assert _key(new) == _key(old)

    def test_protein_workload(self, small_repeat_protein, protein_scoring):
        ex, gaps = protein_scoring
        new, _ = find_top_alignments(small_repeat_protein, 6, ex, gaps)
        old, _ = old_find_top_alignments(small_repeat_protein, 6, ex, gaps)
        assert _key(new) == _key(old)

    def test_exhaustion_matches(self, dna_scoring):
        ex, gaps = dna_scoring
        seq = tandem_repeat_sequence("ACG", 3)
        new, _ = find_top_alignments(seq, 50, ex, gaps)
        old, _ = old_find_top_alignments(seq, 50, ex, gaps)
        assert _key(new) == _key(old)

    def test_min_score_matches(self, tandem_dna, dna_scoring):
        ex, gaps = dna_scoring
        new, _ = find_top_alignments(tandem_dna, 10, ex, gaps, min_score=5.0)
        old, _ = old_find_top_alignments(tandem_dna, 10, ex, gaps, min_score=5.0)
        assert _key(new) == _key(old)

    def test_old_validates_inputs(self, tandem_dna, dna_scoring):
        ex, gaps = dna_scoring
        with pytest.raises(ValueError):
            old_find_top_alignments(tandem_dna, 0, ex, gaps)
        with pytest.raises(ValueError):
            old_find_top_alignments(Sequence("A", DNA), 1, ex, gaps)

    def test_new_does_far_fewer_alignments(self, small_repeat_protein, protein_scoring):
        """The whole point of §3: the queue heuristic prunes realignments."""
        ex, gaps = protein_scoring
        _, new_stats = find_top_alignments(small_repeat_protein, 6, ex, gaps)
        _, old_stats = old_find_top_alignments(small_repeat_protein, 6, ex, gaps)
        assert new_stats.alignments < old_stats.alignments / 2

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_property_random_dna(self, data):
        """Randomised new == old, the strongest form of the §3 claim."""
        ex = match_mismatch(DNA, 2.0, -1.0, wildcard_score=None)
        gaps = GapPenalties(2.0, 1.0)
        m = data.draw(st.integers(6, 24))
        codes = np.array(
            data.draw(st.lists(st.integers(0, 3), min_size=m, max_size=m)),
            dtype=np.int8,
        )
        k = data.draw(st.integers(1, 6))
        seq = Sequence(codes, DNA)
        new, _ = find_top_alignments(seq, k, ex, gaps)
        old, _ = old_find_top_alignments(seq, k, ex, gaps)
        assert _key(new) == _key(old)

    @settings(max_examples=10, deadline=None)
    @given(
        data=st.data(),
        open_=st.integers(0, 5),
        ext=st.integers(1, 3),
        match=st.integers(1, 5),
        mismatch=st.integers(-4, 0),
    )
    def test_property_random_scoring(self, data, open_, ext, match, mismatch):
        """new == old holds for arbitrary integral scoring models too."""
        ex = match_mismatch(DNA, float(match), float(mismatch), wildcard_score=None)
        gaps = GapPenalties(float(open_), float(ext))
        m = data.draw(st.integers(6, 18))
        codes = np.array(
            data.draw(st.lists(st.integers(0, 3), min_size=m, max_size=m)),
            dtype=np.int8,
        )
        seq = Sequence(codes, DNA)
        new, _ = find_top_alignments(seq, 4, ex, gaps)
        old, _ = old_find_top_alignments(seq, 4, ex, gaps)
        assert _key(new) == _key(old)
