"""Tests for the Appendix A linear-memory bottom-row store."""

import numpy as np
import pytest

from repro.align import VectorEngine
from repro.core import TopAlignmentState, find_top_alignments
from repro.core.linearspace import RecomputingBottomRowStore
from repro.scoring import GapPenalties, blosum62
from repro.sequences import pseudo_titin


@pytest.fixture()
def store_setup(protein_scoring):
    ex, gaps = protein_scoring
    seq = pseudo_titin(60, seed=2)
    store = RecomputingBottomRowStore(
        seq.codes, ex, gaps, VectorEngine(), capacity=3
    )
    return seq, ex, gaps, store


class TestStore:
    def test_put_get_roundtrip(self, store_setup):
        seq, ex, gaps, store = store_setup
        from repro.align import AlignmentProblem

        row = VectorEngine().last_row(
            AlignmentProblem(seq.codes[:10], seq.codes[10:], ex, gaps)
        )
        store.put(10, row)
        assert 10 in store
        assert np.array_equal(store.get(10), row)
        assert store.recomputations == 0

    def test_eviction_and_recomputation(self, store_setup):
        seq, ex, gaps, store = store_setup
        from repro.align import AlignmentProblem

        rows = {}
        for r in (5, 10, 15, 20, 25):  # capacity 3: evicts the oldest
            rows[r] = VectorEngine().last_row(
                AlignmentProblem(seq.codes[:r], seq.codes[r:], ex, gaps)
            )
            store.put(r, rows[r])
        assert store.resident_rows == 3
        # r=5 was evicted; get() must transparently recompute it.
        assert np.array_equal(store.get(5), rows[5])
        assert store.recomputations == 1

    def test_memory_stays_bounded(self, store_setup):
        seq, ex, gaps, store = store_setup
        from repro.align import AlignmentProblem

        for r in range(1, len(seq)):
            store.put(
                r,
                VectorEngine().last_row(
                    AlignmentProblem(seq.codes[:r], seq.codes[r:], ex, gaps)
                ),
            )
        assert store.resident_rows <= 3
        dense_bytes = sum((len(seq) - r + 1) * 8 for r in range(1, len(seq)))
        assert store.nbytes < dense_bytes / 5

    def test_validation(self, store_setup):
        _, _, _, store = store_setup
        with pytest.raises(ValueError):
            store.put(0, np.zeros(61))
        with pytest.raises(ValueError):
            store.put(10, np.zeros(7))
        with pytest.raises(KeyError):
            store.get(40)
        with pytest.raises(ValueError):
            RecomputingBottomRowStore(
                np.zeros(10, dtype=np.int8), None, None, None, capacity=0
            )

    def test_write_once(self, store_setup):
        _, _, _, store = store_setup
        store.put(10, np.zeros(51))
        with pytest.raises(ValueError, match="already stored"):
            store.put(10, np.zeros(51))


class TestLinearMemoryAlgorithm:
    def test_identical_results_to_full_memory(self, protein_scoring):
        """The linear-memory mode must change memory, not answers."""
        ex, gaps = protein_scoring
        seq = pseudo_titin(120, seed=6)
        full, _ = find_top_alignments(seq, 5, ex, gaps)
        state = TopAlignmentState(
            seq, ex, gaps, memory="linear", linear_capacity=4
        )
        linear, _ = find_top_alignments(seq, 5, ex, gaps, state=state)
        assert [(a.r, a.score, a.pairs) for a in linear] == [
            (a.r, a.score, a.pairs) for a in full
        ]
        assert state.bottom_rows.resident_rows <= 4

    def test_extra_work_is_counted(self, protein_scoring):
        ex, gaps = protein_scoring
        seq = pseudo_titin(120, seed=6)
        state = TopAlignmentState(
            seq, ex, gaps, memory="linear", linear_capacity=2
        )
        find_top_alignments(seq, 5, ex, gaps, state=state)
        # With capacity 2 and 119 splits, realignments must recompute.
        assert state.bottom_rows.recomputations > 0

    def test_invalid_memory_mode(self, protein_scoring, tandem_dna):
        ex, gaps = protein_scoring
        seq = pseudo_titin(30, seed=1)
        with pytest.raises(ValueError, match="memory"):
            TopAlignmentState(seq, ex, gaps, memory="quantum")
