"""Tests for score significance (shuffle null / Gumbel fit)."""

import numpy as np
import pytest

from repro.core import estimate_null, score_pvalue, shuffled
from repro.core.significance import NullDistribution
from repro.scoring import GapPenalties, match_mismatch
from repro.sequences import DNA, Sequence, random_sequence, tandem_repeat_sequence


@pytest.fixture(scope="module")
def dna_model():
    return match_mismatch(DNA, 2.0, -1.0), GapPenalties(2.0, 1.0)


class TestShuffle:
    def test_preserves_composition(self):
        seq = tandem_repeat_sequence("ATGC", 5)
        rng = np.random.default_rng(0)
        out = shuffled(seq, rng)
        assert sorted(out.text) == sorted(seq.text)
        assert out.text != seq.text  # astronomically unlikely otherwise

    def test_id_suffix(self):
        seq = Sequence("ACGTACGT", DNA, id="x")
        assert shuffled(seq, np.random.default_rng(0)).id == "x-shuffled"


class TestNullDistribution:
    def test_empirical_pvalue_bounds(self):
        null = NullDistribution(np.array([5.0, 6.0, 7.0]), loc=5.0, scale=1.0)
        assert null.empirical_pvalue(100.0) == pytest.approx(1 / 4)
        assert null.empirical_pvalue(0.0) == pytest.approx(1.0)

    def test_gumbel_pvalue_monotone(self):
        null = NullDistribution(np.zeros(3), loc=10.0, scale=2.0)
        ps = [null.gumbel_pvalue(s) for s in (5.0, 10.0, 20.0, 40.0)]
        assert ps == sorted(ps, reverse=True)
        assert 0.0 <= ps[-1] < ps[0] <= 1.0

    def test_degenerate_scale(self):
        null = NullDistribution(np.zeros(3), loc=10.0, scale=0.0)
        assert null.gumbel_pvalue(11.0) == 0.0
        assert null.gumbel_pvalue(9.0) == 1.0


class TestEstimation:
    def test_requires_two_shuffles(self, dna_model):
        ex, gaps = dna_model
        with pytest.raises(ValueError):
            estimate_null(tandem_repeat_sequence("ATGC", 4), ex, gaps, shuffles=1)

    def test_real_repeat_is_significant(self, dna_model):
        """A clean tandem repeat must stand far above its shuffle null."""
        ex, gaps = dna_model
        seq = tandem_repeat_sequence("ATGCGTCA", 6)
        score, pvalue, null = score_pvalue(
            seq, ex, gaps, shuffles=15, seed=1
        )
        assert score > null.scores.max()
        assert pvalue < 0.05
        assert null.empirical_pvalue(score) == pytest.approx(1 / 16)

    def test_random_sequence_is_not_significant(self, dna_model):
        ex, gaps = dna_model
        seq = random_sequence(48, DNA, seed=12)
        score, pvalue, null = score_pvalue(
            seq, ex, gaps, shuffles=15, seed=2
        )
        assert pvalue > 0.05

    def test_deterministic(self, dna_model):
        ex, gaps = dna_model
        seq = tandem_repeat_sequence("ATGC", 5)
        a = estimate_null(seq, ex, gaps, shuffles=5, seed=3)
        b = estimate_null(seq, ex, gaps, shuffles=5, seed=3)
        assert np.array_equal(a.scores, b.scores)
