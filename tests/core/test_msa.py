"""Tests for the repeat-family multiple alignment."""

import pytest

from repro import find_repeats
from repro.core.msa import align_family, render_msa
from repro.core.result import Repeat, TopAlignment
from repro.sequences import DNA, Sequence, tandem_repeat_sequence


@pytest.fixture()
def perfect_tandem():
    seq = tandem_repeat_sequence("ATGC", 3)
    result = find_repeats(seq, top_alignments=3)
    return seq, result


class TestAlignFamily:
    def test_perfect_tandem_rows(self, perfect_tandem):
        seq, result = perfect_tandem
        msa = align_family(seq, result.repeats[0], result.top_alignments)
        assert msa.rows == ("ATGC", "ATGC", "ATGC")
        assert msa.conservation == "****"
        assert msa.mean_identity == 1.0
        assert msa.spans == ((1, 4), (5, 8), (9, 12))

    def test_diverged_copy_marked(self):
        seq = tandem_repeat_sequence("ATGCGTA", 4, substitution_rate=0.15, seed=2)
        result = find_repeats(seq, top_alignments=6)
        msa = align_family(seq, result.repeats[0], result.top_alignments)
        assert len(msa.rows) == 4
        assert "+" in msa.conservation  # the mutated column
        assert 0.8 < msa.mean_identity < 1.0

    def test_unequal_copy_lengths_gapped(self):
        """An indel-bearing copy gets gap padding, rows stay rectangular."""
        seq = Sequence("ATGCGTAATGGTAATGCGTA", DNA)  # middle copy lost a C
        result = find_repeats(seq, top_alignments=6, max_gap=1)
        assert result.repeats
        msa = align_family(seq, result.repeats[0], result.top_alignments)
        widths = {len(row) for row in msa.rows}
        assert len(widths) == 1
        assert any("-" in row for row in msa.rows)

    def test_unrelated_family_rejected(self, perfect_tandem):
        seq, result = perfect_tandem
        bogus = Repeat(family=9, copies=((1, 2),), columns=0)
        fake_aln = TopAlignment(index=0, r=6, score=4.0, pairs=((5, 9),))
        with pytest.raises(ValueError, match="shares no columns"):
            align_family(seq, bogus, [fake_aln])


class TestRender:
    def test_block_layout(self, perfect_tandem):
        seq, result = perfect_tandem
        msa = align_family(seq, result.repeats[0], result.top_alignments)
        text = render_msa(msa)
        lines = text.splitlines()
        assert lines[0].endswith("ATGC")
        assert "1-4" in lines[0]
        assert lines[-1].strip() == "****"

    def test_wrapping(self, perfect_tandem):
        seq, result = perfect_tandem
        msa = align_family(seq, result.repeats[0], result.top_alignments)
        text = render_msa(msa, block=2)
        # 4 columns in blocks of 2 -> two blocks of (3 rows + 1 cons).
        assert len(text.splitlines()) == 2 * 4 + 1  # + separating blank

    def test_identity_of_empty(self):
        from repro.core.msa import RepeatAlignment

        empty = RepeatAlignment(rows=(), spans=(), conservation="")
        assert empty.mean_identity == 0.0
