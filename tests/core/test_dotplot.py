"""Tests for the dot-plot renderer."""

import numpy as np
import pytest

from repro.core import dotplot_matrix, find_top_alignments, render_dotplot
from repro.sequences import DNA, Sequence, tandem_repeat_sequence


class TestDotplotMatrix:
    def test_word1_matches(self):
        seq = Sequence("ATA", DNA)
        dots = dotplot_matrix(seq, word=1)
        assert dots[0, 2]  # A..A
        assert not dots[0, 1]
        assert not dots[2, 0]  # strictly upper triangle

    def test_word2_filters(self):
        seq = Sequence("ATGAT", DNA)
        d1 = dotplot_matrix(seq, word=1)
        d2 = dotplot_matrix(seq, word=2)
        assert d2[0, 3]  # AT at 0 and 3
        assert d2.sum() < d1.sum()

    def test_tandem_diagonals(self):
        seq = tandem_repeat_sequence("ATGC", 3)
        dots = dotplot_matrix(seq, word=4)
        # Period-4 diagonal: (i, i+4) for i = 0..4 (word fits).
        for i in range(5):
            assert dots[i, i + 4]

    def test_word_validation(self):
        with pytest.raises(ValueError):
            dotplot_matrix(Sequence("ACGT", DNA), word=0)

    def test_word_longer_than_sequence(self):
        assert dotplot_matrix(Sequence("AC", DNA), word=5).shape == (0, 0)

    def test_no_self_diagonal(self):
        seq = tandem_repeat_sequence("ATGC", 2)
        dots = dotplot_matrix(seq, word=1)
        assert not np.diag(dots).any()


class TestRender:
    def test_alignment_digits_overlaid(self, dna_scoring):
        ex, gaps = dna_scoring
        seq = tandem_repeat_sequence("ATGC", 3)
        tops, _ = find_top_alignments(seq, 3, ex, gaps)
        art = render_dotplot(seq, tops, word=2)
        assert "0" in art and "1" in art and "2" in art
        assert art.splitlines()[0].startswith("self dot plot")

    def test_plain_dots_without_alignments(self):
        art = render_dotplot(tandem_repeat_sequence("ATGC", 3), word=2)
        assert "." in art
        assert not any(ch.isdigit() for ch in art.split("\n", 1)[1])

    def test_downsampling(self):
        seq = tandem_repeat_sequence("ATGCGT", 40)  # 240 residues
        art = render_dotplot(seq, max_size=40)
        body = art.splitlines()[1:]
        assert len(body) <= 41
        assert "1 cell = 6 residue(s)" in art

    def test_empty_sequence(self):
        assert "(empty sequence)" in render_dotplot(Sequence("", DNA))
