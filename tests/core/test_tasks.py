"""Tests for tasks and the best-first queue (Figure 5 machinery)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import NEVER_ALIGNED, Task, TaskQueue


class TestTask:
    def test_initial_state_matches_figure5(self):
        """Lines 4–5: score infinity, alignment number -1."""
        task = Task(r=3)
        assert task.score == math.inf
        assert task.aligned_with == NEVER_ALIGNED == -1

    def test_is_current(self):
        task = Task(r=1, score=5.0, aligned_with=2)
        assert task.is_current(2)
        assert not task.is_current(3)


class TestQueueOrdering:
    def test_highest_score_first(self):
        q = TaskQueue()
        for r, s in [(1, 5.0), (2, 9.0), (3, 7.0)]:
            q.insert(Task(r=r, score=s))
        assert [q.pop_highest().r for _ in range(3)] == [2, 3, 1]

    def test_ties_resolve_to_smallest_r(self):
        q = TaskQueue()
        for r in (5, 2, 9):
            q.insert(Task(r=r, score=4.0))
        assert [q.pop_highest().r for _ in range(3)] == [2, 5, 9]

    def test_infinity_sorts_first(self):
        q = TaskQueue()
        q.insert(Task(r=1, score=1e9))
        q.insert(Task(r=2))  # inf
        assert q.pop_highest().r == 2

    def test_peek_does_not_remove(self):
        q = TaskQueue()
        q.insert(Task(r=1, score=3.0))
        assert q.peek_score() == 3.0
        assert len(q) == 1

    def test_empty_queue_errors(self):
        q = TaskQueue()
        with pytest.raises(IndexError):
            q.pop_highest()
        with pytest.raises(IndexError):
            q.peek_score()

    def test_len_and_bool(self):
        q = TaskQueue()
        assert not q and len(q) == 0
        q.insert(Task(r=1))
        assert q and len(q) == 1

    def test_reinsertion_respects_new_score(self):
        """Line 20: 'requeued at a position that depends on its score'."""
        q = TaskQueue()
        q.insert(Task(r=1, score=10.0))
        q.insert(Task(r=2, score=8.0))
        task = q.pop_highest()
        task.score = 5.0
        q.insert(task)
        assert q.pop_highest().r == 2

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(1, 100), st.floats(0, 1e6)), min_size=1, unique_by=lambda t: t[0]))
    def test_property_pop_order_sorted(self, items):
        q = TaskQueue()
        for r, s in items:
            q.insert(Task(r=r, score=s))
        popped = [q.pop_highest() for _ in range(len(items))]
        keys = [(-t.score, t.r) for t in popped]
        assert keys == sorted(keys)


class TestPopExcluding:
    def test_skips_taken(self):
        q = TaskQueue()
        for r, s in [(1, 9.0), (2, 8.0), (3, 7.0)]:
            q.insert(Task(r=r, score=s))
        task = q.pop_highest_excluding({1})
        assert task.r == 2
        # Skipped entries are restored in order.
        assert q.pop_highest().r == 1
        assert q.pop_highest().r == 3

    def test_all_taken_returns_none(self):
        q = TaskQueue()
        q.insert(Task(r=1, score=1.0))
        assert q.pop_highest_excluding({1}) is None
        assert len(q) == 1  # restored

    def test_empty_returns_none(self):
        assert TaskQueue().pop_highest_excluding(set()) is None
