"""Index-routed database scans: equivalence, routing labels, warm stores."""

import pytest

from repro.core.api import RepeatFinder
from repro.core.scan import DatabaseScanner
from repro.index import IndexConfig, IndexStore
from repro.sequences import DNA, random_sequence
from repro.sequences.workloads import RepeatSpec, implant_repeats


def _database(n=8, length=180, repeat_every=4):
    records = []
    for i in range(n):
        if i % repeat_every == 0:
            records.append(
                implant_repeats(
                    length,
                    RepeatSpec(unit_length=30, copies=4, substitution_rate=0.12),
                    DNA,
                    seed=i,
                    id=f"rep{i}",
                ).sequence
            )
        else:
            records.append(random_sequence(length, DNA, seed=100 + i, id=f"bg{i}"))
    return records


def _finder(min_score=80.0):
    return RepeatFinder(top_alignments=6, min_score=min_score)


def _tops(reports):
    return [
        (
            rep.id,
            [] if rep.result is None else [
                (a.r, a.score, a.pairs) for a in rep.result.top_alignments
            ],
        )
        for rep in reports
    ]


class TestEquivalence:
    def test_indexed_scan_matches_plain_scan(self):
        database = _database()
        plain = DatabaseScanner(finder=_finder()).scan(database)
        indexed_scanner = DatabaseScanner(finder=_finder(), index=IndexConfig())
        indexed = indexed_scanner.scan(database)
        assert _tops(indexed) == _tops(plain)
        stats = indexed_scanner.index_stats
        assert stats["records"] == len(database)
        assert stats["skip"] + stats["defer"] + stats["full"] == len(database)
        assert stats["skip"] > 0  # the tier actually skipped something

    def test_reports_keep_input_order(self):
        database = _database()
        reports = DatabaseScanner(finder=_finder(), index=IndexConfig()).scan(
            database
        )
        assert [rep.id for rep in reports] == [seq.id for seq in database]

    def test_zero_threshold_scans_everything(self):
        database = _database(n=6)
        scanner = DatabaseScanner(finder=_finder(min_score=0.0), index=IndexConfig())
        plain = DatabaseScanner(finder=_finder(min_score=0.0)).scan(database)
        indexed = scanner.scan(database)
        assert scanner.index_stats["skip"] == 0
        assert _tops(indexed) == _tops(plain)


class TestRoutingLabels:
    def test_labels_present_only_when_indexed(self):
        database = _database(n=6)
        plain = DatabaseScanner(finder=_finder()).scan(database)
        indexed = DatabaseScanner(finder=_finder(), index=IndexConfig()).scan(
            database
        )
        assert all(rep.routed is None for rep in plain)
        assert all(rep.routed in ("skip", "defer", "full") for rep in indexed)

    def test_implanted_records_route_full(self):
        database = _database()
        reports = DatabaseScanner(finder=_finder(), index=IndexConfig()).scan(
            database
        )
        for rep in reports:
            if rep.id.startswith("rep"):
                assert rep.routed == "full"

    def test_skip_reports_are_screened_not_failed(self):
        database = _database()
        reports = DatabaseScanner(finder=_finder(), index=IndexConfig()).scan(
            database
        )
        skipped = [rep for rep in reports if rep.routed == "skip"]
        assert skipped
        for rep in skipped:
            assert not rep.failed
            assert rep.result.top_alignments == []
            assert rep.result.repeats == []
            assert rep.result.stats.engine == "index-skip"
            assert rep.result.stats.cells == 0


class TestWarmStore:
    def test_second_scan_rebuilds_nothing(self, tmp_path):
        database = _database(n=6)
        store = IndexStore(tmp_path / "index")
        cold_scanner = DatabaseScanner(
            finder=_finder(), index=IndexConfig(), index_store=store
        )
        cold = cold_scanner.scan(database)
        assert cold_scanner.index_stats["index_builds"] == len(database)
        assert cold_scanner.index_stats["index_loads"] == 0

        warm_scanner = DatabaseScanner(
            finder=_finder(),
            index=IndexConfig(),
            index_store=IndexStore(tmp_path / "index"),
        )
        warm = warm_scanner.scan(database)
        assert warm_scanner.index_stats["index_builds"] == 0
        assert warm_scanner.index_stats["index_loads"] == len(database)
        assert _tops(warm) == _tops(cold)

    def test_changed_params_rebuild(self, tmp_path):
        database = _database(n=4)
        DatabaseScanner(
            finder=_finder(),
            index=IndexConfig(),
            index_store=IndexStore(tmp_path / "index"),
        ).scan(database)
        rescanner = DatabaseScanner(
            finder=_finder(),
            index=IndexConfig(k=6),
            index_store=IndexStore(tmp_path / "index"),
        )
        rescanner.scan(database)
        assert rescanner.index_stats["index_builds"] == len(database)


class TestRank:
    def test_rank_goes_through_the_indexed_path(self):
        database = _database(n=6)
        scanner = DatabaseScanner(finder=_finder(), index=IndexConfig())
        ranked = scanner.rank(database)
        assert scanner.index_stats["records"] == len(database)
        scores = [rep.best_score for rep in ranked if not rep.failed]
        assert scores == sorted(scores, reverse=True)
