"""Tests for database scanning."""

import pytest

from repro.core import DatabaseScanner, RepeatFinder, scan_fasta
from repro.sequences import (
    DNA,
    Sequence,
    pseudo_titin,
    random_sequence,
    tandem_repeat_sequence,
    write_fasta,
)


@pytest.fixture()
def mixed_records():
    return [
        Sequence(tandem_repeat_sequence("ATGCGT", 5).codes, DNA, id="tandem"),
        Sequence(random_sequence(40, DNA, seed=3).codes, DNA, id="random"),
        Sequence("ACGT", DNA, id="tiny"),
    ]


class TestScanner:
    def test_reports_per_sequence(self, mixed_records):
        scanner = DatabaseScanner(
            finder=RepeatFinder(top_alignments=4), min_length=10
        )
        reports = scanner.scan(mixed_records)
        assert [r.id for r in reports] == ["tandem", "random"]  # tiny skipped

    def test_tandem_ranks_first(self, mixed_records):
        scanner = DatabaseScanner(finder=RepeatFinder(top_alignments=4))
        ranked = scanner.rank(mixed_records)
        assert ranked[0].id == "tandem"
        assert ranked[0].best_score > ranked[1].best_score

    def test_report_properties(self, mixed_records):
        scanner = DatabaseScanner(finder=RepeatFinder(top_alignments=4))
        tandem = scanner.rank(mixed_records)[0]
        assert tandem.length == 30
        assert tandem.is_repetitive
        assert tandem.n_families >= 1
        assert 0.5 < tandem.repeat_fraction <= 1.0

    def test_empty_input(self):
        assert DatabaseScanner().scan([]) == []

    def test_no_repeat_report(self):
        rep = DatabaseScanner(finder=RepeatFinder(top_alignments=1, min_score=1e9)).scan(
            [random_sequence(30, DNA, seed=1, id="r")]
        )[0]
        assert rep.best_score == 0.0
        assert rep.repeat_fraction == 0.0
        assert not rep.is_repetitive

    def test_masking_path(self):
        protein = Sequence("ACDEFGHIKL" + "Q" * 30 + "MNPQRSTVWY", id="polyq")
        scanner = DatabaseScanner(
            finder=RepeatFinder(top_alignments=2), mask=True
        )
        unmasked = DatabaseScanner(finder=RepeatFinder(top_alignments=2))
        masked_score = scanner.scan([protein])[0].best_score
        raw_score = unmasked.scan([protein])[0].best_score
        assert masked_score < raw_score  # the poly-Q no longer dominates


class _ExplodingFinder(RepeatFinder):
    """Raises on sequences whose id starts with 'bad'."""

    def find(self, sequence):
        if sequence.id.startswith("bad"):
            raise RuntimeError("boom on " + sequence.id)
        return super().find(sequence)


class TestPerRecordFailures:
    def _records(self):
        return [
            Sequence(tandem_repeat_sequence("ATGCGT", 5).codes, DNA, id="tandem"),
            Sequence(random_sequence(40, DNA, seed=3).codes, DNA, id="bad-one"),
            Sequence(random_sequence(40, DNA, seed=4).codes, DNA, id="random"),
        ]

    def test_failure_does_not_abort_scan(self):
        scanner = DatabaseScanner(finder=_ExplodingFinder(top_alignments=4))
        reports = scanner.scan(self._records())
        assert [r.id for r in reports] == ["tandem", "bad-one", "random"]
        failed = {r.id: r.failed for r in reports}
        assert failed == {"tandem": False, "bad-one": True, "random": False}

    def test_failed_report_shape(self):
        scanner = DatabaseScanner(finder=_ExplodingFinder(top_alignments=4))
        rep = next(r for r in scanner.scan(self._records()) if r.failed)
        assert rep.result is None
        assert rep.error == "RuntimeError: boom on bad-one"
        assert rep.length == 40
        # Derived properties degrade gracefully instead of raising.
        assert rep.best_score == 0.0
        assert rep.repeat_fraction == 0.0
        assert rep.n_families == 0
        assert not rep.is_repetitive

    def test_successful_report_has_no_error(self, mixed_records):
        reports = DatabaseScanner(finder=RepeatFinder(top_alignments=4)).scan(
            mixed_records
        )
        assert all(not r.failed and r.error is None for r in reports)

    def test_rank_sorts_failures_last(self):
        scanner = DatabaseScanner(finder=_ExplodingFinder(top_alignments=4))
        ranked = scanner.rank(self._records())
        assert ranked[-1].id == "bad-one"
        assert ranked[-1].failed
        assert ranked[0].id == "tandem"


class TestEngineKnobs:
    def test_overrides_applied_to_finder(self):
        scanner = DatabaseScanner(
            finder=RepeatFinder(top_alignments=4), engine="lanes", group=8
        )
        assert scanner.finder.engine == "lanes"
        assert scanner.finder.group == 8

    def test_no_overrides_keeps_finder(self):
        finder = RepeatFinder(top_alignments=4)
        scanner = DatabaseScanner(finder=finder)
        assert scanner.finder is finder

    def test_knobs_do_not_change_reports(self, mixed_records):
        baseline = DatabaseScanner(finder=RepeatFinder(top_alignments=4))
        batched = DatabaseScanner(
            finder=RepeatFinder(top_alignments=4), engine="lanes", group=8
        )
        expected = baseline.rank(mixed_records)
        got = batched.rank(mixed_records)
        assert [r.id for r in got] == [r.id for r in expected]
        for a, b in zip(got, expected):
            assert a.best_score == b.best_score
            assert [
                (t.r, t.score, t.pairs) for t in a.result.top_alignments
            ] == [(t.r, t.score, t.pairs) for t in b.result.top_alignments]

    def test_scoring_objects_reused_across_records(self, mixed_records):
        scanner = DatabaseScanner(
            finder=RepeatFinder(top_alignments=4), engine="lanes", group=4
        )
        scanner.scan(mixed_records)
        finder = scanner.finder
        # One engine instance and one exchange served every record.
        assert finder._engine_instance is not None
        assert finder._engine_instance is finder._engine_for_run()
        assert len(finder._exchange_cache) == 1


class TestScanFasta:
    def test_end_to_end(self, tmp_path, mixed_records):
        path = tmp_path / "db.fasta"
        write_fasta(mixed_records, path)
        reports = scan_fasta(
            path, alphabet="dna", finder=RepeatFinder(top_alignments=4)
        )
        assert reports[0].id == "tandem"

    def test_protein_default(self, tmp_path):
        path = tmp_path / "p.fasta"
        write_fasta(
            [Sequence(pseudo_titin(80, seed=2).codes, id="t80")], path
        )
        reports = scan_fasta(path, finder=RepeatFinder(top_alignments=3))
        assert len(reports) == 1
        assert reports[0].length == 80


class TestScanPayloadRoundTrip:
    def test_result_round_trips(self, mixed_records):
        from repro.core.scan import result_from_dict, result_to_dict

        scanner = DatabaseScanner(finder=RepeatFinder(top_alignments=4))
        report = scanner.scan(mixed_records)[0]
        rebuilt = result_from_dict(result_to_dict(report.result))
        assert rebuilt.top_alignments == report.result.top_alignments
        assert rebuilt.repeats == report.result.repeats
        assert rebuilt.stats.alignments == report.result.stats.alignments

    def test_document_round_trips_through_json(self, mixed_records):
        import json

        from repro.core.scan import load_scan_payload, scan_to_payload

        scanner = DatabaseScanner(finder=RepeatFinder(top_alignments=4))
        reports = scanner.scan(mixed_records)
        payload = scan_to_payload(reports, mixed_records, alphabet="dna")
        document = load_scan_payload(json.loads(json.dumps(payload)))
        assert [r.id for r in document.reports] == [r.id for r in reports]
        assert all(
            seq is not None and seq.text == orig.text
            for seq, orig in zip(
                document.sequences,
                [s for s in mixed_records if len(s) >= scanner.min_length],
            )
        )
        assert document.reports[0].result == reports[0].result

    def test_payload_without_sequences(self, mixed_records):
        from repro.core.scan import load_scan_payload, scan_to_payload

        scanner = DatabaseScanner(finder=RepeatFinder(top_alignments=4))
        reports = scanner.scan(mixed_records)
        document = load_scan_payload(scan_to_payload(reports, alphabet="dna"))
        assert all(seq is None for seq in document.sequences)
