"""Tests for the speculative lane-batched best-first driver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align import INT16_MAX, LanesEngine
from repro.core import (
    BatchedTopAlignmentRunner,
    TopAlignmentState,
    find_top_alignments,
    find_top_alignments_batched,
)
from repro.scoring import GapPenalties, match_mismatch
from repro.scoring.blosum import blosum62
from repro.sequences import PROTEIN, Sequence, pseudo_titin, tandem_repeat_sequence


def _key(alignments):
    return [(a.index, a.r, a.score, a.pairs) for a in alignments]


def _reference(seq, k, exchange, gaps, min_score=0.0):
    return find_top_alignments(
        seq, k, exchange, gaps, engine="vector", min_score=min_score
    )


def _random_protein(data, min_size=6, max_size=24):
    codes = data.draw(
        st.lists(st.integers(0, 19), min_size=min_size, max_size=max_size)
    )
    return Sequence(np.array(codes, dtype=np.int8), PROTEIN)


class TestEquivalence:
    @pytest.mark.parametrize("group", [2, 4, 8])
    @pytest.mark.parametrize("dtype", ["float64", "int32", "int16"])
    def test_titin_identical_to_sequential(self, group, dtype):
        seq = pseudo_titin(150, seed=7)
        exchange, gaps = blosum62(), GapPenalties(8, 1)
        expected, _ = _reference(seq, 8, exchange, gaps)
        engine = LanesEngine(lanes=group, dtype=dtype)
        got, stats = find_top_alignments_batched(
            seq, 8, exchange, gaps, group=group, engine=engine
        )
        assert _key(got) == _key(expected)
        assert stats.group == group
        assert stats.engine == f"lanes[{dtype}]"

    def test_group_kwarg_delegates(self):
        seq = tandem_repeat_sequence("MKTAYIAK", 5, alphabet=PROTEIN)
        exchange, gaps = blosum62(), GapPenalties(8, 1)
        expected, _ = _reference(seq, 4, exchange, gaps)
        got, stats = find_top_alignments(
            seq, 4, exchange, gaps, engine="lanes", group=4
        )
        assert _key(got) == _key(expected)
        assert stats.group == 4

    def test_min_score_respected(self):
        seq = pseudo_titin(120, seed=3)
        exchange, gaps = blosum62(), GapPenalties(8, 1)
        expected, _ = _reference(seq, 30, exchange, gaps, min_score=25.0)
        got, _ = find_top_alignments_batched(
            seq, 30, exchange, gaps, group=8, min_score=25.0
        )
        assert _key(got) == _key(expected)
        assert all(a.score > 25.0 for a in got)

    @settings(max_examples=20, deadline=None)
    @given(
        data=st.data(),
        k=st.integers(1, 5),
        group=st.sampled_from([2, 4, 8]),
        dtype=st.sampled_from(["float64", "int32", "int16"]),
    )
    def test_random_sequences(self, data, k, group, dtype):
        """Arbitrary proteins: batched == sequential, lane for lane."""
        seq = _random_protein(data)
        exchange = match_mismatch(PROTEIN, 2.0, -1.0)
        gaps = GapPenalties(2.0, 1.0)
        expected, _ = _reference(seq, k, exchange, gaps)
        engine = LanesEngine(lanes=group, dtype=dtype)
        got, _ = find_top_alignments_batched(
            seq, k, exchange, gaps, group=group, engine=engine
        )
        assert _key(got) == _key(expected)

    @settings(max_examples=15, deadline=None)
    @given(data=st.data(), match=st.sampled_from([1000, 2000, 2500]))
    def test_near_int16_saturation(self, data, match):
        """Scores pushed toward INT16_MAX: int16 lanes must still agree
        (the clamp at 32767 may never actually engage on valid scores)."""
        seq = _random_protein(data, min_size=8, max_size=20)
        exchange = match_mismatch(PROTEIN, float(match), -1.0)
        gaps = GapPenalties(2.0, 1.0)
        # Self-similarity bounds the best score by ~(len/2) matches.
        assert (len(seq) // 2) * match < INT16_MAX
        expected, _ = _reference(seq, 3, exchange, gaps)
        engine = LanesEngine(lanes=4, dtype="int16")
        got, _ = find_top_alignments_batched(
            seq, 3, exchange, gaps, group=4, engine=engine
        )
        assert _key(got) == _key(expected)


class TestWasteAccounting:
    def test_sequential_never_wastes(self):
        seq = pseudo_titin(120, seed=11)
        exchange, gaps = blosum62(), GapPenalties(8, 1)
        _, stats = _reference(seq, 6, exchange, gaps)
        assert stats.speculative_waste == 0
        assert stats.waste_ratio == 0.0
        assert stats.group == 1

    def test_batched_waste_is_bounded(self):
        seq = pseudo_titin(150, seed=11)
        exchange, gaps = blosum62(), GapPenalties(8, 1)
        state = TopAlignmentState(seq, exchange, gaps, engine="lanes")
        runner = BatchedTopAlignmentRunner(state, 8, group=8)
        _, stats = runner.run()
        # Waste never exceeds total speculative lanes, and each
        # acceptance invalidates at most group - 1 pending lanes.
        assert 0 <= stats.speculative_waste <= runner.speculative_lanes
        assert stats.speculative_waste <= (runner.group - 1) * stats.tracebacks
        assert stats.waste_ratio == stats.speculative_waste / stats.alignments

    def test_first_passes_are_not_speculation(self):
        """k=1 does first passes only — zero realignments, zero waste."""
        seq = pseudo_titin(100, seed=5)
        exchange, gaps = blosum62(), GapPenalties(8, 1)
        _, stats = find_top_alignments_batched(seq, 1, exchange, gaps, group=8)
        assert stats.realignments == 0
        assert stats.speculative_waste == 0


class TestValidation:
    def test_bad_group(self):
        seq = pseudo_titin(50, seed=1)
        exchange, gaps = blosum62(), GapPenalties(8, 1)
        with pytest.raises(ValueError, match="group"):
            find_top_alignments_batched(seq, 2, exchange, gaps, group=0)
        with pytest.raises(ValueError, match="group"):
            find_top_alignments(seq, 2, exchange, gaps, group=0)

    def test_bad_k(self):
        seq = pseudo_titin(50, seed=1)
        exchange, gaps = blosum62(), GapPenalties(8, 1)
        with pytest.raises(ValueError, match="k"):
            find_top_alignments_batched(seq, 0, exchange, gaps)

    def test_group_one_matches_sequential_stats(self):
        """The degenerate G=1 batched run performs the exact same work."""
        seq = pseudo_titin(100, seed=9)
        exchange, gaps = blosum62(), GapPenalties(8, 1)
        expected, seq_stats = _reference(seq, 5, exchange, gaps)
        got, stats = find_top_alignments_batched(
            seq, 5, exchange, gaps, group=1, engine="vector"
        )
        assert _key(got) == _key(expected)
        assert stats.alignments == seq_stats.alignments
        assert stats.realignments == seq_stats.realignments
        assert stats.speculative_waste == 0
