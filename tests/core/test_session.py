"""Tests for resumable top-alignment sessions."""

import pytest

from repro.core import find_top_alignments
from repro.core.session import TopAlignmentSession
from repro.sequences import tandem_repeat_sequence


def _key(alignments):
    return [(a.index, a.r, a.score, a.pairs) for a in alignments]


class TestSession:
    def test_incremental_equals_batch(self, small_repeat_protein, protein_scoring):
        """extend(3) + extend(3) must equal find_top_alignments(k=6)."""
        ex, gaps = protein_scoring
        expected, _ = find_top_alignments(small_repeat_protein, 6, ex, gaps)
        session = TopAlignmentSession(small_repeat_protein, ex, gaps)
        first = session.extend(3)
        second = session.extend(3)
        assert _key(first + second) == _key(expected)
        assert _key(session.alignments) == _key(expected)

    def test_extend_returns_only_new(self, tandem_dna, dna_scoring):
        ex, gaps = dna_scoring
        session = TopAlignmentSession(tandem_dna, ex, gaps)
        first = session.extend(2)
        second = session.extend(1)
        assert len(first) == 2 and len(second) == 1
        assert second[0].index == 2

    def test_incremental_work_is_cheaper(self, small_repeat_protein, protein_scoring):
        """The second batch must not repay the first pass."""
        ex, gaps = protein_scoring
        session = TopAlignmentSession(small_repeat_protein, ex, gaps)
        session.extend(3)
        before = session.stats.alignments
        session.extend(3)
        added = session.stats.alignments - before
        m = len(small_repeat_protein)
        assert added < m - 1  # far less than a fresh first pass

    def test_exhaustion(self, dna_scoring):
        ex, gaps = dna_scoring
        seq = tandem_repeat_sequence("ACG", 3)
        session = TopAlignmentSession(seq, ex, gaps)
        everything = session.extend(100)
        assert session.exhausted
        assert session.extend(5) == []
        expected, _ = find_top_alignments(seq, 100, ex, gaps)
        assert _key(everything) == _key(expected)

    def test_len(self, tandem_dna, dna_scoring):
        ex, gaps = dna_scoring
        session = TopAlignmentSession(tandem_dna, ex, gaps)
        assert len(session) == 0
        session.extend(2)
        assert len(session) == 2

    def test_k_validation(self, tandem_dna, dna_scoring):
        ex, gaps = dna_scoring
        session = TopAlignmentSession(tandem_dna, ex, gaps)
        with pytest.raises(ValueError):
            session.extend(0)

    def test_extend_until_score(self, tandem_dna, dna_scoring):
        ex, gaps = dna_scoring
        session = TopAlignmentSession(tandem_dna, ex, gaps)
        got = session.extend_until(7.0)
        assert [a.score for a in got] == [8.0, 8.0, 8.0]
        # Original threshold restored: weaker alignments still reachable.
        assert session.min_score == 0.0
        more = session.extend(2)
        assert all(a.score <= 8.0 for a in more)

    def test_min_score_constructor(self, tandem_dna, dna_scoring):
        ex, gaps = dna_scoring
        session = TopAlignmentSession(tandem_dna, ex, gaps, min_score=7.0)
        got = session.extend(10)
        assert len(got) == 3
        assert session.exhausted
