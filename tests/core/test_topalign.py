"""Tests for the new O(n³) top-alignment algorithm."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align import AlignmentProblem, full_matrix
from repro.core import TopAlignmentState, find_top_alignments
from repro.scoring import GapPenalties, match_mismatch
from repro.sequences import DNA, Sequence, tandem_repeat_sequence


def _np_seq(codes):
    return Sequence(np.asarray(codes, dtype=np.int8), DNA)


class TestFigure4:
    """The paper's ATGCATGCATGC walk-through."""

    def test_three_top_alignments(self, tandem_dna, dna_scoring):
        ex, gaps = dna_scoring
        tops, _ = find_top_alignments(tandem_dna, 3, ex, gaps)
        assert [a.score for a in tops] == [8.0, 8.0, 8.0]
        assert tops[0].pairs == ((1, 5), (2, 6), (3, 7), (4, 8))
        assert tops[1].pairs == ((1, 9), (2, 10), (3, 11), (4, 12))
        assert tops[2].pairs == ((5, 9), (6, 10), (7, 11), (8, 12))

    def test_alignments_1_and_3_do_not_concatenate(self, tandem_dna, dna_scoring):
        """§2.2: 1 and 3 stay separate because no rectangle encloses both."""
        ex, gaps = dna_scoring
        tops, _ = find_top_alignments(tandem_dna, 3, ex, gaps)
        assert tops[0].r == 4 and tops[2].r == 8

    def test_indices_are_acceptance_order(self, tandem_dna, dna_scoring):
        ex, gaps = dna_scoring
        tops, _ = find_top_alignments(tandem_dna, 3, ex, gaps)
        assert [a.index for a in tops] == [0, 1, 2]


class TestInvariants:
    @pytest.fixture(scope="class")
    def run(self, small_repeat_protein, protein_scoring):
        ex, gaps = protein_scoring
        state = TopAlignmentState(small_repeat_protein, ex, gaps)
        tops, stats = find_top_alignments(
            small_repeat_protein, 8, ex, gaps, state=state
        )
        return small_repeat_protein, ex, gaps, tops, stats, state

    def test_requested_count(self, run):
        _, _, _, tops, _, _ = run
        assert len(tops) == 8

    def test_scores_non_increasing(self, run):
        _, _, _, tops, _, _ = run
        scores = [a.score for a in tops]
        assert scores == sorted(scores, reverse=True)

    def test_pairwise_nonoverlapping(self, run):
        """No matched residue pair belongs to two top alignments."""
        _, _, _, tops, _, _ = run
        seen = set()
        for aln in tops:
            assert not (set(aln.pairs) & seen)
            seen.update(aln.pairs)

    def test_pairs_straddle_split(self, run):
        _, _, _, tops, _, _ = run
        for aln in tops:
            for i, j in aln.pairs:
                assert 1 <= i <= aln.r < j

    def test_path_ends_in_bottom_row(self, run):
        """Appendix A: top alignments end in their matrix's bottom row."""
        _, _, _, tops, _, _ = run
        for aln in tops:
            assert aln.pairs[-1][0] == aln.r

    def test_no_shadow_alignments(self, run):
        """Every accepted alignment scores the same without the triangle."""
        seq, ex, gaps, tops, _, _ = run
        for aln in tops:
            r = aln.r
            plain = AlignmentProblem(seq.codes[:r], seq.codes[r:], ex, gaps)
            matrix = full_matrix(plain)
            end_i, end_j = aln.pairs[-1]
            assert matrix[end_i, end_j - r] == aln.score

    def test_first_alignment_is_global_best(self, run):
        seq, ex, gaps, tops, _, _ = run
        from repro.align import VectorEngine

        engine = VectorEngine()
        best = max(
            engine.score(AlignmentProblem(seq.codes[:r], seq.codes[r:], ex, gaps))
            for r in range(1, len(seq))
        )
        assert tops[0].score == best

    def test_stats_counters(self, run):
        seq, _, _, tops, stats, _ = run
        m = len(seq)
        assert stats.tracebacks == len(tops)
        # alignments/realignments count *executed* fills; a pruned fill
        # (first pass or realignment) increments pruned_lanes instead.
        # Every split still gets a first look: executed first passes plus
        # prunes cover all m-1 splits, and never exceed them.
        first_pass = stats.alignments - stats.realignments
        assert first_pass <= m - 1
        assert first_pass + stats.pruned_lanes >= m - 1
        assert len(stats.realignments_per_top) == len(tops) + 1
        assert stats.cells > 0 and stats.engine_seconds > 0

    def test_realignment_fraction_below_one(self, run):
        """§3: the heuristic must beat the realign-everything strategy."""
        seq, _, _, tops, stats, _ = run
        assert stats.realignment_fraction(len(seq), len(tops)) < 0.6

    def test_triangle_contains_exactly_the_pairs(self, run):
        _, _, _, tops, _, state = run
        marked = set(state.triangle)
        expected = {pair for aln in tops for pair in aln.pairs}
        assert marked == expected


class TestTermination:
    def test_exhaustion_returns_fewer(self, dna_scoring):
        ex, gaps = dna_scoring
        seq = Sequence("ACGT", DNA)  # no internal repeat above score 0
        tops, _ = find_top_alignments(seq, 10, ex, gaps)
        assert len(tops) < 10

    def test_min_score_threshold(self, tandem_dna, dna_scoring):
        ex, gaps = dna_scoring
        tops, _ = find_top_alignments(tandem_dna, 30, ex, gaps, min_score=7.0)
        assert all(a.score > 7.0 for a in tops)
        assert len(tops) == 3  # only the three score-8 alignments survive

    def test_huge_k_terminates(self, tandem_dna, dna_scoring):
        ex, gaps = dna_scoring
        tops, _ = find_top_alignments(tandem_dna, 500, ex, gaps)
        assert len(tops) < 500

    def test_every_returned_alignment_positive(self, tandem_dna, dna_scoring):
        ex, gaps = dna_scoring
        tops, _ = find_top_alignments(tandem_dna, 500, ex, gaps)
        assert all(a.score > 0 for a in tops)


class TestValidation:
    def test_k_must_be_positive(self, tandem_dna, dna_scoring):
        ex, gaps = dna_scoring
        with pytest.raises(ValueError):
            find_top_alignments(tandem_dna, 0, ex, gaps)

    def test_sequence_too_short(self, dna_scoring):
        ex, gaps = dna_scoring
        with pytest.raises(ValueError):
            TopAlignmentState(Sequence("A", DNA), ex, gaps)

    def test_alphabet_mismatch(self, protein_scoring, tandem_dna):
        ex, gaps = protein_scoring
        with pytest.raises(ValueError, match="alphabet"):
            TopAlignmentState(tandem_dna, ex, gaps)

    def test_invalid_triangle_kind(self, tandem_dna, dna_scoring):
        ex, gaps = dna_scoring
        with pytest.raises(ValueError):
            TopAlignmentState(tandem_dna, ex, gaps, triangle="magic")

    def test_accept_requires_current(self, tandem_dna, dna_scoring):
        ex, gaps = dna_scoring
        state = TopAlignmentState(tandem_dna, ex, gaps)
        task = state.make_tasks()[0]
        with pytest.raises(ValueError, match="triangle version"):
            state.accept_task(task)

    def test_accept_rejects_nonpositive(self, tandem_dna, dna_scoring):
        ex, gaps = dna_scoring
        state = TopAlignmentState(tandem_dna, ex, gaps)
        task = state.make_tasks()[0]
        task.score = 0.0
        task.aligned_with = 0
        with pytest.raises(ValueError, match="non-positive"):
            state.accept_task(task)


class TestEngineAndTriangleChoices:
    @pytest.mark.parametrize("engine", ["scalar", "vector", "lanes", "striped"])
    def test_same_result_any_engine(self, engine, tandem_dna, dna_scoring):
        ex, gaps = dna_scoring
        base, _ = find_top_alignments(tandem_dna, 3, ex, gaps, engine="vector")
        other, _ = find_top_alignments(tandem_dna, 3, ex, gaps, engine=engine)
        assert [(a.r, a.score, a.pairs) for a in other] == [
            (a.r, a.score, a.pairs) for a in base
        ]

    @pytest.mark.parametrize("triangle", ["dense", "sparse"])
    def test_same_result_any_triangle(
        self, triangle, small_repeat_protein, protein_scoring
    ):
        ex, gaps = protein_scoring
        base, _ = find_top_alignments(small_repeat_protein, 5, ex, gaps)
        other, _ = find_top_alignments(
            small_repeat_protein, 5, ex, gaps, triangle=triangle
        )
        assert [(a.r, a.pairs) for a in other] == [(a.r, a.pairs) for a in base]


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_bottom_row_sufficiency_property(data, dna_scoring):
    """Appendix A: checking every split's bottom row finds the global optimum
    over all splits (the alignment that ends v rows higher appears in the
    bottom row of the r-v split)."""
    ex, gaps = dna_scoring
    m = data.draw(st.integers(4, 16))
    codes = np.array(
        data.draw(st.lists(st.integers(0, 3), min_size=m, max_size=m)), dtype=np.int8
    )
    best_bottom = -np.inf
    best_anywhere = -np.inf
    for r in range(1, m):
        matrix = full_matrix(AlignmentProblem(codes[:r], codes[r:], ex, gaps))
        best_bottom = max(best_bottom, matrix[-1].max())
        best_anywhere = max(best_anywhere, matrix.max())
    assert best_bottom == best_anywhere
