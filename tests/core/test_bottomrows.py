"""Tests for the bottom-row store and shadow-validity rule."""

import numpy as np
import pytest

from repro.core import BottomRowStore


class TestStore:
    def test_put_get_roundtrip(self):
        store = BottomRowStore(6)
        row = np.array([0.0, 1, 2, 3], dtype=np.float64)
        store.put(3, row)
        assert 3 in store
        assert np.array_equal(store.get(3), row)

    def test_rows_are_frozen_copies(self):
        store = BottomRowStore(6)
        row = np.array([0.0, 1, 2, 3])
        store.put(3, row)
        row[1] = 99  # caller mutation must not leak in
        assert store.get(3)[1] == 1
        with pytest.raises(ValueError):
            store.get(3)[0] = 5

    def test_write_once(self):
        store = BottomRowStore(6)
        store.put(3, np.zeros(4))
        with pytest.raises(ValueError, match="already stored"):
            store.put(3, np.zeros(4))

    def test_length_validation(self):
        store = BottomRowStore(6)
        with pytest.raises(ValueError, match="length"):
            store.put(3, np.zeros(5))

    def test_split_bounds(self):
        store = BottomRowStore(6)
        with pytest.raises(ValueError):
            store.put(0, np.zeros(7))
        with pytest.raises(ValueError):
            store.put(6, np.zeros(1))

    def test_min_length(self):
        with pytest.raises(ValueError):
            BottomRowStore(1)

    def test_len_and_nbytes(self):
        store = BottomRowStore(6)
        store.put(3, np.zeros(4))
        store.put(4, np.zeros(3))
        assert len(store) == 2
        assert store.nbytes == 7 * 8


class TestShadowValidity:
    """Appendix A: 'unequal values signify shadow realignments'."""

    def test_unchanged_cells_valid(self):
        store = BottomRowStore(6)
        store.put(3, np.array([0.0, 5, 7, 2]))
        mask = store.valid_mask(3, np.array([0.0, 5, 4, 2]))
        assert np.array_equal(mask, [True, True, False, True])

    def test_score_is_max_of_valid(self):
        store = BottomRowStore(6)
        store.put(3, np.array([0.0, 5, 7, 2]))
        # The 7 dropped to 4 (shadow); best valid is the untouched 5.
        assert store.score_of(3, np.array([0.0, 5, 4, 2])) == 5.0

    def test_all_shadowed_scores_zero(self):
        store = BottomRowStore(6)
        store.put(3, np.array([0.0, 5, 7, 2]))
        assert store.score_of(3, np.array([1.0, 4, 6, 1])) == 0.0

    def test_identical_row_scores_original_max(self):
        store = BottomRowStore(6)
        row = np.array([0.0, 5, 7, 2])
        store.put(3, row)
        assert store.score_of(3, row.copy()) == 7.0

    def test_shape_mismatch_rejected(self):
        store = BottomRowStore(6)
        store.put(3, np.zeros(4))
        with pytest.raises(ValueError, match="mismatch"):
            store.valid_mask(3, np.zeros(3))

    def test_missing_split_raises(self):
        store = BottomRowStore(6)
        with pytest.raises(KeyError):
            store.get(2)
