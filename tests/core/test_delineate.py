"""Tests for repeat delineation (Repro phase 2)."""

import pytest

from repro.core import (
    TopAlignment,
    column_classes,
    delineate_repeats,
    find_top_alignments,
)
from repro.sequences import tandem_repeat_sequence


def _aln(index, r, pairs, score=10.0):
    return TopAlignment(index=index, r=r, score=score, pairs=tuple(pairs))


class TestColumnClasses:
    def test_single_alignment_pairs(self):
        aln = _aln(0, 4, [(1, 5), (2, 6)])
        classes = column_classes([aln])
        assert classes == [{1, 5}, {2, 6}]

    def test_transitive_closure(self):
        """(1,5) and (5,9) merge into one class {1,5,9}."""
        a = _aln(0, 4, [(1, 5)])
        b = _aln(1, 8, [(5, 9)])
        assert column_classes([a, b]) == [{1, 5, 9}]

    def test_empty_input(self):
        assert column_classes([]) == []

    def test_sorted_by_min_position(self):
        aln = _aln(0, 6, [(3, 7), (1, 8)])
        classes = column_classes([aln])
        assert [min(c) for c in classes] == [1, 3]


class TestDelineation:
    def test_perfect_tandem_three_copies(self, dna_scoring):
        """ATGCATGCATGC -> copies (1,4), (5,8), (9,12)."""
        ex, gaps = dna_scoring
        seq = tandem_repeat_sequence("ATGC", 3)
        tops, _ = find_top_alignments(seq, 3, ex, gaps)
        repeats = delineate_repeats(tops, len(seq))
        assert len(repeats) == 1
        assert repeats[0].copies == ((1, 4), (5, 8), (9, 12))
        assert repeats[0].columns == 4
        assert repeats[0].n_copies == 3
        assert repeats[0].unit_length == 4.0

    def test_aac_question_from_discussion(self, dna_scoring):
        """§6's AACAACAACAAC: top alignments at every split give 4 AAC copies."""
        ex, gaps = dna_scoring
        seq = tandem_repeat_sequence("AAC", 4)
        tops, _ = find_top_alignments(seq, 6, ex, gaps)
        repeats = delineate_repeats(tops, len(seq))
        assert len(repeats) >= 1
        total_copies = sum(r.n_copies for r in repeats)
        assert total_copies >= 3

    def test_min_copy_length_filter(self):
        # Two 1-residue copies fall below the default threshold.
        aln = _aln(0, 1, [(1, 2)])
        assert delineate_repeats([aln], 2) == []
        repeats = delineate_repeats([aln], 2, min_copy_length=1)
        assert len(repeats) == 1
        assert repeats[0].copies == ((1, 1), (2, 2))

    def test_max_gap_bridges_diverged_residue(self):
        """Copies 1-2,4-5 vs 6-7,9-10 with holes at 3 and 8."""
        aln = _aln(0, 5, [(1, 6), (2, 7), (4, 9), (5, 10)])
        strict = delineate_repeats([aln], 10)
        bridged = delineate_repeats([aln], 10, max_gap=1)
        # Strict: the hole at 3/8 splits each copy -> two 2-copy families.
        assert [r.copies for r in strict] == [
            ((1, 2), (6, 7)),
            ((4, 5), (9, 10)),
        ]
        # Bridging one residue reunites them into the intended copies.
        assert len(bridged) == 1 and bridged[0].copies == ((1, 5), (6, 10))

    def test_column_revisit_splits_copies(self):
        """A run containing the same column twice cannot be one copy."""
        a = _aln(0, 2, [(1, 3), (2, 4)])
        repeats = delineate_repeats([a], 4)
        assert repeats[0].copies == ((1, 2), (3, 4))

    def test_two_independent_families(self):
        a = _aln(0, 3, [(1, 4), (2, 5)])
        b = _aln(1, 12, [(10, 13), (11, 14)])
        repeats = delineate_repeats([a, b], 14)
        assert len(repeats) == 2
        assert repeats[0].family == 0 and repeats[1].family == 1

    def test_no_alignments(self):
        assert delineate_repeats([], 10) == []

    def test_families_need_two_copies(self):
        """An isolated run (all its columns shared with nothing) is dropped."""
        # One alignment whose prefix side is filtered by min_copy_length
        # leaves a single suffix run -> no family.
        aln = _aln(0, 1, [(1, 5)])
        assert delineate_repeats([aln], 5, min_copy_length=1) != []  # both runs len 1


class TestScoreFilter:
    def test_weak_alignments_excluded_by_default(self):
        """A spurious low-scoring alignment must not merge the classes
        of a strong one (transitive-closure collapse)."""
        strong = _aln(0, 4, [(1, 5), (2, 6)], score=100.0)
        noise = _aln(1, 2, [(2, 5)], score=5.0)  # would merge both classes
        classes = column_classes([strong])
        assert len(classes) == 2
        repeats = delineate_repeats([strong, noise], 8)
        assert len(repeats) == 1
        assert repeats[0].copies == ((1, 2), (5, 6))

    def test_spacing_constraint_blocks_bad_merge(self):
        """Even without the score filter, the spacing constraint keeps
        the noise pair from collapsing the strong alignment's columns."""
        strong = _aln(0, 4, [(1, 5), (2, 6)], score=100.0)
        noise = _aln(1, 2, [(2, 5)], score=5.0)
        assert len(column_classes([strong, noise])) == 2

    def test_pure_closure_available(self):
        """min_spacing=0 restores raw transitive closure (the brittle
        behaviour, kept reachable for analysis)."""
        strong = _aln(0, 4, [(1, 5), (2, 6)], score=100.0)
        noise = _aln(1, 2, [(2, 5)], score=5.0)
        merged = column_classes([strong, noise], min_spacing=0)
        assert len(merged) == 1
        repeats = delineate_repeats(
            [strong, noise], 8, min_score_fraction=0.0, min_spacing=0
        )
        assert repeats != delineate_repeats([strong], 8)

    def test_find_repeats_exposes_fraction(self):
        from repro import find_repeats

        seq = "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQMKTAYIAKQRQISFVKSHFSRQ"
        result = find_repeats(seq, top_alignments=5, max_gap=1)
        assert any(r.n_copies == 2 for r in result.repeats)


class TestRepeatDataclass:
    def test_unit_length_empty(self):
        from repro.core import Repeat

        assert Repeat(family=0, copies=(), columns=0).unit_length == 0.0
