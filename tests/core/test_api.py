"""Tests for the high-level API (RepeatFinder / find_repeats)."""

import pytest

from repro import find_repeats
from repro.core import RepeatFinder, RepeatResult
from repro.scoring import GapPenalties, match_mismatch
from repro.sequences import DNA, Sequence, tandem_repeat_sequence


class TestFindRepeats:
    def test_tandem_dna_end_to_end(self):
        seq = tandem_repeat_sequence("ATGC", 3)
        result = find_repeats(seq, top_alignments=3)
        assert isinstance(result, RepeatResult)
        assert len(result.top_alignments) == 3
        assert len(result.repeats) == 1
        assert result.repeats[0].copies == ((1, 4), (5, 8), (9, 12))

    def test_string_input_assumed_protein(self):
        result = find_repeats("MKTAYIAKQRMKTAYIAKQR", top_alignments=2)
        assert result.top_alignments
        assert result.top_alignments[0].pairs[0] == (1, 11)

    def test_default_exchange_per_alphabet(self):
        dna_seq = tandem_repeat_sequence("ATGC", 3)
        result = find_repeats(dna_seq, top_alignments=1)
        assert result.top_alignments[0].score == 8.0  # +2/-1 scoring

    def test_explicit_scoring(self):
        seq = tandem_repeat_sequence("ATGC", 3)
        result = find_repeats(
            seq,
            top_alignments=1,
            exchange=match_mismatch(DNA, 5.0, -2.0),
            gaps=GapPenalties(4, 2),
        )
        assert result.top_alignments[0].score == 20.0

    def test_old_algorithm_same_results(self):
        seq = tandem_repeat_sequence("ATGC", 3)
        new = find_repeats(seq, top_alignments=3, algorithm="new")
        old = find_repeats(seq, top_alignments=3, algorithm="old")
        assert [(a.r, a.pairs) for a in new.top_alignments] == [
            (a.r, a.pairs) for a in old.top_alignments
        ]

    def test_min_score_filters(self):
        seq = tandem_repeat_sequence("ATGC", 3)
        result = find_repeats(seq, top_alignments=10, min_score=7.0)
        assert all(a.score > 7.0 for a in result.top_alignments)

    def test_stats_present(self):
        result = find_repeats(tandem_repeat_sequence("ATGC", 3), top_alignments=2)
        assert result.stats.alignments > 0
        assert result.stats.tracebacks == 2


class TestRepeatFinder:
    def test_reusable_across_sequences(self):
        finder = RepeatFinder(top_alignments=2)
        r1 = finder.find(tandem_repeat_sequence("ATGC", 3))
        r2 = finder.find(tandem_repeat_sequence("GGCC", 3))
        assert len(r1.top_alignments) == 2
        assert len(r2.top_alignments) == 2

    def test_invalid_algorithm(self):
        with pytest.raises(ValueError):
            RepeatFinder(algorithm="fastest")

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            RepeatFinder(top_alignments=0)

    def test_engine_selection(self):
        seq = tandem_repeat_sequence("ATGC", 3)
        for engine in ("scalar", "vector", "lanes"):
            result = RepeatFinder(top_alignments=1, engine=engine).find(seq)
            assert result.top_alignments[0].score == 8.0

    def test_delineation_knobs_forwarded(self):
        seq = tandem_repeat_sequence("ATGC", 3)
        result = RepeatFinder(top_alignments=3, min_copy_length=5).find(seq)
        assert result.repeats == []  # copies are length 4 < 5
