"""Tests for the full-analysis report."""

import pytest

from repro.core import analyze
from repro.core.report import AnalysisReport
from repro.sequences import DNA, Sequence, tandem_repeat_sequence


@pytest.fixture(scope="module")
def tandem_report():
    seq = tandem_repeat_sequence("ATGCGTA", 4, substitution_rate=0.1, seed=3)
    return analyze(seq, top_alignments=6, significance_shuffles=8)


class TestAnalyze:
    def test_structured_fields(self, tandem_report):
        assert isinstance(tandem_report, AnalysisReport)
        assert len(tandem_report.identities) == len(
            tandem_report.result.top_alignments
        )
        assert all(0.0 <= i <= 1.0 for i in tandem_report.identities)
        assert tandem_report.pvalue is not None

    def test_real_repeat_significant(self, tandem_report):
        assert tandem_report.pvalue < 0.05

    def test_no_significance_by_default(self):
        report = analyze(tandem_repeat_sequence("ATGC", 3), top_alignments=2)
        assert report.pvalue is None

    def test_string_input(self):
        report = analyze("MKTAYIAKQRMKTAYIAKQR", top_alignments=2)
        assert report.sequence.alphabet.name == "protein"
        assert report.result.top_alignments


class TestRender:
    def test_sections_present(self, tandem_report):
        text = tandem_report.render()
        assert text.startswith("REPRO analysis of tandem")
        assert "top alignments (6):" in text
        assert "repeat families (1):" in text
        assert "consensus:" in text
        assert "unit analysis: best period 7" in text
        assert "self dot plot" in text
        assert "significance vs shuffle null" in text

    def test_dotplot_optional(self, tandem_report):
        assert "self dot plot" not in tandem_report.render(dotplot=False)

    def test_msa_optional(self, tandem_report):
        with_msa = tandem_report.render(msa=True)
        without = tandem_report.render(msa=False)
        assert "alignment (" in with_msa
        assert "alignment (" not in without

    def test_identity_column_rendered(self, tandem_report):
        assert "% identity)" in tandem_report.render()

    def test_handles_no_repeats(self):
        report = analyze(
            Sequence("ACGT", DNA), top_alignments=2, max_gap=0
        )
        text = report.render()
        assert "repeat families (0):" in text


class TestExtractFamilies:
    def test_structured_models(self, tandem_report):
        from repro.core.report import FamilyModel, extract_families

        families = extract_families(
            tandem_report.sequence, tandem_report.result
        )
        assert families
        for model in families:
            assert isinstance(model, FamilyModel)
            assert model.n_copies == len(model.copies)
            start, end = model.region
            assert start == min(s for s, _ in model.copies)
            assert end == max(e for _, e in model.copies)
            assert model.consensus
            assert 0.0 <= model.identity <= 1.0

    def test_render_consumes_same_models(self, tandem_report):
        from repro.core.report import extract_families

        families = extract_families(
            tandem_report.sequence, tandem_report.result, msa=True
        )
        text = tandem_report.render(msa=True)
        for model in families:
            assert model.consensus in text
            if model.msa is not None:
                assert f"({model.msa.mean_identity:.0%} identity)" in text

    def test_msa_flag_skips_alignment(self, tandem_report):
        from repro.core.report import extract_families

        families = extract_families(
            tandem_report.sequence, tandem_report.result, msa=False
        )
        assert all(model.msa is None for model in families)
