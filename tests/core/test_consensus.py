"""Tests for unit-length selection, consensus, and tandem phasing (§6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.consensus import (
    block_identity,
    consensus_of_copies,
    phase_tandem,
    select_unit_length,
)
from repro.sequences import DNA, Sequence, tandem_repeat_sequence


class TestBlockIdentity:
    def test_perfect_tandem(self):
        codes = DNA.encode("ATGATGATG")
        assert block_identity(codes, 3) == 1.0

    def test_wrong_period_scores_lower(self):
        codes = DNA.encode("ATGATGATG")
        assert block_identity(codes, 2) < 1.0

    def test_homopolymer(self):
        assert block_identity(DNA.encode("AAAA"), 1) == 1.0

    def test_random_near_uniform(self):
        rng = np.random.default_rng(0)
        codes = rng.integers(0, 4, 4000).astype(np.int8)
        assert block_identity(codes, 5) < 0.45  # ~0.25 + majority bias


class TestUnitSelection:
    def test_paper_aac_question(self):
        """§6: AACAACAACAAC -> four occurrences of AAC, not AACAAC or A."""
        seq = Sequence("AACAACAACAAC", DNA)
        choice = select_unit_length(seq)
        assert choice.unit_length == 3
        assert choice.copies == 4
        assert choice.identity == 1.0

    def test_explicit_candidates(self):
        seq = Sequence("AACAACAACAAC", DNA)
        choice = select_unit_length(seq, candidates=[1, 3, 6])
        assert choice.unit_length == 3

    def test_homopolymer_prefers_unit_one(self):
        choice = select_unit_length(Sequence("AAAAAAAA", DNA))
        assert choice.unit_length == 1
        assert choice.copies == 8

    def test_diverged_tandem_still_found(self):
        seq = tandem_repeat_sequence("ATGCATG", 6, substitution_rate=0.15, seed=3)
        choice = select_unit_length(seq)
        assert choice.unit_length == 7

    def test_ties_prefer_shortest(self):
        # ATAT: unit 2 ('AT' x2, score 1*(1-1/2)=0.5); unit 1 identity 0.5
        # with factor 0.75 -> 0.375. Unit 2 wins outright here; construct
        # a genuine tie instead: ABAB over alphabet {A,B} with candidates
        # doubling the unit -> same identity, fewer copies, so shorter wins.
        seq = Sequence("ATATATAT", DNA)
        choice = select_unit_length(seq, candidates=[2, 4])
        assert choice.unit_length == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            select_unit_length(Sequence("A", DNA))
        with pytest.raises(ValueError):
            select_unit_length(Sequence("ATAT", DNA), candidates=[])
        with pytest.raises(ValueError):
            select_unit_length(Sequence("ATAT", DNA), candidates=[9])

    @settings(max_examples=25, deadline=None)
    @given(
        unit=st.integers(1, 5),
        copies=st.integers(3, 6),
        seed=st.integers(0, 100),
    )
    def test_property_perfect_tandems_recover_period(self, unit, copies, seed):
        """A perfect tandem's selected unit divides the true period and
        reconstructs it with full identity."""
        rng = np.random.default_rng(seed)
        base = rng.integers(0, 4, unit).astype(np.int8)
        seq = Sequence(np.tile(base, copies), DNA)
        choice = select_unit_length(seq)
        assert choice.identity == 1.0
        assert unit % choice.unit_length == 0  # may find a sub-period of base


class TestConsensus:
    def test_majority_vote(self):
        seq = Sequence("ATGCATGCATGA", DNA)  # third copy ends ...GA
        consensus = consensus_of_copies(seq, [(1, 4), (5, 8), (9, 12)])
        assert consensus.text == "ATGC"

    def test_uneven_copy_lengths_use_median(self):
        seq = Sequence("ATGCATGCATG", DNA)
        consensus = consensus_of_copies(seq, [(1, 4), (5, 8), (9, 11)])
        assert consensus.text == "ATGC"

    def test_single_copy(self):
        seq = Sequence("ATGC", DNA)
        assert consensus_of_copies(seq, [(1, 4)]).text == "ATGC"

    def test_validation(self):
        seq = Sequence("ATGC", DNA)
        with pytest.raises(ValueError):
            consensus_of_copies(seq, [])
        with pytest.raises(ValueError):
            consensus_of_copies(seq, [(0, 3)])
        with pytest.raises(ValueError):
            consensus_of_copies(seq, [(2, 9)])

    def test_alphabet_preserved(self):
        seq = Sequence("ATGCATGC", DNA)
        assert consensus_of_copies(seq, [(1, 4), (5, 8)]).alphabet is DNA


class TestPhasing:
    def test_pure_tandem_is_phase_invariant(self):
        """A clean tandem is perfect at every rotation; ties go to 0."""
        seq = Sequence("GCATGCATGCATGC", DNA)
        offset, identity = phase_tandem(seq, 4)
        assert offset == 0
        assert identity == 1.0

    def test_leading_context_fixes_the_phase(self):
        """TT | ATGC ATGC ATGC: only offset 2 aligns the copy boundaries
        — the §6 'right starting positions' situation."""
        seq = Sequence("TTATGCATGCATGC", DNA)
        offset, identity = phase_tandem(seq, 4)
        assert offset == 2
        assert identity == 1.0

    def test_aligned_tandem_prefers_zero(self):
        seq = Sequence("ATGCATGCATGC", DNA)
        offset, identity = phase_tandem(seq, 4)
        assert offset == 0 and identity == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            phase_tandem(Sequence("ATGC", DNA), 4)
