"""Tests for the override triangle (both implementations)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align import AlignmentProblem, ScalarEngine, full_matrix
from repro.core import DenseOverrideTriangle, SparseOverrideTriangle
from repro.sequences import DNA

IMPLS = [DenseOverrideTriangle, SparseOverrideTriangle]


@pytest.mark.parametrize("impl", IMPLS)
class TestTriangleBasics:
    def test_starts_empty(self, impl):
        tri = impl(10)
        assert tri.marked_count == 0
        assert tri.version == 0
        assert list(tri) == []

    def test_mark_and_contains(self, impl):
        tri = impl(10)
        tri.mark([(1, 5), (2, 6)])
        assert tri.contains(1, 5) and tri.contains(2, 6)
        assert not tri.contains(1, 6)
        assert tri.marked_count == 2

    def test_version_increments_per_mark_call(self, impl):
        tri = impl(10)
        tri.mark([(1, 5)])
        tri.mark([(2, 6)])
        assert tri.version == 2

    def test_iteration_sorted_pairs(self, impl):
        tri = impl(10)
        tri.mark([(3, 7), (1, 5), (1, 9)])
        assert list(tri) == [(1, 5), (1, 9), (3, 7)]

    def test_duplicate_mark_idempotent_count(self, impl):
        tri = impl(10)
        tri.mark([(1, 5)])
        tri.mark([(1, 5)])
        assert tri.marked_count == 1

    def test_rejects_out_of_triangle(self, impl):
        tri = impl(10)
        with pytest.raises(ValueError):
            tri.mark([(5, 5)])  # i == j
        with pytest.raises(ValueError):
            tri.mark([(0, 3)])
        with pytest.raises(ValueError):
            tri.mark([(1, 11)])

    def test_rejects_bad_length(self, impl):
        with pytest.raises(ValueError):
            impl(0)

    def test_row_mask_none_when_row_clear(self, impl):
        tri = impl(10)
        tri.mark([(2, 6)])
        assert tri.row_mask(1, 2, 10) is None

    def test_row_mask_none_when_range_misses(self, impl):
        tri = impl(10)
        tri.mark([(2, 6)])
        assert tri.row_mask(2, 7, 10) is None

    def test_row_mask_alignment(self, impl):
        tri = impl(10)
        tri.mark([(2, 6), (2, 9)])
        mask = tri.row_mask(2, 5, 10)  # columns 5..10
        assert mask is not None
        assert np.array_equal(mask, [False, True, False, False, True, False])


class TestSplitView:
    def test_view_maps_local_to_global(self):
        tri = DenseOverrideTriangle(12)
        tri.mark([(2, 7)])
        view = tri.view_for_split(4)  # rows 1..4, cols 5..12 (local x: j-4)
        mask = view.row_mask(2)
        assert mask is not None
        assert mask.sum() == 1
        assert mask[7 - 4 - 1]  # local index of global column 7

    def test_view_bounds(self):
        tri = DenseOverrideTriangle(12)
        with pytest.raises(ValueError):
            tri.view_for_split(0)
        with pytest.raises(ValueError):
            tri.view_for_split(12)


class TestOverrideSemantics:
    def test_marked_cells_become_zero(self, dna_scoring):
        """§3: entries in a top alignment are overridden with zero."""
        ex, gaps = dna_scoring
        tri = DenseOverrideTriangle(8)
        # Split r=4 of ATGCATGC; mark the perfect diagonal (i, i+4).
        tri.mark([(i, i + 4) for i in range(1, 5)])
        codes = DNA.encode("ATGCATGC")
        p = AlignmentProblem(codes[:4], codes[4:], ex, gaps, tri.view_for_split(4))
        matrix = full_matrix(p)
        for i in range(1, 5):
            assert matrix[i, i] == 0.0

    def test_override_cascades_downstream(self, dna_scoring):
        """Overriding lowers dependent entries to the right and below."""
        ex, gaps = dna_scoring
        codes = DNA.encode("ATGCATGC")
        plain = AlignmentProblem(codes[:4], codes[4:], ex, gaps)
        plain_m = full_matrix(plain)
        tri = DenseOverrideTriangle(8)
        tri.mark([(1, 5)])  # kill the first diagonal cell only
        over = AlignmentProblem(codes[:4], codes[4:], ex, gaps, tri.view_for_split(4))
        over_m = full_matrix(over)
        assert (over_m <= plain_m).all()
        assert over_m[4, 4] < plain_m[4, 4]

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_scores_monotone_under_growing_triangle(self, data, dna_scoring):
        """Property: a superset triangle never raises any matrix value —
        the invariant that makes stale queue scores upper bounds."""
        ex, gaps = dna_scoring
        m = data.draw(st.integers(4, 14))
        codes = np.array(
            data.draw(st.lists(st.integers(0, 3), min_size=m, max_size=m)),
            dtype=np.int8,
        )
        r = data.draw(st.integers(1, m - 1))
        pairs = data.draw(
            st.lists(
                st.tuples(st.integers(1, r), st.integers(r + 1, m)),
                max_size=6,
                unique=True,
            )
        )
        extra = data.draw(
            st.lists(
                st.tuples(st.integers(1, r), st.integers(r + 1, m)),
                max_size=6,
                unique=True,
            )
        )
        small = DenseOverrideTriangle(m)
        if pairs:
            small.mark(pairs)
        big = DenseOverrideTriangle(m)
        if pairs or extra:
            big.mark(pairs + extra)
        p_small = AlignmentProblem(codes[:r], codes[r:], ex, gaps, small.view_for_split(r))
        p_big = AlignmentProblem(codes[:r], codes[r:], ex, gaps, big.view_for_split(r))
        assert (full_matrix(p_big) <= full_matrix(p_small)).all()

    def test_dense_and_sparse_agree(self, dna_scoring):
        ex, gaps = dna_scoring
        rng = np.random.default_rng(1)
        m = 16
        codes = rng.integers(0, 4, m).astype(np.int8)
        pairs = [(2, 7), (3, 9), (5, 16), (1, 10)]
        dense = DenseOverrideTriangle(m)
        sparse = SparseOverrideTriangle(m)
        dense.mark(pairs)
        sparse.mark(pairs)
        for r in (4, 8, 12):
            pd = AlignmentProblem(codes[:r], codes[r:], ex, gaps, dense.view_for_split(r))
            ps = AlignmentProblem(codes[:r], codes[r:], ex, gaps, sparse.view_for_split(r))
            assert np.array_equal(
                ScalarEngine().last_row(pd), ScalarEngine().last_row(ps)
            )
