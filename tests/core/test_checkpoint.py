"""Tests for checkpoint save/restore."""

import numpy as np
import pytest

from repro.core import TopAlignmentState, find_top_alignments
from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.scoring import GapPenalties, blosum62, pam250
from repro.sequences import pseudo_titin


@pytest.fixture()
def halfway(tmp_path, protein_scoring):
    ex, gaps = protein_scoring
    seq = pseudo_titin(110, seed=13)
    state = TopAlignmentState(seq, ex, gaps)
    find_top_alignments(seq, 3, ex, gaps, state=state)
    path = tmp_path / "run.npz"
    save_checkpoint(state, path)
    return seq, ex, gaps, state, path


class TestRoundTrip:
    def test_alignments_restored(self, halfway):
        seq, ex, gaps, state, path = halfway
        restored = load_checkpoint(path, seq, ex, gaps)
        assert [(a.index, a.r, a.score, a.pairs) for a in restored.found] == [
            (a.index, a.r, a.score, a.pairs) for a in state.found
        ]

    def test_triangle_restored(self, halfway):
        seq, ex, gaps, state, path = halfway
        restored = load_checkpoint(path, seq, ex, gaps)
        assert set(restored.triangle) == set(state.triangle)
        assert restored.triangle.version == state.triangle.version

    def test_bottom_rows_restored(self, halfway):
        seq, ex, gaps, state, path = halfway
        restored = load_checkpoint(path, seq, ex, gaps)
        for r in range(1, len(seq)):
            assert (r in restored.bottom_rows) == (r in state.bottom_rows)
            if r in state.bottom_rows:
                assert np.array_equal(
                    restored.bottom_rows.get(r), state.bottom_rows.get(r)
                )

    def test_continuation_matches_uninterrupted_run(self, halfway):
        """The paper-level guarantee: resume + extend == one long run."""
        seq, ex, gaps, _, path = halfway
        full, _ = find_top_alignments(seq, 6, ex, gaps)
        restored = load_checkpoint(path, seq, ex, gaps)
        resumed, _ = find_top_alignments(seq, 6, ex, gaps, state=restored)
        assert [(a.index, a.r, a.score, a.pairs) for a in resumed] == [
            (a.index, a.r, a.score, a.pairs) for a in full
        ]


class TestValidation:
    def test_wrong_sequence_rejected(self, halfway):
        _, ex, gaps, _, path = halfway
        other = pseudo_titin(110, seed=14)
        with pytest.raises(ValueError, match="different sequence"):
            load_checkpoint(path, other, ex, gaps)

    def test_wrong_scoring_rejected(self, halfway):
        seq, _, gaps, _, path = halfway
        with pytest.raises(ValueError, match="scoring model"):
            load_checkpoint(path, seq, pam250(), gaps)

    def test_wrong_gaps_rejected(self, halfway):
        seq, ex, _, _, path = halfway
        with pytest.raises(ValueError, match="scoring model"):
            load_checkpoint(path, seq, ex, GapPenalties(3, 2))

    def test_checkpoint_before_any_acceptance(self, tmp_path, protein_scoring):
        ex, gaps = protein_scoring
        seq = pseudo_titin(60, seed=1)
        state = TopAlignmentState(seq, ex, gaps)
        path = tmp_path / "empty.npz"
        save_checkpoint(state, path)
        restored = load_checkpoint(path, seq, ex, gaps)
        assert restored.found == []
        tops, _ = find_top_alignments(seq, 2, ex, gaps, state=restored)
        base, _ = find_top_alignments(seq, 2, ex, gaps)
        assert [(a.r, a.pairs) for a in tops] == [(a.r, a.pairs) for a in base]
