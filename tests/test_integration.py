"""Cross-module integration tests: full pipelines, end to end."""

import io

import numpy as np
import pytest

from repro import find_repeats
from repro.core import (
    RepeatFinder,
    TopAlignmentSession,
    consensus_of_copies,
    find_top_alignments,
    select_unit_length,
)
from repro.scoring import GapPenalties, blosum62, match_mismatch, pam250
from repro.sequences import (
    DNA,
    PROTEIN,
    RepeatSpec,
    Sequence,
    implant_repeats,
    parse_fasta_text,
    pseudo_titin,
    write_fasta,
)


class TestGroundTruthRecovery:
    """Detector output vs the workload generator's ground truth."""

    def test_exact_tandem_recovered(self):
        wl = implant_repeats(
            160,
            RepeatSpec(unit_length=30, copies=3, substitution_rate=0.0),
            seed=21,
        )
        result = find_repeats(wl.sequence, top_alignments=6)
        truth = {(s + 1, e) for s, e in wl.intervals[0]}  # 1-based inclusive
        found = {
            copy for rep in result.repeats for copy in rep.copies
        }
        # Every true copy overlaps a found copy by >= 80 %.
        for ts, te in truth:
            overlap = max(
                (min(te, fe) - max(ts, fs) + 1) / (te - ts + 1)
                for fs, fe in found
            )
            assert overlap >= 0.8, (ts, te, sorted(found))

    def test_diverged_copies_detected(self):
        wl = implant_repeats(
            180,
            RepeatSpec(unit_length=35, copies=3, substitution_rate=0.25),
            seed=5,
        )
        result = find_repeats(wl.sequence, top_alignments=8, max_gap=2)
        assert result.top_alignments[0].score > 30
        covered = np.zeros(len(wl.sequence), dtype=bool)
        for rep in result.repeats:
            for s, e in rep.copies:
                covered[s - 1 : e] = True
        truth_cov = np.zeros(len(wl.sequence), dtype=bool)
        for s, e in wl.intervals[0]:
            truth_cov[s:e] = True
        # Majority of the true repeat region is recovered.
        assert covered[truth_cov].mean() > 0.5

    def test_no_false_families_on_random(self):
        from repro.sequences import random_sequence

        seq = random_sequence(80, DNA, seed=9)
        result = find_repeats(seq, top_alignments=3, min_score=25.0)
        assert result.repeats == []


class TestPipelines:
    def test_fasta_to_consensus(self, tmp_path):
        """FASTA in -> detect -> unit selection -> consensus out."""
        seq = Sequence("AACAACAACAAC", DNA, id="aac")
        path = tmp_path / "in.fasta"
        write_fasta(seq, path)
        from repro.sequences import read_fasta

        (record,) = read_fasta(path, DNA)
        result = find_repeats(record, top_alignments=6)
        assert result.repeats
        copies = result.repeats[0].copies
        consensus = consensus_of_copies(record, list(copies))
        choice = select_unit_length(record)
        assert choice.unit_length == 3
        assert consensus.text == "AAC" * (len(consensus) // 3)

    def test_session_feeds_delineation(self, small_repeat_protein):
        from repro.core.delineate import delineate_repeats

        session = TopAlignmentSession(
            small_repeat_protein, blosum62(), GapPenalties(8, 1)
        )
        session.extend(3)
        few = delineate_repeats(session.alignments, len(small_repeat_protein))
        session.extend(5)
        more = delineate_repeats(session.alignments, len(small_repeat_protein))
        assert len(session.alignments) == 8
        assert more  # sensitivity grows with more top alignments (§2.2)
        assert sum(r.n_copies for r in more) >= sum(r.n_copies for r in few)

    def test_scoring_models_change_results_consistently(self):
        seq = pseudo_titin(120, seed=8)
        b62 = find_top_alignments(seq, 3, blosum62(), GapPenalties(8, 1))[0]
        p250 = find_top_alignments(seq, 3, pam250(), GapPenalties(8, 1))[0]
        assert len(b62) == len(p250) == 3
        # Same machinery, different matrices: scores must both be valid
        # but need not agree.
        assert all(a.score > 0 for a in b62 + p250)

    def test_unicode_free_ascii_roundtrip(self):
        text = ">p1 desc\nMKTAYIAKQR\n>p2\nMKTAYIAKQR\n"
        records = parse_fasta_text(text)
        finder = RepeatFinder(top_alignments=1)
        reports = [finder.find(rec) for rec in records]
        assert len(reports) == 2


class TestStatsConsistency:
    def test_cells_match_alignment_sizes(self, small_repeat_protein, protein_scoring):
        ex, gaps = protein_scoring
        m = len(small_repeat_protein)
        # prune=False: the exact closed form only holds for the exhaustive
        # first pass; in-kernel pruning skips cells by design.
        _, stats = find_top_alignments(small_repeat_protein, 1, ex, gaps, prune=False)
        # First pass only: cells = sum over r of r*(m-r).
        expected = sum(r * (m - r) for r in range(1, m))
        assert stats.cells == expected

    def test_pruning_evaluates_fewer_cells(self, small_repeat_protein, protein_scoring):
        ex, gaps = protein_scoring
        m = len(small_repeat_protein)
        first_pass_area = sum(r * (m - r) for r in range(1, m))
        tops_off, _ = find_top_alignments(small_repeat_protein, 1, ex, gaps, prune=False)
        tops_on, stats = find_top_alignments(small_repeat_protein, 1, ex, gaps)
        assert [(a.r, a.score, a.pairs) for a in tops_on] == [
            (a.r, a.score, a.pairs) for a in tops_off
        ]
        assert stats.cells < first_pass_area
        assert stats.pruned_cells > 0

    def test_realignments_per_top_sums(self, small_repeat_protein, protein_scoring):
        ex, gaps = protein_scoring
        _, stats = find_top_alignments(small_repeat_protein, 5, ex, gaps)
        assert sum(stats.realignments_per_top) == stats.realignments


class TestDeterminismAcrossRuns:
    def test_everything_is_reproducible(self):
        results = [
            find_repeats(pseudo_titin(100, seed=3), top_alignments=4)
            for _ in range(2)
        ]
        a, b = results
        assert [al.pairs for al in a.top_alignments] == [
            al.pairs for al in b.top_alignments
        ]
        assert [r.copies for r in a.repeats] == [r.copies for r in b.repeats]
        assert a.stats.alignments == b.stats.alignments
