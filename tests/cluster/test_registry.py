"""Node registry: registration, heartbeats, expiry, resurrection."""

from repro.cluster.registry import NodeRegistry


def test_register_and_snapshot():
    registry = NodeRegistry()
    registry.register("n1", address="127.0.0.1:5001", pid=100)
    registry.register("n2", address="127.0.0.1:5002", pid=200)
    snapshot = registry.snapshot()
    assert sorted(snapshot) == ["n1", "n2"]
    assert snapshot["n1"]["address"] == "127.0.0.1:5001"
    assert snapshot["n1"]["alive"] is True
    assert registry.alive_count() == 2
    assert registry.registered_count() == 2


def test_heartbeat_only_for_known_nodes():
    registry = NodeRegistry()
    registry.register("n1")
    assert registry.heartbeat("n1") is True
    assert registry.heartbeat("ghost") is False


def test_mark_dead_is_idempotent_and_counts_down():
    registry = NodeRegistry()
    registry.register("n1")
    assert registry.mark_dead("n1") is True  # was alive
    assert registry.mark_dead("n1") is False  # already dead
    assert registry.alive_count() == 0
    assert registry.registered_count() == 1
    assert registry.is_alive("n1") is False


def test_reregistration_resurrects_a_dead_node():
    registry = NodeRegistry()
    registry.register("n1", pid=100)
    registry.mark_dead("n1")
    registry.register("n1", pid=101)  # the node restarted
    assert registry.is_alive("n1")
    assert registry.get("n1").pid == 101


def test_expire_reports_each_death_once():
    registry = NodeRegistry()
    registry.register("n1")
    registry.register("n2")
    registry.heartbeat("n1")
    # A huge timeout keeps both alive; a zero timeout reaps both, once.
    assert registry.expire(3600.0) == []
    newly_dead = registry.expire(0.0)
    assert sorted(newly_dead) == ["n1", "n2"]
    assert registry.expire(0.0) == []  # already dead: not re-reported


def test_record_shard_accumulates_counters():
    registry = NodeRegistry()
    registry.register("n1")
    registry.record_shard("n1", records=4)
    registry.record_shard("n1", failed=True)
    info = registry.get("n1")
    assert info.shards_done == 1
    assert info.shards_failed == 1
    assert info.records_scanned == 4
