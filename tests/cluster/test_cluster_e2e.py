"""End-to-end cluster runs: bit-identity and SIGKILL lease failover.

The acceptance contract from the roadmap: a sharded multi-record scan
over a local 3-node cluster is **bit-identical** to the single-node
:class:`DatabaseScanner`, and stays bit-identical when one node is
SIGKILLed mid-shard (the lease reaper reassigns its work).
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.cluster import (
    ClusterClient,
    Coordinator,
    CoordinatorConfig,
    NodeAgent,
    NodeConfig,
)
from repro.cluster.execution import merge_scan_reports
from repro.cluster.protocol import report_to_dict, result_to_dict
from repro.cluster.shards import merge_shard_results
from repro.core.scan import DatabaseScanner
from repro.sequences import Sequence, pseudo_titin
from repro.service.protocol import JobSpec
from repro.service.workers import build_finder

REPO = Path(__file__).resolve().parents[2]


def _records(n=7, length=48):
    """Small protein records, one deliberately below ``min_length``."""
    records = [
        {"id": f"rec{i:02d}", "sequence": pseudo_titin(length + 3 * i, seed=i).text}
        for i in range(n)
    ]
    records.insert(2, {"id": "runt", "sequence": "ACDEF"})  # skipped: < min_length
    return records


def _spec(**overrides):
    payload = {"sequence": "AA", "alphabet": "protein", "top_alignments": 3}
    payload.update(overrides)
    return JobSpec(**payload)


def _local_reports(spec, records, **options):
    scanner = DatabaseScanner(finder=build_finder(spec), **options)
    sequences = [
        Sequence(rec["sequence"].upper(), spec.alphabet, id=rec["id"])
        for rec in records
    ]
    return [report_to_dict(report) for report in scanner.scan(sequences)]


def _start_thread_nodes(coordinator, count, **config_overrides):
    agents, threads = [], []
    for i in range(count):
        agent = NodeAgent(
            NodeConfig(
                host="127.0.0.1",
                port=coordinator.port,
                node_id=f"tnode-{i}",
                **config_overrides,
            )
        )
        thread = threading.Thread(target=agent.run, daemon=True)
        thread.start()
        agents.append(agent)
        threads.append(thread)
    deadline = time.monotonic() + 10.0
    while coordinator.registry.alive_count() < count:
        if time.monotonic() > deadline:
            raise TimeoutError("nodes never registered")
        time.sleep(0.02)
    return agents, threads


@pytest.fixture()
def cluster():
    """A coordinator plus three in-thread node agents."""
    config = CoordinatorConfig(
        port=0,
        heartbeat_interval=0.2,
        node_timeout=2.0,
        lease_seconds=30.0,
        scan_shard_size=2,
        monitor_interval=0.05,
        wait_hint=0.02,
    )
    with Coordinator(config) as coordinator:
        agents, threads = _start_thread_nodes(coordinator, 3)
        try:
            yield coordinator
        finally:
            for agent in agents:
                agent.stop()


class TestScanBitIdentity:
    def test_three_node_scan_matches_single_node_scanner(self, cluster):
        spec = _spec()
        records = _records()
        job = cluster.submit_scan(spec, records)
        cluster.wait(job, timeout=60.0)
        assert job.state == "done"
        merged = merge_scan_reports(
            merge_shard_results(job.scheduler.results(), job.n_shards)
        )
        # Byte-for-byte: the JSON serialisations must be equal, not just close.
        assert json.dumps(merged, sort_keys=True) == json.dumps(
            _local_reports(spec, records), sort_keys=True
        )
        # The work actually spread: more than one node did shards.
        busy = [n for n in cluster.registry.snapshot().values() if n["shards_done"]]
        assert len(busy) >= 2

    def test_scan_options_travel_to_the_nodes(self, cluster):
        spec = _spec()
        records = _records(n=4)
        options = {"min_length": 40, "mask": True, "mask_window": 10}
        job = cluster.submit_scan(spec, records, options)
        cluster.wait(job, timeout=60.0)
        merged = merge_scan_reports(
            merge_shard_results(job.scheduler.results(), job.n_shards)
        )
        local = _local_reports(
            spec, records, min_length=40, mask=True, mask_window=10
        )
        assert json.dumps(merged, sort_keys=True) == json.dumps(local, sort_keys=True)

    def test_rows_job_matches_local_finder(self, cluster):
        spec = _spec(sequence=pseudo_titin(150, seed=11).text, top_alignments=5)
        result = cluster.execute_job_spec(spec, timeout=120.0)
        local = build_finder(spec).find(
            Sequence(spec.normalized_sequence(), spec.alphabet)
        )
        assert result_to_dict(result) == result_to_dict(local)


class TestClusterClient:
    def test_scan_stats_and_metrics_roundtrip(self, cluster):
        spec = _spec()
        records = _records(n=5)
        with ClusterClient("127.0.0.1", cluster.port) as client:
            reports = client.scan(spec, records, timeout=60.0)
            assert json.dumps(reports, sort_keys=True) == json.dumps(
                _local_reports(spec, records), sort_keys=True
            )
            stats = client.stats()
            assert stats["nodes_alive"] == 3
            assert len(stats["nodes"]) == 3
            text = client.metrics()
            assert "repro_cluster_nodes_alive 3" in text
            assert 'repro_cluster_results_total{status="ok"}' in text

    def test_unknown_job_is_a_protocol_error(self, cluster):
        from repro.cluster import ClusterError

        with ClusterClient("127.0.0.1", cluster.port) as client:
            with pytest.raises(ClusterError):
                client.job_status("cj-999999")


class TestFailover:
    def _spawn_node(self, port, node_id, delay=0.0):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        if delay:
            env["REPRO_CLUSTER_SHARD_DELAY"] = str(delay)
        return subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "cluster",
                "node",
                "--join",
                f"127.0.0.1:{port}",
                "--node-id",
                node_id,
            ],
            env=env,
            cwd=REPO,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    def test_sigkilled_node_mid_shard_is_bit_identical(self):
        config = CoordinatorConfig(
            port=0,
            heartbeat_interval=0.2,
            node_timeout=1.5,
            lease_seconds=60.0,  # deadlines never fire: death detection does
            scan_shard_size=1,
            monitor_interval=0.05,
            wait_hint=0.05,
        )
        spec = _spec()
        records = _records(n=6)
        with Coordinator(config) as coordinator:
            # The victim sleeps 30s holding each lease: it will *never*
            # finish a shard, so every record it touches must be re-run.
            victim = self._spawn_node(coordinator.port, "victim", delay=30.0)
            try:
                deadline = time.monotonic() + 15.0
                while coordinator.registry.alive_count() < 1:
                    if time.monotonic() > deadline:
                        raise TimeoutError("victim never registered")
                    time.sleep(0.02)
                job = coordinator.submit_scan(spec, records)
                while job.scheduler.in_flight() == 0:  # victim holds a lease
                    if time.monotonic() > deadline:
                        raise TimeoutError("victim never took a lease")
                    time.sleep(0.02)
                victim.kill()  # SIGKILL: no goodbye frame, no cleanup
                victim.wait(10)
                survivors, _ = _start_thread_nodes(coordinator, 2)
                try:
                    coordinator.wait(job, timeout=60.0)
                finally:
                    for agent in survivors:
                        agent.stop()
                assert job.state == "done"
                merged = merge_scan_reports(
                    merge_shard_results(job.scheduler.results(), job.n_shards)
                )
                assert json.dumps(merged, sort_keys=True) == json.dumps(
                    _local_reports(spec, records), sort_keys=True
                )
                stats = job.scheduler.stats()
                assert stats["leases_released"] >= 1  # the victim's lease
                assert coordinator.registry.is_alive("victim") is False
            finally:
                if victim.poll() is None:
                    victim.kill()
                    victim.wait(10)

    def test_node_crash_with_no_survivors_then_late_join(self):
        """The job survives a window with zero alive nodes."""
        config = CoordinatorConfig(
            port=0,
            heartbeat_interval=0.1,
            node_timeout=0.8,
            scan_shard_size=2,
            monitor_interval=0.05,
            wait_hint=0.05,
        )
        spec = _spec()
        records = _records(n=4)
        with Coordinator(config) as coordinator:
            victim = self._spawn_node(coordinator.port, "victim", delay=30.0)
            try:
                deadline = time.monotonic() + 15.0
                while coordinator.registry.alive_count() < 1:
                    if time.monotonic() > deadline:
                        raise TimeoutError("victim never registered")
                    time.sleep(0.02)
                job = coordinator.submit_scan(spec, records)
                while job.scheduler.in_flight() == 0:
                    if time.monotonic() > deadline:
                        raise TimeoutError("victim never took a lease")
                    time.sleep(0.02)
                victim.kill()
                victim.wait(10)
                # Let the monitor notice the death before anyone else joins.
                while coordinator.registry.alive_count() > 0:
                    if time.monotonic() > deadline:
                        raise TimeoutError("victim never expired")
                    time.sleep(0.02)
                agents, _ = _start_thread_nodes(coordinator, 1)
                try:
                    coordinator.wait(job, timeout=60.0)
                finally:
                    for agent in agents:
                        agent.stop()
                assert job.state == "done"
            finally:
                if victim.poll() is None:
                    victim.kill()
                    victim.wait(10)
