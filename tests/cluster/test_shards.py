"""Lease scheduling: planning, failover, stealing, first-result-wins.

Every scheduler method takes ``now`` explicitly, so these tests drive
the lease clock by hand — no sleeps, no flakes.
"""

import pytest

from repro.cluster.shards import (
    Shard,
    ShardScheduler,
    merge_shard_results,
    plan_record_shards,
    plan_row_shards,
)


class TestPlanning:
    def test_record_shards_cover_every_record_once(self):
        ranges = plan_record_shards(10, 4)
        assert ranges == [(0, 4), (4, 8), (8, 10)]

    def test_single_shard_when_fewer_records_than_size(self):
        assert plan_record_shards(3, 100) == [(0, 3)]

    def test_row_shards_partition_splits_evenly(self):
        ranges = plan_row_shards(101, 4)
        assert ranges[0][0] == 1
        assert ranges[-1][1] == 101
        for (_, stop), (start, _) in zip(ranges, ranges[1:]):
            assert stop == start
        sizes = [stop - start for start, stop in ranges]
        assert max(sizes) - min(sizes) <= 1

    def test_row_shards_never_exceed_split_count(self):
        assert len(plan_row_shards(4, 100)) <= 3

    def test_merge_requires_every_shard(self):
        with pytest.raises(Exception):
            merge_shard_results({0: "a"}, 2)
        assert merge_shard_results({1: "b", 0: "a"}, 2) == ["a", "b"]


def _scheduler(n=3, **kwargs):
    kwargs.setdefault("lease_seconds", 10.0)
    return ShardScheduler(
        [Shard(shard_id=i, payload={"shard_id": i}) for i in range(n)], **kwargs
    )


class TestLeasing:
    def test_leases_issue_in_shard_order(self):
        sched = _scheduler(3)
        ids = [sched.next_lease(f"n{i}", now=0.0).shard.shard_id for i in range(3)]
        assert ids == [0, 1, 2]

    def test_complete_finishes_the_job(self):
        sched = _scheduler(2)
        a = sched.next_lease("n1", now=0.0)
        b = sched.next_lease("n2", now=0.0)
        assert sched.complete(a.lease_id, "ra")
        assert not sched.done
        assert sched.complete(b.lease_id, "rb")
        assert sched.done
        assert sched.results() == {0: "ra", 1: "rb"}

    def test_expired_lease_is_reassigned(self):
        sched = _scheduler(1, lease_seconds=10.0)
        first = sched.next_lease("n1", now=0.0)
        assert sched.next_lease("n1", now=1.0) is None  # n1 already holds it
        expired = sched.expire(now=10.5)
        assert [lease.lease_id for lease in expired] == [first.lease_id]
        second = sched.next_lease("n2", now=11.0)
        assert second.shard.shard_id == 0
        assert second.lease_id != first.lease_id
        # The stale lease can no longer complete the shard.
        assert not sched.complete(first.lease_id, "stale")
        assert sched.complete(second.lease_id, "fresh")
        assert sched.results() == {0: "fresh"}

    def test_release_node_requeues_without_backoff(self):
        sched = _scheduler(1)
        lease = sched.next_lease("n1", now=0.0)
        released = sched.release_node("n1")
        assert [lost.lease_id for lost in released] == [lease.lease_id]
        # Immediately leasable again: a dead node is not the shard's fault.
        again = sched.next_lease("n2", now=0.0)
        assert again.shard.shard_id == lease.shard.shard_id
        assert again.attempt == 2  # the lost lease still spent an attempt

    def test_failed_shard_backs_off_before_retry(self):
        sched = _scheduler(1, backoff_base=1.0, backoff_cap=10.0)
        lease = sched.next_lease("n1", now=0.0)
        assert sched.fail(lease.lease_id, "boom", now=0.0) is True  # retrying
        assert sched.next_lease("n1", now=0.0) is None  # still backing off
        retry = sched.next_lease("n1", now=2.0)  # jitter <= base * 2^0 = 1s
        assert retry is not None
        assert retry.attempt == 2

    def test_exhausted_attempts_fail_the_job(self):
        sched = _scheduler(1, max_attempts=2, backoff_base=0.0)
        for attempt in (1, 2):
            lease = sched.next_lease("n1", now=float(attempt))
            assert lease.attempt == attempt
            retrying = sched.fail(lease.lease_id, f"boom {attempt}", now=float(attempt))
        assert retrying is False
        assert sched.failed
        assert sched.failed_shard == 0
        assert "boom 2" in sched.failure

    def test_first_result_wins_duplicates_dropped(self):
        sched = _scheduler(1)
        original = sched.next_lease("n1", now=0.0)
        stolen = sched.next_lease("n2", now=5.0)  # work stealing: duplicate
        assert stolen is not None and stolen.stolen
        assert stolen.shard.shard_id == original.shard.shard_id
        assert sched.complete(stolen.lease_id, "from-thief") is True
        assert sched.complete(original.lease_id, "from-owner") is False
        assert sched.results() == {0: "from-thief"}
        assert sched.stats()["duplicates_dropped"] == 1


class TestStealing:
    def test_steal_targets_longest_running_shard(self):
        sched = _scheduler(2)
        sched.next_lease("n1", now=0.0)  # shard 0: oldest
        sched.next_lease("n2", now=3.0)  # shard 1
        stolen = sched.next_lease("n3", now=4.0)
        assert stolen.stolen
        assert stolen.shard.shard_id == 0

    def test_never_steals_onto_the_holding_node(self):
        sched = _scheduler(1)
        sched.next_lease("n1", now=0.0)
        assert sched.next_lease("n1", now=5.0) is None

    def test_duplicate_cap_bounds_stealing(self):
        sched = _scheduler(1, max_duplicates=2)
        sched.next_lease("n1", now=0.0)
        assert sched.next_lease("n2", now=1.0) is not None  # second copy
        assert sched.next_lease("n3", now=2.0) is None  # cap reached
