"""Tests for repro.cluster — transport, registry, scheduler, end-to-end."""
