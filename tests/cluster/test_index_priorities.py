"""Index-driven shard prioritisation: promising shards lease first."""

from repro.cluster.execution import (
    index_config_from_options,
    run_scan_shard,
    scan_shard_priorities,
    scan_spec_dict,
)
from repro.cluster.protocol import scan_shard
from repro.cluster.shards import Shard, ShardScheduler
from repro.sequences import DNA, random_sequence
from repro.sequences.workloads import RepeatSpec, implant_repeats
from repro.service.protocol import JobSpec


def _records():
    """Four records: the repeat-bearing one sits *last* on purpose."""
    recs = [
        random_sequence(160, DNA, seed=100 + i, id=f"bg{i}") for i in range(3)
    ]
    recs.append(
        implant_repeats(
            160,
            RepeatSpec(unit_length=30, copies=4, substitution_rate=0.1),
            DNA,
            seed=1,
            id="rep",
        ).sequence
    )
    return [{"id": r.id, "sequence": r.text} for r in recs]


def _spec():
    return JobSpec(sequence="AA", alphabet="dna", top_alignments=4)


class TestOptions:
    def test_index_off_means_no_config(self):
        assert index_config_from_options({}) is None
        assert index_config_from_options({"index": False}) is None

    def test_index_on_builds_config(self):
        config = index_config_from_options({"index": True, "index_k": 6})
        assert config is not None and config.k == 6


class TestPriorities:
    def test_no_index_gives_flat_priorities(self):
        ranges = [(0, 2), (2, 4)]
        assert scan_shard_priorities(_spec(), _records(), ranges, {}) == [0, 0]

    def test_repeat_bearing_shard_gets_higher_priority(self):
        ranges = [(0, 2), (2, 4)]
        priorities = scan_shard_priorities(
            _spec(), _records(), ranges, {"index": True}
        )
        # The second range holds the implanted record.
        assert priorities[1] > priorities[0]

    def test_unprofileable_record_contributes_zero(self):
        records = [{"id": "bad", "sequence": ""}]
        priorities = scan_shard_priorities(
            _spec(), records, [(0, 1)], {"index": True}
        )
        assert priorities == [0]


class TestSchedulerOrdering:
    def test_high_priority_shards_lease_first(self):
        shards = [
            Shard(shard_id=0, payload={}, priority=0),
            Shard(shard_id=1, payload={}, priority=120),
            Shard(shard_id=2, payload={}, priority=40),
        ]
        scheduler = ShardScheduler(shards)
        order = [
            scheduler.next_lease("n", now=0.0).shard.shard_id for _ in range(3)
        ]
        assert order == [1, 2, 0]

    def test_ties_break_by_shard_id(self):
        shards = [Shard(shard_id=i, payload={}, priority=7) for i in range(3)]
        scheduler = ShardScheduler(shards)
        order = [
            scheduler.next_lease("n", now=0.0).shard.shard_id for _ in range(3)
        ]
        assert order == [0, 1, 2]


class TestIndexedShardExecution:
    def test_indexed_shard_matches_unindexed_reports(self):
        records = _records()
        spec = scan_spec_dict(_spec())
        base = run_scan_shard(
            scan_shard(0, spec, records, 0, {"min_length": 10})
        )
        indexed = run_scan_shard(
            scan_shard(0, spec, records, 0, {"min_length": 10, "index": True})
        )
        # Same records, same tops; only the routed label differs.
        for rep_base, rep_idx in zip(base["reports"], indexed["reports"]):
            assert rep_base["id"] == rep_idx["id"]
            assert rep_base["result"]["top_alignments"] == (
                rep_idx["result"]["top_alignments"]
            )
            assert rep_base["routed"] is None
            assert rep_idx["routed"] in ("skip", "defer", "full")
