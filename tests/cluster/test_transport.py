"""The socket transport: codec, framed channels, envelope matching."""

import threading

import numpy as np
import pytest

from repro.cluster.transport import (
    ANY,
    Channel,
    FrameError,
    Listener,
    SocketCommunicator,
    connect,
    decode_payload,
    encode_payload,
)


def _roundtrip(obj):
    return decode_payload(encode_payload(obj))


class TestCodec:
    def test_ndarray_roundtrip_preserves_dtype_and_bytes(self):
        for arr in (
            np.linspace(-3.5, 7.25, 17, dtype=np.float64),
            np.arange(12, dtype=np.int32).reshape(3, 4),
            np.array([], dtype=np.float32),
        ):
            back = _roundtrip(arr)
            assert back.dtype == arr.dtype
            assert back.shape == arr.shape
            assert back.tobytes() == arr.tobytes()

    def test_nested_containers_roundtrip(self):
        obj = {
            "rows": [(3, np.ones(4)), (4, np.zeros(2))],
            "blob": b"\x00\xff\x10",
            "meta": {"ok": True, "n": 7, "name": "shard"},
            "nothing": None,
        }
        back = _roundtrip(obj)
        assert isinstance(back["rows"][0], tuple)
        assert back["rows"][0][0] == 3
        np.testing.assert_array_equal(back["rows"][0][1], np.ones(4))
        assert back["blob"] == b"\x00\xff\x10"
        assert back["meta"] == obj["meta"]
        assert back["nothing"] is None

    def test_numpy_scalars_coerced_to_python(self):
        assert _roundtrip(np.int64(41)) == 41
        assert _roundtrip(np.float64(2.5)) == 2.5
        assert isinstance(encode_payload(np.int64(1)), int)

    def test_non_string_dict_keys_rejected(self):
        with pytest.raises(TypeError, match="keys must be str"):
            encode_payload({3: "shard"})

    def test_dunder_keys_rejected_as_codec_collisions(self):
        with pytest.raises(TypeError, match="codec tags"):
            encode_payload({"__nd__": "spoof"})

    def test_unencodable_object_rejected(self):
        with pytest.raises(TypeError, match="cannot encode"):
            encode_payload(object())


@pytest.fixture()
def channel_pair():
    """A connected (client, server) pair of framed channels."""
    listener = Listener("127.0.0.1", 0, timeout=5.0)
    accepted = {}

    def _accept():
        accepted["server"] = listener.accept(timeout=5.0)

    thread = threading.Thread(target=_accept)
    thread.start()
    client = connect("127.0.0.1", listener.port, timeout=5.0)
    thread.join(5)
    listener.close()
    server = accepted["server"]
    try:
        yield client, server
    finally:
        client.close()
        server.close()


class TestChannel:
    def test_send_recv_roundtrip(self, channel_pair):
        client, server = channel_pair
        client.send({"kind": "ready", "node_id": "n1"})
        frame = server.recv(timeout=5.0)
        assert frame == {"kind": "ready", "node_id": "n1"}

    def test_large_ndarray_frame(self, channel_pair):
        client, server = channel_pair
        row = np.random.default_rng(7).random(100_000)
        client.send({"kind": "result", "row": row})
        frame = server.recv(timeout=10.0)
        assert frame["row"].tobytes() == row.tobytes()

    def test_fifo_per_connection(self, channel_pair):
        client, server = channel_pair
        for i in range(20):
            client.send({"seq": i})
        got = [server.recv(timeout=5.0)["seq"] for _ in range(20)]
        assert got == list(range(20))

    def test_recv_timeout_raises(self, channel_pair):
        client, _ = channel_pair
        with pytest.raises(TimeoutError):
            client.recv(timeout=0.05)

    def test_peer_close_raises_frame_error(self, channel_pair):
        client, server = channel_pair
        server.close()
        with pytest.raises(FrameError):
            client.recv(timeout=5.0)

    def test_nan_rejected_not_smuggled(self, channel_pair):
        client, _ = channel_pair
        with pytest.raises(ValueError):
            client.send({"score": float("nan")})


@pytest.fixture()
def comm_pair(channel_pair):
    """Two connected communicators: rank 0 (hub) and rank 1."""
    hub_channel, peer_channel = channel_pair
    hub = SocketCommunicator(0, 2, {1: hub_channel})
    peer = SocketCommunicator(1, 2, {0: peer_channel})
    yield hub, peer


class TestSocketCommunicator:
    def test_tagged_roundtrip(self, comm_pair):
        hub, peer = comm_pair
        peer.send({"best": 12.5}, dest=0, tag=3)
        message = hub.recv(source=1, tag=3, timeout=5.0)
        assert message.source == 1
        assert message.tag == 3
        assert message.payload == {"best": 12.5}

    def test_tag_filter_buffers_non_matching_envelopes(self, comm_pair):
        hub, peer = comm_pair
        peer.send("first-tag-7", dest=0, tag=7)
        peer.send("the-tag-9", dest=0, tag=9)
        peer.send("second-tag-7", dest=0, tag=7)
        assert hub.recv(source=ANY, tag=9, timeout=5.0).payload == "the-tag-9"
        # The buffered tag-7 envelopes stay in arrival order.
        assert hub.recv(source=ANY, tag=7, timeout=5.0).payload == "first-tag-7"
        assert hub.recv(source=ANY, tag=7, timeout=5.0).payload == "second-tag-7"

    def test_any_wildcards(self, comm_pair):
        hub, peer = comm_pair
        peer.send(41, dest=0, tag=5)
        message = hub.recv(timeout=5.0)
        assert (message.source, message.tag, message.payload) == (1, 5, 41)

    def test_send_outside_world_rejected(self, comm_pair):
        hub, _ = comm_pair
        with pytest.raises(ValueError, match="outside"):
            hub.send("x", dest=2)

    def test_peer_without_channel_rejected(self, comm_pair):
        _, peer = comm_pair
        with pytest.raises(ValueError, match="star"):
            peer.send("x", dest=1)

    def test_recv_timeout(self, comm_pair):
        hub, _ = comm_pair
        with pytest.raises(TimeoutError):
            hub.recv(timeout=0.05)
