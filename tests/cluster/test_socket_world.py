"""§4.3's master/slave protocol, unchanged, over real TCP sockets.

:class:`SocketWorld` mirrors ``parallel.msgpass.World``'s
``start/comm/shutdown`` contract, so :class:`MasterRunner` and
``slave_main`` — written for multiprocessing queues — must run over
loopback sockets and produce the exact sequential top alignments.
"""

import pytest

from repro.cluster.transport import SocketWorld
from repro.core import find_top_alignments
from repro.core.topalign import TopAlignmentState
from repro.parallel.master import MasterRunner
from repro.parallel.slave import SlaveConfig, slave_main


def _key(alignments):
    return [(a.index, a.r, a.score, a.pairs) for a in alignments]


def _run_distributed_over_sockets(sequence, k, exchange, gaps, n_slaves=2):
    state = TopAlignmentState(sequence, exchange, gaps, engine="vector")
    config = SlaveConfig(
        codes=sequence.codes.tobytes(),
        m=len(sequence),
        exchange=exchange,
        gaps=gaps,
        engine="vector",
        n_threads=1,
    )
    with SocketWorld(n_slaves + 1) as world:
        world.start(slave_main, config)
        runner = MasterRunner(world.comm, state, k, slave_capacity=1)
        return runner.run()


def test_master_slave_over_sockets_matches_sequential(tandem_dna, dna_scoring):
    exchange, gaps = dna_scoring
    expected, _ = find_top_alignments(tandem_dna, 3, exchange, gaps)
    got, stats = _run_distributed_over_sockets(tandem_dna, 3, exchange, gaps)
    assert _key(got) == _key(expected)
    assert stats.tracebacks == len(got)


def test_protein_over_sockets(small_repeat_protein, protein_scoring):
    exchange, gaps = protein_scoring
    expected, _ = find_top_alignments(small_repeat_protein, 4, exchange, gaps)
    got, _ = _run_distributed_over_sockets(
        small_repeat_protein, 4, exchange, gaps
    )
    assert _key(got) == _key(expected)


def test_world_size_validated():
    with pytest.raises(ValueError):
        SocketWorld(0)
