"""Drain-on-SIGTERM: a draining node finishes its shard, loses nothing.

The contract from the gateway issue: ``repro cluster node`` receiving
SIGTERM stops taking new leases, finishes the shard it holds, reports
the result, sends a one-way ``goodbye`` and exits 0 — so rolling a
node never costs a lease timeout or a recomputed shard.  SIGKILL (no
goodbye) stays the crash path ``test_cluster_e2e`` covers.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.cluster import Coordinator, CoordinatorConfig, NodeAgent, NodeConfig
from repro.cluster.execution import merge_scan_reports
from repro.cluster.node import SHARD_DELAY_ENV
from repro.cluster.shards import merge_shard_results
from tests.cluster.test_cluster_e2e import (
    _local_reports,
    _records,
    _spec,
    _start_thread_nodes,
)

REPO = Path(__file__).resolve().parents[2]


def _config(**overrides):
    defaults = dict(
        port=0,
        heartbeat_interval=0.2,
        node_timeout=5.0,
        lease_seconds=60.0,  # deadlines never fire: drain must not need them
        scan_shard_size=1,
        monitor_interval=0.05,
        wait_hint=0.02,
    )
    defaults.update(overrides)
    return CoordinatorConfig(**defaults)


class TestInThreadDrain:
    def test_idle_node_drains_cleanly(self):
        with Coordinator(_config()) as coordinator:
            agent = NodeAgent(
                NodeConfig(host="127.0.0.1", port=coordinator.port, node_id="idle")
            )
            exit_codes = []
            thread = threading.Thread(
                target=lambda: exit_codes.append(agent.run()), daemon=True
            )
            thread.start()
            deadline = time.monotonic() + 10.0
            while coordinator.registry.alive_count() < 1:
                assert time.monotonic() < deadline, "node never registered"
                time.sleep(0.02)
            agent.request_drain()
            thread.join(10)
            assert not thread.is_alive()
            assert exit_codes == [0]
            assert agent.drained
            # goodbye is one-way: give the coordinator a beat to log it.
            deadline = time.monotonic() + 10.0
            while coordinator.registry.drained_count() < 1:
                assert time.monotonic() < deadline, "goodbye never processed"
                time.sleep(0.02)
            assert coordinator.stats()["nodes_drained"] == 1

    def test_drain_mid_job_loses_no_results(self, monkeypatch):
        """Drain one of two nodes while shards are in flight: the job
        still finishes bit-identical to the single-node scanner and the
        drained node takes no further leases."""
        monkeypatch.setenv(SHARD_DELAY_ENV, "0.2")  # every lease is slow
        spec = _spec()
        records = _records(n=6)
        with Coordinator(_config()) as coordinator:
            agents, threads = _start_thread_nodes(coordinator, 2)
            try:
                job = coordinator.submit_scan(spec, records)
                deadline = time.monotonic() + 15.0
                while job.scheduler.in_flight() == 0:
                    assert time.monotonic() < deadline, "no lease ever issued"
                    time.sleep(0.02)
                victim = agents[0]
                shards_at_drain = victim.shards_done
                victim.request_drain()
                coordinator.wait(job, timeout=60.0)
                assert job.state == "done"
                # At most the in-flight shard lands after the drain call.
                assert victim.shards_done <= shards_at_drain + 1
                threads[0].join(10)
                assert victim.drained
                while coordinator.registry.drained_count() < 1:
                    assert time.monotonic() < deadline, "goodbye never processed"
                    time.sleep(0.02)
                # Zero result loss: bit-identical to the local scanner.
                merged = merge_scan_reports(
                    merge_shard_results(job.scheduler.results(), job.n_shards)
                )
                assert json.dumps(merged, sort_keys=True) == json.dumps(
                    _local_reports(spec, records), sort_keys=True
                )
                # Drain never tripped the failover machinery.
                assert job.scheduler.stats()["leases_released"] == 0
            finally:
                for agent in agents:
                    agent.stop()

    def test_drained_is_distinct_from_dead_in_snapshot(self):
        with Coordinator(_config(node_timeout=2.0)) as coordinator:
            agents, threads = _start_thread_nodes(coordinator, 2)
            try:
                agents[0].request_drain()
                threads[0].join(10)
                deadline = time.monotonic() + 10.0
                while coordinator.registry.drained_count() < 1:
                    assert time.monotonic() < deadline
                    time.sleep(0.02)
                snapshot = coordinator.registry.snapshot()
                assert snapshot["tnode-0"]["drained"] is True
                assert snapshot["tnode-1"]["drained"] is False
                metrics = coordinator.render_metrics()
                assert "repro_cluster_nodes_drained_total 1" in metrics
            finally:
                for agent in agents:
                    agent.stop()


class TestAutoscaleSignals:
    def test_autoscale_reports_backlog_by_tenant(self, monkeypatch):
        monkeypatch.setenv(SHARD_DELAY_ENV, "0.3")
        spec = _spec()
        with Coordinator(_config()) as coordinator:
            agents, _ = _start_thread_nodes(coordinator, 1)
            try:
                job_a = coordinator.submit_scan(spec, _records(n=4), tenant="acme")
                job_b = coordinator.submit_scan(spec, _records(n=2))
                signals = coordinator.autoscale()
                assert signals["queue_depth"] >= 1
                assert signals["nodes_alive"] == 1
                assert "acme" in signals["tenant_backlog"]
                assert "public" in signals["tenant_backlog"]
                stats = coordinator.stats()
                assert stats["autoscale"]["queue_depth"] >= 1
                busy = coordinator.render_metrics()
                assert 'repro_cluster_tenant_backlog{tenant="acme"}' in busy
                coordinator.wait(job_a, timeout=60.0)
                coordinator.wait(job_b, timeout=60.0)
                # Lease latency is an EWMA of real observations.
                assert coordinator.autoscale()["lease_latency"] > 0.0
                metrics = coordinator.render_metrics()
                assert "repro_cluster_queue_depth 0" in metrics
                assert "repro_cluster_lease_latency_seconds" in metrics
                # Drained backlog reads 0, not the stale last value.
                assert 'repro_cluster_tenant_backlog{tenant="acme"} 0' in metrics
            finally:
                for agent in agents:
                    agent.stop()


class TestSigtermProcess:
    def test_sigterm_drains_the_node_process(self):
        """The real signal path: ``repro cluster node`` under SIGTERM
        finishes its shard, exits 0, and the job completes on a peer."""
        spec = _spec()
        records = _records(n=4)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        env[SHARD_DELAY_ENV] = "0.5"
        with Coordinator(_config()) as coordinator:
            proc = subprocess.Popen(
                [
                    sys.executable, "-m", "repro.cli", "cluster", "node",
                    "--join", f"127.0.0.1:{coordinator.port}",
                    "--node-id", "roller",
                ],
                env=env,
                cwd=REPO,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
            try:
                deadline = time.monotonic() + 15.0
                while coordinator.registry.alive_count() < 1:
                    assert time.monotonic() < deadline, "node never registered"
                    time.sleep(0.02)
                job = coordinator.submit_scan(spec, records)
                while job.scheduler.in_flight() == 0:
                    assert time.monotonic() < deadline, "node never took a lease"
                    time.sleep(0.02)
                proc.send_signal(signal.SIGTERM)  # mid-shard, not mid-frame
                assert proc.wait(30) == 0
                deadline = time.monotonic() + 10.0
                while coordinator.registry.drained_count() < 1:
                    assert time.monotonic() < deadline, "goodbye never processed"
                    time.sleep(0.02)
                # A fresh in-thread node finishes what the roller left.
                survivors, _ = _start_thread_nodes(coordinator, 1)
                try:
                    coordinator.wait(job, timeout=60.0)
                finally:
                    for agent in survivors:
                        agent.stop()
                assert job.state == "done"
                assert job.scheduler.stats()["leases_released"] == 0
                merged = merge_scan_reports(
                    merge_shard_results(job.scheduler.results(), job.n_shards)
                )
                assert json.dumps(merged, sort_keys=True) == json.dumps(
                    _local_reports(spec, records), sort_keys=True
                )
            finally:
                if proc.poll() is None:
                    proc.kill()
                    proc.wait(10)
