"""The service/cluster seam: POST /jobs routed cluster-wide.

An in-process HTTP server with an attached coordinator and one
in-thread node: submissions must run on the cluster (no spool queue,
no worker pool), land in the content-addressed result cache, and show
up in ``/stats`` and ``/metrics``.
"""

import threading
from http.server import ThreadingHTTPServer

import pytest

from repro.cluster import Coordinator, CoordinatorConfig
from repro.sequences import Sequence, pseudo_titin
from repro.service import ServiceClient
from repro.service.metrics import render_service_metrics
from repro.service.protocol import JobSpec, result_to_dict
from repro.service.server import ReproService, ServiceConfig, _Handler, _ServerState
from repro.service.workers import build_finder

from .test_cluster_e2e import _start_thread_nodes


@pytest.fixture()
def cluster_service(tmp_path):
    """A live HTTP service whose jobs route to a one-node cluster."""
    coordinator_config = CoordinatorConfig(
        port=0,
        heartbeat_interval=0.2,
        node_timeout=2.0,
        monitor_interval=0.05,
        wait_hint=0.02,
    )
    with Coordinator(coordinator_config) as coordinator:
        agents, _ = _start_thread_nodes(coordinator, 1)
        config = ServiceConfig(data_dir=str(tmp_path / "data"), port=0, workers=0)
        svc = ReproService(config, coordinator=coordinator)
        httpd = ThreadingHTTPServer((config.host, 0), _Handler)
        httpd.daemon_threads = True
        httpd.state = _ServerState(service=svc)
        thread = threading.Thread(
            target=httpd.serve_forever, kwargs={"poll_interval": 0.02}, daemon=True
        )
        thread.start()
        client = ServiceClient(
            f"http://127.0.0.1:{httpd.server_address[1]}", timeout=10
        )
        try:
            yield svc, client, coordinator
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join(5)
            for agent in agents:
                agent.stop()


def _payload(**overrides):
    payload = {"sequence": pseudo_titin(90, seed=5).text, "top_alignments": 3}
    payload.update(overrides)
    return payload


def test_submission_routes_to_the_cluster(cluster_service):
    svc, client, _ = cluster_service
    record = client.submit(_payload())
    assert record["state"] == "queued"
    done = client.wait(record["id"], timeout=120.0)
    assert done["state"] == "done"
    # The cluster route bypassed the spool queue entirely.
    assert svc.queue.depth() == 0
    events = [e["event"] for e in client.events(record["id"])]
    assert "claimed" in events
    queued = [e for e in client.events(record["id"]) if e["event"] == "queued"]
    assert queued[0]["route"] == "cluster"


def test_cluster_result_is_bit_identical_and_cached(cluster_service):
    svc, client, _ = cluster_service
    payload = _payload()
    record = client.submit(payload)
    done = client.wait(record["id"], timeout=120.0)
    fetched = client.result(done["id"])

    spec = JobSpec.from_dict(payload)
    local = build_finder(spec).find(
        Sequence(spec.normalized_sequence(), spec.alphabet)
    )
    expected = result_to_dict(local, digest=done["digest"], spec=spec)
    # Alignments/repeats bit-identical; work counters legitimately differ
    # (the nodes' first pass is counted once, not per-realignment replay).
    assert fetched["top_alignments"] == expected["top_alignments"]
    assert fetched["repeats"] == expected["repeats"]

    # Same digest resubmitted: born done from the content-addressed cache.
    again = client.submit(payload)
    assert again["from_cache"] is True


def test_stats_and_metrics_expose_the_cluster(cluster_service):
    svc, client, _ = cluster_service
    stats = client.stats()
    assert stats["cluster"]["nodes_alive"] == 1
    text = render_service_metrics(svc)
    assert "repro_cluster_nodes_alive 1" in text
    assert "repro_cluster_leases_issued_total" in text
    # The service families are still there: the prefixes do not collide.
    assert "repro_service_queue_depth" in text


def test_no_live_nodes_falls_back_to_the_spool_queue(tmp_path):
    """Attaching a coordinator never makes the service less available."""
    with Coordinator(CoordinatorConfig(port=0)) as coordinator:
        config = ServiceConfig(data_dir=str(tmp_path / "data"), port=0, workers=0)
        svc = ReproService(config, coordinator=coordinator)
        record, from_cache = svc.submit(_payload())
        assert not from_cache
        assert svc.queue.depth() == 1  # spooled, not routed to the empty cluster
