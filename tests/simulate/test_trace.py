"""Tests for simulation tracing and the first-pass oracle."""

import pytest

from repro.scoring import GapPenalties, blosum62
from repro.sequences import pseudo_titin
from repro.simulate import (
    AlignmentOracle,
    ClusterConfig,
    ClusterSimulator,
    FirstPassOracle,
    TraceRecorder,
    simulate_first_pass,
)
from repro.simulate.trace import Span


class TestSpanAndRecorder:
    def test_span_duration(self):
        assert Span(0, 1.0, 3.5, "align", 5).duration == 2.5

    def test_recorder_rejects_negative_span(self):
        with pytest.raises(ValueError):
            TraceRecorder().record(0, 2.0, 1.0, "align", 1)

    def test_report_validation(self):
        with pytest.raises(ValueError):
            TraceRecorder().report(makespan=0.0, n_workers=1)


class TestTracedSimulation:
    @pytest.fixture(scope="class")
    def traced(self):
        seq = pseudo_titin(150, seed=4)
        oracle = AlignmentOracle(seq, blosum62(), GapPenalties(8, 1))
        recorder = TraceRecorder()
        sim = ClusterSimulator(
            oracle, ClusterConfig(processors=4, tier="sse"), trace=recorder
        )
        result = sim.run(3)
        return recorder, result

    def test_spans_cover_all_executions(self, traced):
        recorder, result = traced
        aligns = [s for s in recorder.spans if s.kind == "align"]
        tracebacks = [s for s in recorder.spans if s.kind == "traceback"]
        assert len(aligns) == result.alignments_executed
        assert len(tracebacks) == len(result.top_alignments)

    def test_spans_within_makespan(self, traced):
        recorder, result = traced
        for span in recorder.spans:
            assert 0.0 <= span.start <= span.end
            # Speculative aligns may finish after the last acceptance.
            assert span.start <= result.makespan * 1.5

    def test_no_overlap_per_cpu(self, traced):
        """A CPU never runs two spans at once."""
        recorder, _ = traced
        by_cpu: dict[int, list[Span]] = {}
        for span in recorder.spans:
            by_cpu.setdefault(span.cpu, []).append(span)
        for spans in by_cpu.values():
            spans.sort(key=lambda s: s.start)
            for a, b in zip(spans, spans[1:]):
                assert b.start >= a.end - 1e-12

    def test_report_quantities(self, traced):
        recorder, result = traced
        report = recorder.report(result.makespan, n_workers=3)
        assert 0.0 < report.mean_utilisation <= 1.0
        assert 0.0 <= report.idle_fraction < 1.0
        assert 0.0 < report.traceback_fraction < 1.0
        assert report.align_time > 0 and report.traceback_time > 0

    def test_gantt_renders(self, traced):
        recorder, result = traced
        report = recorder.report(result.makespan, n_workers=3)
        chart = report.gantt(width=40)
        lines = chart.splitlines()
        assert len(lines) >= 3
        assert all("|" in line for line in lines)
        assert any("#" in line for line in lines)
        assert any("T" in line for line in lines)  # the master's tracebacks

    def test_traceback_fraction_explains_efficiency(self, traced):
        """The paper's story: efficiency loss ~ sequential traceback share
        plus idle workers.  Sanity-check the accounting is consistent."""
        recorder, result = traced
        report = recorder.report(result.makespan, n_workers=3)
        assert report.traceback_fraction + report.mean_utilisation > 0.3


class TestFirstPassOracle:
    def test_scores_peak_at_winner(self):
        oracle = FirstPassOracle(100, winner_r=60)
        assert oracle.score(60, 0) > oracle.score(59, 0) > oracle.score(10, 0)

    def test_default_winner_is_middle(self):
        assert FirstPassOracle(100).winner_r == 50

    def test_only_version_zero(self):
        oracle = FirstPassOracle(100)
        with pytest.raises(ValueError):
            oracle.score(10, 1)

    def test_single_acceptance(self):
        oracle = FirstPassOracle(100)
        alignment = oracle.accept(50, 0)
        assert alignment.r == 50
        assert len(alignment.pairs) == 50
        with pytest.raises(ValueError):
            oracle.accept(50, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            FirstPassOracle(1)
        with pytest.raises(ValueError):
            FirstPassOracle(10, winner_r=10)

    def test_simulate_first_pass_accepts_middle(self):
        result = simulate_first_pass(
            200, ClusterConfig(processors=4, tier="sse")
        )
        assert len(result.top_alignments) == 1
        assert result.top_alignments[0].r == 100
        assert result.makespan > 0
