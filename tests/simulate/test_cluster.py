"""Tests for the cluster simulator and the alignment oracle."""

import numpy as np
import pytest

from repro.core import find_top_alignments
from repro.simulate import (
    AlignmentOracle,
    ClusterConfig,
    ClusterSimulator,
    VersionedTriangle,
    simulate_cluster,
)
from repro.sequences import pseudo_titin, tandem_repeat_sequence


@pytest.fixture(scope="module")
def titin_240(protein_scoring_module):
    ex, gaps = protein_scoring_module
    seq = pseudo_titin(240, seed=5)
    oracle = AlignmentOracle(seq, ex, gaps)
    return seq, ex, gaps, oracle


@pytest.fixture(scope="module")
def protein_scoring_module():
    from repro.scoring import GapPenalties, blosum62

    return blosum62(), GapPenalties(8, 1)


class TestVersionedTriangle:
    def test_mask_per_version(self):
        tri = VersionedTriangle(10)
        tri.mark(((1, 5),), 0)
        tri.mark(((2, 6),), 1)
        v0 = tri.view(4, 0)
        v1 = tri.view(4, 1)
        v2 = tri.view(4, 2)
        assert v0.row_mask(1) is None
        assert v1.row_mask(1) is not None and v1.row_mask(2) is None
        assert v2.row_mask(2) is not None

    def test_double_mark_rejected(self):
        tri = VersionedTriangle(10)
        tri.mark(((1, 5),), 0)
        with pytest.raises(ValueError, match="twice"):
            tri.mark(((1, 5),), 1)

    def test_bounds(self):
        tri = VersionedTriangle(10)
        with pytest.raises(ValueError):
            tri.mark(((5, 5),), 0)


class TestOracle:
    def test_matches_real_algorithm(self, titin_240):
        """The oracle-driven simulation discovers the real acceptance
        sequence — the simulator's ground-truth property."""
        seq, ex, gaps, oracle = titin_240
        sim = ClusterSimulator(
            oracle,
            ClusterConfig(processors=1, tier="sse", dedicated_master=False),
        )
        result = sim.run(5)
        real, _ = find_top_alignments(seq, 5, ex, gaps)
        assert [(a.r, a.score, a.pairs) for a in result.top_alignments] == [
            (a.r, a.score, a.pairs) for a in real
        ]

    def test_score_memoised(self, titin_240):
        _, _, _, oracle = titin_240
        before = oracle.cells_computed
        s1 = oracle.score(100, 0)
        mid = oracle.cells_computed
        s2 = oracle.score(100, 0)
        assert s1 == s2
        assert oracle.cells_computed == mid  # second call was free
        assert mid >= before

    def test_version_beyond_known_rejected(self, titin_240):
        _, _, _, oracle = titin_240
        with pytest.raises(ValueError, match="not yet reached"):
            oracle.score(10, 999)

    def test_out_of_order_acceptance_rejected(self, titin_240):
        _, _, _, oracle = titin_240
        with pytest.raises(ValueError, match="in order"):
            oracle.accept(3, len(oracle.acceptances) + 5)


class TestSimulator:
    def test_more_processors_never_slower(self, titin_240):
        _, _, _, oracle = titin_240
        makespans = []
        for P in (2, 4, 8, 16):
            result = ClusterSimulator(
                oracle, ClusterConfig(processors=P, tier="sse")
            ).run(3)
            makespans.append(result.makespan)
        assert makespans == sorted(makespans, reverse=True)

    def test_speedup_bounded_by_workers_times_tier(self, titin_240):
        """Speedup vs the conventional sequential run cannot exceed
        (P-1 workers) x (sse/conventional rate ratio)."""
        _, _, _, oracle = titin_240
        base = ClusterSimulator(
            oracle,
            ClusterConfig(processors=1, tier="conventional", dedicated_master=False),
        ).run(2)
        for P in (2, 8):
            result = ClusterSimulator(
                oracle, ClusterConfig(processors=P, tier="sse")
            ).run(2)
            speedup = base.makespan / result.makespan
            bound = (P - 1) * result.config.machine.improvement("sse") * 1.001
            assert 0 < speedup <= bound

    def test_acceptance_times_monotone(self, titin_240):
        _, _, _, oracle = titin_240
        result = ClusterSimulator(
            oracle, ClusterConfig(processors=4, tier="sse")
        ).run(5)
        assert result.acceptance_times == sorted(result.acceptance_times)
        assert result.makespan == result.acceptance_times[-1]

    def test_identical_results_across_processor_counts(self, titin_240):
        seq, ex, gaps, oracle = titin_240
        results = [
            ClusterSimulator(oracle, ClusterConfig(processors=P, tier="sse")).run(4)
            for P in (2, 16, 64)
        ]
        keys = [
            [(a.r, a.score) for a in res.top_alignments] for res in results
        ]
        assert keys[0] == keys[1] == keys[2]

    def test_speculation_overhead_nonnegative(self, titin_240):
        seq, ex, gaps, oracle = titin_240
        result = simulate_cluster(
            seq, 4, ex, gaps, config=ClusterConfig(processors=16, tier="sse"),
            oracle=oracle,
        )
        assert result.alignments_sequential > 0
        assert result.speculation_overhead >= 0.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(processors=0)
        with pytest.raises(ValueError):
            ClusterConfig(processors=1, dedicated_master=True)
        with pytest.raises(ValueError):
            ClusterConfig(processors=2, dedicated_master=False)

    def test_k_validation(self, titin_240):
        _, _, _, oracle = titin_240
        sim = ClusterSimulator(oracle, ClusterConfig(processors=2))
        with pytest.raises(ValueError):
            sim.run(0)

    def test_exhaustion_short_sequence(self, dna_scoring):
        ex, gaps = dna_scoring
        seq = tandem_repeat_sequence("ATGC", 3)
        oracle = AlignmentOracle(seq, ex, gaps)
        result = ClusterSimulator(
            oracle, ClusterConfig(processors=4, tier="sse")
        ).run(50)
        assert len(result.top_alignments) < 50
        assert len(result.top_alignments) >= 3
