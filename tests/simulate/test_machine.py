"""Tests for the calibrated machine models."""

import pytest

from repro.simulate import PENTIUM3, PENTIUM4, MachineModel


class TestPaperCalibration:
    """The models must reproduce Table 2's published ratios."""

    def test_p3_sse_improvement_is_6_9(self):
        assert PENTIUM3.improvement("sse") == pytest.approx(6.9, abs=0.05)

    def test_p4_sse_improvement_is_6_0(self):
        assert PENTIUM4.improvement("sse") == pytest.approx(6.0, abs=0.05)

    def test_p4_sse2_improvement_is_9_8(self):
        assert PENTIUM4.improvement("sse2") == pytest.approx(9.8, abs=0.05)

    def test_p3_conventional_time_for_largest_titin_matrix(self):
        """§5: 'up to 5.2 seconds for the largest matrices (17175x17175)'."""
        cells = 17175 * 17175
        assert PENTIUM3.align_seconds(cells, "conventional") == pytest.approx(5.2)

    def test_p4_sse2_rate_above_one_billion(self):
        """§5.1: 'more than a billion matrix entries per second'."""
        assert PENTIUM4.rates["sse2"] > 1e9

    def test_das2_nodes_are_dual_cpu(self):
        assert PENTIUM3.cpus_per_node == 2


class TestMachineModel:
    def test_unknown_tier_raises(self):
        with pytest.raises(KeyError, match="no tier"):
            PENTIUM3.rate("avx512")

    def test_smp_contention(self):
        """§5.2: non-cache-aware kernels gain only 25 % from CPU 2."""
        bus_bound = MachineModel(
            name="no-stripes", rates={"sse": 1e8}, smp_efficiency=0.625
        )
        single = bus_bound.rate("sse", busy_cpus=1)
        dual_each = bus_bound.rate("sse", busy_cpus=2)
        assert 2 * dual_each / single == pytest.approx(1.25)

    def test_cache_aware_smp_scales_fully(self):
        """§5.2: cache-aware kernels double with the second CPU."""
        assert PENTIUM3.rate("sse", busy_cpus=2) == PENTIUM3.rate("sse")

    def test_align_seconds_linear_in_cells(self):
        assert PENTIUM3.align_seconds(2_000_000, "sse") == pytest.approx(
            2 * PENTIUM3.align_seconds(1_000_000, "sse")
        )

    def test_traceback_adds_path_overhead(self):
        base = PENTIUM3.align_seconds(1000, "conventional")
        with_path = PENTIUM3.traceback_seconds(1000, 500, "conventional")
        assert with_path > base
