"""Tests for the cluster sweep API."""

import csv
import io

import pytest

from repro.scoring import GapPenalties, blosum62
from repro.sequences import pseudo_titin
from repro.simulate import AlignmentOracle
from repro.simulate.sweep import records_to_csv, sweep_cluster


@pytest.fixture(scope="module")
def sweep():
    seq = pseudo_titin(130, seed=3)
    ex, gaps = blosum62(), GapPenalties(8, 1)
    oracle = AlignmentOracle(seq, ex, gaps)
    return sweep_cluster(
        seq, ex, gaps, processors=(2, 8), ks=(1, 3), oracle=oracle
    )


class TestSweep:
    def test_grid_size(self, sweep):
        assert len(sweep) == 4
        assert {(r.processors, r.k) for r in sweep} == {
            (2, 1), (8, 1), (2, 3), (8, 3),
        }

    def test_speedups_consistent(self, sweep):
        for record in sweep:
            assert record.speedup_vs_conventional > record.speedup_vs_tier > 0
            assert record.efficiency == pytest.approx(
                record.speedup_vs_tier / (record.processors - 1)
            )
            assert 0 < record.efficiency <= 1.001

    def test_monotone_in_processors(self, sweep):
        by_k = {}
        for record in sweep:
            by_k.setdefault(record.k, []).append(record)
        for records in by_k.values():
            records.sort(key=lambda r: r.processors)
            makespans = [r.makespan for r in records]
            assert makespans == sorted(makespans, reverse=True)

    def test_speculation_nonnegative(self, sweep):
        assert all(r.speculation_overhead >= 0 for r in sweep)


class TestCsv:
    def test_roundtrip(self, sweep, tmp_path):
        path = tmp_path / "sweep.csv"
        text = records_to_csv(sweep, path)
        assert path.read_text() == text
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == len(sweep)
        assert rows[0]["machine"] == "pentium3"
        assert float(rows[0]["makespan"]) > 0

    def test_empty(self):
        assert records_to_csv([]) == ""
