"""Tests for the network model."""

import pytest

from repro.simulate import NetworkModel


class TestNetworkModel:
    def test_latency_plus_bandwidth(self):
        net = NetworkModel(latency=1e-5, bandwidth=1e8)
        assert net.transfer_seconds(1_000_000) == pytest.approx(1e-5 + 0.01)

    def test_zero_bytes_costs_latency(self):
        net = NetworkModel(latency=5e-6)
        assert net.transfer_seconds(0) == pytest.approx(5e-6)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel().transfer_seconds(-1)

    def test_per_endpoint_accounting(self):
        net = NetworkModel()
        net.transfer_seconds(1000, endpoint=1)
        net.transfer_seconds(500, endpoint=1)
        net.transfer_seconds(200, endpoint=2)
        assert net.bytes_by_endpoint == {1: 1500, 2: 200}
        assert net.messages == 3

    def test_endpoint_rates(self):
        net = NetworkModel()
        net.transfer_seconds(64_000, endpoint=1)
        assert net.endpoint_rate(1, elapsed=1.0) == 64_000
        assert net.endpoint_rate(1, elapsed=0.0) == 0.0
        assert net.endpoint_rate(9, elapsed=1.0) == 0.0

    def test_peak_rate(self):
        net = NetworkModel()
        assert net.peak_endpoint_rate(1.0) == 0.0
        net.transfer_seconds(100, endpoint=1)
        net.transfer_seconds(900, endpoint=2)
        assert net.peak_endpoint_rate(1.0) == 900
