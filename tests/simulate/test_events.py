"""Tests for the discrete-event engine."""

import pytest

from repro.simulate import EventLoop


class TestEventLoop:
    def test_pop_order_by_time(self):
        loop = EventLoop()
        loop.schedule(3.0, "c")
        loop.schedule(1.0, "a")
        loop.schedule(2.0, "b")
        assert [loop.pop().kind for _ in range(3)] == ["a", "b", "c"]

    def test_clock_advances_monotonically(self):
        loop = EventLoop()
        loop.schedule(1.0, "a")
        loop.schedule(5.0, "b")
        loop.pop()
        assert loop.now == 1.0
        loop.pop()
        assert loop.now == 5.0

    def test_ties_resolve_by_priority_then_insertion(self):
        loop = EventLoop()
        loop.schedule(1.0, "second", priority=1)
        loop.schedule(1.0, "first", priority=0)
        loop.schedule(1.0, "third", priority=1)
        assert [loop.pop().kind for _ in range(3)] == ["first", "second", "third"]

    def test_cannot_schedule_into_past(self):
        loop = EventLoop()
        loop.schedule(2.0, "a")
        loop.pop()
        with pytest.raises(ValueError, match="past"):
            loop.schedule(1.0, "b")

    def test_payload_roundtrip(self):
        loop = EventLoop()
        loop.schedule(1.0, "x", payload={"r": 7})
        assert loop.pop().payload == {"r": 7}

    def test_empty_pop_raises(self):
        with pytest.raises(IndexError):
            EventLoop().pop()

    def test_len_and_bool(self):
        loop = EventLoop()
        assert not loop
        loop.schedule(1.0, "a")
        assert loop and len(loop) == 1
