"""Registry + instrument correctness: identity, bucketing, thread safety."""

from __future__ import annotations

import pickle
import threading

import pytest

from repro.obs import LATENCY_BUCKETS, MetricsRegistry, NullRegistry
from repro.obs.registry import _NULL


class TestCounter:
    def test_increments_accumulate(self):
        counter = MetricsRegistry().counter("repro_things_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("repro_things_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_concurrent_increments_from_threads(self):
        """No lost updates: N threads x M incs lands on exactly N*M."""
        counter = MetricsRegistry().counter("repro_races_total")
        n_threads, n_incs = 8, 5000

        def spin():
            for _ in range(n_incs):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == n_threads * n_incs


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("repro_depth")
        gauge.set(7)
        gauge.inc(3)
        gauge.dec()
        assert gauge.value == 9.0


class TestHistogram:
    def test_boundary_values_use_le_semantics(self):
        """A value exactly on a bound lands in that bucket (le=bound)."""
        h = MetricsRegistry().histogram("repro_h", buckets=(1.0, 2.0, 5.0))
        for value in (1.0, 1.5, 5.0, 7.0):
            h.observe(value)
        assert h.cumulative_buckets() == [
            (1.0, 1),
            (2.0, 2),
            (5.0, 3),
            (float("inf"), 4),
        ]
        assert h.count == 4
        assert h.sum == pytest.approx(14.5)

    def test_cumulative_counts_are_monotone(self):
        h = MetricsRegistry().histogram("repro_h", buckets=LATENCY_BUCKETS)
        for value in (0.0005, 0.02, 0.02, 3.0, 400.0):
            h.observe(value)
        counts = [n for _, n in h.cumulative_buckets()]
        assert counts == sorted(counts)
        assert counts[-1] == 5

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("repro_h", buckets=(2.0, 1.0))

    def test_duplicate_buckets_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("repro_h", buckets=(1.0, 1.0))

    def test_empty_buckets_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("repro_h", buckets=())


class TestTimer:
    def test_observes_elapsed_into_histogram(self):
        registry = MetricsRegistry()
        with registry.timer("repro_phase_seconds") as timer:
            pass
        histogram = registry.histogram("repro_phase_seconds")
        assert histogram.count == 1
        assert timer.elapsed >= 0.0
        assert histogram.sum == pytest.approx(timer.elapsed)


class TestRegistry:
    def test_same_name_and_labels_return_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total", engine="lanes")
        b = registry.counter("repro_x_total", engine="lanes")
        c = registry.counter("repro_x_total", engine="vector")
        assert a is b
        assert a is not c

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total", a="1", b="2")
        b = registry.counter("repro_x_total", b="2", a="1")
        assert a is b

    def test_help_recorded_once(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", help="first wins")
        registry.counter("repro_x_total", help="ignored")
        assert registry.help_for("repro_x_total") == "first wins"

    def test_instruments_sorted_for_stable_output(self):
        registry = MetricsRegistry()
        registry.counter("repro_b_total")
        registry.counter("repro_a_total")
        names = [i.name for i in registry.instruments()]
        assert names == sorted(names)

    def test_snapshot_shapes(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total").inc(3)
        registry.histogram("repro_h", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["repro_x_total"][0]["value"] == 3.0
        entry = snap["repro_h"][0]
        assert entry["count"] == 1
        assert entry["buckets"][-1]["le"] == "+Inf"
        assert entry["buckets"][-1]["count"] == 1


class TestNullRegistry:
    def test_not_collecting(self):
        assert NullRegistry().collecting is False
        assert MetricsRegistry.collecting is True

    def test_every_factory_returns_shared_noop(self):
        registry = NullRegistry()
        assert registry.counter("a") is _NULL
        assert registry.gauge("b") is _NULL
        assert registry.histogram("c") is _NULL
        assert registry.timer("d") is _NULL

    def test_noop_instrument_absorbs_everything(self):
        null = NullRegistry().counter("a")
        null.inc()
        null.dec()
        null.set(5)
        null.observe(1.0)
        with null:
            pass
        assert null.value == 0.0
        assert NullRegistry().snapshot() == {}


class TestRunStatsMirrors:
    def test_stats_mirror_into_registry_when_collecting(self):
        from repro import obs
        from repro.core.result import RunStats

        registry = MetricsRegistry()
        obs.set_registry(registry)
        stats = RunStats()
        stats.cells += 100
        stats.alignments += 2
        assert registry.counter("repro_cells_total").value == 100
        assert registry.counter("repro_alignments_total").value == 2

    def test_stats_do_not_register_anything_when_off(self):
        from repro import obs
        from repro.core.result import RunStats

        obs.disable()
        stats = RunStats()
        stats.cells += 100
        assert stats.cells == 100
        assert obs.get_registry().snapshot() == {}

    def test_pickle_roundtrip_rebinds_mirrors(self):
        from repro import obs
        from repro.core.result import RunStats

        registry = MetricsRegistry()
        obs.set_registry(registry)
        stats = RunStats()
        stats.cells += 50
        clone = pickle.loads(pickle.dumps(stats))
        assert clone == stats
        clone.cells += 1
        assert registry.counter("repro_cells_total").value == 51
