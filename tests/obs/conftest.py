"""Isolation for process-global observability state.

``repro.obs`` holds one registry/tracer pair per process; every test in
this package gets a clean pair and a neutral ``REPRO_METRICS``
environment, and leaves collection off for whoever runs next.
"""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def obs_isolation(monkeypatch):
    monkeypatch.delenv(obs.METRICS_ENV, raising=False)
    obs.reset()
    yield
    obs.disable()
    obs.reset()
