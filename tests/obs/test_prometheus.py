"""Text-exposition rendering: headers, labels, histogram series, escaping."""

from __future__ import annotations

import re

from repro.obs import CONTENT_TYPE, MetricsRegistry, NullRegistry, render_prometheus

#: One exposition sample line: name{labels} value.
SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"
    r" (?:[+-]?(?:Inf|NaN|[0-9.eE+-]+))$"
)


def _samples(text: str) -> dict[str, float]:
    out: dict[str, float] = {}
    for line in text.splitlines():
        if not line.startswith("#"):
            out[line.rsplit(" ", 1)[0]] = float(line.rsplit(" ", 1)[1])
    return out


def test_content_type_is_prometheus_text_004():
    assert "version=0.0.4" in CONTENT_TYPE


def test_counter_and_gauge_render_with_headers():
    registry = MetricsRegistry()
    registry.counter("repro_jobs_total", help="Jobs seen").inc(3)
    registry.gauge("repro_queue_depth").set(2)
    text = render_prometheus(registry)
    assert "# HELP repro_jobs_total Jobs seen" in text
    assert "# TYPE repro_jobs_total counter" in text
    assert "# TYPE repro_queue_depth gauge" in text
    assert _samples(text)["repro_jobs_total"] == 3.0
    assert _samples(text)["repro_queue_depth"] == 2.0


def test_every_sample_line_is_valid_exposition():
    registry = MetricsRegistry()
    registry.counter("repro_hits_total", tier="memory").inc()
    registry.gauge("repro_depth").set(1.5)
    registry.histogram("repro_lat_seconds", buckets=(0.1, 1.0)).observe(0.5)
    for line in render_prometheus(registry).splitlines():
        if line.startswith("#"):
            continue
        assert SAMPLE_RE.match(line), f"invalid exposition line: {line!r}"


def test_histogram_series_end_with_inf_bucket_sum_count():
    registry = MetricsRegistry()
    h = registry.histogram("repro_lat_seconds", buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(5.0)
    samples = _samples(render_prometheus(registry))
    assert samples['repro_lat_seconds_bucket{le="0.1"}'] == 1
    assert samples['repro_lat_seconds_bucket{le="1"}'] == 1
    assert samples['repro_lat_seconds_bucket{le="+Inf"}'] == 2
    assert samples["repro_lat_seconds_count"] == 2
    assert samples["repro_lat_seconds_sum"] == 5.05


def test_labels_sorted_and_escaped():
    registry = MetricsRegistry()
    registry.counter("repro_x_total", b='say "hi"\n', a="back\\slash").inc()
    (line,) = [
        l for l in render_prometheus(registry).splitlines() if not l.startswith("#")
    ]
    assert line == (
        'repro_x_total{a="back\\\\slash",b="say \\"hi\\"\\n"} 1'
    )


def test_one_header_per_family_across_label_sets():
    registry = MetricsRegistry()
    registry.counter("repro_x_total", engine="lanes").inc()
    registry.counter("repro_x_total", engine="vector").inc()
    text = render_prometheus(registry)
    assert text.count("# TYPE repro_x_total counter") == 1


def test_null_registry_renders_empty():
    assert render_prometheus(NullRegistry()) == ""
