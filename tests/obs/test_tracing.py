"""Span nesting, JSON-tree export, bounded retention, no-op mode."""

from __future__ import annotations

import threading

from repro.obs import Tracer
from repro.obs.tracing import _NULL_SPAN


class TestNesting:
    def test_spans_nest_into_a_tree(self):
        tracer = Tracer()
        with tracer.span("outer", k=4):
            with tracer.span("inner_a"):
                pass
            with tracer.span("inner_b"):
                with tracer.span("leaf"):
                    pass
        roots = tracer.roots()
        assert [r.name for r in roots] == ["outer"]
        outer = roots[0]
        assert [c.name for c in outer.children] == ["inner_a", "inner_b"]
        assert [c.name for c in outer.children[1].children] == ["leaf"]

    def test_sequential_roots_stay_separate(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [r.name for r in tracer.roots()] == ["first", "second"]

    def test_threads_get_independent_stacks(self):
        """A span on another thread must not nest under this thread's."""
        tracer = Tracer()
        started = threading.Event()
        release = threading.Event()

        def other():
            with tracer.span("worker"):
                started.set()
                release.wait(timeout=5)

        thread = threading.Thread(target=other)
        with tracer.span("main"):
            thread.start()
            assert started.wait(timeout=5)
            release.set()
            thread.join(5)
        names = sorted(r.name for r in tracer.roots())
        assert names == ["main", "worker"]
        main = next(r for r in tracer.roots() if r.name == "main")
        assert main.children == []


class TestExport:
    def test_export_is_json_ready_tree(self):
        tracer = Tracer()
        with tracer.span("best_first", driver="batched", k=4):
            with tracer.span("accept", r=3):
                pass
        (tree,) = tracer.export()
        assert tree["name"] == "best_first"
        assert tree["attrs"] == {"driver": "batched", "k": 4}
        (child,) = tree["children"]
        assert child["name"] == "accept"
        assert child["duration"] >= 0.0
        assert child["start"] >= tree["start"]

    def test_durations_are_nonnegative_and_contained(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        (outer,) = tracer.roots()
        inner = outer.children[0]
        assert 0.0 <= inner.duration <= outer.duration

    def test_clear_drops_roots(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        tracer.clear()
        assert tracer.export() == []


class TestBounds:
    def test_root_retention_is_bounded(self):
        tracer = Tracer(max_roots=4)
        for i in range(10):
            with tracer.span(f"run_{i}"):
                pass
        names = [r.name for r in tracer.roots()]
        assert names == ["run_6", "run_7", "run_8", "run_9"]


class TestDisabled:
    def test_disabled_tracer_hands_out_shared_null_span(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("anything", k=1)
        assert span is _NULL_SPAN
        with span:
            pass
        assert tracer.roots() == []
        assert span.to_dict() == {}
