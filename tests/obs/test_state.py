"""Process-wide gating: REPRO_METRICS semantics, enable/disable, snapshots."""

from __future__ import annotations

import json

from repro import obs


class TestEnvGating:
    def test_off_by_default(self):
        assert not obs.enabled()
        assert obs.get_registry().collecting is False

    def test_env_opt_in(self, monkeypatch):
        monkeypatch.setenv(obs.METRICS_ENV, "1")
        obs.reset()
        assert obs.enabled()
        assert obs.get_registry().collecting is True

    def test_env_force_off_beats_programmatic_enable(self, monkeypatch):
        monkeypatch.setenv(obs.METRICS_ENV, "0")
        obs.reset()
        obs.enable()
        assert not obs.enabled()

    def test_programmatic_enable_when_env_unset(self):
        obs.enable()
        assert obs.enabled()
        obs.disable()
        assert not obs.enabled()

    def test_tracer_follows_registry(self):
        assert obs.get_tracer().enabled is False
        obs.reset()
        obs.enable()
        assert obs.get_tracer().enabled is True


class TestNoOpOverhead:
    def test_disabled_hot_path_allocates_nothing(self):
        """With collection off, instrumented code touches only shared
        no-op singletons — nothing registers, nothing aggregates."""
        registry = obs.get_registry()
        assert registry.collecting is False
        counter = registry.counter("repro_cells_total")
        for _ in range(1000):
            counter.inc()
            with obs.span("best_first", k=4):
                pass
        assert registry.snapshot() == {}
        assert obs.get_tracer().export() == []

    def test_disabled_span_is_shared_singleton(self):
        assert obs.span("a") is obs.span("b")


class TestSpanHelper:
    def test_span_records_on_process_tracer_when_enabled(self):
        obs.enable()
        with obs.span("phase", step=1):
            pass
        (tree,) = obs.get_tracer().export()
        assert tree["name"] == "phase"
        assert tree["attrs"] == {"step": 1}


class TestSetRegistry:
    def test_set_registry_installs_and_switches_tracer(self):
        registry = obs.MetricsRegistry()
        obs.set_registry(registry)
        assert obs.get_registry() is registry
        assert obs.get_tracer().enabled is True
        obs.set_registry(obs.NullRegistry())
        assert obs.get_tracer().enabled is False


class TestWriteSnapshot:
    def test_write_snapshot_round_trips_through_json(self, tmp_path):
        obs.enable()
        obs.get_registry().counter("repro_cells_total").inc(42)
        with obs.span("best_first", driver="batched"):
            pass
        out = tmp_path / "metrics.json"
        payload = obs.write_snapshot(str(out))
        on_disk = json.loads(out.read_text())
        assert on_disk == payload
        assert on_disk["collecting"] is True
        assert on_disk["metrics"]["repro_cells_total"][0]["value"] == 42
        assert on_disk["traces"][0]["name"] == "best_first"

    def test_write_snapshot_when_disabled_is_empty_but_valid(self, tmp_path):
        out = tmp_path / "metrics.json"
        payload = obs.write_snapshot(str(out))
        assert payload == {"collecting": False, "metrics": {}, "traces": []}
        assert json.loads(out.read_text()) == payload
