"""``GET /metrics`` over a real socket: valid exposition, live numbers."""

from __future__ import annotations

import threading
import urllib.request
from http.server import ThreadingHTTPServer

import pytest

from repro.obs import CONTENT_TYPE
from repro.sequences import pseudo_titin
from repro.service.server import ReproService, ServiceConfig, _Handler, _ServerState
from repro.service.workers import execute_job

from .test_prometheus import SAMPLE_RE


@pytest.fixture()
def service(tmp_path):
    """A live server on an ephemeral port, jobs executed inline."""
    config = ServiceConfig(
        data_dir=str(tmp_path / "data"), port=0, workers=0, queue_capacity=4
    )
    svc = ReproService(config)
    httpd = ThreadingHTTPServer((config.host, 0), _Handler)
    httpd.daemon_threads = True
    httpd.state = _ServerState(service=svc)
    thread = threading.Thread(
        target=httpd.serve_forever, kwargs={"poll_interval": 0.02}, daemon=True
    )
    thread.start()
    url = f"http://127.0.0.1:{httpd.server_address[1]}"
    try:
        yield svc, url
    finally:
        httpd.shutdown()
        httpd.server_close()
        thread.join(5)


def _scrape(url):
    with urllib.request.urlopen(f"{url}/metrics", timeout=10) as resp:
        return resp.headers.get("Content-Type"), resp.read().decode("utf-8")


def _run_one(svc):
    job_id = svc.queue.claim()
    assert job_id is not None
    execute_job(svc.store, svc.cache, svc.store.get(job_id))
    svc.queue.discard(job_id)


def _submit(svc):
    spec = {"sequence": pseudo_titin(60, seed=2).text, "top_alignments": 3}
    return svc.submit(spec)


def _parse(text):
    """{series (name+labels): value}, asserting every line is valid."""
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        assert SAMPLE_RE.match(line), f"invalid exposition line: {line!r}"
        key, value = line.rsplit(" ", 1)
        samples[key] = float(value)
    return samples


def test_metrics_is_valid_prometheus_text(service):
    _, url = service
    content_type, text = _scrape(url)
    assert content_type == CONTENT_TYPE
    samples = _parse(text)
    assert samples["repro_service_queue_depth"] == 0
    assert "repro_service_uptime_seconds" in samples
    assert samples["repro_service_queue_capacity"] == 4
    assert 'repro_service_jobs{state="queued"}' in samples


def test_metrics_reflect_queue_and_job_lifecycle(service):
    svc, url = service
    _submit(svc)
    samples = _parse(_scrape(url)[1])
    assert samples["repro_service_queue_depth"] == 1
    assert samples['repro_service_jobs{state="queued"}'] == 1

    _run_one(svc)
    samples = _parse(_scrape(url)[1])
    assert samples["repro_service_queue_depth"] == 0
    assert samples['repro_service_jobs{state="done"}'] == 1
    assert samples["repro_service_job_seconds_count"] == 1
    assert samples["repro_service_job_seconds_sum"] >= 0.0
    assert samples['repro_service_cache_hits_total{tier="memory"}'] == 0

    # A duplicate submission is born from the cache: a hit, no new job time.
    _, from_cache = _submit(svc)
    assert from_cache
    samples = _parse(_scrape(url)[1])
    hits = (
        samples['repro_service_cache_hits_total{tier="memory"}']
        + samples['repro_service_cache_hits_total{tier="disk"}']
    )
    assert hits >= 1
    assert samples["repro_service_job_seconds_count"] == 1


def test_metrics_count_http_requests_by_endpoint(service):
    _, url = service
    _scrape(url)
    samples = _parse(_scrape(url)[1])
    key = 'repro_http_requests_total{endpoint="metrics",method="GET"}'
    assert samples[key] >= 2
