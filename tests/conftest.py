"""Shared fixtures and an independent brute-force alignment reference.

The brute-force reference implements Equation 1 *directly from its
mathematical statement* — explicit maximisation over every horizontal
and vertical gap candidate, O(n³) per matrix — deliberately sharing no
code with the engines, so engine/reference agreement is meaningful.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings as hypothesis_settings

from repro.scoring import GapPenalties, blosum62, match_mismatch
from repro.sequences import DNA, PROTEIN, Sequence

# Deep property-testing profile for the nightly ``hypothesis-deep`` CI
# job: many more examples, no deadline (CI runners stall unpredictably),
# and the example database kept so failures upload as an artifact.
# Individual tests that pin ``max_examples`` via ``@settings`` keep
# their pin — the profile only changes the defaults.
hypothesis_settings.register_profile(
    "ci-deep",
    max_examples=1000,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    print_blob=True,
)
_profile = os.environ.get("REPRO_HYPOTHESIS_PROFILE")
if _profile:
    hypothesis_settings.load_profile(_profile)


def brute_force_matrix(problem) -> np.ndarray:
    """Equation 1, evaluated candidate by candidate (test oracle)."""
    rows, cols = problem.rows, problem.cols
    E = problem.exchange.scores
    open_, ext = problem.gaps.open_, problem.gaps.extend
    s1, s2 = problem.seq1, problem.seq2
    override = problem.override
    M = np.zeros((rows + 1, cols + 1), dtype=np.float64)
    for y in range(1, rows + 1):
        mask = override.row_mask(y) if override is not None else None
        for x in range(1, cols + 1):
            best = M[y - 1, x - 1]  # no gap
            for c in range(0, x - 1):  # horizontal gap from (y-1, c)
                best = max(best, M[y - 1, c] - (open_ + ext * (x - 1 - c)))
            for r in range(0, y - 1):  # vertical gap from (r, x-1)
                best = max(best, M[r, x - 1] - (open_ + ext * (y - 1 - r)))
            value = max(0.0, E[s1[y - 1], s2[x - 1]] + best)
            if mask is not None and mask[x - 1]:
                value = 0.0
            M[y, x] = value
    return M


@pytest.fixture(scope="session")
def dna_scoring():
    """The paper's worked-example scoring: +2/-1, gap open 2 extend 1."""
    return match_mismatch(DNA, 2.0, -1.0), GapPenalties(2.0, 1.0)


@pytest.fixture(scope="session")
def protein_scoring():
    """Realistic protein scoring: BLOSUM62, gap open 8 extend 1."""
    return blosum62(), GapPenalties(8.0, 1.0)


@pytest.fixture()
def figure2_problem(dna_scoring):
    """The §2.1 worked example: ATTGCGA (vertical) vs CTTACAGA."""
    from repro.align import AlignmentProblem

    exchange, gaps = dna_scoring
    return AlignmentProblem.from_sequences("ATTGCGA", "CTTACAGA", exchange, gaps)


@pytest.fixture(scope="session")
def tandem_dna():
    """Figure 4's sequence: ATGCATGCATGC."""
    return Sequence("ATGCATGCATGC", DNA, id="fig4")


@pytest.fixture(scope="session")
def small_repeat_protein():
    """A 120-residue protein with three ~25-aa implanted repeat copies."""
    from repro.sequences import RepeatSpec, implant_repeats

    return implant_repeats(
        120, RepeatSpec(unit_length=25, copies=3, substitution_rate=0.3), seed=7
    ).sequence


def random_codes(rng: np.random.Generator, length: int, nsym: int = 4) -> np.ndarray:
    """Uniform random codes for property tests (small alphabet = dense matches)."""
    return rng.integers(0, nsym, size=length).astype(np.int8)
