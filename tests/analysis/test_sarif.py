"""SARIF 2.1.0 output: schema validation and CLI round trips."""

import json

import pytest

from repro.analysis.linter import RULE_DOC, analyze_paths
from repro.analysis.linter import main as lint_main
from repro.analysis.sarif import SARIF_VERSION, sarif_dict

from .conftest import FIXTURES

SUBSET_SCHEMA = FIXTURES / "sarif-2.1.0-subset.schema.json"


def sarif_for(minipkg):
    findings = analyze_paths([str(minipkg)]).findings
    return sarif_dict(findings, RULE_DOC)


class TestSchemaValidation:
    def test_validates_against_sarif_2_1_0(self, minipkg):
        jsonschema = pytest.importorskip("jsonschema")
        schema = json.loads(SUBSET_SCHEMA.read_text())
        jsonschema.validate(sarif_for(minipkg), schema)

    def test_empty_log_validates_too(self):
        jsonschema = pytest.importorskip("jsonschema")
        schema = json.loads(SUBSET_SCHEMA.read_text())
        jsonschema.validate(sarif_dict([], RULE_DOC), schema)


class TestStructure:
    def test_version_and_driver(self, minipkg):
        log = sarif_for(minipkg)
        assert log["version"] == SARIF_VERSION
        driver = log["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        assert {r["id"] for r in driver["rules"]} == set(RULE_DOC)

    def test_rule_index_points_at_its_rule(self, minipkg):
        log = sarif_for(minipkg)
        rules = log["runs"][0]["tool"]["driver"]["rules"]
        for result in log["runs"][0]["results"]:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]

    def test_every_result_has_a_real_location(self, minipkg):
        for result in sarif_for(minipkg)["runs"][0]["results"]:
            loc = result["locations"][0]["physicalLocation"]
            assert loc["artifactLocation"]["uri"]
            assert loc["region"]["startLine"] >= 1

    def test_interproc_results_carry_call_chain(self, minipkg):
        results = sarif_for(minipkg)["runs"][0]["results"]
        chains = [
            r["properties"]["callChain"]
            for r in results
            if r["ruleId"] == "RPR013" and "properties" in r
        ]
        assert chains and all(len(c) >= 1 for c in chains)


class TestCli:
    def test_sarif_format_with_findings(self, minipkg, capsys):
        assert lint_main(["--format", "sarif", str(minipkg)]) == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == SARIF_VERSION
        assert log["runs"][0]["results"]

    def test_sarif_format_on_clean_tree(self, tmp_path, capsys):
        clean = tmp_path / "ok.py"
        clean.write_text('"""Nothing to see."""\n\nX = 1\n')
        assert lint_main(["--format", "sarif", str(clean)]) == 0
        log = json.loads(capsys.readouterr().out)
        assert log["runs"][0]["results"] == []

    def test_stats_flag_emits_json(self, minipkg, capsys):
        lint_main(["--stats", "--no-cache", str(minipkg)])
        stats = json.loads(capsys.readouterr().out)
        assert stats["files"] == 7
        assert stats["rules_active"] == len(RULE_DOC)
        assert "rule_timings_ms" in stats and "total_ms" in stats
