"""Shared fixtures for the whole-program analysis tests."""

import shutil
from pathlib import Path

import pytest

FIXTURES = Path(__file__).resolve().parent / "fixtures"


@pytest.fixture
def minipkg(tmp_path):
    """Copy of the seeded-violation package, outside any ``tests/`` path.

    The copy matters twice over: file collection skips ``fixtures``
    directories, and interprocedural rules treat anything under a
    ``tests`` path component as test code.  Analysing the tmp copy
    exercises both rules *and* the seeded violations.
    """
    dst = tmp_path / "minipkg"
    shutil.copytree(FIXTURES / "minipkg", dst)
    return dst
