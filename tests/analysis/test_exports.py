"""Seeded-violation tests for the RPR005 export-consistency checker."""

from __future__ import annotations

import ast
import textwrap
from pathlib import Path

from repro.analysis.exports import check_exports


def _check(source: str, path: str = "mod.py"):
    return check_exports(ast.parse(textwrap.dedent(source)), path)


def test_rpr005_flags_seeded_phantom_export():
    findings = _check(
        """
        __all__ = ["real", "phantom"]

        def real():
            return 1
        """
    )
    assert len(findings) == 1
    assert "phantom" in findings[0].message


def test_rpr005_getattr_hook_excuses_lazy_exports():
    findings = _check(
        """
        __all__ = ["lazy"]

        def __getattr__(name):
            raise AttributeError(name)
        """
    )
    assert findings == []


def test_rpr005_flags_duplicate_all_entries():
    findings = _check(
        """
        __all__ = ["f", "f"]

        def f():
            return 1
        """
    )
    assert any("duplicate" in d.message for d in findings)


def test_rpr005_flags_public_import_missing_from_init_all(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "mod.py").write_text('__all__ = ["exported", "forgotten"]\n')
    init = pkg / "__init__.py"
    init.write_text(
        '__all__ = ["exported"]\nfrom .mod import exported, forgotten\n'
    )
    findings = check_exports(ast.parse(init.read_text()), str(init))
    assert len(findings) == 1
    assert "'forgotten'" in findings[0].message
    assert "missing from __all__" in findings[0].message


def test_rpr005_flags_init_reexports_without_all(tmp_path):
    init = tmp_path / "__init__.py"
    init.write_text("from .mod import thing\n")
    findings = check_exports(ast.parse(init.read_text()), str(init))
    assert len(findings) == 1
    assert "declares no __all__" in findings[0].message


def test_rpr005_flags_reexport_of_module_private_name(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "mod.py").write_text(
        '__all__ = ["public"]\n\ndef public():\n    pass\n\ndef hidden():\n    pass\n'
    )
    init = pkg / "__init__.py"
    init.write_text('__all__ = ["public", "hidden"]\nfrom .mod import public, hidden\n')
    findings = check_exports(ast.parse(init.read_text()), str(init))
    assert len(findings) == 1
    assert "not in that module's __all__" in findings[0].message


def test_rpr005_quiet_on_consistent_package(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "mod.py").write_text(
        '__all__ = ["public"]\n\ndef public():\n    pass\n'
    )
    init = pkg / "__init__.py"
    init.write_text('__all__ = ["public"]\nfrom .mod import public\n')
    assert check_exports(ast.parse(init.read_text()), str(init)) == []


def test_rpr005_plain_module_without_all_is_fine():
    assert _check("def helper():\n    return 1\n") == []


def test_repro_package_surface_is_drift_free():
    """The real package's __init__/__all__ graph must stay consistent."""
    src = Path(__file__).parents[2] / "src" / "repro"
    assert src.is_dir()
    findings = []
    for path in sorted(src.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        findings.extend(check_exports(tree, str(path)))
    assert findings == [], "\n".join(d.render() for d in findings)
