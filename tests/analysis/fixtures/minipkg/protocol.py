"""Message kinds for the fixture protocol (marks importers as msg-domain)."""

PING = "ping"
PONG = "pong"
ORPHAN = "orphan"
