"""Consumer half of the fixture protocol.

Seeds both RPR015 shapes: ``poll`` sends the ``orphan`` kind no
dispatch arm anywhere consumes, and its ``pong`` arm reads the
``extra`` field the producer never writes.  ``pump`` sends tag
``T_LOST`` that nothing ever receives.
"""

from . import protocol

T_DATA = 7
T_LOST = 9


def poll(channel):
    frame = channel.recv(timeout=5.0)
    kind = frame.get("kind")
    if kind == protocol.PING:
        channel.send({"kind": protocol.ORPHAN, "seq": 1})
    if kind == protocol.PONG:
        return frame["value"] + frame["extra"]
    return None


def pump(comm):
    comm.send("x", 1, T_DATA)
    comm.send("y", 1, T_LOST)
    return comm.recv(source=0, tag=T_DATA)
