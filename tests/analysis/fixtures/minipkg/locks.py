"""Two classes that acquire each other's locks in opposite order.

``Alpha.add`` holds ``Alpha._lock`` while calling ``Beta.mirror``
(which takes ``Beta._lock``); ``Beta.drain`` holds ``Beta._lock``
while calling ``Alpha.add``.  That is the two-node cycle RPR014
reports.  The mutual construction in ``__init__`` exists only so the
analyser can type ``self.partner``/``self.alpha``; nothing here is
ever executed.
"""

import threading


class Alpha:
    def __init__(self):
        self._lock = threading.Lock()
        self.partner = Beta()
        self.items = []

    def add(self, item):
        with self._lock:
            self.items.append(item)
            self.partner.mirror(item)


class Beta:
    def __init__(self):
        self._lock = threading.Lock()
        self.alpha = Alpha()
        self.seen = []

    def mirror(self, item):
        with self._lock:
            self.seen.append(item)

    def drain(self):
        with self._lock:
            self.alpha.add(0)
