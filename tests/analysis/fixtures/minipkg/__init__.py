"""Seeded-violation fixture package for the whole-program analysis.

Each module plants exactly the structures the interprocedural rules
RPR013-RPR016 look for.  Tests copy this tree to a tmp dir before
analysing it (paths under ``tests/`` are treated as test code and the
``fixtures`` directory is skipped by file collection, both on purpose
so the seeded violations never leak into the repo's own lint run).
"""
