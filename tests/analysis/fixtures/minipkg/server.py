"""Service half of the fixture protocol.

Seeds RPR013 (``do_fetch`` reaches ``time.sleep`` through a helper,
so the per-file direct-sink rule cannot see it) and produces the
``pong`` kind consumed by :mod:`minipkg.node`.
"""

import time

from . import protocol


def _tail_wait():
    time.sleep(0.5)


class RequestHandler:
    def do_fetch(self, channel):
        _tail_wait()
        channel.send({"kind": protocol.PONG, "value": 1, "payload": "x"})
