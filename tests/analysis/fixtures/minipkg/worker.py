"""Shard executor in a worker-stem module.

Seeds RPR013's lease-path case (``run_lease`` blocks while holding a
lease), RPR016a (``execute`` catches ``AssertionError`` and drops it),
and provides the raise site that makes :class:`minipkg.errors.BadShard`
an RPR016b finding (unpicklable exception on a worker path).
"""

import time

from .errors import BadShard


def run_lease(lease, budget=1.0):
    time.sleep(min(budget, 1.0))
    return lease


def execute(shard):
    try:
        _check(shard)
    except AssertionError:
        return None
    if shard.get("bad"):
        raise BadShard(shard["id"], "unusable")
    return shard


def _check(shard):
    assert shard, "empty shard"
