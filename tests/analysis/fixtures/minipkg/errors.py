"""Fixture exceptions.

``BadShard`` takes two required constructor arguments and defines no
``__reduce__``: the default ``BaseException`` pickle protocol replays
``cls(*args)`` with the single formatted message, so the instance
cannot cross a worker process boundary — RPR016b's target shape.
"""


class BadShard(RuntimeError):
    def __init__(self, shard_id, reason):
        super().__init__(f"shard {shard_id}: {reason}")
        self.shard_id = shard_id
        self.reason = reason
