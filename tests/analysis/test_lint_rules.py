"""Seeded-violation tests for the per-file lint rules.

Every rule must (a) flag a file with a deliberately planted violation
and (b) stay quiet on the compliant twin — no always-green and no
always-red checkers.  Files are written under ``tmp_path`` in directory
layouts that match each rule's scoping (``align/``, ``benchmarks/``,
a ``repro`` package, ...).
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis import lint_file
from repro.analysis.diagnostics import parse_waivers


def _write(tmp_path: Path, relpath: str, source: str) -> Path:
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def _rules_hit(path: Path) -> set[str]:
    return {d.rule for d in lint_file(path)}


# ---------------------------------------------------------------------------
# RPR001 — per-cell loops in align/ kernels
# ---------------------------------------------------------------------------

PER_CELL_LOOP = """
    def kernel(M, E, rows, cols):
        for y in range(1, rows):
            for x in range(1, cols):
                M[y][x] = max(0.0, E[y][x] + M[y - 1][x - 1])
"""


def test_rpr001_flags_seeded_per_cell_loop(tmp_path):
    path = _write(tmp_path, "align/bad_kernel.py", PER_CELL_LOOP)
    findings = [d for d in lint_file(path) if d.rule == "RPR001"]
    assert len(findings) == 1
    assert findings[0].line == 4  # the inner for


def test_rpr001_scoped_to_align_dir(tmp_path):
    path = _write(tmp_path, "io/bad_kernel.py", PER_CELL_LOOP)
    assert "RPR001" not in _rules_hit(path)


def test_rpr001_ignores_row_vectorised_loops(tmp_path):
    path = _write(
        tmp_path,
        "align/good_kernel.py",
        """
        import numpy as np

        def kernel(M, E, rows):
            for y in range(1, rows):
                M[y, 1:] = np.maximum(0.0, E[y] + M[y - 1, :-1])
        """,
    )
    assert "RPR001" not in _rules_hit(path)


def test_rpr001_waivable_with_reason(tmp_path):
    path = _write(
        tmp_path,
        "align/reference.py",
        """
        def kernel(M, E, rows, cols):
            for y in range(1, rows):
                # repro-lint: allow[RPR001] reference implementation on purpose
                for x in range(1, cols):
                    M[y][x] = max(0.0, E[y][x] + M[y - 1][x - 1])
        """,
    )
    assert _rules_hit(path) == set()


# ---------------------------------------------------------------------------
# RPR002 — implicit dtype in matrix construction
# ---------------------------------------------------------------------------


def test_rpr002_flags_seeded_implicit_dtype(tmp_path):
    path = _write(
        tmp_path,
        "core/matrices.py",
        """
        import numpy as np

        def make(rows, cols):
            return np.zeros((rows, cols))
        """,
    )
    findings = [d for d in lint_file(path) if d.rule == "RPR002"]
    assert len(findings) == 1
    assert "dtype" in findings[0].message


def test_rpr002_quiet_when_dtype_pinned(tmp_path):
    path = _write(
        tmp_path,
        "core/matrices.py",
        """
        import numpy as np

        def make(rows, cols):
            return np.zeros((rows, cols), dtype=np.float64)
        """,
    )
    assert "RPR002" not in _rules_hit(path)


def test_rpr002_sees_from_import_and_alias(tmp_path):
    path = _write(
        tmp_path,
        "align/lanes.py",
        """
        import numpy as xp
        from numpy import full as mk_full

        a = xp.empty(4)
        b = mk_full(4, 0)
        """,
    )
    findings = [d for d in lint_file(path) if d.rule == "RPR002"]
    assert len(findings) == 2


def test_rpr002_skips_test_files(tmp_path):
    path = _write(
        tmp_path,
        "align/test_kernels.py",
        """
        import numpy as np

        expected = np.zeros(3)
        """,
    )
    assert "RPR002" not in _rules_hit(path)


# ---------------------------------------------------------------------------
# RPR004 — unseeded randomness in benchmarks/ and simulate/
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "snippet",
    [
        "import numpy as np\nx = np.random.rand(5)\n",
        "import numpy as np\nrng = np.random.default_rng()\n",
        "import random\nx = random.random()\n",
        "import random\nrng = random.Random()\n",
    ],
)
def test_rpr004_flags_seeded_unseeded_randomness(tmp_path, snippet):
    path = _write(tmp_path, "benchmarks/bench_x.py", snippet)
    assert "RPR004" in _rules_hit(path)


@pytest.mark.parametrize(
    "snippet",
    [
        "import numpy as np\nrng = np.random.default_rng(42)\nx = rng.random(5)\n",
        "import random\nrng = random.Random(42)\nx = rng.random()\n",
        "import random\nrandom.seed(7)\nx = random.random()\n",
    ],
)
def test_rpr004_quiet_when_seeded(tmp_path, snippet):
    path = _write(tmp_path, "simulate/model.py", snippet)
    assert "RPR004" not in _rules_hit(path)


def test_rpr004_scoped_to_benchmark_and_simulator_code(tmp_path):
    path = _write(tmp_path, "tools/scratch.py", "import random\nx = random.random()\n")
    assert "RPR004" not in _rules_hit(path)


# ---------------------------------------------------------------------------
# RPR006 — bare except
# ---------------------------------------------------------------------------


def test_rpr006_flags_seeded_bare_except(tmp_path):
    path = _write(
        tmp_path,
        "anywhere.py",
        """
        try:
            work()
        except:
            pass
        """,
    )
    findings = [d for d in lint_file(path) if d.rule == "RPR006"]
    assert len(findings) == 1


def test_rpr006_quiet_on_typed_except(tmp_path):
    path = _write(
        tmp_path,
        "anywhere.py",
        """
        try:
            work()
        except ValueError:
            pass
        """,
    )
    assert "RPR006" not in _rules_hit(path)


# ---------------------------------------------------------------------------
# RPR007 — absolute self-imports inside the package
# ---------------------------------------------------------------------------


def _package(tmp_path: Path) -> Path:
    pkg = tmp_path / "repro"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("", encoding="utf-8")
    return pkg


@pytest.mark.parametrize(
    "snippet",
    [
        "import repro.core\n",
        "from repro.align import base\n",
        "from repro import scoring\n",
    ],
)
def test_rpr007_flags_seeded_absolute_self_import(tmp_path, snippet):
    pkg = _package(tmp_path)
    path = pkg / "mod.py"
    path.write_text(snippet, encoding="utf-8")
    assert "RPR007" in _rules_hit(path)


def test_rpr007_quiet_on_relative_imports(tmp_path):
    pkg = _package(tmp_path)
    path = pkg / "mod.py"
    path.write_text("from .core import tasks\nfrom . import scoring\n")
    assert "RPR007" not in _rules_hit(path)


def test_rpr007_quiet_outside_the_package(tmp_path):
    # Scripts/tests legitimately import the package absolutely.
    path = _write(tmp_path, "scripts/run.py", "import repro.core\n")
    assert "RPR007" not in _rules_hit(path)


# ---------------------------------------------------------------------------
# RPR008 — accidentally-quadratic list operations
# ---------------------------------------------------------------------------


def test_rpr008_flags_seeded_insert_front(tmp_path):
    path = _write(
        tmp_path,
        "anywhere.py",
        """
        def reorder(items):
            out = []
            for item in items:
                out.insert(0, item)
            return out
        """,
    )
    assert "RPR008" in _rules_hit(path)


def test_rpr008_flags_seeded_membership_on_list_in_loop(tmp_path):
    path = _write(
        tmp_path,
        "anywhere.py",
        """
        def dedup(items):
            seen = []
            for item in items:
                if item in seen:
                    continue
                seen.append(item)
            return seen
        """,
    )
    findings = [d for d in lint_file(path) if d.rule == "RPR008"]
    assert any("membership" in d.message for d in findings)


def test_rpr008_quiet_on_set_membership(tmp_path):
    path = _write(
        tmp_path,
        "anywhere.py",
        """
        def dedup(items):
            seen = set()
            for item in items:
                if item in seen:
                    continue
                seen.add(item)
            return sorted(seen)
        """,
    )
    assert "RPR008" not in _rules_hit(path)


def test_rpr008_does_not_leak_names_across_scopes(tmp_path):
    # `planted` is a list in one function and a set in another; the
    # set-using loop must not be flagged (regression: scope leak).
    path = _write(
        tmp_path,
        "anywhere.py",
        """
        def build():
            planted = [1, 2, 3]
            return set(planted)

        def scan(items):
            planted = build()
            for item in items:
                if item in planted:
                    yield item
        """,
    )
    assert "RPR008" not in _rules_hit(path)


# ---------------------------------------------------------------------------
# RPR000 + waiver mechanics
# ---------------------------------------------------------------------------


def test_rpr000_flags_waiver_without_reason(tmp_path):
    path = _write(
        tmp_path,
        "anywhere.py",
        """
        try:
            work()
        except:  # repro-lint: allow[RPR006]
            pass
        """,
    )
    rules = _rules_hit(path)
    assert "RPR000" in rules
    # A reasonless waiver does not suppress anything either.
    assert "RPR006" in rules


def test_rpr000_flags_allow_file_past_window(tmp_path):
    filler = "\n".join(f"x{i} = {i}" for i in range(20))
    path = _write(
        tmp_path,
        "anywhere.py",
        filler + "\n# repro-lint: allow-file[RPR006] too late to count\n",
    )
    assert "RPR000" in _rules_hit(path)


def test_allow_file_waives_whole_file(tmp_path):
    path = _write(
        tmp_path,
        "anywhere.py",
        """
        # repro-lint: allow-file[RPR006] exercising the file-level waiver
        try:
            a()
        except:
            pass
        try:
            b()
        except:
            pass
        """,
    )
    assert _rules_hit(path) == set()


def test_standalone_waiver_skips_comment_continuation_lines(tmp_path):
    path = _write(
        tmp_path,
        "anywhere.py",
        """
        try:
            work()
        # repro-lint: allow[RPR006] a justification long enough that it
        # wraps onto a second comment line before the handler
        except:
            pass
        """,
    )
    assert _rules_hit(path) == set()


def test_waiver_examples_in_docstrings_are_inert(tmp_path):
    path = _write(
        tmp_path,
        "anywhere.py",
        '''
        """Docs showing `# repro-lint: allow-file[RPR006]` as an example."""

        try:
            work()
        except:
            pass
        ''',
    )
    rules = _rules_hit(path)
    assert "RPR006" in rules  # the docstring mention waived nothing
    assert "RPR000" not in rules


def test_parse_waivers_collects_rules_and_targets():
    waivers = parse_waivers(
        "x = 1  # repro-lint: allow[RPR001, RPR008] two rules, one reason\n",
        "mem.py",
    )
    assert waivers.is_waived("RPR001", 1)
    assert waivers.is_waived("RPR008", 1)
    assert not waivers.is_waived("RPR006", 1)
    assert not waivers.problems


def test_syntax_error_reported_not_raised(tmp_path):
    path = _write(tmp_path, "broken.py", "def f(:\n")
    findings = lint_file(path)
    assert [d.rule for d in findings] == ["RPR000"]
    assert "syntax error" in findings[0].message


# ---------------------------------------------------------------------------
# RPR010 — blocking calls in service request-handling paths
# ---------------------------------------------------------------------------

SLEEPING_HANDLER = """
    import time
    from http.server import BaseHTTPRequestHandler

    class Api(BaseHTTPRequestHandler):
        def do_GET(self):
            time.sleep(5)
"""


def test_rpr010_flags_sleep_in_do_method(tmp_path):
    path = _write(tmp_path, "service/bad_server.py", SLEEPING_HANDLER)
    findings = [d for d in lint_file(path) if d.rule == "RPR010"]
    assert len(findings) == 1
    assert "time.sleep" in findings[0].message


def test_rpr010_scoped_to_service_dir(tmp_path):
    path = _write(tmp_path, "core/bad_server.py", SLEEPING_HANDLER)
    assert "RPR010" not in _rules_hit(path)


def test_rpr010_flags_every_method_of_a_handler_class(tmp_path):
    path = _write(
        tmp_path,
        "service/helper.py",
        """
        from time import sleep

        class Api(SomeRequestHandler):
            def _stream(self):
                sleep(0.1)
        """,
    )
    assert "RPR010" in _rules_hit(path)


def test_rpr010_flags_unbounded_queue_get(tmp_path):
    path = _write(
        tmp_path,
        "service/consumer.py",
        """
        def handle_request(job_queue):
            return job_queue.get()
        """,
    )
    findings = [d for d in lint_file(path) if d.rule == "RPR010"]
    assert len(findings) == 1
    assert "Queue.get" in findings[0].message


def test_rpr010_allows_bounded_queue_get(tmp_path):
    path = _write(
        tmp_path,
        "service/consumer.py",
        """
        def handle_request(job_queue):
            a = job_queue.get(timeout=1.0)
            b = job_queue.get(block=False)
            return a or b
        """,
    )
    assert "RPR010" not in _rules_hit(path)


def test_rpr010_ignores_non_handler_code(tmp_path):
    path = _write(
        tmp_path,
        "service/worker_loop.py",
        """
        import time

        def poll_forever(queue):
            while True:
                time.sleep(0.05)  # worker poll loop, not a request path

        def lookup(mapping):
            return mapping.get()
        """,
    )
    assert "RPR010" not in _rules_hit(path)


def test_rpr010_waivable_with_reason(tmp_path):
    path = _write(
        tmp_path,
        "service/stream.py",
        """
        import time

        class Api(BaseHTTPRequestHandler):
            def do_GET(self):
                time.sleep(0.1)  # repro-lint: allow[RPR010] bounded tail poll with deadline
        """,
    )
    assert "RPR010" not in _rules_hit(path)


# ---------------------------------------------------------------------------
# RPR011 — wall-clock time.time() in instrumented performance paths


def test_rpr011_flags_wall_clock_in_core(tmp_path):
    path = _write(
        tmp_path,
        "core/timing.py",
        """
        import time

        def measure(fn):
            start = time.time()
            fn()
            return time.time() - start
        """,
    )
    assert "RPR011" in _rules_hit(path)


def test_rpr011_quiet_on_perf_counter(tmp_path):
    path = _write(
        tmp_path,
        "core/timing.py",
        """
        import time

        def measure(fn):
            start = time.perf_counter()
            fn()
            return time.perf_counter() - start
        """,
    )
    assert "RPR011" not in _rules_hit(path)


def test_rpr011_flags_from_import_alias(tmp_path):
    path = _write(
        tmp_path,
        "align/clock.py",
        """
        from time import time as now

        def stamp():
            return now()
        """,
    )
    assert "RPR011" in _rules_hit(path)


def test_rpr011_scoped_outside_instrumented_dirs(tmp_path):
    path = _write(
        tmp_path,
        "service/jobstore.py",
        """
        import time

        def created_at():
            return time.time()  # epoch timestamp on the job record
        """,
    )
    assert "RPR011" not in _rules_hit(path)


def test_rpr011_waivable_with_reason(tmp_path):
    path = _write(
        tmp_path,
        "bench/report.py",
        """
        import time

        def report_header():
            return time.time()  # repro-lint: allow[RPR011] epoch stamp in the report header
        """,
    )
    assert "RPR011" not in _rules_hit(path)


# ---------------------------------------------------------------------------
# RPR012 — socket discipline in the cluster package
# ---------------------------------------------------------------------------

RAW_SOCKET_NODE = """
    import socket

    def dial(host, port):
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.connect((host, port))
        return sock
"""

UNBOUNDED_RECV = """
    def pump(channel, listener):
        conn, addr = listener.accept()
        return channel.recv()
"""


def test_rpr012_flags_seeded_raw_socket(tmp_path):
    path = _write(tmp_path, "cluster/bad_dial.py", RAW_SOCKET_NODE)
    findings = [d for d in lint_file(path) if d.rule == "RPR012"]
    assert len(findings) == 1
    assert "transport" in findings[0].message


def test_rpr012_flags_seeded_unbounded_recv_and_accept(tmp_path):
    path = _write(tmp_path, "cluster/bad_pump.py", UNBOUNDED_RECV)
    findings = [d for d in lint_file(path) if d.rule == "RPR012"]
    assert len(findings) == 2
    assert {".accept", ".recv"} <= {d.message.split("(")[0] for d in findings}


def test_rpr012_quiet_when_timeout_passed(tmp_path):
    path = _write(
        tmp_path,
        "cluster/good_pump.py",
        """
        def pump(channel, listener):
            conn = listener.accept(timeout=0.5)
            return channel.recv(timeout=30.0)
        """,
    )
    assert "RPR012" not in _rules_hit(path)


def test_rpr012_exempts_the_transport_module(tmp_path):
    path = _write(tmp_path, "cluster/transport.py", RAW_SOCKET_NODE)
    assert "RPR012" not in _rules_hit(path)


def test_rpr012_scoped_to_cluster_dir(tmp_path):
    path = _write(tmp_path, "service/raw_dial.py", RAW_SOCKET_NODE)
    assert "RPR012" not in _rules_hit(path)


def test_rpr012_skips_test_files(tmp_path):
    path = _write(tmp_path, "cluster/test_dial.py", RAW_SOCKET_NODE)
    assert "RPR012" not in _rules_hit(path)


def test_rpr012_waivable_with_reason(tmp_path):
    path = _write(
        tmp_path,
        "cluster/probe.py",
        """
        import socket

        def probe(host):
            return socket.create_connection((host, 9410), timeout=1.0)  # repro-lint: allow[RPR012] liveness probe bypasses the channel layer
        """,
    )
    assert "RPR012" not in _rules_hit(path)


# ---------------------------------------------------------------------------
# RPR017 — align/ imports banned inside the repro.index layer
# ---------------------------------------------------------------------------

INDEX_ALIGN_IMPORTS = """
    import repro.align
    from repro.align import AlignmentProblem
    from repro.align.engine import VectorEngine
    from ..align import full_matrix
    from .. import align
"""


def test_rpr017_flags_seeded_align_imports(tmp_path):
    path = _write(tmp_path, "index/bad_routing.py", INDEX_ALIGN_IMPORTS)
    findings = [d for d in lint_file(path) if d.rule == "RPR017"]
    assert len(findings) == 5
    assert all("repro.index layer" in d.message for d in findings)


def test_rpr017_quiet_on_scoring_imports(tmp_path):
    path = _write(
        tmp_path,
        "index/good_routing.py",
        """
        from ..scoring.exchange import ExchangeMatrix
        from ..sequences.sequence import Sequence
        from . import kmer
        """,
    )
    assert "RPR017" not in _rules_hit(path)


def test_rpr017_scoped_to_index_dir(tmp_path):
    path = _write(tmp_path, "core/uses_align.py", INDEX_ALIGN_IMPORTS)
    assert "RPR017" not in _rules_hit(path)


def test_rpr017_skips_test_files(tmp_path):
    path = _write(tmp_path, "index/test_routing.py", INDEX_ALIGN_IMPORTS)
    assert "RPR017" not in _rules_hit(path)


def test_rpr017_waivable_with_reason(tmp_path):
    path = _write(
        tmp_path,
        "index/probe.py",
        """
        from ..align import AlignmentProblem  # repro-lint: allow[RPR017] offline calibration helper, never on the routing path
        """,
    )
    assert "RPR017" not in _rules_hit(path)


def test_rpr017_clean_on_the_real_index_package(tmp_path):
    package = Path(__file__).resolve().parents[2] / "src" / "repro" / "index"
    for module in sorted(package.glob("*.py")):
        assert "RPR017" not in _rules_hit(module), module.name


# ---------------------------------------------------------------------------
# RPR018 — direct spool-queue writes in repro.service bypass the gateway
# ---------------------------------------------------------------------------

DIRECT_QUEUE_WRITES = """
    def sneak_in(self, record):
        self.queue.submit(record.id, record.priority)

    def sneak_elsewhere(queue, job_id):
        queue.submit(job_id, 0)

    def sneak_via_service(service, job_id):
        service.spool_queue.submit(job_id, 0)
"""


def test_rpr018_flags_direct_queue_writes(tmp_path):
    path = _write(tmp_path, "service/server.py", DIRECT_QUEUE_WRITES)
    findings = [d for d in lint_file(path) if d.rule == "RPR018"]
    assert len(findings) == 3
    assert all("Gateway.submit" in d.message for d in findings)


def test_rpr018_quiet_on_gateway_mediated_submission(tmp_path):
    path = _write(
        tmp_path,
        "service/server.py",
        """
        def admit(self, payload, api_key=None):
            return self.gateway.submit(payload, api_key=api_key)

        def resubmit(client, spec):
            return client.submit(spec)  # HTTP client, not the spool
        """,
    )
    assert "RPR018" not in _rules_hit(path)


def test_rpr018_exempts_the_queue_module_itself(tmp_path):
    path = _write(tmp_path, "service/queue.py", DIRECT_QUEUE_WRITES)
    assert "RPR018" not in _rules_hit(path)


def test_rpr018_scoped_to_the_service_dir(tmp_path):
    path = _write(tmp_path, "gateway/admission.py", DIRECT_QUEUE_WRITES)
    assert "RPR018" not in _rules_hit(path)


def test_rpr018_skips_test_files(tmp_path):
    path = _write(tmp_path, "service/test_server.py", DIRECT_QUEUE_WRITES)
    assert "RPR018" not in _rules_hit(path)


def test_rpr018_waivable_with_reason(tmp_path):
    path = _write(
        tmp_path,
        "service/recovery.py",
        """
        def requeue_orphan(queue, job_id):
            queue.submit(job_id, 0)  # repro-lint: allow[RPR018] crash recovery replays a job the gateway already admitted
        """,
    )
    assert "RPR018" not in _rules_hit(path)


def test_rpr018_clean_on_the_real_service_package(tmp_path):
    package = Path(__file__).resolve().parents[2] / "src" / "repro" / "service"
    for module in sorted(package.glob("*.py")):
        assert "RPR018" not in _rules_hit(module), module.name


# ---------------------------------------------------------------------------
# RPR019 — prune discipline in align/ kernels
# ---------------------------------------------------------------------------

AD_HOC_THRESHOLD_EXIT = """
    def last_row(problem, min_score):
        best = 0.0
        for y, row in iter_rows(problem):
            best = max(best, row.max())
            if best < min_score:
                return None
        return row
"""


def test_rpr019_flags_seeded_ad_hoc_threshold_exit(tmp_path):
    path = _write(tmp_path, "align/bad_engine.py", AD_HOC_THRESHOLD_EXIT)
    findings = [d for d in lint_file(path) if d.rule == "RPR019"]
    assert len(findings) == 1
    assert "PruneGate" in findings[0].message


def test_rpr019_quiet_when_the_gate_is_consulted(tmp_path):
    path = _write(
        tmp_path,
        "align/good_engine.py",
        """
        def last_row(problem):
            gate = problem.prune
            cutoffs = gate.row_cutoffs() if gate is not None else None
            best = 0.0
            for y, row in iter_rows(problem):
                best = max(best, row.max())
                if cutoffs is not None and best <= cutoffs[y]:
                    gate.record_row_prune(y, best)
                    return None
            return row
        """,
    )
    assert "RPR019" not in _rules_hit(path)


def test_rpr019_ignores_identity_tests_and_plain_breaks(tmp_path):
    path = _write(
        tmp_path,
        "align/loop_engine.py",
        """
        def fill(problem, cutoffs, pending):
            for y, row in iter_rows(problem):
                if cutoffs is None:
                    continue
                if not pending:
                    break
            return row
        """,
    )
    assert "RPR019" not in _rules_hit(path)


def test_rpr019_scoped_to_align_and_skips_tests(tmp_path):
    outside = _write(tmp_path, "core/driver.py", AD_HOC_THRESHOLD_EXIT)
    assert "RPR019" not in _rules_hit(outside)
    testfile = _write(tmp_path, "align/test_engine.py", AD_HOC_THRESHOLD_EXIT)
    assert "RPR019" not in _rules_hit(testfile)


def test_rpr019_exempts_the_pruning_module_itself(tmp_path):
    path = _write(tmp_path, "align/pruning.py", AD_HOC_THRESHOLD_EXIT)
    assert "RPR019" not in _rules_hit(path)


def test_rpr019_waivable_with_reason(tmp_path):
    path = _write(
        tmp_path,
        "align/reference.py",
        """
        def reference_fill(problem, min_score):
            best = 0.0
            for y, row in iter_rows(problem):
                best = max(best, row.max())
                if best < min_score:  # repro-lint: allow[RPR019] reference kernel mirrors the unpruned paper recurrence
                    return None
            return row
        """,
    )
    assert "RPR019" not in _rules_hit(path)


def test_rpr019_clean_on_the_real_align_package(tmp_path):
    package = Path(__file__).resolve().parents[2] / "src" / "repro" / "align"
    for module in sorted(package.glob("*.py")):
        assert "RPR019" not in _rules_hit(module), module.name


# ---------------------------------------------------------------------------
# RPR020 — align/ imports banned inside the repro.annot layer
# ---------------------------------------------------------------------------

ANNOT_ALIGN_IMPORTS = """
    import repro.align
    from repro.align import AlignmentProblem
    from repro.align.engine import VectorEngine
    from ..align import full_matrix
    from .. import align
"""


def test_rpr020_flags_seeded_align_imports(tmp_path):
    path = _write(tmp_path, "annot/bad_renderer.py", ANNOT_ALIGN_IMPORTS)
    findings = [d for d in lint_file(path) if d.rule == "RPR020"]
    assert len(findings) == 5
    assert all("repro.annot layer" in d.message for d in findings)


def test_rpr020_quiet_on_core_model_imports(tmp_path):
    path = _write(
        tmp_path,
        "annot/good_renderer.py",
        """
        from ..core.report import FamilyModel, extract_families
        from ..core.result import RepeatResult
        from .tracks import build_track
        """,
    )
    assert "RPR020" not in _rules_hit(path)


def test_rpr020_scoped_to_annot_dir(tmp_path):
    path = _write(tmp_path, "core/uses_align.py", ANNOT_ALIGN_IMPORTS)
    assert "RPR020" not in _rules_hit(path)


def test_rpr020_skips_test_files(tmp_path):
    path = _write(tmp_path, "annot/test_renderer.py", ANNOT_ALIGN_IMPORTS)
    assert "RPR020" not in _rules_hit(path)


def test_rpr020_waivable_with_reason(tmp_path):
    path = _write(
        tmp_path,
        "annot/probe.py",
        """
        from ..align import AlignmentProblem  # repro-lint: allow[RPR020] offline debugging helper, never on a render path
        """,
    )
    assert "RPR020" not in _rules_hit(path)


def test_rpr020_clean_on_the_real_annot_package(tmp_path):
    package = Path(__file__).resolve().parents[2] / "src" / "repro" / "annot"
    for module in sorted(package.glob("*.py")):
        assert "RPR020" not in _rules_hit(module), module.name
