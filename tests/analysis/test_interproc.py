"""Seeded-violation coverage for the interprocedural rules RPR013-016."""

import shutil

from repro.analysis.linter import analyze_paths, collect_files

from .conftest import FIXTURES


def findings_for(minipkg, rule):
    found = analyze_paths([str(minipkg)]).findings
    return sorted(
        (f for f in found if f.rule == rule), key=lambda f: (f.path, f.line)
    )


class TestBlockingReachability:
    def test_handler_reaching_sleep_through_helper(self, minipkg):
        hits = findings_for(minipkg, "RPR013")
        handler = [f for f in hits if f.path.endswith("server.py")]
        assert len(handler) == 1
        assert "do_fetch" in handler[0].message
        assert "time.sleep" in handler[0].message
        # The sink is in _tail_wait, not the entry — only the call
        # graph can see this, and the trace spells out the chain.
        assert any("_tail_wait" in step for step in handler[0].trace)

    def test_lease_path_with_direct_sink(self, minipkg):
        hits = findings_for(minipkg, "RPR013")
        lease = [f for f in hits if f.path.endswith("worker.py")]
        assert len(lease) == 1
        assert "run_lease" in lease[0].message

    def test_sink_waiver_suppresses_whole_path(self, minipkg):
        server = minipkg / "server.py"
        waived = server.read_text().replace(
            "time.sleep(0.5)",
            "time.sleep(0.5)  # repro-lint: allow[RPR013] seeded",
        )
        server.write_text(waived)
        hits = findings_for(minipkg, "RPR013")
        assert [f.path.endswith("worker.py") for f in hits] == [True]


class TestLockOrder:
    def test_cross_class_cycle_reported_once(self, minipkg):
        hits = findings_for(minipkg, "RPR014")
        assert len(hits) == 1
        msg = hits[0].message
        assert "Alpha._lock" in msg and "Beta._lock" in msg


class TestMessageProtocol:
    def test_orphan_kind_without_dispatch_arm(self, minipkg):
        hits = findings_for(minipkg, "RPR015")
        orphan = [f for f in hits if "'orphan'" in f.message]
        assert len(orphan) == 1
        assert orphan[0].path.endswith("node.py")

    def test_consumer_field_not_produced(self, minipkg):
        hits = findings_for(minipkg, "RPR015")
        extra = [f for f in hits if "'extra'" in f.message]
        assert len(extra) == 1
        assert "'pong'" in extra[0].message

    def test_unconsumed_tag(self, minipkg):
        hits = findings_for(minipkg, "RPR015")
        assert any("tag 9" in f.message for f in hits)
        # tag 7 is consumed by the recv(tag=T_DATA) filter
        assert not any("tag 7" in f.message for f in hits)


class TestExceptionFlow:
    def test_dropped_assertion_in_worker(self, minipkg):
        hits = findings_for(minipkg, "RPR016")
        dropped = [f for f in hits if f.path.endswith("worker.py")]
        assert len(dropped) == 1
        assert "AssertionError" in dropped[0].message

    def test_unpicklable_exception_on_worker_path(self, minipkg):
        hits = findings_for(minipkg, "RPR016")
        pickle = [f for f in hits if f.path.endswith("errors.py")]
        assert len(pickle) == 1
        assert "BadShard" in pickle[0].message
        assert "__reduce__" in pickle[0].message


class TestScoping:
    def test_test_paths_are_exempt(self, tmp_path):
        # The same seeded package under a tests/ component: every
        # interprocedural rule must stay silent.
        dst = tmp_path / "tests" / "minipkg"
        shutil.copytree(FIXTURES / "minipkg", dst)
        found = analyze_paths([str(dst)]).findings
        assert not [f for f in found if f.rule >= "RPR013"]

    def test_fixture_dir_is_never_collected(self):
        assert collect_files([FIXTURES]) == []

    def test_seeded_package_fires_nothing_else_unexpected(self, minipkg):
        rules = {f.rule for f in analyze_paths([str(minipkg)]).findings}
        assert {"RPR013", "RPR014", "RPR015", "RPR016"} <= rules
