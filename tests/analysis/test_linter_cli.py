"""Linter driver + CLI integration, including the repo-is-clean gate.

``test_repo_is_lint_clean`` is the acceptance criterion from the issue:
``repro lint src/repro`` exits 0 on the shipped tree with every rule
active — the same invocation CI runs.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import active_rules, collect_files, lint_paths
from repro.analysis.linter import main as lint_main
from repro.cli import main as cli_main

REPO = Path(__file__).parents[2]
SRC = REPO / "src" / "repro"


def test_at_least_eight_rules_active():
    rules = active_rules()
    assert len(rules) >= 8
    assert {"RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006",
            "RPR007", "RPR008", "RPR010"} <= set(rules)


def test_repo_is_lint_clean():
    findings = lint_paths([SRC])
    assert findings == [], "\n".join(d.render() for d in findings)


def test_repo_lint_clean_includes_benchmarks_and_tests():
    paths = [SRC, REPO / "benchmarks", REPO / "examples", REPO / "tests"]
    findings = lint_paths([p for p in paths if p.exists()])
    assert findings == [], "\n".join(d.render() for d in findings)


def test_collect_files_skips_caches(tmp_path):
    (tmp_path / "__pycache__").mkdir()
    (tmp_path / "__pycache__" / "junk.py").write_text("x = 1\n")
    (tmp_path / "real.py").write_text("x = 1\n")
    files = collect_files([tmp_path])
    assert [f.name for f in files] == ["real.py"]


def test_collect_files_missing_path_raises():
    with pytest.raises(FileNotFoundError):
        collect_files([REPO / "no_such_dir"])


class TestLintMain:
    def test_clean_tree_exits_zero(self, capsys):
        assert lint_main([str(SRC / "analysis")]) == 0
        err = capsys.readouterr().err
        assert "0 finding(s)" in err
        assert "20 rules active" in err

    def test_violations_exit_one_with_rendered_findings(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("try:\n    x()\nexcept:\n    pass\n")
        assert lint_main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "RPR006" in out and "bad.py:3" in out

    def test_json_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("try:\n    x()\nexcept:\n    pass\n")
        assert lint_main(["--format", "json", str(bad)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["rule"] == "RPR006"
        assert payload[0]["line"] == 3

    def test_missing_path_exits_two(self, capsys):
        assert lint_main([str(REPO / "no_such_dir")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in active_rules():
            assert rule in out


class TestCliIntegration:
    def test_repro_lint_subcommand(self, capsys):
        assert cli_main(["lint", str(SRC / "analysis")]) == 0
        assert "20 rules active" in capsys.readouterr().err

    def test_repro_lint_propagates_failure(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\n")
        (tmp_path / "align").mkdir()
        kernel = tmp_path / "align" / "k.py"
        kernel.write_text("import numpy as np\nM = np.zeros((3, 3))\n")
        assert cli_main(["lint", str(tmp_path)]) == 1
        assert "RPR002" in capsys.readouterr().out

    def test_repro_lint_list_rules(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        assert "RPR003" in capsys.readouterr().out

    def test_python_dash_m_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(SRC / "analysis")],
            capture_output=True,
            text=True,
            cwd=REPO,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        assert "20 rules active" in proc.stderr
