"""Runtime invariant validators: each must catch a seeded violation.

Half of these tests corrupt state deliberately (a buggy score_of that
forgets shadow rejection, an un-marked triangle pair, a stale score
below its fresh value) and assert the matching validator raises —
no always-green checkers.  The other half run the checker over correct
executions (fixed and hypothesis-random inputs) and assert silence.
"""

from __future__ import annotations

import math
from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.invariants import (
    ENV_FLAG,
    InvariantChecker,
    InvariantViolation,
    TriangleMonotonicityValidator,
    check_heap_upper_bound,
    checker_from_env,
    invariant_mode,
    validate_shadow_rows,
)
from repro.core.bottomrows import BottomRowStore
from repro.core.override import DenseOverrideTriangle, SparseOverrideTriangle
from repro.core.tasks import NEVER_ALIGNED, Task, TaskQueue
from repro.core.topalign import TopAlignmentState, find_top_alignments
from repro.sequences import DNA, Sequence


@pytest.fixture()
def tandem_state(dna_scoring):
    exchange, gaps = dna_scoring
    seq = Sequence("ATGCATGCATGC", DNA, id="tandem")
    return seq, TopAlignmentState(seq, exchange, gaps)


# ---------------------------------------------------------------------------
# mode parsing / wiring
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    ("raw", "expected"),
    [
        ("", None),
        ("0", None),
        ("off", None),
        ("1", "cheap"),
        ("cheap", "cheap"),
        ("full", "full"),
        ("FULL", "full"),
        ("2", "full"),
    ],
)
def test_invariant_mode_parsing(monkeypatch, raw, expected):
    monkeypatch.setenv(ENV_FLAG, raw)
    assert invariant_mode() == expected


def test_checker_from_env(monkeypatch, tandem_state):
    _, state = tandem_state
    monkeypatch.delenv(ENV_FLAG, raising=False)
    assert checker_from_env(state) is None
    monkeypatch.setenv(ENV_FLAG, "full")
    checker = checker_from_env(state)
    assert checker is not None and checker.mode == "full"


def test_state_wires_checker_from_env(monkeypatch, dna_scoring):
    exchange, gaps = dna_scoring
    monkeypatch.setenv(ENV_FLAG, "1")
    state = TopAlignmentState(Sequence("ATGCATGC", DNA), exchange, gaps)
    assert isinstance(state.invariants, InvariantChecker)
    assert state.invariants.mode == "cheap"


# ---------------------------------------------------------------------------
# TriangleMonotonicityValidator
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("cls", [DenseOverrideTriangle, SparseOverrideTriangle])
def test_triangle_validator_accepts_monotone_growth(cls):
    triangle = cls(8)
    validator = TriangleMonotonicityValidator(triangle)
    triangle.mark([(1, 5), (2, 6)])
    assert validator.validate(triangle) == {(1, 5), (2, 6)}
    triangle.mark([(3, 7)])
    assert validator.validate(triangle) == {(3, 7)}


def test_triangle_validator_catches_seeded_unmark():
    triangle = DenseOverrideTriangle(8)
    triangle.mark([(1, 5), (2, 6)])
    validator = TriangleMonotonicityValidator(triangle)
    triangle._flags[1, 5] = False  # the seeded violation
    triangle._row_counts[1] -= 1
    with pytest.raises(InvariantViolation, match="un-marked"):
        validator.validate(triangle)


def test_triangle_validator_catches_version_rollback():
    triangle = DenseOverrideTriangle(8)
    triangle.mark([(1, 5)])
    validator = TriangleMonotonicityValidator(triangle)
    triangle.version -= 1
    with pytest.raises(InvariantViolation, match="backwards"):
        validator.validate(triangle)


def test_triangle_validator_catches_count_drift():
    triangle = DenseOverrideTriangle(8)
    validator = TriangleMonotonicityValidator(triangle)
    triangle.mark([(1, 5)])
    triangle._row_counts[1] += 1  # count no longer matches the flags
    with pytest.raises(InvariantViolation, match="marked_count"):
        validator.validate(triangle)


def test_triangle_validator_catches_out_of_bounds_pair():
    triangle = DenseOverrideTriangle(8)
    validator = TriangleMonotonicityValidator(triangle)
    triangle._flags[0, 3] = True  # i=0 violates 1 <= i < j
    triangle._row_counts[0] += 1
    with pytest.raises(InvariantViolation, match="outside the triangle"):
        validator.validate(triangle)


# ---------------------------------------------------------------------------
# validate_shadow_rows
# ---------------------------------------------------------------------------


def _store_with_row(m: int = 9, r: int = 3) -> tuple[BottomRowStore, np.ndarray]:
    store = BottomRowStore(m)
    cached = np.array([0.0, 4.0, 7.0, 2.0, 0.0, 5.0, 1.0], dtype=np.float64)
    store.put(r, cached)
    return store, cached


def test_shadow_rows_accepts_consistent_claims():
    store, cached = _store_with_row()
    fresh = cached.copy()
    fresh[2] = 3.0  # one rerouted (shadow) cell
    validate_shadow_rows(
        store, 3, fresh, claimed_mask=fresh == cached, claimed_score=5.0
    )


def test_shadow_rows_catches_seeded_wrong_mask():
    store, cached = _store_with_row()
    fresh = cached.copy()
    fresh[2] = 3.0
    bad_mask = np.ones_like(cached, dtype=bool)  # claims the shadow cell valid
    with pytest.raises(InvariantViolation, match="column 2"):
        validate_shadow_rows(store, 3, fresh, claimed_mask=bad_mask)


def test_shadow_rows_catches_seeded_shadow_score():
    store, cached = _store_with_row()
    fresh = cached.copy()
    fresh[2] = 9.0  # the shadow cell now holds the global maximum
    with pytest.raises(InvariantViolation, match="must not contribute"):
        validate_shadow_rows(store, 3, fresh, claimed_score=9.0)


def test_shadow_rows_all_changed_scores_zero():
    store, cached = _store_with_row()
    fresh = cached + 1.0
    validate_shadow_rows(store, 3, fresh, claimed_score=0.0)
    with pytest.raises(InvariantViolation):
        validate_shadow_rows(store, 3, fresh, claimed_score=float(fresh.max()))


def test_shadow_rows_catches_shape_mismatch():
    store, _ = _store_with_row()
    with pytest.raises(InvariantViolation, match="shape"):
        validate_shadow_rows(store, 3, np.zeros(4))


# ---------------------------------------------------------------------------
# check_heap_upper_bound / guard_task / verify_upper_bounds
# ---------------------------------------------------------------------------


def test_heap_upper_bound_accepts_true_bound(tandem_state):
    _, state = tandem_state
    task = Task(r=4)
    fresh = check_heap_upper_bound(state, Task(r=4, score=math.inf, aligned_with=0))
    assert fresh > 0
    task.score = fresh  # the exact score is the tightest valid bound
    task.aligned_with = 0
    assert check_heap_upper_bound(state, task) == fresh


def test_heap_upper_bound_catches_seeded_underestimate(tandem_state):
    _, state = tandem_state
    fresh = check_heap_upper_bound(state, Task(r=4, score=math.inf, aligned_with=0))
    stale = Task(r=4, score=fresh - 1.0, aligned_with=0)
    with pytest.raises(InvariantViolation, match="upper bound"):
        check_heap_upper_bound(state, stale)


def test_verify_upper_bounds_sweep(tandem_state):
    _, state = tandem_state
    checker = InvariantChecker(state, mode="full")
    fresh = check_heap_upper_bound(state, Task(r=4, score=math.inf, aligned_with=0))
    good = Task(r=4, score=fresh + 2.0, aligned_with=0)
    never = Task(r=5)  # NEVER_ALIGNED +inf placeholder: skipped
    assert checker.verify_upper_bounds([good, never]) == 1
    bad = Task(r=4, score=max(fresh - 1.0, 0.0), aligned_with=0)
    with pytest.raises(InvariantViolation):
        checker.verify_upper_bounds([good, bad])


@pytest.mark.parametrize(
    ("task", "match"),
    [
        (Task(r=4, score=float("nan"), aligned_with=0), "NaN"),
        (Task(r=4, score=-1.0, aligned_with=0), "negative"),
        (Task(r=0, score=1.0, aligned_with=0), "outside"),
        (Task(r=12, score=1.0, aligned_with=0), "outside"),
        (Task(r=4, score=1.0, aligned_with=3), "triangle version"),
    ],
)
def test_guard_task_catches_seeded_structural_breakage(tandem_state, task, match):
    _, state = tandem_state
    checker = InvariantChecker(state, mode="cheap")
    with pytest.raises(InvariantViolation, match=match):
        checker.guard_task(task)


def test_guard_task_wired_into_queue_inserts(tandem_state):
    _, state = tandem_state
    checker = InvariantChecker(state, mode="cheap")
    queue = TaskQueue(guard=checker.guard_task)
    queue.insert(Task(r=4))  # fresh +inf task is structurally fine
    with pytest.raises(InvariantViolation):
        queue.insert(Task(r=4, score=-2.0, aligned_with=0))
    assert len(queue) == 1  # the bad task never entered


def test_after_align_catches_seeded_score_rise(tandem_state):
    _, state = tandem_state
    checker = InvariantChecker(state, mode="cheap")
    risen = Task(r=4, score=10.0, aligned_with=0)
    with pytest.raises(InvariantViolation, match="raised the score"):
        checker.after_align(
            risen, np.zeros(9), prev_score=6.0, prev_version=NEVER_ALIGNED
        )


# ---------------------------------------------------------------------------
# after_accept
# ---------------------------------------------------------------------------


def _fake_alignment(index, r, pairs):
    """after_accept consumes only .index/.r/.pairs; a stub lets tests
    seed shapes TopAlignment's own __post_init__ would reject."""
    return SimpleNamespace(index=index, r=r, pairs=tuple(pairs))


def test_after_accept_passes_on_real_acceptance(tandem_state):
    seq, state = tandem_state
    state.invariants = InvariantChecker(state, mode="cheap")
    tops, _ = find_top_alignments(seq, 2, state.exchange, state.gaps, state=state)
    assert len(tops) == 2  # hooks fired on both acceptances without raising
    assert state.invariants.checks > 0


def test_after_accept_catches_seeded_overlap(tandem_state):
    _, state = tandem_state
    checker = InvariantChecker(state, mode="cheap")
    state.triangle.mark([(1, 5), (2, 6)])
    checker.triangle_validator.validate(state.triangle)
    with pytest.raises(InvariantViolation, match="re-uses"):
        checker.after_accept(_fake_alignment(1, 3, [(1, 5), (3, 7)]))


def test_after_accept_catches_seeded_non_straddling_pair(tandem_state):
    _, state = tandem_state
    checker = InvariantChecker(state, mode="cheap")
    state.triangle.mark([(5, 7)])
    with pytest.raises(InvariantViolation, match="straddle"):
        checker.after_accept(_fake_alignment(0, 3, [(5, 7)]))


def test_after_accept_catches_seeded_non_monotone_path(tandem_state):
    _, state = tandem_state
    checker = InvariantChecker(state, mode="cheap")
    state.triangle.mark([(1, 6), (2, 5)])
    with pytest.raises(InvariantViolation, match="strictly increasing"):
        checker.after_accept(_fake_alignment(0, 3, [(1, 6), (2, 5)]))


def test_after_accept_catches_seeded_unmarked_pairs(tandem_state):
    _, state = tandem_state
    checker = InvariantChecker(state, mode="cheap")
    # the acceptance claims pairs the triangle was never told about
    state.triangle.version += 0  # triangle untouched
    with pytest.raises(InvariantViolation, match="not all"):
        checker.after_accept(_fake_alignment(0, 3, [(1, 5), (2, 6)]))


# ---------------------------------------------------------------------------
# end-to-end: correct runs stay silent, seeded bugs are caught
# ---------------------------------------------------------------------------


def test_full_mode_end_to_end_silent_and_counting(dna_scoring, monkeypatch):
    exchange, gaps = dna_scoring
    seq = Sequence("ATGCATGCATGC", DNA, id="tandem")
    plain, _ = find_top_alignments(seq, 3, exchange, gaps)
    monkeypatch.setenv(ENV_FLAG, "full")
    state = TopAlignmentState(seq, exchange, gaps)
    checked, _ = find_top_alignments(seq, 3, exchange, gaps, state=state)
    assert checked == plain  # checking must not change the answer
    assert state.invariants.checks > len(checked)


def test_checker_catches_engine_that_forgets_shadow_rejection(tandem_state):
    """End-to-end seeded bug: a score_of that ignores the Appendix A
    validity mask (counts shadow alignments) must be caught mid-run."""
    seq, state = tandem_state
    state.invariants = InvariantChecker(state, mode="cheap")
    state.bottom_rows.score_of = lambda r, fresh: float(fresh.max())
    with pytest.raises(InvariantViolation, match="shadow"):
        find_top_alignments(seq, 4, state.exchange, state.gaps, state=state)


def test_checker_catches_triangle_corruption_after_run(tandem_state):
    seq, state = tandem_state
    state.invariants = InvariantChecker(state, mode="cheap")
    tops, _ = find_top_alignments(seq, 1, state.exchange, state.gaps, state=state)
    i, j = tops[0].pairs[0]
    state.triangle._flags[i, j] = False  # seeded un-mark
    state.triangle._row_counts[i] -= 1
    with pytest.raises(InvariantViolation, match="un-marked"):
        state.invariants.triangle_validator.validate(state.triangle)


# ---------------------------------------------------------------------------
# hypothesis: the heap upper-bound invariant holds end-to-end
# ---------------------------------------------------------------------------


def _random_sequence(data, min_size=6, max_size=18):
    codes = data.draw(
        st.lists(st.integers(0, 3), min_size=min_size, max_size=max_size)
    )
    return Sequence(np.array(codes, dtype=np.int8), DNA)


@settings(max_examples=20, deadline=None)
@given(data=st.data(), k=st.integers(1, 4))
def test_property_heap_upper_bound_holds_end_to_end(data, k, dna_scoring):
    """Full-mode checking (every queued bound re-verified after every
    acceptance) stays silent on arbitrary inputs, and the guarded run
    returns exactly what the unguarded run returns."""
    exchange, gaps = dna_scoring
    seq = _random_sequence(data)
    plain, _ = find_top_alignments(seq, k, exchange, gaps)
    state = TopAlignmentState(seq, exchange, gaps)
    state.invariants = InvariantChecker(state, mode="full")
    checked, _ = find_top_alignments(seq, k, exchange, gaps, state=state)
    assert checked == plain
    assert state.invariants.checks > 0


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_property_stale_scores_dominate_fresh_scores(data, dna_scoring):
    """Directly: after one acceptance, every not-yet-realigned task's
    cached first-pass score is >= its fresh score (the §3 claim the
    best-first loop depends on)."""
    exchange, gaps = dna_scoring
    seq = _random_sequence(data, min_size=8)
    # prune=False: this property is about genuine first-pass scores; a
    # pruned fill stays NEVER_ALIGNED (its bound-dominance is covered by
    # tests/align/test_pruning.py) and would be skipped by the sweep.
    state = TopAlignmentState(seq, exchange, gaps, prune=False)
    tasks = state.make_tasks()
    for task in tasks:
        state.align_task(task)
    accepted = max(tasks, key=lambda t: (t.score, -t.r))
    if accepted.score <= 0:
        return  # nothing acceptable in this random sequence
    state.accept_task(accepted)
    checker = InvariantChecker(state, mode="full")
    stale = [t for t in tasks if t.r != accepted.r]
    assert checker.verify_upper_bounds(stale) == len(stale)
