"""Seeded-violation tests for the RPR003 lock-discipline detector.

The detector infers the guarded attribute set from the class's own
majority behaviour (lockset style), so each test builds a small class
that mutates shared state both under and outside its lock.
"""

from __future__ import annotations

import ast
import textwrap

from repro.analysis.locks import MUTATING_METHODS, check_lock_discipline


def _check(source: str):
    source = textwrap.dedent(source)
    return check_lock_discipline(ast.parse(source), source, "sched.py")


RACY_SCHEDULER = """
    import threading

    class Scheduler:
        def __init__(self):
            self._cond = threading.Condition()
            self._inflight = {}

        def checkout(self, r, task):
            with self._cond:
                self._inflight[r] = task

        def finish(self, r):
            del self._inflight[r]  # the seeded race: no lock held
"""


def test_rpr003_flags_seeded_unlocked_mutation():
    findings = _check(RACY_SCHEDULER)
    assert len(findings) == 1
    diag = findings[0]
    assert diag.rule == "RPR003"
    assert "Scheduler.finish" in diag.message
    assert "_inflight" in diag.message


def test_rpr003_quiet_when_every_mutation_is_locked():
    findings = _check(
        """
        import threading

        class Scheduler:
            def __init__(self):
                self._cond = threading.Condition()
                self._inflight = {}

            def checkout(self, r, task):
                with self._cond:
                    self._inflight[r] = task

            def finish(self, r):
                with self._cond:
                    del self._inflight[r]
        """
    )
    assert findings == []


def test_rpr003_init_is_exempt():
    # __init__ populating shared state before any thread exists is fine
    # (both classes above rely on this); an unrelated attribute that is
    # never mutated under the lock is not guarded at all.
    findings = _check(
        """
        import threading

        class Worker:
            def __init__(self):
                self.lock = threading.Lock()
                self.results = []
                self.name = "w0"

            def run(self):
                with self.lock:
                    self.results.append(1)

            def rename(self, name):
                self.name = name
        """
    )
    assert findings == []


def test_rpr003_flags_mutating_method_call_outside_lock():
    findings = _check(
        """
        import threading

        class Queue:
            def __init__(self):
                self.lock = threading.Lock()
                self.items = []

            def put(self, x):
                with self.lock:
                    self.items.append(x)

            def put_fast(self, x):
                self.items.append(x)
        """
    )
    assert [d.rule for d in findings] == ["RPR003"]
    assert "put_fast" in findings[0].message


def test_rpr003_holds_lock_marker_accepts_callee():
    findings = _check(
        """
        import threading

        class Scheduler:
            def __init__(self):
                self._cond = threading.Condition()
                self._done = 0

            def step(self):
                with self._cond:
                    self._done += 1
                    self._finish()

            def _finish(self):  # repro-lint: holds-lock
                self._done += 1
        """
    )
    assert findings == []


def test_rpr003_flags_holds_lock_callee_invoked_unlocked():
    findings = _check(
        """
        import threading

        class Scheduler:
            def __init__(self):
                self._cond = threading.Condition()
                self._done = 0

            def step(self):
                with self._cond:
                    self._done += 1

            def hurry(self):
                self._finish()  # contract not discharged

            def _finish(self):  # repro-lint: holds-lock
                self._done += 1
        """
    )
    assert len(findings) == 1
    assert "holds-lock" in findings[0].message
    assert "hurry" in findings[0].message


def test_rpr003_ignores_lockless_classes():
    findings = _check(
        """
        class Plain:
            def __init__(self):
                self.items = []

            def add(self, x):
                self.items.append(x)
        """
    )
    assert findings == []


def test_rpr003_nested_function_mutations_not_double_counted():
    # A callback defined inside a locked region runs later, outside the
    # lock — the scanner must not treat its body as locked, nor crash.
    findings = _check(
        """
        import threading

        class Scheduler:
            def __init__(self):
                self._cond = threading.Condition()
                self._inflight = {}

            def checkout(self, r, task):
                with self._cond:
                    self._inflight[r] = task

                    def callback():
                        return None

                    return callback
        """
    )
    assert findings == []


def test_rpr003_knows_this_repos_container_mutators():
    # The queue/triangle mutators the schedulers actually call must be
    # in the recognised set, or real races would go unseen.
    assert {"insert", "pop_highest", "pop_highest_excluding", "mark", "put"} <= set(
        MUTATING_METHODS
    )
