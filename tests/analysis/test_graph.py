"""Program-graph construction checked against golden fixture graphs."""

import json

from repro.analysis.graph import ModuleFacts, ProgramGraph, module_name_for
from repro.analysis.linter import analyze_paths
from repro.analysis.linter import main as lint_main

from .conftest import FIXTURES

GOLDEN = FIXTURES / "minipkg_graph.json"


def build(minipkg):
    return analyze_paths([str(minipkg)])


class TestModuleNames:
    def test_walks_init_chain(self, minipkg):
        assert module_name_for(str(minipkg / "server.py")) == "minipkg.server"
        assert module_name_for(str(minipkg / "__init__.py")) == "minipkg"

    def test_bare_file_is_its_stem(self, tmp_path):
        lone = tmp_path / "standalone.py"
        lone.write_text("x = 1\n")
        assert module_name_for(str(lone)) == "standalone"


class TestGoldenGraphs:
    def test_call_and_lock_graphs_match_golden(self, minipkg):
        graph = build(minipkg).graph
        assert graph.to_dict() == json.loads(GOLDEN.read_text())

    def test_facts_survive_json_round_trip(self, minipkg):
        graph = build(minipkg).graph
        revived = ProgramGraph(
            ModuleFacts.from_dict(json.loads(json.dumps(mf.to_dict())))
            for mf in graph.modules.values()
        )
        assert revived.to_dict() == graph.to_dict()


class TestQueries:
    def test_callers_and_callees(self, minipkg):
        graph = build(minipkg).graph
        helper = "minipkg.server:_tail_wait"
        entry = "minipkg.server:RequestHandler.do_fetch"
        assert helper in {callee for callee, _ in graph.callees(entry)}
        assert entry in {caller for caller, _ in graph.callers(helper)}

    def test_find_nodes_by_suffix(self, minipkg):
        graph = build(minipkg).graph
        assert graph.find_nodes("do_fetch") == [
            "minipkg.server:RequestHandler.do_fetch"
        ]

    def test_reachable_and_path(self, minipkg):
        graph = build(minipkg).graph
        start = "minipkg.worker:execute"
        parents = graph.reachable(start)
        target = "minipkg.worker:_check"
        assert target in parents
        assert graph.path_to(start, target, parents) == [start, target]

    def test_import_closures(self, minipkg):
        graph = build(minipkg).graph
        forward = graph.import_closure(["minipkg.worker"])
        assert "minipkg.errors" in forward
        reverse = graph.reverse_import_closure(["minipkg.protocol"])
        assert {"minipkg.server", "minipkg.node"} <= reverse

    def test_stats_counts(self, minipkg):
        stats = build(minipkg).graph.stats()
        assert stats["modules"] == 7
        assert stats["lock_edges"] == 2
        assert stats["functions"] > 0 and stats["call_edges"] > 0


class TestGraphCli:
    def test_callers_query(self, minipkg, capsys):
        code = lint_main(
            ["--graph", "callers", "_tail_wait", str(minipkg), "--no-cache"]
        )
        assert code == 0
        assert "RequestHandler.do_fetch" in capsys.readouterr().out

    def test_callees_query(self, minipkg, capsys):
        lint_main(["--graph", "callees", "execute", str(minipkg), "--no-cache"])
        assert "minipkg.worker:_check" in capsys.readouterr().out

    def test_locks_query(self, minipkg, capsys):
        lint_main(["--graph", "locks", "Alpha", str(minipkg), "--no-cache"])
        out = capsys.readouterr().out
        assert "Alpha._lock" in out and "Beta._lock" in out

    def test_unknown_symbol_exits_two(self, minipkg, capsys):
        code = lint_main(
            ["--graph", "callers", "no_such_fn", str(minipkg), "--no-cache"]
        )
        assert code == 2
        capsys.readouterr()
