"""Incremental-cache behaviour: content keys, sibling salt, cold/warm."""

from repro.analysis.cache import LintCache, content_digest
from repro.analysis.linter import analyze_paths


def run(minipkg, cache_dir):
    return analyze_paths(
        [str(minipkg)], use_cache=True, cache_dir=str(cache_dir)
    )


def finding_keys(result):
    return sorted((f.rule, f.path, f.line) for f in result.findings)


class TestContentDigest:
    def test_depends_on_content_and_path(self):
        base = content_digest(b"x = 1\n", "a.py")
        assert content_digest(b"x = 2\n", "a.py") != base
        assert content_digest(b"x = 1\n", "b.py") != base

    def test_store_and_load_round_trip(self, tmp_path):
        cache = LintCache(str(tmp_path / "cache"))
        digest = content_digest(b"y = 1\n", "y.py")
        assert cache.load(digest) is None
        cache.store(digest, {"facts": {"module": "y"}, "findings": []})
        assert cache.load(digest)["facts"]["module"] == "y"


class TestIncrementalRuns:
    def test_cold_then_warm(self, minipkg, tmp_path):
        cache_dir = tmp_path / ".cache"
        cold = run(minipkg, cache_dir)
        assert cold.stats["modules_analyzed"] == 7
        assert cold.stats["modules_cached"] == 0

        warm = run(minipkg, cache_dir)
        assert warm.stats["modules_analyzed"] == 0
        assert warm.stats["modules_cached"] == 7
        assert finding_keys(warm) == finding_keys(cold)

    def test_edit_invalidates_file_and_package_init(self, minipkg, tmp_path):
        cache_dir = tmp_path / ".cache"
        cold = run(minipkg, cache_dir)
        worker = minipkg / "worker.py"
        worker.write_text(worker.read_text() + "\nEXTRA = 1\n")
        third = run(minipkg, cache_dir)
        # worker.py re-analyzed for its content; __init__.py because its
        # digest folds in sibling digests (RPR005 reads sibling __all__).
        assert third.stats["modules_analyzed"] == 2
        assert third.stats["modules_cached"] == 5
        assert finding_keys(third) == finding_keys(cold)

    def test_interproc_rules_rerun_from_cached_facts(self, minipkg, tmp_path):
        cache_dir = tmp_path / ".cache"
        run(minipkg, cache_dir)
        warm = run(minipkg, cache_dir)
        rules = {f.rule for f in warm.findings}
        assert {"RPR013", "RPR014", "RPR015", "RPR016"} <= rules

    def test_no_cache_leaves_no_directory(self, minipkg, tmp_path):
        cache_dir = tmp_path / ".cache"
        analyze_paths([str(minipkg)])
        assert not cache_dir.exists()
