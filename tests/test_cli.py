"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.sequences import DNA, Sequence, write_fasta


@pytest.fixture()
def tandem_fasta(tmp_path):
    path = tmp_path / "tandem.fasta"
    write_fasta(Sequence("ATGCATGCATGC", DNA, id="tandem"), path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_find_defaults(self):
        args = build_parser().parse_args(["find", "x.fasta"])
        assert args.top_alignments == 20
        assert args.engine == "vector"
        assert args.algorithm == "new"
        assert args.group == 1

    def test_scan_engine_knobs(self):
        args = build_parser().parse_args(
            ["scan", "db.fasta", "--engine", "lanes", "--group", "8"]
        )
        assert args.engine == "lanes"
        assert args.group == 8

    def test_index_defaults_off(self):
        find_args = build_parser().parse_args(["find", "x.fasta"])
        assert find_args.index is False
        assert find_args.index_k == 0
        scan_args = build_parser().parse_args(["scan", "db.fasta"])
        assert scan_args.index is False
        assert scan_args.index_threshold == 0.0
        assert scan_args.index_cache is None

    def test_bench_accepts_index_artifact(self):
        args = build_parser().parse_args(["bench", "index", "--json", "o.json"])
        assert args.artifact == "index"


class TestEnginesCommand:
    def test_lists_engines(self, capsys):
        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        assert "vector" in out and "scalar" in out and "lanes-sse2" in out


class TestGenerateCommand:
    def test_titin_to_file(self, tmp_path, capsys):
        out = tmp_path / "titin.fasta"
        assert main(["generate", "titin", "--length", "120", "--output", str(out)]) == 0
        from repro.sequences import read_fasta

        (rec,) = read_fasta(out)
        assert len(rec) == 120

    def test_implanted_to_stdout(self, capsys):
        assert main(["generate", "implanted", "--length", "100", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert out.startswith(">implanted")


class TestFindCommand:
    def test_find_on_tandem(self, tandem_fasta, capsys):
        code = main(
            [
                "find",
                tandem_fasta,
                "-k",
                "3",
                "--alphabet",
                "dna",
                "--gap-open",
                "2",
                "--gap-extend",
                "1",
                "--show-alignments",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert ">tandem length=12" in out
        assert "repeat families: 1" in out
        assert "top#0 score=8" in out

    def test_find_batched_matches_sequential(self, tandem_fasta, capsys):
        def results_only(text):
            # Speculation legitimately changes "alignments computed";
            # every reported alignment and family must be identical.
            return [
                line for line in text.splitlines()
                if "alignments computed" not in line
            ]

        base = ["find", tandem_fasta, "-k", "3", "--alphabet", "dna",
                "--gap-open", "2", "--gap-extend", "1", "--show-alignments"]
        assert main(base) == 0
        sequential = capsys.readouterr().out
        assert main(base + ["--engine", "lanes", "--group", "4"]) == 0
        assert results_only(capsys.readouterr().out) == results_only(sequential)

    def test_find_index_seeding_matches_sequential(self, tandem_fasta, capsys):
        def results_only(text):
            # Seeding legitimately changes "alignments computed";
            # every reported alignment and family must be identical.
            return [
                line for line in text.splitlines()
                if "alignments computed" not in line
            ]

        base = ["find", tandem_fasta, "-k", "3", "--alphabet", "dna",
                "--gap-open", "2", "--gap-extend", "1", "--show-alignments"]
        assert main(base) == 0
        plain = capsys.readouterr().out
        assert main(base + ["--index"]) == 0
        assert results_only(capsys.readouterr().out) == results_only(plain)

    def test_find_old_algorithm(self, tandem_fasta, capsys):
        assert (
            main(["find", tandem_fasta, "-k", "2", "--alphabet", "dna", "--algorithm", "old"])
            == 0
        )
        assert "top alignments: 2" in capsys.readouterr().out

    def test_find_protein_matrix_choice(self, tmp_path, capsys):
        path = tmp_path / "p.fasta"
        write_fasta(Sequence("MKTAYIAKQRMKTAYIAKQR", id="p"), path)
        assert main(["find", str(path), "-k", "1", "--matrix", "pam250"]) == 0
        assert "top alignments: 1" in capsys.readouterr().out

    def test_protein_matrix_on_dna_rejected(self, tandem_fasta):
        with pytest.raises(SystemExit, match="protein"):
            main(["find", tandem_fasta, "--alphabet", "dna", "--matrix", "blosum62"])

    def test_empty_fasta_rejected(self, tmp_path):
        empty = tmp_path / "empty.fasta"
        empty.write_text("")
        with pytest.raises(SystemExit, match="no FASTA records"):
            main(["find", str(empty)])

    def test_stdin_input(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(">s\nATGCATGCATGC\n"))
        assert main(["find", "-", "-k", "2", "--alphabet", "dna"]) == 0
        assert "top alignments: 2" in capsys.readouterr().out


class TestAlignCommand:
    def test_paper_example(self, capsys):
        assert main(["align", "ATTGCGA", "CTTACAGA"]) == 0
        out = capsys.readouterr().out
        assert "score 6" in out
        assert "TTGC-GA" in out and "TTACAGA" in out

    def test_lowercase_input(self, capsys):
        assert main(["align", "attgcga", "cttacaga"]) == 0
        assert "score 6" in capsys.readouterr().out

    def test_protein_matrix(self, capsys):
        assert main(
            ["align", "MKTAYIAK", "MKTAYIAK", "--alphabet", "protein",
             "--matrix", "blosum62"]
        ) == 0
        assert "score" in capsys.readouterr().out

    def test_no_alignment(self, capsys):
        assert main(["align", "AAAA", "TTTT"]) == 0
        assert "no positive-scoring" in capsys.readouterr().out

    def test_matrix_requires_protein(self):
        with pytest.raises(SystemExit, match="protein"):
            main(["align", "ACGT", "ACGT", "--matrix", "pam250"])


class TestScanCommand:
    def test_ranking(self, tmp_path, capsys):
        from repro.sequences import random_sequence, tandem_repeat_sequence

        path = tmp_path / "db.fasta"
        write_fasta(
            [
                Sequence(random_sequence(40, DNA, seed=3).codes, DNA, id="rand"),
                Sequence(tandem_repeat_sequence("ATGCGT", 5).codes, DNA, id="tand"),
            ],
            path,
        )
        assert main(["scan", str(path), "--alphabet", "dna", "-k", "4"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert out[1].split()[1] == "tand"  # best score ranks first

    def test_limit(self, tmp_path, capsys):
        from repro.sequences import random_sequence

        path = tmp_path / "db.fasta"
        write_fasta(
            [
                Sequence(random_sequence(30, DNA, seed=s).codes, DNA, id=f"s{s}")
                for s in range(3)
            ],
            path,
        )
        assert main(["scan", str(path), "--alphabet", "dna", "--limit", "1", "-k", "2"]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 2  # header + 1 row

    def test_engine_and_group_knobs(self, tmp_path, capsys):
        from repro.sequences import tandem_repeat_sequence

        path = tmp_path / "db.fasta"
        write_fasta(
            [Sequence(tandem_repeat_sequence("ATGCGT", 5).codes, DNA, id="tand")],
            path,
        )
        base = ["scan", str(path), "--alphabet", "dna", "-k", "4"]
        assert main(base) == 0
        sequential = capsys.readouterr().out
        assert main(base + ["--engine", "lanes", "--group", "8"]) == 0
        assert capsys.readouterr().out == sequential

    def test_empty_rejected(self, tmp_path):
        empty = tmp_path / "e.fasta"
        empty.write_text("")
        with pytest.raises(SystemExit):
            main(["scan", str(empty)])

    def test_index_adds_routed_column_same_ranking(self, tmp_path, capsys):
        from repro.sequences import random_sequence, tandem_repeat_sequence

        path = tmp_path / "db.fasta"
        write_fasta(
            [
                Sequence(random_sequence(60, DNA, seed=3).codes, DNA, id="rand"),
                Sequence(tandem_repeat_sequence("ATGCGT", 8).codes, DNA, id="tand"),
            ],
            path,
        )
        base = ["scan", str(path), "--alphabet", "dna", "-k", "4"]
        assert main(base) == 0
        plain = capsys.readouterr().out.splitlines()
        assert main(base + ["--index"]) == 0
        captured = capsys.readouterr()
        indexed = captured.out.splitlines()
        assert "routed" in indexed[0]
        assert "index:" in captured.err
        # Same records in the same rank order, each with a routing label.
        for plain_row, indexed_row in zip(plain[1:], indexed[1:]):
            assert indexed_row.split()[1] == plain_row.split()[1]
            assert indexed_row.split()[-1] in ("skip", "defer", "full")

    def test_index_warm_cache_reloads(self, tmp_path, capsys):
        from repro.sequences import tandem_repeat_sequence

        path = tmp_path / "db.fasta"
        write_fasta(
            [Sequence(tandem_repeat_sequence("ATGCGT", 8).codes, DNA, id="tand")],
            path,
        )
        cache_dir = str(tmp_path / "idxcache")
        cmd = [
            "scan", str(path), "--alphabet", "dna", "-k", "4",
            "--index", "--index-cache", cache_dir,
        ]
        assert main(cmd) == 0
        assert "builds=1 loads=0" in capsys.readouterr().err
        assert main(cmd) == 0
        assert "builds=0 loads=1" in capsys.readouterr().err


class TestSearchCommand:
    def test_ranks_by_query_similarity(self, tmp_path, capsys):
        from repro.sequences import PROTEIN, random_sequence

        query = "HQRTHTGEKPYKCPECGK"
        db = [
            Sequence(random_sequence(50, PROTEIN, seed=1).codes, PROTEIN, id="noise"),
            Sequence(
                random_sequence(20, PROTEIN, seed=2).codes, PROTEIN, id="pre"
            ),
        ]
        # Plant the query inside one record.
        hit = Sequence(db[1].text + query + "AAAA", PROTEIN, id="hit")
        path = tmp_path / "db.fasta"
        write_fasta([db[0], hit], path)
        assert main(["search", query, str(path)]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines[1].split()[1] == "hit"

    def test_empty_db_rejected(self, tmp_path):
        empty = tmp_path / "e.fasta"
        empty.write_text("")
        with pytest.raises(SystemExit):
            main(["search", "ACDEF", str(empty)])

    def test_dna_simple_matrix(self, tandem_fasta, capsys):
        assert main(
            ["search", "ATGCATGC", tandem_fasta, "--alphabet", "dna"]
        ) == 0
        assert "tandem" in capsys.readouterr().out


class TestFindMsaFlag:
    def test_msa_rendered(self, tandem_fasta, capsys):
        assert main(
            ["find", tandem_fasta, "-k", "3", "--alphabet", "dna",
             "--gap-open", "2", "--gap-extend", "1", "--msa"]
        ) == 0
        out = capsys.readouterr().out
        assert "alignment (100% identity)" in out
        assert "ATGC" in out


class TestSimulateCommand:
    def test_basic_run(self, capsys):
        assert main(["simulate", "--length", "120", "-k", "2", "-P", "4"]) == 0
        out = capsys.readouterr().out
        assert "speed improvement" in out
        assert "utilisation" in out

    def test_gantt(self, capsys):
        assert main(
            ["simulate", "--length", "100", "-k", "1", "-P", "4", "--gantt"]
        ) == 0
        out = capsys.readouterr().out
        assert "cpu  0" in out and "master" in out


class TestBenchCommand:
    def test_realign_artifact_runs(self, capsys):
        assert main(["bench", "realign", "-k", "3"]) == 0
        out = capsys.readouterr().out
        assert "realignments avoided" in out

    def test_batched_artifact_with_json(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "BENCH_batched.json"
        assert main(
            ["bench", "batched", "--length", "90", "-k", "3",
             "--json", str(out_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "Speculative batched driver" in out
        payload = json.loads(out_path.read_text())
        assert payload["identical_tops"] is True
        groups = [r["group"] for r in payload["rows"]]
        assert groups == [1, 1, 4, 8]  # vector baseline + lanes G sweep
        for row in payload["rows"]:
            assert set(row) >= {
                "engine", "group", "seconds", "alignments", "cells",
                "cells_per_second", "speculative_waste", "waste_ratio",
                "speedup_vs_g1",
            }


class TestAnnotate:
    @pytest.fixture()
    def repeat_fasta(self, tmp_path):
        path = tmp_path / "rep.fasta"
        write_fasta(Sequence("MKTAYIAKQR" * 5, id="rep"), path)
        return str(path)

    def test_parser_defaults(self):
        args = build_parser().parse_args(["annotate", "scan.json"])
        assert args.prefix == "repro-annot"
        assert args.window == 0

    def test_fasta_to_artifacts(self, repeat_fasta, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["annotate", repeat_fasta, "--prefix", "out"]) == 0
        out = capsys.readouterr().out
        assert "wrote out.gff3" in out
        for suffix in (".gff3", ".profile.json", ".html", ".wig"):
            assert (tmp_path / f"out{suffix}").exists()
        from repro.annot import validate_gff3

        assert validate_gff3((tmp_path / "out.gff3").read_text()) == []
        assert "http" not in (tmp_path / "out.html").read_text()

    def test_scan_json_then_annotate_offline(
        self, repeat_fasta, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        assert main(
            ["scan", repeat_fasta, "--json", "scan.json", "-k", "5"]
        ) == 0
        assert (tmp_path / "scan.json").exists()
        capsys.readouterr()
        assert main(["annotate", "scan.json", "--prefix", "off"]) == 0
        out = capsys.readouterr().out
        assert "annotated 1 sequence(s)" in out
        gff = (tmp_path / "off.gff3").read_text()
        assert "repeat_region" in gff

    def test_bad_scan_document(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"format": "other"}', encoding="utf-8")
        with pytest.raises(SystemExit, match="bad scan document"):
            main(["annotate", str(bad)])
