"""Figure 8 — speed improvements vs processor count (simulated DAS-2).

Paper (titin, 64 dual-P3 nodes, Myrinet): near-perfect scaling for the
first top alignment (831x at 128 CPUs vs the sequential conventional
implementation; 123x vs the SSE version; 96.1 % efficiency), with
speedups decreasing as more top alignments are requested (~500x at
k=100) because realignment rounds expose limited parallelism and the
traceback is sequential.

Two complementary reproductions:

* **real-workload sweep** — the event simulator executes the actual
  algorithm (real alignments, memoised) on a scaled pseudo-titin, and
  the k-ordering/monotonicity shape is asserted;
* **titin-scale k=1** — for the first top alignment the schedule is
  score-independent, so the simulator runs at the paper's full
  m = 34350 and must land near the published 831x / 123x / 96 %.
"""

import pytest

from repro.bench import figure8_series
from repro.simulate import ClusterConfig
from repro.simulate.firstpass import simulate_first_pass

from conftest import save_table

LENGTH = 360
KS = (1, 2, 5, 10, 25)
PROCS = (2, 4, 8, 16, 32, 64, 128)


@pytest.fixture(scope="module")
def series():
    return figure8_series(length=LENGTH, ks=KS, processors=PROCS)


def test_figure8_series(benchmark, series, results_dir):
    """Regenerate the six curves and assert their shape."""
    benchmark.group = "figure8"
    benchmark.pedantic(
        lambda: figure8_series(length=LENGTH, ks=(1,), processors=(2, 128)),
        rounds=1,
        iterations=1,
    )
    lines = ["Figure 8 — speed improvement vs processors (simulated DAS-2)",
             f"pseudo-titin length={LENGTH}; improvement vs sequential "
             "conventional run / vs one-CPU SSE run"]
    for k, points in sorted(series.items()):
        lines.append(
            f"k={k:3d}  "
            + "  ".join(f"P={p}:{s:.0f}/{v:.0f}" for p, s, v in points)
        )
    save_table(results_dir, "figure8", "\n".join(lines))
    # Raw grid as CSV for replotting.
    from repro.bench import bench_sequence, default_scoring
    from repro.simulate.sweep import records_to_csv, sweep_cluster

    exchange, gaps = default_scoring()
    records = sweep_cluster(
        bench_sequence(LENGTH), exchange, gaps, processors=PROCS, ks=KS
    )
    records_to_csv(records, results_dir / "figure8.csv")

    for k, points in series.items():
        speedups = [s for _, s, _ in points]
        # Monotone: more processors never hurt.
        assert speedups == sorted(speedups), (k, speedups)
        # Sublinear bound: <= workers x tier-improvement.
        for (p, s, _) in points:
            assert s <= (p - 1) * 6.95

    # Fewer top alignments scale better (the paper's curve ordering)
    # at the largest processor count.
    at_max = {k: points[-1][1] for k, points in series.items()}
    ordered = [at_max[k] for k in sorted(series)]
    assert ordered == sorted(ordered, reverse=True), at_max


def test_first_alignment_near_perfect_scaling(benchmark, series):
    """'The improvements for finding the first top alignment are nearly
    perfect' — at small P the scaled workload already shows it."""
    benchmark.group = "figure8"
    points = benchmark.pedantic(
        lambda: {p: s_sse for p, _, s_sse in series[1]}, rounds=1, iterations=1
    )
    assert points[2] >= 0.7  # 1 worker at SSE tier ~ the SSE baseline
    assert points[4] >= 2.0  # 3 workers


def test_figure8_titin_scale_headline(benchmark, results_dir):
    """k=1 at the paper's true m=34350: must land near 831x / 123x / 96 %."""
    m = 34350
    benchmark.group = "figure8-titin"
    conv = simulate_first_pass(
        m, ClusterConfig(processors=1, tier="conventional", dedicated_master=False)
    )
    sse = simulate_first_pass(
        m, ClusterConfig(processors=1, tier="sse", dedicated_master=False)
    )
    r128 = benchmark.pedantic(
        lambda: simulate_first_pass(m, ClusterConfig(processors=128, tier="sse")),
        rounds=1,
        iterations=1,
    )
    vs_conv = conv.makespan / r128.makespan
    vs_sse = sse.makespan / r128.makespan
    efficiency = vs_sse / 127
    save_table(
        results_dir,
        "figure8_titin",
        "Figure 8 headline (titin m=34350, k=1, P=128, simulated)\n"
        f"improvement vs sequential conventional: {vs_conv:.0f}  (paper: 831)\n"
        f"improvement vs one-CPU SSE:             {vs_sse:.1f} (paper: 123)\n"
        f"efficiency:                             {efficiency:.1%} (paper: 96.1%)",
    )
    assert 700 <= vs_conv <= 880
    assert 110 <= vs_sse <= 127
    assert 0.90 <= efficiency <= 1.0
