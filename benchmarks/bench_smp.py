"""§5.2 claim — SMP scaling of a dual-CPU node.

"Using the second CPU in a dual-processor machine yields a 100 %
performance increase; since the algorithm ... runs nearly entirely in
the first-level caches, the processors run nearly independently (the
latter is not true for the non-cache-aware algorithm: contention on
the memory bus limits the speed increase to merely 25 %)."

Modelled through the machine model's SMP efficiency factor and
verified end-to-end with the cluster simulator at the first-pass
stage, where both CPUs stay busy.
"""

import pytest

from repro.simulate import ClusterConfig, MachineModel
from repro.simulate.firstpass import simulate_first_pass

from conftest import save_table

M = 4000  # synthetic first-pass workload (analytic oracle -> cheap)

CACHE_AWARE = MachineModel(
    name="p3-cache-aware",
    rates={"sse": 3.93e8, "conventional": 5.67e7},
    cpus_per_node=2,
    smp_efficiency=1.0,
)
BUS_BOUND = MachineModel(
    name="p3-no-stripes",
    rates={"sse": 3.93e8, "conventional": 5.67e7},
    cpus_per_node=2,
    smp_efficiency=0.625,
)


def _dual_vs_single(machine: MachineModel) -> float:
    """Throughput gain of using both node CPUs for alignment work."""
    single = simulate_first_pass(
        m=M, config=ClusterConfig(processors=2, machine=machine, tier="sse")
    )
    dual = simulate_first_pass(
        m=M, config=ClusterConfig(processors=3, machine=machine, tier="sse")
    )
    return single.makespan / dual.makespan


def test_cache_aware_smp_gain(benchmark, results_dir):
    benchmark.group = "smp"
    gain = benchmark.pedantic(
        lambda: _dual_vs_single(CACHE_AWARE), rounds=1, iterations=1
    )
    save_table(
        results_dir,
        "smp_cache_aware",
        f"§5.2 — second CPU gain, cache-aware kernels: +{(gain - 1):.0%} "
        "(paper: +100 %)",
    )
    assert gain == pytest.approx(2.0, rel=0.05)


def test_bus_bound_smp_gain(benchmark, results_dir):
    benchmark.group = "smp"
    gain = benchmark.pedantic(
        lambda: _dual_vs_single(BUS_BOUND), rounds=1, iterations=1
    )
    save_table(
        results_dir,
        "smp_bus_bound",
        f"§5.2 — second CPU gain, non-cache-aware kernels: +{(gain - 1):.0%} "
        "(paper: +25 %)",
    )
    assert gain == pytest.approx(1.25, rel=0.05)
