"""Ablations of the new algorithm's design choices (DESIGN.md §5).

The O(n⁴)→O(n³) gap comes from two separable ideas; Table 1 measures
their product, this bench isolates each:

* **best-first queue** (stale scores as upper bounds) — ablated by a
  variant that keeps the bottom-row cache but realigns *every* stale
  task after each acceptance;
* **bottom-row cache** (Appendix A shadow test) — ablated by a variant
  that keeps the queue but validates realignments by aligning twice
  (with and without the triangle), the appendix's "computationally
  expensive" alternative.

All variants must produce identical top alignments (asserted).  A third
ablation compares dense vs. sparse override-triangle storage.
"""

import numpy as np
import pytest

from repro.align.base import AlignmentProblem
from repro.bench import bench_sequence, default_scoring
from repro.core import TaskQueue, TopAlignmentState, find_top_alignments

from conftest import save_table

LENGTH = 250
K = 8


def _key(alignments):
    return [(a.index, a.r, a.score, a.pairs) for a in alignments]


def run_baseline(seq, exchange, gaps):
    """The full algorithm: queue + cache."""
    state = TopAlignmentState(seq, exchange, gaps)
    tops, stats = find_top_alignments(seq, K, exchange, gaps, state=state)
    return tops, stats.alignments


def run_no_queue(seq, exchange, gaps):
    """Ablate the best-first queue: realign every stale task per round,
    keeping the cached-bottom-row shadow test."""
    state = TopAlignmentState(seq, exchange, gaps)
    tasks = state.make_tasks()
    for task in tasks:
        state.align_task(task)
    while state.n_found < K:
        best = max(tasks, key=lambda t: (t.score, -t.r))
        if best.score <= 0:
            break
        state.accept_task(best)
        for task in tasks:  # the ablated part: no pruning at all
            state.align_task(task)
    return list(state.found), state.stats.alignments


def run_no_cache(seq, exchange, gaps):
    """Ablate the bottom-row cache: best-first queue, but shadow
    validity via the align-twice scheme (no stored first rows)."""
    state = TopAlignmentState(seq, exchange, gaps)
    counter = {"alignments": 0}

    def plain_row(r):
        problem = AlignmentProblem(
            state.codes[:r], state.codes[r:], exchange, gaps
        )
        counter["alignments"] += 1
        return state.engine.last_row(problem)

    def overridden_row(r):
        counter["alignments"] += 1
        return state.engine.last_row(state.problem_for(r))

    queue = TaskQueue()
    tasks = state.make_tasks()
    for task in tasks:
        queue.insert(task)
    while state.n_found < K and queue:
        task = queue.pop_highest()
        if task.score <= 0:
            break
        if task.is_current(state.n_found):
            # accept_task needs the stored rows; feed them lazily from a
            # fresh plain alignment so its machinery stays intact.
            if task.r not in state.bottom_rows:
                state.bottom_rows.put(task.r, plain_row(task.r))
            state.accept_task(task)
        else:
            plain = plain_row(task.r)
            if state.triangle.version == 0:
                over = plain
            else:
                over = overridden_row(task.r)
            valid = over == plain
            task.score = float(over[valid].max()) if valid.any() else 0.0
            task.aligned_with = state.n_found
            if task.r not in state.bottom_rows:
                state.bottom_rows.put(task.r, plain)
        queue.insert(task)
    return list(state.found), counter["alignments"]


@pytest.fixture(scope="module")
def scoring_mod():
    return default_scoring()


@pytest.fixture(scope="module")
def seq_mod():
    return bench_sequence(LENGTH)


def test_ablation_queue(benchmark, seq_mod, scoring_mod):
    exchange, gaps = scoring_mod
    benchmark.group = "ablation"
    tops, _ = benchmark.pedantic(
        lambda: run_no_queue(seq_mod, exchange, gaps), rounds=1, iterations=1
    )
    base, _ = find_top_alignments(seq_mod, K, exchange, gaps)
    assert _key(tops) == _key(base)


def test_ablation_cache(benchmark, seq_mod, scoring_mod):
    exchange, gaps = scoring_mod
    benchmark.group = "ablation"
    tops, _ = benchmark.pedantic(
        lambda: run_no_cache(seq_mod, exchange, gaps), rounds=1, iterations=1
    )
    base, _ = find_top_alignments(seq_mod, K, exchange, gaps)
    assert _key(tops) == _key(base)


def test_ablation_baseline(benchmark, seq_mod, scoring_mod):
    exchange, gaps = scoring_mod
    benchmark.group = "ablation"
    benchmark.pedantic(
        lambda: run_baseline(seq_mod, exchange, gaps), rounds=1, iterations=1
    )


def test_ablation_work_accounting(benchmark, seq_mod, scoring_mod, results_dir):
    """Both ideas must independently reduce alignment counts; together
    they give the Table 1 factor."""
    exchange, gaps = scoring_mod
    benchmark.group = "ablation"

    def run_all():
        _, full = run_baseline(seq_mod, exchange, gaps)
        _, no_queue = run_no_queue(seq_mod, exchange, gaps)
        _, no_cache = run_no_cache(seq_mod, exchange, gaps)
        return full, no_queue, no_cache

    full, no_queue, no_cache = benchmark.pedantic(run_all, rounds=1, iterations=1)
    save_table(
        results_dir,
        "ablation",
        "Ablation — engine alignments to find "
        f"{K} top alignments (m={LENGTH})\n"
        f"full algorithm (queue + bottom-row cache): {full}\n"
        f"no best-first queue (realign everything):  {no_queue}\n"
        f"no bottom-row cache (align twice):         {no_cache}\n"
        "every variant returns identical top alignments",
    )
    assert full < no_cache < no_queue


def test_ablation_index_tier(benchmark, results_dir):
    """Ablate the k-mer index tier's two ideas separately: heap seeding
    (fewer first-pass alignments, same tops) and routing (skipped
    records, same accepted tops)."""
    from repro.core.api import RepeatFinder
    from repro.core.scan import DatabaseScanner
    from repro.bench.harness import _index_database, _tops_key
    from repro.index import IndexConfig, seed_score_bounds
    from repro.sequences.alphabet import DNA
    from repro.sequences.workloads import RepeatSpec, implant_repeats

    benchmark.group = "ablation"
    exchange, gaps = default_scoring()

    def run_all():
        # Seeding alone: one implanted DNA sequence, bounds vs none.
        seq = implant_repeats(
            240, RepeatSpec(unit_length=40, copies=4, substitution_rate=0.12),
            DNA, seed=7,
        ).sequence
        finder = RepeatFinder(top_alignments=K, min_score=80.0)
        bounds = seed_score_bounds(seq, finder.resolve_exchange(seq))
        plain = finder.find(seq)
        seeded = finder.find(seq, seed_bounds=bounds)
        # Routing on top of seeding: a small low-repeat database.
        database = _index_database(12, 180, 6)
        def scan(index):
            scanner = DatabaseScanner(
                finder=RepeatFinder(top_alignments=K, min_score=80.0),
                index=index,
            )
            return scanner.scan(database), dict(scanner.index_stats)
        base_reports, _ = scan(None)
        routed_reports, stats = scan(IndexConfig())
        return plain, seeded, base_reports, routed_reports, stats

    plain, seeded, base_reports, routed_reports, stats = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    key = [(a.index, a.r, a.score, a.pairs) for a in plain.top_alignments]
    seeded_key = [
        (a.index, a.r, a.score, a.pairs) for a in seeded.top_alignments
    ]
    assert seeded_key == key
    assert seeded.stats.alignments <= plain.stats.alignments
    assert _tops_key(routed_reports) == _tops_key(base_reports)
    assert stats["skip"] > 0
    base_aligns = sum(
        r.result.stats.alignments for r in base_reports if r.result is not None
    )
    routed_aligns = sum(
        r.result.stats.alignments for r in routed_reports if r.result is not None
    )
    assert routed_aligns < base_aligns
    save_table(
        results_dir,
        "ablation-index",
        "Ablation — k-mer index tier (DNA, min_score=80)\n"
        "single 240 bp implanted sequence, alignments to find top "
        f"{K}:\n"
        f"  unseeded heap:                 {plain.stats.alignments}\n"
        f"  index-seeded heap:             {seeded.stats.alignments}\n"
        "12-record low-repeat database, total alignments:\n"
        f"  no index tier:                 {base_aligns}\n"
        f"  routing (skip={stats['skip']}, full={stats['full']}, "
        f"defer={stats['defer']}): {routed_aligns}\n"
        "every variant returns identical accepted tops",
    )


def test_ablation_pruning(benchmark, results_dir):
    """Ablate the exact pruning bounds: the same high-min_score search
    with the PruneContext threaded vs disabled must accept identical
    tops while evaluating strictly fewer cells."""
    from repro.core.api import RepeatFinder
    from repro.scoring import GapPenalties, match_mismatch
    from repro.sequences.alphabet import DNA
    from repro.sequences.workloads import RepeatSpec, implant_repeats

    benchmark.group = "ablation"
    seq = implant_repeats(
        240, RepeatSpec(unit_length=80, copies=2, substitution_rate=0.05),
        DNA, seed=7,
    ).sequence
    exchange = match_mismatch(DNA, 2.0, -1.0)
    gaps = GapPenalties(2.0, 1.0)

    def run_both():
        def finder(prune):
            return RepeatFinder(
                top_alignments=K,
                min_score=100.0,
                exchange=exchange,
                gaps=gaps,
                prune=prune,
            )

        return finder(False).find(seq), finder(True).find(seq)

    off, on = benchmark.pedantic(run_both, rounds=1, iterations=1)
    key = [(a.index, a.r, a.score, a.pairs) for a in off.top_alignments]
    pruned_key = [(a.index, a.r, a.score, a.pairs) for a in on.top_alignments]
    assert pruned_key == key
    assert on.stats.pruned_cells > 0
    assert on.stats.cells < off.stats.cells
    save_table(
        results_dir,
        "ablation-pruning",
        "Ablation — exact pruning bounds (DNA 240 bp, min_score=100)\n"
        f"cells evaluated, pruning off:  {off.stats.cells}\n"
        f"cells evaluated, pruning on:   {on.stats.cells}\n"
        f"cells provably skipped:        {on.stats.pruned_cells} "
        f"({on.stats.pruned_lanes} lanes)\n"
        "both variants return identical accepted tops",
    )


@pytest.mark.parametrize("triangle", ["dense", "sparse"])
def test_triangle_storage(benchmark, seq_mod, scoring_mod, triangle):
    """Dense vs sparse override triangle: same results, different
    memory/speed trade-off (the paper's 'can be compressed' remark)."""
    exchange, gaps = scoring_mod
    benchmark.group = "ablation-triangle"
    tops = benchmark.pedantic(
        lambda: find_top_alignments(
            seq_mod, K, exchange, gaps, triangle=triangle
        )[0],
        rounds=2,
        iterations=1,
    )
    assert len(tops) == K
