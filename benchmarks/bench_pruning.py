"""Exact pruning — effective throughput with provable score bounds.

``repro.align.pruning`` derives per-row/per-column score upper bounds
from the query profile and threads them through the best-first drivers
as a :class:`~repro.align.pruning.PruneGate`: lanes whose bound cannot
beat the live acceptance threshold are skipped before any cell is
filled, and in-fill bounds stop hopeless matrices early.  Because a
pruned fill records its *bound* as a stale heap score — never a fresh
alignment — accepted tops are byte-identical with pruning on or off.

This bench runs the same high-``min_score`` DNA search both ways and
reports *effective* cells/s (pruning-off cell count over each run's
wall time, so skipped cells count as delivered work).

Run under pytest (``pytest benchmarks/bench_pruning.py``) for the full
table, or directly for the CI prune-gate artifact::

    python benchmarks/bench_pruning.py --out BENCH_pruning.json
"""

import argparse
import json

from repro.bench import pruning_report, pruning_rows

LENGTH = 300
UNIT = 100
COPIES = 2
SUBSTITUTION_RATE = 0.03
MIN_SCORE = 140.0
K = 4
SEED = 7


def _row(report, prune):
    for row in report["rows"]:
        if row["prune"] is prune:
            return row
    raise KeyError(prune)


def test_pruning_speedup(benchmark, results_dir):
    """Pruning skips work without changing a single accepted top."""
    # Imported lazily: the __main__ smoke entry must run without pytest.
    from conftest import save_table

    benchmark.group = "pruning"
    report = benchmark.pedantic(
        lambda: pruning_report(
            LENGTH,
            K,
            unit_length=UNIT,
            copies=COPIES,
            substitution_rate=SUBSTITUTION_RATE,
            min_score=MIN_SCORE,
            seed=SEED,
        ),
        rounds=1,
        iterations=1,
    )
    save_table(results_dir, "pruning", pruning_rows(report=report).render())
    # The correctness bar: pruning never changes what the search accepts.
    assert report["identical_tops"]
    on = _row(report, True)
    off = _row(report, False)
    # Pruning must actually fire, and everything it skips must be
    # accounted for — evaluated + skipped covers at least the baseline.
    assert on["pruned_cells"] > 0
    assert on["pruned_lanes"] > 0
    assert off["pruned_cells"] == 0
    assert on["cells"] + on["pruned_cells"] >= off["cells"]
    # The acceptance bar: >= 1.3x effective throughput (the committed
    # BENCH_pruning.json artifact shows >= 1.5x on the CI runner class).
    assert report["speedup"] >= 1.3


def test_pruning_cheap_when_it_cannot_fire():
    """At min_score=0 nothing can prune, and nothing is charged for it."""
    report = pruning_report(
        LENGTH,
        K,
        unit_length=UNIT,
        copies=COPIES,
        substitution_rate=SUBSTITUTION_RATE,
        min_score=0.0,
        seed=SEED,
    )
    assert report["identical_tops"]
    on = _row(report, True)
    # With a zero floor every row cutoff is negative, so gates opt out
    # (row_cutoffs() returns None) and only live-threshold lane prunes
    # remain; the runs must stay within noise of each other.
    assert on["cells"] + on["pruned_cells"] >= _row(report, False)["cells"]
    assert report["speedup"] > 0.5


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--length", type=int, default=LENGTH)
    parser.add_argument("--unit-length", type=int, default=UNIT)
    parser.add_argument("--copies", type=int, default=COPIES)
    parser.add_argument(
        "--substitution-rate", type=float, default=SUBSTITUTION_RATE
    )
    parser.add_argument("--min-score", type=float, default=MIN_SCORE)
    parser.add_argument("-k", "--top-alignments", type=int, default=K)
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the raw numbers as JSON (BENCH_pruning.json)")
    parser.add_argument("--emit-metrics", default=None, metavar="PATH",
                        help="enable repro.obs and dump the registry snapshot "
                             "+ trace trees as JSON after the run")
    args = parser.parse_args()
    if args.emit_metrics:
        from repro import obs

        obs.enable()
    report = pruning_report(
        args.length,
        args.top_alignments,
        unit_length=args.unit_length,
        copies=args.copies,
        substitution_rate=args.substitution_rate,
        min_score=args.min_score,
        seed=args.seed,
    )
    print(pruning_rows(report=report).render())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
        print(f"wrote {args.out}")
    if args.emit_metrics:
        from repro import obs

        obs.write_snapshot(args.emit_metrics)
        print(f"wrote {args.emit_metrics}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
