"""§3 claim — the best-first queue avoids 90–97 % of realignments.

"We repeatedly select the subsequence pair with the highest score from
its most recent alignment ... it typically reduces the number of
realignments by 90–97 %."

The avoided fraction is workload-dependent: it grows with sequence
length (more splits whose stale upper bound never reaches the head).
We assert substantial avoidance at small scale and that it *improves*
with length, heading toward the paper's regime.
"""

import pytest

from repro.bench import bench_sequence, default_scoring, realignment_rows
from repro.core import find_top_alignments

from conftest import save_table

LENGTHS = (150, 250, 400)
K = 10


@pytest.mark.parametrize("length", LENGTHS)
def test_realignment_counters(benchmark, length):
    exchange, gaps = default_scoring()
    seq = bench_sequence(length)
    benchmark.group = "realign"
    _, stats = benchmark.pedantic(
        lambda: find_top_alignments(seq, K, exchange, gaps),
        rounds=1,
        iterations=1,
    )
    naive = (K - 1) * (length - 1)
    assert 0 < stats.realignments < naive


def test_realignment_avoidance_shape(benchmark, results_dir):
    benchmark.group = "realign"
    table = benchmark.pedantic(
        lambda: realignment_rows(lengths=LENGTHS, k=K), rounds=1, iterations=1
    )
    save_table(results_dir, "realign", table.render())
    avoided = [row[4] for row in table.rows]  # percentages
    # Substantial avoidance everywhere...
    assert all(a > 50.0 for a in avoided), avoided
    # ...and the avoided fraction grows with length toward the paper's
    # 90-97 % titin-scale figure.
    assert avoided[-1] > avoided[0]
    assert avoided[-1] > 75.0
