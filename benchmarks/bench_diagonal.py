"""§4.1 design-space claim — wavefront vs row-wise vectorisation.

"It is possible to compute the entries diagonally ... such that all
entries in a diagonal can be computed independently, but the
administrative overhead is large."

The paper chose coarse-grained lane parallelism over the wavefront for
this reason; this bench measures both on identical work and asserts the
paper's judgment: the diagonal traversal's gather/scatter bookkeeping
loses to the row-vectorised engine, and the lane batch wins overall.
"""

import time

import pytest

from repro.align import AlignmentProblem, DiagonalEngine, LanesEngine, VectorEngine
from repro.bench import bench_sequence, default_scoring

from conftest import save_table

SIZE = 300


@pytest.fixture(scope="module")
def problem():
    exchange, gaps = default_scoring()
    seq = bench_sequence(2 * SIZE)
    return AlignmentProblem(seq.codes[:SIZE], seq.codes[SIZE:], exchange, gaps)


def test_wavefront(benchmark, problem):
    benchmark.group = "diagonal"
    engine = DiagonalEngine()
    benchmark.pedantic(lambda: engine.last_row(problem), rounds=3, iterations=1)


def test_row_vectorised(benchmark, problem):
    benchmark.group = "diagonal"
    engine = VectorEngine()
    benchmark.pedantic(lambda: engine.last_row(problem), rounds=3, iterations=1)


def test_wavefront_overhead_claim(benchmark, problem, results_dir):
    benchmark.group = "diagonal"

    def measure():
        timings = {}
        for name, engine in (
            ("wavefront", DiagonalEngine()),
            ("row-vector", VectorEngine()),
            ("lanes x4", LanesEngine(lanes=4, dtype="int16")),
        ):
            t0 = time.perf_counter()
            if name == "lanes x4":
                engine.last_rows_batch([problem] * 4)
                elapsed = (time.perf_counter() - t0) / 4
            else:
                engine.last_row(problem)
                elapsed = time.perf_counter() - t0
            timings[name] = elapsed
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        f"§4.1 — wavefront vs row-wise vectorisation ({SIZE}x{SIZE} matrix)",
        "paper: diagonal-wise parallelism has 'large administrative",
        "overhead'; lane batching was chosen instead.  Measured per-matrix:",
    ]
    for name, secs in timings.items():
        lines.append(f"  {name:<11} {secs * 1e3:8.2f} ms")
    save_table(results_dir, "diagonal", "\n".join(lines))
    # The paper's judgment, asserted.
    assert timings["row-vector"] < timings["wavefront"]
    assert timings["lanes x4"] < timings["wavefront"]
