"""k-mer index tier — database-scan throughput on a low-repeat database.

The index tier (``repro.index``) builds a bucketed k-mer frequency
profile per record in one linear pass and routes each record into a
*skip / defer / full-scan* class before any O(n^3) work starts.  This
bench scans a synthetic DNA database that is ~17 % repetitive three
ways — unindexed, indexed against a cold store, indexed against the
warm store — asserting byte-identical accepted tops throughout and
that the warm rerun rebuilds zero indices.

Run under pytest (``pytest benchmarks/bench_index.py``) for the full
table, or directly for the CI bench-gate artifact::

    python benchmarks/bench_index.py --out BENCH_index.json
"""

import argparse
import json

from repro.bench import index_report, index_rows

RECORDS = 24
LENGTH = 240
REPEAT_EVERY = 6
MIN_SCORE = 80.0
K = 10


def _row(report, mode):
    for row in report["rows"]:
        if row["mode"] == mode:
            return row
    raise KeyError(mode)


def test_index_routing(benchmark, results_dir):
    """Routing skips most background records; accepted tops are unchanged."""
    # Imported lazily: the __main__ smoke entry must run without pytest.
    from conftest import save_table

    benchmark.group = "index"
    report = benchmark.pedantic(
        lambda: index_report(
            RECORDS, LENGTH, repeat_every=REPEAT_EVERY, min_score=MIN_SCORE, k=K
        ),
        rounds=1,
        iterations=1,
    )
    save_table(results_dir, "index", index_rows(report=report).render())
    # The correctness bar: routing never changes what the scan accepts.
    assert report["identical_tops"]
    cold = _row(report, "indexed-cold")
    warm = _row(report, "indexed-warm")
    # Every implanted record must survive routing (recall safety) and
    # most background records must be skipped for the tier to pay off.
    implanted = RECORDS // REPEAT_EVERY
    assert cold["skipped"] + cold["deferred"] + cold["full"] == RECORDS
    assert cold["full"] >= implanted
    assert cold["skipped"] >= RECORDS // 2
    # The acceptance bar: >= 2x scan throughput under pytest overhead
    # (the committed BENCH_index.json artifact shows >= 3x).
    assert report["speedup_cold"] >= 2.0
    # Warm store reruns re-derive nothing.
    assert report["warm_rebuilds"] == 0
    assert warm["index_loads"] == RECORDS


def test_index_build_is_linear_and_cheap():
    """Index construction is a vanishing fraction of the scan it replaces."""
    report = index_report(
        RECORDS, LENGTH, repeat_every=REPEAT_EVERY, min_score=MIN_SCORE, k=K
    )
    cold = _row(report, "indexed-cold")
    assert cold["index_builds"] == RECORDS
    # All 24 profiles together build in well under a tenth of the
    # indexed scan's own wall time.
    assert cold["build_seconds"] < 0.1 * cold["seconds"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--records", type=int, default=RECORDS)
    parser.add_argument("--length", type=int, default=LENGTH)
    parser.add_argument("--repeat-every", type=int, default=REPEAT_EVERY)
    parser.add_argument("--min-score", type=float, default=MIN_SCORE)
    parser.add_argument("-k", "--top-alignments", type=int, default=K)
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the raw numbers as JSON (BENCH_index.json)")
    parser.add_argument("--emit-metrics", default=None, metavar="PATH",
                        help="enable repro.obs and dump the registry snapshot "
                             "+ trace trees as JSON after the run")
    args = parser.parse_args()
    if args.emit_metrics:
        from repro import obs

        obs.enable()
    report = index_report(
        args.records,
        args.length,
        repeat_every=args.repeat_every,
        min_score=args.min_score,
        k=args.top_alignments,
    )
    print(index_rows(report=report).render())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
        print(f"wrote {args.out}")
    if args.emit_metrics:
        from repro import obs

        obs.write_snapshot(args.emit_metrics)
        print(f"wrote {args.emit_metrics}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
