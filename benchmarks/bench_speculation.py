"""§5.1/§5.2 claims — speculation overhead.

* Lane groups (static speculation, §5.1): "the SSE version hardly
  computes more alignments than the sequential version (less than
  0.70 %)".
* Distributed dynamic speculation (§5.2): "up to 8.4 % more alignments
  were performed than by the sequential algorithm".

Both fractions shrink with problem size (overhead is per-acceptance
while useful work grows with m); at our scaled inputs we assert the
ordering (static lane speculation ≪ dynamic distributed speculation)
and reasonable magnitudes, and report the numbers for EXPERIMENTS.md.
"""

import pytest

from repro.bench import bench_sequence, default_scoring
from repro.core import TopAlignmentState, find_top_alignments
from repro.parallel import GroupedTopAlignmentRunner
from repro.simulate import AlignmentOracle, ClusterConfig, ClusterSimulator

from conftest import save_table

LENGTH = 300
K = 8


@pytest.fixture(scope="module")
def sequential_alignments():
    exchange, gaps = default_scoring()
    seq = bench_sequence(LENGTH)
    _, stats = find_top_alignments(seq, K, exchange, gaps)
    return stats.alignments


def test_lane_group_speculation(benchmark, sequential_alignments, results_dir):
    """Static groups of 4 recompute current members — how much waste?"""
    exchange, gaps = default_scoring()
    seq = bench_sequence(LENGTH)

    def run():
        state = TopAlignmentState(seq, exchange, gaps, engine="lanes")
        runner = GroupedTopAlignmentRunner(state, K, group_size=4)
        runner.run()
        return runner, state

    benchmark.group = "speculation"
    runner, state = benchmark.pedantic(run, rounds=1, iterations=1)
    overhead = (state.stats.alignments - sequential_alignments) / sequential_alignments
    save_table(
        results_dir,
        "speculation_lanes",
        "§5.1 — lane-group (static) speculation overhead\n"
        f"sequential alignments: {sequential_alignments}\n"
        f"grouped alignments:    {state.stats.alignments}\n"
        f"overhead:              {overhead:.2%} (paper: <0.70 % at titin scale)",
    )
    assert overhead >= 0.0
    # Scaled-down inputs inflate the fraction; it must still stay modest.
    assert overhead < 0.5


def test_distributed_speculation(benchmark, sequential_alignments, results_dir):
    """Dynamic speculative scheduling computes extra alignments (<= 8.4 %
    in the paper; more here because rounds are tiny at m=300)."""
    exchange, gaps = default_scoring()
    seq = bench_sequence(LENGTH)
    oracle = AlignmentOracle(seq, exchange, gaps)

    benchmark.group = "speculation"
    result = benchmark.pedantic(
        lambda: ClusterSimulator(
            oracle, ClusterConfig(processors=8, tier="sse")
        ).run(K),
        rounds=1,
        iterations=1,
    )
    overhead = (
        result.alignments_executed - sequential_alignments
    ) / sequential_alignments
    save_table(
        results_dir,
        "speculation_distributed",
        "§5.2 — distributed dynamic speculation overhead (P=8)\n"
        f"sequential alignments: {sequential_alignments}\n"
        f"speculative executed:  {result.alignments_executed}\n"
        f"overhead:              {overhead:.2%} (paper: <=8.4 % at titin scale)",
    )
    assert overhead >= 0.0


def test_static_speculation_cheaper_than_dynamic(
    benchmark, sequential_alignments
):
    """The paper's ordering: lane groups waste less than wide dynamic
    speculation, because neighbours 'probably have to be computed
    anyway'."""
    exchange, gaps = default_scoring()
    seq = bench_sequence(LENGTH)

    def both():
        state = TopAlignmentState(seq, exchange, gaps, engine="lanes")
        GroupedTopAlignmentRunner(state, K, group_size=4).run()
        oracle = AlignmentOracle(seq, exchange, gaps)
        wide = ClusterSimulator(
            oracle, ClusterConfig(processors=32, tier="sse")
        ).run(K)
        return state.stats.alignments, wide.alignments_executed

    benchmark.group = "speculation"
    grouped, dynamic_wide = benchmark.pedantic(both, rounds=1, iterations=1)
    assert grouped <= dynamic_wide
