"""Speculative lane-batched driver — throughput and waste vs batch width.

The batched driver (``repro.core.batched``) realigns the heap's top G
stale tasks per lockstep engine batch.  This bench measures what that
buys on one host: cells/second across G ∈ {1, 4, 8} with the lane
engine, against the sequential vector baseline, asserting bit-identical
top alignments throughout and recording the speculation waste ratio.

Run under pytest (``pytest benchmarks/bench_batched.py``) for the full
table, or directly for the CI smoke artifact::

    python benchmarks/bench_batched.py --length 120 --top-alignments 5 \
        --out BENCH_batched.json
"""

import argparse
import json

from repro.bench import batched_report, batched_rows

LENGTH = 240
K = 10
GROUPS = (1, 4, 8)


def _row(report, engine_prefix, group):
    for row in report["rows"]:
        if row["engine"].startswith(engine_prefix) and row["group"] == group:
            return row
    raise KeyError((engine_prefix, group))


def test_batched_driver(benchmark, results_dir):
    """G=8 beats G=1 lane throughput; waste stays a modest fraction."""
    # Imported lazily: the __main__ smoke entry must run without pytest.
    from conftest import save_table

    benchmark.group = "batched"
    report = benchmark.pedantic(
        lambda: batched_report(LENGTH, K, GROUPS), rounds=1, iterations=1
    )
    save_table(results_dir, "batched", batched_rows(report=report).render())
    # batched_report itself asserts every config returns bit-identical
    # top alignments; re-check the flag made it into the payload.
    assert report["identical_tops"]
    g1 = _row(report, "lanes", 1)
    g8 = _row(report, "lanes", 8)
    # The acceptance bar: batching 8 lanes amortises per-call overhead
    # into >= 1.5x engine throughput (locally ~4x).
    assert g8["cells_per_second"] >= 1.5 * g1["cells_per_second"]
    # Sequential configurations never speculate...
    assert g1["speculative_waste"] == 0
    assert _row(report, "vector", 1)["speculative_waste"] == 0
    # ...and G=8 waste stays a bounded fraction of all alignments.
    assert 0.0 <= g8["waste_ratio"] < 0.5


def test_waste_grows_with_group():
    """Wider batches speculate more; alignments grow only mildly."""
    report = batched_report(LENGTH, K, (1, 2, 4, 8))
    lanes = [r for r in report["rows"] if r["engine"].startswith("lanes")]
    wastes = [r["speculative_waste"] for r in lanes]
    assert wastes == sorted(wastes)
    g1, g8 = lanes[0], lanes[-1]
    # Speculation recomputes some alignments, but the best-first queue
    # keeps the overhead far from the G-fold worst case.
    assert g8["alignments"] < 1.5 * g1["alignments"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--length", type=int, default=LENGTH)
    parser.add_argument("-k", "--top-alignments", type=int, default=K)
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the raw numbers as JSON (BENCH_batched.json)")
    parser.add_argument("--emit-metrics", default=None, metavar="PATH",
                        help="enable repro.obs and dump the registry snapshot "
                             "+ trace trees as JSON after the run")
    args = parser.parse_args()
    if args.emit_metrics:
        from repro import obs

        obs.enable()
    report = batched_report(args.length, args.top_alignments, GROUPS)
    print(batched_rows(report=report).render())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
        print(f"wrote {args.out}")
    if args.emit_metrics:
        from repro import obs

        obs.write_snapshot(args.emit_metrics)
        print(f"wrote {args.emit_metrics}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
