"""Table 1 — old vs new sequential algorithm run times.

Paper (P3, 1 GHz, k=50, titin prefixes)::

    length   old (s)   new (s)   speedup
      1000      1121      10.6       106
      1200      2460      17.6       140
      1400      5251      28.4       185
      1600      8347      42.3       197
      1800     14672      57.4       256

Shape to reproduce: the new algorithm wins by a large factor that
*grows with sequence length* (the O(n⁴) -> O(n³) gap).  Lengths and k
are scaled down for CPython; both algorithms run on the same engine so
the ratio isolates the algorithm, not the instruction tier.
"""

import pytest

from repro.bench import bench_sequence, table1_rows
from repro.core import find_top_alignments, old_find_top_alignments

from conftest import save_table

K = 8
LENGTHS = (150, 250, 350)


@pytest.mark.parametrize("length", LENGTHS)
def test_new_algorithm(benchmark, scoring, length):
    exchange, gaps = scoring
    seq = bench_sequence(length)
    benchmark.group = f"table1-len{length}"
    tops = benchmark.pedantic(
        lambda: find_top_alignments(seq, K, exchange, gaps)[0],
        rounds=2,
        iterations=1,
    )
    assert len(tops) == K


@pytest.mark.parametrize("length", LENGTHS)
def test_old_algorithm(benchmark, scoring, length):
    exchange, gaps = scoring
    seq = bench_sequence(length)
    benchmark.group = f"table1-len{length}"
    tops = benchmark.pedantic(
        lambda: old_find_top_alignments(seq, K, exchange, gaps)[0],
        rounds=1,
        iterations=1,
    )
    assert len(tops) == K


def test_table1_shape(benchmark, results_dir):
    """The published table's shape: the new algorithm wins by a large
    factor at every length, because it computes a small fraction of the
    old algorithm's alignments.

    The paper's speedups also *grow* with length (106 -> 256); at our
    scaled-down lengths that trend is workload-dependent (the
    realignment fraction of pseudo-titin prefixes varies), so the
    assertion here is the robust part of the shape — see EXPERIMENTS.md
    for the measured trend discussion.
    """
    benchmark.group = "table1-shape"
    table = benchmark.pedantic(
        lambda: table1_rows(lengths=(150, 250, 350), k=K), rounds=1, iterations=1
    )
    save_table(results_dir, "table1", table.render())
    speedups = [row[3] for row in table.rows]
    assert all(s > 4.0 for s in speedups), speedups
    # The algorithmic cause: the queue prunes most realignments, so the
    # new algorithm computes a fraction of the old one's alignments.
    for row in table.rows:
        assert row[5] < row[4] / 2
