"""§5 setup claims — task granularity and communication volume.

* "A single alignment computation is coarse grained; ... the sequential
  implementation needs up to 5.2 seconds for the largest matrices
  (17175 x 17175) on the Pentium III, and 2.7 seconds on the
  Pentium 4."
* "each slave processor sends up to 64 KB/s, and neither the master
  processor nor the Myrinet network forms a bottleneck."

The first is the calibration anchor of the machine models; the second
emerges from the simulated titin run's per-slave byte counters.
"""

import pytest

from repro.simulate import PENTIUM3, PENTIUM4, ClusterConfig, NetworkModel
from repro.simulate.firstpass import simulate_first_pass

from conftest import save_table

TITIN = 34350
LARGEST = (TITIN // 2) * (TITIN - TITIN // 2)


def test_largest_matrix_times(benchmark, results_dir):
    """The granularity anchor: 5.2 s (P3) / 2.7 s (P4) per largest matrix."""
    benchmark.group = "grain"
    p3 = benchmark.pedantic(
        lambda: PENTIUM3.align_seconds(LARGEST, "conventional"),
        rounds=1,
        iterations=1,
    )
    p4 = PENTIUM4.align_seconds(LARGEST, "conventional")
    save_table(
        results_dir,
        "grain",
        "§5 — single-alignment granularity (largest titin split)\n"
        f"Pentium III conventional: {p3:.2f} s (paper: 5.2 s)\n"
        f"Pentium 4   conventional: {p4:.2f} s (paper: 2.7 s)\n"
        f"Pentium 4   SSE2 batch:   {8 * LARGEST / PENTIUM4.rates['sse2']:.2f} s "
        "per 8 matrices (paper: 2.2 s)",
    )
    assert p3 == pytest.approx(5.2, rel=0.01)
    assert p4 == pytest.approx(2.7, rel=0.01)


def test_slave_bandwidth_claim(benchmark, results_dir):
    """Per-slave send rate in the simulated 128-CPU titin run must sit
    in the paper's 'up to 64 KB/s' regime, far from saturating Myrinet."""
    network = NetworkModel()
    config = ClusterConfig(processors=128, tier="sse", network=network)

    benchmark.group = "grain"
    result = benchmark.pedantic(
        lambda: simulate_first_pass(TITIN, config), rounds=1, iterations=1
    )
    peak = network.peak_endpoint_rate(result.makespan)
    save_table(
        results_dir,
        "bandwidth",
        "§5.2 — per-slave communication in the simulated titin run\n"
        f"makespan: {result.makespan:.1f} s, messages: {network.messages}\n"
        f"peak slave send rate: {peak / 1024:.1f} KB/s (paper: up to 64 KB/s)\n"
        f"Myrinet capacity:     {network.bandwidth / 1024 / 1024:.0f} MB/s "
        "-> no bottleneck",
    )
    assert 8 * 1024 <= peak <= 128 * 1024  # tens of KB/s, not MB/s
    assert peak < 0.001 * network.bandwidth  # nowhere near the link
