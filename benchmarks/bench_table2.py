"""Table 2 — alignment times per instruction tier.

Paper (largest titin split, 17175x17175)::

                 conventional   SSE        SSE2
    Pentium III  5.2 s / 1      3.0 s / 4  —          -> 6.9x
    Pentium 4    2.7 s / 1      1.8 s / 4  2.2 s / 8  -> 6.0x / 9.8x

Our tiers: pure-Python scalar ("conventional"), numpy vector (one
matrix), and the 4/8-lane int16 batch engines ("SSE"/"SSE2").  The
shape to reproduce: batched vector execution beats the conventional
kernel by a large factor, and wider batches amortise better per matrix.
The absolute factors are *much* bigger here because CPython's
interpreter overhead dwarfs a compiled scalar loop — EXPERIMENTS.md
reports both numbers side by side.
"""

import pytest

from repro.align import AlignmentProblem, LanesEngine, get_engine
from repro.bench import bench_sequence, table2_rows

from conftest import save_table

SIZE = 260  # matrix side for the numpy tiers
SCALAR_SIZE = 100  # the scalar engine is ~1000x slower; keep it feasible


def _problems(scoring, n, count):
    exchange, gaps = scoring
    seq = bench_sequence(2 * n + count)
    return [
        AlignmentProblem(seq.codes[: n + i], seq.codes[n + i :], exchange, gaps)
        for i in range(count)
    ]


def test_conventional_scalar(benchmark, scoring):
    problems = _problems(scoring, SCALAR_SIZE, 1)
    benchmark.group = "table2"
    benchmark.extra_info["matrices"] = 1
    benchmark.extra_info["cells"] = problems[0].cells
    engine = get_engine("scalar")
    benchmark.pedantic(lambda: engine.last_rows_batch(problems), rounds=2, iterations=1)


def test_vector_single(benchmark, scoring):
    problems = _problems(scoring, SIZE, 1)
    benchmark.group = "table2"
    benchmark.extra_info["matrices"] = 1
    engine = get_engine("vector")
    benchmark.pedantic(lambda: engine.last_rows_batch(problems), rounds=5, iterations=1)


def test_sse_4lane_batch(benchmark, scoring):
    problems = _problems(scoring, SIZE, 4)
    benchmark.group = "table2"
    benchmark.extra_info["matrices"] = 4
    engine = LanesEngine(lanes=4, dtype="int16")
    benchmark.pedantic(lambda: engine.last_rows_batch(problems), rounds=5, iterations=1)


def test_sse2_8lane_batch(benchmark, scoring):
    problems = _problems(scoring, SIZE, 8)
    benchmark.group = "table2"
    benchmark.extra_info["matrices"] = 8
    engine = LanesEngine(lanes=8, dtype="int16")
    benchmark.pedantic(lambda: engine.last_rows_batch(problems), rounds=5, iterations=1)


def test_table2_shape(benchmark, results_dir):
    """Vectorised tiers beat the conventional kernel; per-matrix cost
    drops as lanes widen (the paper's superlinear-amortisation story)."""
    benchmark.group = "table2-shape"
    table = benchmark.pedantic(
        lambda: table2_rows(size=SIZE, scalar_size=SCALAR_SIZE),
        rounds=1,
        iterations=1,
    )
    save_table(results_dir, "table2", table.render())
    rates = {row[0]: row[3] for row in table.rows}
    # SIMD-style tiers must crush the conventional kernel...
    assert rates["sse"] > 5 * rates["conventional"]
    assert rates["sse2"] > 5 * rates["conventional"]
    # ...and wider lanes must amortise at least as well as narrower.
    assert rates["sse2"] > 0.9 * rates["sse"]
    # Batching several matrices beats aligning one at a time.
    assert rates["sse2"] > rates["vector"]
