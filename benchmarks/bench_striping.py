"""§5.1 claim — cache-aware vertical striping.

Paper: "cache-aware alignment is up to 6.5 and on average about 4
times as fast as alignment without striping" (SSE kernels); 16 % for
the conventional kernel.

The mechanism being modelled is the traversal order: stripes keep the
working row, the MaxY section and the exchange rows resident in L1.
In numpy the per-row working set is already processed by vectorised
kernels whose own memory behaviour differs from hand-written SSE, so
the *direction* of the effect depends on where the row size falls
relative to this host's caches — we sweep stripe widths, report the
curve, and assert correctness-preservation plus the structural claim
that striping's overhead stays bounded (the paper's "administrative
overhead incurred at the stripes' boundaries").
"""

import time

import numpy as np
import pytest

from repro.align import AlignmentProblem, StripedEngine, VectorEngine
from repro.bench import bench_sequence, default_scoring

from conftest import save_table

SIZE = 700  # rows of the test matrix; columns likewise
WIDTHS = (64, 256, 1024, 2730)


@pytest.fixture(scope="module")
def problem():
    exchange, gaps = default_scoring()
    seq = bench_sequence(2 * SIZE)
    return AlignmentProblem(seq.codes[:SIZE], seq.codes[SIZE:], exchange, gaps)


def test_unstriped_vector(benchmark, problem):
    benchmark.group = "striping"
    engine = VectorEngine()
    benchmark.pedantic(lambda: engine.last_row(problem), rounds=3, iterations=1)


@pytest.mark.parametrize("width", WIDTHS)
def test_striped(benchmark, problem, width):
    benchmark.group = "striping"
    engine = StripedEngine(stripe=width)
    benchmark.pedantic(lambda: engine.last_row(problem), rounds=3, iterations=1)


def test_striping_curve(benchmark, problem, results_dir):
    """Sweep widths; correctness must hold and overhead must shrink as
    stripes widen toward the full row (boundary-overhead amortisation)."""
    reference = VectorEngine().last_row(problem)

    def sweep():
        rows = []
        t0 = time.perf_counter()
        VectorEngine().last_row(problem)
        base = time.perf_counter() - t0
        for width in WIDTHS:
            engine = StripedEngine(stripe=width)
            t0 = time.perf_counter()
            row = engine.last_row(problem)
            elapsed = time.perf_counter() - t0
            assert np.array_equal(row, reference)
            rows.append((width, elapsed, base / elapsed))
        return base, rows

    benchmark.group = "striping"
    base, rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "§5.1 — cache-aware striping sweep "
        f"(matrix {SIZE}x{SIZE}, unstriped base {base * 1e3:.1f} ms)",
        "paper: striping gains ~4x (up to 6.5x) for SSE kernels, 16 % for",
        "conventional; in numpy the row kernels are already blocked, so the",
        "boundary overhead dominates instead — the shape reported here is",
        "speedup-vs-width approaching 1.0 as stripes widen:",
    ]
    for width, elapsed, speedup in rows:
        lines.append(f"  stripe={width:5d}  {elapsed * 1e3:8.1f} ms  vs-unstriped {speedup:.2f}x")
    save_table(results_dir, "striping", "\n".join(lines))

    speedups = [s for _, _, s in rows]
    # Wider stripes amortise the boundary overhead (monotone trend).
    assert speedups[-1] >= speedups[0]
    # Full-width striping must be close to the single-pass engine.
    assert speedups[-1] > 0.5
