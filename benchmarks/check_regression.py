#!/usr/bin/env python
"""Compare a fresh ``BENCH_batched.json`` against the checked-in baseline.

The CI ``bench-gate`` job runs ``bench_batched.py`` with the same
arguments the baseline was generated with, then calls this script::

    python benchmarks/check_regression.py \
        --current BENCH_batched.json \
        --baseline benchmarks/BENCH_baseline.json

Per ``(engine, group)`` row the gate fails when

* ``cells_per_second`` drops more than the tolerance below baseline
  (throughput regression), or
* ``waste_ratio`` rises more than the tolerance above baseline
  (speculation regression — absolute, the ratio is already in [0, 1]).

The tolerance (default ±35 %) absorbs runner noise; override it with
``--tolerance`` or the ``REPRO_BENCH_TOLERANCE`` environment variable.
Faster-than-baseline rows never fail.  A markdown delta table goes to
stdout and, when ``GITHUB_STEP_SUMMARY`` is set, to the job summary.

Refresh the baseline (same machine class as CI, same arguments!) with::

    python benchmarks/bench_batched.py --length 160 --top-alignments 6 \
        --out benchmarks/BENCH_baseline.json
"""

import argparse
import json
import os
import sys

#: Fractional tolerance applied to both checks.
DEFAULT_TOLERANCE = 0.35

#: Keys that must match between the two reports for rows to be comparable.
_COMPARABLE_KEYS = ("length", "k", "seed", "engine")

#: Metric-family prefixes the gate must never fail on: operational
#: families (HTTP traffic, queue depth, cluster node/lease churn) vary
#: run to run by design and say nothing about alignment throughput.
IGNORED_METRIC_PREFIXES = (
    "repro_cluster_",
    "repro_http_",
    "repro_index_",
    "repro_prune_",
    "repro_service_",
    "repro_worker_",
)

#: Minimum effective-throughput speedup a fresh pruning report must show
#: for the prune gate to pass (the acceptance criterion is 1.3x; the
#: committed artifact shows ~1.9x).
PRUNING_MIN_SPEEDUP = 1.3


def check_pruning_report(report: dict, min_speedup: float) -> list[str]:
    """Gate a ``BENCH_pruning.json``-shaped report; returns failures.

    The prune gate is absolute, not baseline-relative: correctness
    (byte-identical accepted tops, pruning actually firing) and the
    acceptance-criterion speedup must hold on every run.
    """
    failures: list[str] = []
    if not report.get("identical_tops", False):
        failures.append(
            "pruning: accepted tops differ between prune=on and prune=off "
            "(exactness contract broken)"
        )
    rows = {row["prune"]: row for row in report.get("rows", [])}
    on, off = rows.get(True), rows.get(False)
    if on is None or off is None:
        failures.append("pruning: report is missing the prune=on/off rows")
        return failures
    if on["pruned_cells"] <= 0:
        failures.append("pruning: pruned_cells is 0 — no pruning fired")
    if off["pruned_cells"] != 0:
        failures.append("pruning: the prune=off run reported pruned cells")
    speedup = report.get("speedup", 0.0)
    if speedup < min_speedup:
        failures.append(
            f"pruning: speedup {speedup:.2f}x below required "
            f"{min_speedup:.2f}x"
        )
    return failures


def check_metrics_snapshot(snapshot: dict) -> tuple[dict, list[str]]:
    """Validate an ``--emit-metrics`` snapshot; returns (summary, failures).

    Families matching :data:`IGNORED_METRIC_PREFIXES` are counted but
    excluded from gating; the only hard requirement is that the run
    actually collected perf instrumentation.
    """
    failures: list[str] = []
    if not snapshot.get("collecting", False):
        failures.append(
            "metrics snapshot taken with collection disabled "
            "(was the workload run with --emit-metrics?)"
        )
    families = snapshot.get("metrics", {})
    ignored = sorted(
        name
        for name in families
        if any(name.startswith(prefix) for prefix in IGNORED_METRIC_PREFIXES)
    )
    gated = sorted(set(families) - set(ignored))
    if not failures and not gated:
        failures.append("metrics snapshot holds no perf families to gate on")
    return {"gated": gated, "ignored": ignored}, failures


def _rows_by_config(report: dict) -> dict[tuple, dict]:
    return {(row["engine"], row["group"]): row for row in report["rows"]}


def compare(baseline: dict, current: dict, tolerance: float) -> tuple[list[dict], list[str]]:
    """Row-by-row deltas plus the list of failure messages (empty = pass)."""
    failures: list[str] = []
    for key in _COMPARABLE_KEYS:
        if baseline.get(key) != current.get(key):
            failures.append(
                f"reports are not comparable: {key} differs "
                f"(baseline {baseline.get(key)!r} vs current {current.get(key)!r})"
            )
    if failures:
        return [], failures

    base_rows = _rows_by_config(baseline)
    curr_rows = _rows_by_config(current)
    missing = sorted(set(base_rows) - set(curr_rows))
    if missing:
        failures.append(f"current report lost configurations: {missing}")

    deltas: list[dict] = []
    for config in sorted(base_rows):
        if config not in curr_rows:
            continue
        base, curr = base_rows[config], curr_rows[config]
        cps_base, cps_curr = base["cells_per_second"], curr["cells_per_second"]
        cps_delta = (cps_curr - cps_base) / cps_base if cps_base > 0 else 0.0
        waste_base, waste_curr = base["waste_ratio"], curr["waste_ratio"]
        waste_delta = waste_curr - waste_base
        row_fail = []
        if cps_base > 0 and cps_curr < cps_base * (1.0 - tolerance):
            row_fail.append(
                f"{config[0]} G={config[1]}: cells_per_second "
                f"{cps_curr:,.0f} is {-cps_delta:.0%} below baseline "
                f"{cps_base:,.0f} (tolerance {tolerance:.0%})"
            )
        if waste_curr > waste_base + tolerance:
            row_fail.append(
                f"{config[0]} G={config[1]}: waste_ratio {waste_curr:.3f} "
                f"exceeds baseline {waste_base:.3f} by more than {tolerance}"
            )
        failures.extend(row_fail)
        deltas.append(
            {
                "engine": config[0],
                "group": config[1],
                "cells_per_second": cps_curr,
                "baseline_cells_per_second": cps_base,
                "cps_delta": cps_delta,
                "waste_ratio": waste_curr,
                "baseline_waste_ratio": waste_base,
                "waste_delta": waste_delta,
                "ok": not row_fail,
            }
        )
    return deltas, failures


def markdown_table(deltas: list[dict], failures: list[str], tolerance: float) -> str:
    lines = [
        f"### Bench gate — batched driver (tolerance ±{tolerance:.0%})",
        "",
        "| engine | G | cells/s | baseline | Δ | waste | baseline | status |",
        "|---|---:|---:|---:|---:|---:|---:|---|",
    ]
    for d in deltas:
        lines.append(
            f"| {d['engine']} | {d['group']} | {d['cells_per_second']:,.0f} "
            f"| {d['baseline_cells_per_second']:,.0f} | {d['cps_delta']:+.1%} "
            f"| {d['waste_ratio']:.3f} | {d['baseline_waste_ratio']:.3f} "
            f"| {'✅' if d['ok'] else '❌'} |"
        )
    if failures:
        lines += ["", "**Failures:**", ""]
        lines += [f"- {message}" for message in failures]
    else:
        lines += ["", "No regression beyond tolerance."]
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True, help="fresh BENCH_batched.json")
    parser.add_argument(
        "--baseline",
        default=os.path.join(os.path.dirname(__file__), "BENCH_baseline.json"),
        help="checked-in baseline report",
    )
    parser.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="optional --emit-metrics snapshot; validated, with "
        "operational families (repro_cluster_* etc.) ignored",
    )
    parser.add_argument(
        "--pruning",
        default=None,
        metavar="PATH",
        help="optional fresh BENCH_pruning.json; gated absolutely "
        "(identical tops, pruned_cells > 0, speedup >= "
        f"{PRUNING_MIN_SPEEDUP}x)",
    )
    parser.add_argument(
        "--pruning-min-speedup",
        type=float,
        default=float(
            os.environ.get("REPRO_PRUNE_MIN_SPEEDUP", PRUNING_MIN_SPEEDUP)
        ),
        help="required pruning speedup (default %(default)s, "
        "env REPRO_PRUNE_MIN_SPEEDUP)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_TOLERANCE", DEFAULT_TOLERANCE)),
        help="allowed fractional regression (default %(default)s, "
        "env REPRO_BENCH_TOLERANCE)",
    )
    args = parser.parse_args(argv)
    if not 0.0 < args.tolerance < 1.0:
        parser.error("tolerance must be in (0, 1)")

    with open(args.baseline, encoding="utf-8") as fh:
        baseline = json.load(fh)
    with open(args.current, encoding="utf-8") as fh:
        current = json.load(fh)

    deltas, failures = compare(baseline, current, args.tolerance)
    if args.metrics:
        with open(args.metrics, encoding="utf-8") as fh:
            snapshot = json.load(fh)
        summary, metric_failures = check_metrics_snapshot(snapshot)
        failures.extend(metric_failures)
        print(
            f"metrics snapshot: {len(summary['gated'])} perf families gated, "
            f"{len(summary['ignored'])} operational families ignored"
        )
    if args.pruning:
        with open(args.pruning, encoding="utf-8") as fh:
            pruning = json.load(fh)
        prune_failures = check_pruning_report(
            pruning, args.pruning_min_speedup
        )
        failures.extend(prune_failures)
        print(
            f"prune gate: speedup {pruning.get('speedup', 0.0):.2f}x, "
            f"identical tops: {pruning.get('identical_tops')}, "
            f"{'FAIL' if prune_failures else 'ok'}"
        )
    table = markdown_table(deltas, failures, args.tolerance)
    print(table)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a", encoding="utf-8") as fh:
            fh.write(table)
    if failures:
        print(f"bench gate: FAIL ({len(failures)} regression(s))", file=sys.stderr)
        return 1
    print("bench gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
