"""Shared benchmark fixtures.

Every benchmark writes its rendered paper-style table to
``benchmarks/results/`` (created on demand) *and* asserts the paper's
shape claims, so ``pytest benchmarks/ --benchmark-only`` doubles as a
reproduction check.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench import bench_sequence, default_scoring

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def scoring():
    return default_scoring()


@pytest.fixture(scope="session")
def titin300():
    return bench_sequence(300)


@pytest.fixture(scope="session")
def titin360():
    return bench_sequence(360)


def save_table(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Persist a rendered table and echo it to the terminal report."""
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")
