"""Prometheus text-exposition rendering of a metrics registry.

Implements the subset of the `text format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ the
instruments need: ``# HELP`` / ``# TYPE`` headers, label escaping,
histogram ``_bucket``/``_sum``/``_count`` series with a closing
``+Inf`` bucket.  Stdlib only, like the rest of :mod:`repro.obs`.
"""

from __future__ import annotations

import math

from .registry import Counter, Gauge, Histogram, MetricsRegistry, NullRegistry

__all__ = ["CONTENT_TYPE", "render_prometheus"]

#: The content type Prometheus scrapers expect for this format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _labels(items: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{_escape_label(v)}"' for k, v in items]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _number(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry | NullRegistry) -> str:
    """The registry's instruments as Prometheus text exposition."""
    lines: list[str] = []
    seen_headers: set[str] = set()

    for instrument in registry.instruments():
        name = instrument.name
        if name not in seen_headers:
            seen_headers.add(name)
            help_text = registry.help_for(name)
            if help_text:
                lines.append(f"# HELP {name} {_escape_help(help_text)}")
            lines.append(f"# TYPE {name} {instrument.kind}")
        if isinstance(instrument, (Counter, Gauge)):
            lines.append(f"{name}{_labels(instrument.labels)} {_number(instrument.value)}")
        elif isinstance(instrument, Histogram):
            for bound, count in instrument.cumulative_buckets():
                le = "+Inf" if math.isinf(bound) else _number(bound)
                le_label = 'le="%s"' % le
                lines.append(
                    f"{name}_bucket{_labels(instrument.labels, le_label)} {count}"
                )
            lines.append(f"{name}_sum{_labels(instrument.labels)} {_number(instrument.sum)}")
            lines.append(f"{name}_count{_labels(instrument.labels)} {instrument.count}")
    return "\n".join(lines) + ("\n" if lines else "")
