"""Metrics registry: counters, gauges, histograms, monotonic timers.

The paper's claims are quantitative — realignments avoided (§3),
cells/second per engine tier (Table 2), speculation waste (§5) — so the
runtime needs a first-class place to put those numbers instead of ad
hoc attributes sprinkled per subsystem.  This module is that place: a
stdlib-only, thread-safe registry of named instruments that both the
service (``GET /metrics``) and the bench harness
(``--emit-metrics``) can export.

Design rules
------------
* **Cheap when off.**  Outside the service, collection defaults to a
  shared :class:`NullRegistry` whose instruments are no-op singletons;
  hot paths pay one attribute call, no locks, no allocation.  See
  :mod:`repro.obs` for the ``REPRO_METRICS`` gating.
* **Monotonic timers only.**  Durations come from
  ``time.perf_counter`` — never ``time.time()``, whose wall clock can
  step backwards under NTP and silently corrupt latency histograms
  (lint rule RPR011 enforces this repo-wide).
* **Fixed histogram buckets.**  Bucket boundaries are set at creation
  and never change, so concurrent observers only ever increment — the
  same single-writer-free discipline the override triangle uses.

Instruments are identified by ``(name, sorted(labels))``; asking twice
returns the same object, so call sites may re-request instead of
caching handles (caching is still cheaper on the hottest paths).
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from typing import Any, Iterator, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "NullRegistry",
    "Timer",
]

#: Default latency buckets (seconds): sub-millisecond engine calls up
#: to multi-minute service jobs.
LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0,
)

LabelItems = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> LabelItems:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "labels", "_value", "_lock")

    kind = "counter"

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {dict(self.labels)}, value={self._value})"


class Gauge:
    """A value that can go up and down (queue depth, heap size)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, {dict(self.labels)}, value={self._value})"


class Histogram:
    """Cumulative-bucket histogram with fixed boundaries.

    ``counts[i]`` is the number of observations ``<= bounds[i]``; one
    implicit ``+Inf`` bucket at the end catches the rest, exactly the
    Prometheus exposition model.
    """

    __slots__ = ("name", "labels", "bounds", "_bucket_counts", "_sum", "_count", "_lock")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelItems = (),
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket boundary")
        if list(bounds) != sorted(bounds):
            raise ValueError("histogram buckets must be sorted ascending")
        if len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be distinct")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self._bucket_counts = [0] * (len(bounds) + 1)  # + the +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._bucket_counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending at ``+Inf``."""
        with self._lock:
            counts = list(self._bucket_counts)
        total = 0
        out: list[tuple[float, int]] = []
        for bound, n in zip(self.bounds, counts):
            total += n
            out.append((bound, total))
        out.append((float("inf"), total + counts[-1]))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Histogram({self.name!r}, {dict(self.labels)}, "
            f"count={self._count}, sum={self._sum})"
        )


class Timer:
    """Context manager observing an elapsed monotonic duration.

    Uses ``time.perf_counter`` — the registry's only clock for
    durations.  Reusable but not re-entrant (create one per ``with``).
    """

    __slots__ = ("_histogram", "_start", "elapsed")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._start = 0.0
        #: Seconds measured by the most recent ``with`` block.
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start
        self._histogram.observe(self.elapsed)


class MetricsRegistry:
    """Thread-safe collection of named instruments.

    One registry usually lives per process (see
    :func:`repro.obs.get_registry`); scrape-style exporters build
    short-lived ones and fill them from durable stores.
    """

    #: Real registries collect; the null registry reports False so hot
    #: paths can skip optional bookkeeping entirely.
    collecting = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[tuple[str, str, LabelItems], Any] = {}
        self._help: dict[str, str] = {}

    # -- instrument factories ---------------------------------------------

    def _get(self, kind: str, name: str, labels: dict, factory) -> Any:
        key = (kind, name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.get(key)
                if instrument is None:
                    instrument = factory(name, key[2])
                    self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        if help:
            self._help.setdefault(name, help)
        return self._get("counter", name, labels, Counter)

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        if help:
            self._help.setdefault(name, help)
        return self._get("gauge", name, labels, Gauge)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = LATENCY_BUCKETS,
        help: str = "",
        **labels: Any,
    ) -> Histogram:
        if help:
            self._help.setdefault(name, help)
        return self._get(
            "histogram",
            name,
            labels,
            lambda n, lk: Histogram(n, lk, buckets=buckets),
        )

    def timer(
        self,
        name: str,
        buckets: Sequence[float] = LATENCY_BUCKETS,
        help: str = "",
        **labels: Any,
    ) -> Timer:
        """A fresh monotonic timer observing into ``name``'s histogram."""
        return Timer(self.histogram(name, buckets=buckets, help=help, **labels))

    # -- introspection -----------------------------------------------------

    def help_for(self, name: str) -> str:
        return self._help.get(name, "")

    def instruments(self) -> Iterator[Any]:
        """Every live instrument, sorted by (name, labels) for stable output."""
        with self._lock:
            items = sorted(self._instruments.items(), key=lambda kv: kv[0][1:])
        for _, instrument in items:
            yield instrument

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready dump of every instrument (the ``--emit-metrics`` payload)."""
        out: dict[str, Any] = {}
        for instrument in self.instruments():
            entry: dict[str, Any] = {
                "kind": instrument.kind,
                "labels": dict(instrument.labels),
            }
            if isinstance(instrument, Histogram):
                entry["count"] = instrument.count
                entry["sum"] = instrument.sum
                entry["buckets"] = [
                    {"le": "+Inf" if bound == float("inf") else bound, "count": n}
                    for bound, n in instrument.cumulative_buckets()
                ]
            else:
                entry["value"] = instrument.value
            out.setdefault(instrument.name, []).append(entry)
        return out


class _NullInstrument:
    """Shared do-nothing stand-in for every instrument kind."""

    __slots__ = ()

    name = ""
    labels: LabelItems = ()
    kind = "null"
    value = 0.0
    count = 0
    sum = 0.0
    bounds: tuple[float, ...] = ()
    elapsed = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        return []

    def __enter__(self) -> "_NullInstrument":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL = _NullInstrument()


class NullRegistry:
    """The off switch: every factory returns one shared no-op instrument.

    Keeping the API identical means instrumented code never branches on
    "is observability on?" — it just calls; the only difference is that
    the call does nothing.  ``collecting`` lets the few places with
    per-iteration bookkeeping (heap-depth gauges, span trees) skip even
    that call.
    """

    collecting = False

    def counter(self, name: str, help: str = "", **labels: Any) -> _NullInstrument:
        return _NULL

    def gauge(self, name: str, help: str = "", **labels: Any) -> _NullInstrument:
        return _NULL

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = LATENCY_BUCKETS,
        help: str = "",
        **labels: Any,
    ) -> _NullInstrument:
        return _NULL

    def timer(
        self,
        name: str,
        buckets: Sequence[float] = LATENCY_BUCKETS,
        help: str = "",
        **labels: Any,
    ) -> _NullInstrument:
        return _NULL

    def help_for(self, name: str) -> str:
        return ""

    def instruments(self) -> Iterator[Any]:
        return iter(())

    def snapshot(self) -> dict[str, Any]:
        return {}
