"""``repro.obs`` — observability: metrics registry, tracing, exporters.

One process-wide registry + tracer pair backs every instrumented path
(the best-first drivers, the lane engines, the service).  Collection is
**off by default** — see :mod:`repro.obs.state` for the
``REPRO_METRICS`` gating rules.

Typical use::

    from repro import obs

    obs.enable()
    counter = obs.get_registry().counter("repro_jobs_total")
    with obs.span("phase", detail="..."):
        counter.inc()
    text = obs.render_prometheus(obs.get_registry())
    trees = obs.get_tracer().export()

* :mod:`~repro.obs.registry` — counters, gauges, histograms, timers
  and the (no-op) registries that hold them;
* :mod:`~repro.obs.tracing` — nesting spans exported as JSON trees;
* :mod:`~repro.obs.prometheus` — text-exposition rendering;
* :mod:`~repro.obs.state` — the process-wide pair + env gating.
"""

from .prometheus import CONTENT_TYPE, render_prometheus
from .registry import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Timer,
)
from .state import (
    METRICS_ENV,
    disable,
    enable,
    enabled,
    get_registry,
    get_tracer,
    reset,
    set_registry,
    span,
    write_snapshot,
)
from .tracing import Span, Tracer

__all__ = [
    "CONTENT_TYPE",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "METRICS_ENV",
    "MetricsRegistry",
    "NullRegistry",
    "Span",
    "Timer",
    "Tracer",
    "disable",
    "enable",
    "enabled",
    "get_registry",
    "get_tracer",
    "render_prometheus",
    "reset",
    "set_registry",
    "span",
    "write_snapshot",
]
