"""Lightweight tracing spans that nest and export as JSON trace trees.

A span measures one phase of work on one thread::

    with span("realign", split=r):
        ...engine call...

Spans opened while another span is active on the same thread become its
children, so a run exports as a tree — exactly the "where did the wall
time go" view the paper's Figure 8 timelines give for the cluster, but
for a single process.  Durations come from ``time.perf_counter``
(monotonic; RPR011 territory), start offsets are relative to the
tracer's epoch so trees from one process line up.

The tracer mirrors the registry's on/off discipline: a disabled tracer
hands out one shared no-op span, costing hot paths a single method
call.  Completed root trees are kept in a bounded deque — tracing is a
diagnostic stream, not an unbounded log.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any

__all__ = ["Span", "Tracer"]

#: Upper bound on retained completed root spans per tracer.
MAX_ROOTS = 256


class Span:
    """One timed phase; children are spans opened while it is active."""

    __slots__ = ("name", "attrs", "start", "duration", "children", "_tracer", "_root")

    def __init__(self, name: str, attrs: dict[str, Any], tracer: "Tracer") -> None:
        self.name = name
        self.attrs = attrs
        self.start = 0.0
        self.duration = 0.0
        self.children: list[Span] = []
        self._tracer = tracer
        self._root = False

    def __enter__(self) -> "Span":
        self.start = time.perf_counter() - self._tracer.epoch
        self._tracer._push(self)
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.duration = (time.perf_counter() - self._tracer.epoch) - self.start
        self._tracer._pop(self)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready tree rooted at this span."""
        node: dict[str, Any] = {
            "name": self.name,
            "start": round(self.start, 9),
            "duration": round(self.duration, 9),
        }
        if self.attrs:
            node["attrs"] = self.attrs
        if self.children:
            node["children"] = [c.to_dict() for c in self.children]
        return node


class _NullSpan:
    """Shared span that measures nothing (tracer disabled)."""

    __slots__ = ()

    name = ""
    attrs: dict[str, Any] = {}
    start = 0.0
    duration = 0.0
    children: list[Span] = []

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass

    def to_dict(self) -> dict[str, Any]:
        return {}


_NULL_SPAN = _NullSpan()


class Tracer:
    """Per-thread span stacks + a bounded store of finished root trees."""

    def __init__(self, *, enabled: bool = True, max_roots: int = MAX_ROOTS) -> None:
        self.enabled = enabled
        self.epoch = time.perf_counter()
        self._tls = threading.local()
        self._lock = threading.Lock()
        self._roots: deque[Span] = deque(maxlen=max_roots)

    # -- recording ---------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Span | _NullSpan:
        """Open a (context-manager) span; no-op when the tracer is off."""
        if not self.enabled:
            return _NULL_SPAN
        return Span(name, attrs, self)

    def _stack(self) -> list[Span]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def _push(self, span: Span) -> None:
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        else:
            span._root = True
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        # Tolerate mispaired exits instead of corrupting the tree.
        while stack:
            top = stack.pop()
            if top is span:
                break
        if span._root:
            with self._lock:
                self._roots.append(span)

    # -- export ------------------------------------------------------------

    def roots(self) -> list[Span]:
        """Completed root spans, oldest first."""
        with self._lock:
            return list(self._roots)

    def export(self) -> list[dict[str, Any]]:
        """JSON-ready trace trees for every completed root span."""
        return [root.to_dict() for root in self.roots()]

    def clear(self) -> None:
        with self._lock:
            self._roots.clear()
