"""Process-wide observability state: the registry/tracer pair + gating.

One registry + tracer pair backs every instrumented path (the
best-first drivers, the lane engines, the service).  Collection is
**off by default**: hot paths talk to a shared no-op registry unless

* the process opted in programmatically (:func:`enable` — the service
  and ``--emit-metrics`` bench runs do this), or
* the environment opted in (``REPRO_METRICS=1``).

``REPRO_METRICS=0`` force-disables collection even where the code asks
for it, which is how the timing-sensitive tier-1 tests and benchmark
baselines guarantee a zero-overhead hot path.
"""

from __future__ import annotations

import json
import os
import threading

from .registry import MetricsRegistry, NullRegistry
from .tracing import Tracer

__all__ = [
    "METRICS_ENV",
    "disable",
    "enable",
    "enabled",
    "get_registry",
    "get_tracer",
    "reset",
    "set_registry",
    "span",
    "write_snapshot",
]

#: Environment switch: "1"/"true"/"on" opt in, "0"/"false"/"off" force
#: out (overriding programmatic :func:`enable`), unset defers to code.
METRICS_ENV = "REPRO_METRICS"

_TRUTHY = {"1", "true", "on", "yes"}
_FALSY = {"0", "false", "off", "no"}

_lock = threading.Lock()
_registry: MetricsRegistry | NullRegistry | None = None
_tracer: Tracer | None = None
_null_registry = NullRegistry()
_null_tracer = Tracer(enabled=False)


def _env_state() -> bool | None:
    """True/False when the environment decides, None when code decides."""
    raw = os.environ.get(METRICS_ENV, "").strip().lower()
    if raw in _TRUTHY:
        return True
    if raw in _FALSY and raw:
        return False
    return None


def enabled() -> bool:
    """Whether the process-wide registry is currently collecting."""
    return get_registry().collecting


def get_registry() -> MetricsRegistry | NullRegistry:
    """The process-wide registry (no-op unless enabled)."""
    global _registry
    registry = _registry
    if registry is None:
        with _lock:
            registry = _registry
            if registry is None:
                registry = (
                    MetricsRegistry() if _env_state() is True else _null_registry
                )
                _registry = registry
    return registry


def get_tracer() -> Tracer:
    """The process-wide tracer (enabled iff the registry collects)."""
    global _tracer
    tracer = _tracer
    if tracer is None:
        tracer = Tracer() if get_registry().collecting else _null_tracer
        _tracer = tracer
    return tracer


def span(name: str, **attrs):
    """Open a span on the process-wide tracer (no-op when disabled)."""
    return get_tracer().span(name, **attrs)


def enable() -> bool:
    """Opt this process into collection (service / ``--emit-metrics``).

    Returns True when collection is now on; ``REPRO_METRICS=0`` wins
    and keeps it off.
    """
    global _registry, _tracer
    if _env_state() is False:
        return enabled()
    with _lock:
        if _registry is None or not _registry.collecting:
            _registry = MetricsRegistry()
            _tracer = Tracer()
    return True


def disable() -> None:
    """Turn collection off (instruments created so far stop aggregating)."""
    global _registry, _tracer
    with _lock:
        _registry = _null_registry
        _tracer = _null_tracer


def set_registry(registry: MetricsRegistry | NullRegistry) -> None:
    """Install a specific registry (tests, exporters)."""
    global _registry, _tracer
    with _lock:
        _registry = registry
        _tracer = Tracer() if registry.collecting else _null_tracer


def reset() -> None:
    """Forget the process-wide registry/tracer (re-resolved on next use)."""
    global _registry, _tracer
    with _lock:
        _registry = None
        _tracer = None


def write_snapshot(path: str) -> dict:
    """Dump the process registry + trace trees as JSON (``--emit-metrics``)."""
    payload = {
        "collecting": enabled(),
        "metrics": get_registry().snapshot(),
        "traces": get_tracer().export(),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload
