"""Exchange (substitution) matrices.

An :class:`ExchangeMatrix` maps a pair of residue codes to a similarity
score — "high scores for two identical or similar sequence elements,
and low or negative scores for unrelated ones" (paper §2.1).  The
matrix is stored densely so that engines can gather a whole row
(``E[a, :]`` for one vertical residue against every horizontal residue)
with a single fancy-index, the vector analogue of the paper's per-cell
exchange lookup.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..sequences.alphabet import Alphabet

__all__ = ["ExchangeMatrix", "match_mismatch", "from_triangle_text"]


@dataclass(frozen=True)
class ExchangeMatrix:
    """A symmetric ``size x size`` residue-pair score table.

    Parameters
    ----------
    name:
        Identifier (``"blosum62"``, ``"simple+2/-1"``, ...).
    alphabet:
        The alphabet whose codes index the table.
    scores:
        Square array of scores; symmetrised and stored as ``float64``
        (integer engines convert on the fly and verify integrality).
    """

    name: str
    alphabet: Alphabet
    scores: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        scores = np.asarray(self.scores, dtype=np.float64)
        if scores.ndim != 2 or scores.shape[0] != scores.shape[1]:
            raise ValueError("exchange matrix must be square")
        if scores.shape[0] != self.alphabet.size:
            raise ValueError(
                f"matrix size {scores.shape[0]} does not match alphabet "
                f"{self.alphabet.name!r} (size {self.alphabet.size})"
            )
        if not np.allclose(scores, scores.T):
            raise ValueError("exchange matrix must be symmetric")
        scores = np.ascontiguousarray(scores)
        scores.setflags(write=False)
        object.__setattr__(self, "scores", scores)

    @property
    def size(self) -> int:
        """Number of residue codes the matrix covers."""
        return self.scores.shape[0]

    def score(self, a: str, b: str) -> float:
        """Score of a residue-letter pair (convenience accessor)."""
        return float(
            self.scores[self.alphabet.code_of(a), self.alphabet.code_of(b)]
        )

    def lookup(self, codes_a: np.ndarray, codes_b: np.ndarray) -> np.ndarray:
        """Vectorised pairwise scores ``E[codes_a[i], codes_b[i]]``."""
        return self.scores[codes_a, codes_b]

    def row(self, code: int) -> np.ndarray:
        """The score row of one vertical residue against every code."""
        return self.scores[code]

    def as_integers(self) -> np.ndarray:
        """The table as ``int32`` (raises if any entry is fractional)."""
        ints = np.rint(self.scores).astype(np.int32)
        if not np.array_equal(ints, self.scores):
            raise ValueError(f"exchange matrix {self.name!r} is not integral")
        return ints

    @property
    def max_score(self) -> float:
        """Largest entry — used for score-bound estimates."""
        return float(self.scores.max())


def match_mismatch(
    alphabet: Alphabet,
    match: float = 2.0,
    mismatch: float = -1.0,
    *,
    wildcard_score: float | None = 0.0,
    name: str | None = None,
) -> ExchangeMatrix:
    """The paper's "simplistic" matrix: +``match`` on equal residues,
    ``mismatch`` otherwise.

    If the alphabet has a wildcard and ``wildcard_score`` is not
    ``None``, every pairing involving the wildcard scores
    ``wildcard_score`` (so unknown residues neither help nor hurt).
    """
    scores = np.full((alphabet.size, alphabet.size), mismatch, dtype=np.float64)
    np.fill_diagonal(scores, match)
    wc = alphabet.wildcard_code
    if wc is not None and wildcard_score is not None:
        scores[wc, :] = wildcard_score
        scores[:, wc] = wildcard_score
    label = name or f"simple+{match:g}/{mismatch:g}"
    return ExchangeMatrix(label, alphabet, scores)


def from_triangle_text(
    name: str, alphabet: Alphabet, order: str, triangle: str
) -> ExchangeMatrix:
    """Build a matrix from a lower-triangle whitespace table.

    ``order`` gives the residue order of the published table's rows;
    ``triangle`` holds row *i* with ``i+1`` integers (lower triangle
    including the diagonal).  Residues of ``alphabet`` missing from
    ``order`` score 0 against everything, which matches how published
    BLOSUM/PAM distributions treat letters outside their 24-symbol set.
    """
    rows = [line.split() for line in triangle.strip().splitlines()]
    if len(rows) != len(order):
        raise ValueError(
            f"triangle has {len(rows)} rows but order names {len(order)} residues"
        )
    scores = np.zeros((alphabet.size, alphabet.size), dtype=np.float64)
    codes = [alphabet.code_of(sym) for sym in order]
    for i, row in enumerate(rows):
        if len(row) != i + 1:
            raise ValueError(f"triangle row {i} has {len(row)} entries, expected {i + 1}")
        for j, cell in enumerate(row):
            value = float(cell)
            scores[codes[i], codes[j]] = value
            scores[codes[j], codes[i]] = value
    return ExchangeMatrix(name, alphabet, scores)
