"""BLOSUM substitution matrices (Henikoff & Henikoff, 1992).

The tables are stored as lower triangles in the conventional 24-symbol
residue order ``ARNDCQEGHILKMFPSTWYVBZX*`` and inflated lazily into
:class:`~repro.scoring.exchange.ExchangeMatrix` instances.
"""

from __future__ import annotations

from functools import lru_cache

from ..sequences.alphabet import PROTEIN
from .exchange import ExchangeMatrix, from_triangle_text

__all__ = ["blosum62", "blosum50"]

_ORDER = "ARNDCQEGHILKMFPSTWYVBZX*"

_BLOSUM62_TRIANGLE = """
 4
-1  5
-2  0  6
-2 -2  1  6
 0 -3 -3 -3  9
-1  1  0  0 -3  5
-1  0  0  2 -4  2  5
 0 -2  0 -1 -3 -2 -2  6
-2  0  1 -1 -3  0  0 -2  8
-1 -3 -3 -3 -1 -3 -3 -4 -3  4
-1 -2 -3 -4 -1 -2 -3 -4 -3  2  4
-1  2  0 -1 -3  1  1 -2 -1 -3 -2  5
-1 -1 -2 -3 -1  0 -2 -3 -2  1  2 -1  5
-2 -3 -3 -3 -2 -3 -3 -3 -1  0  0 -3  0  6
-1 -2 -2 -1 -3 -1 -1 -2 -2 -3 -3 -1 -2 -4  7
 1 -1  1  0 -1  0  0  0 -1 -2 -2  0 -1 -2 -1  4
 0 -1  0 -1 -1 -1 -1 -2 -2 -1 -1 -1 -1 -2 -1  1  5
-3 -3 -4 -4 -2 -2 -3 -2 -2 -3 -2 -3 -1  1 -4 -3 -2 11
-2 -2 -2 -3 -2 -1 -2 -3  2 -1 -1 -2 -1  3 -3 -2 -2  2  7
 0 -3 -3 -3 -1 -2 -2 -3 -3  3  1 -2  1 -1 -2 -2  0 -3 -1  4
-2 -1  3  4 -3  0  1 -1  0 -3 -4  0 -3 -3 -2  0 -1 -4 -3 -3  4
-1  0  0  1 -3  3  4 -2  0 -3 -3  1 -1 -3 -1  0 -1 -3 -2 -2  1  4
 0 -1 -1 -1 -2 -1 -1 -1 -1 -1 -1 -1 -1 -1 -2  0  0 -2 -1 -1 -1 -1 -1
-4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4  1
"""

_BLOSUM50_TRIANGLE = """
 5
-2  7
-1 -1  7
-2 -2  2  8
-1 -4 -2 -4 13
-1  1  0  0 -3  7
-1  0  0  2 -3  2  6
 0 -3  0 -1 -3 -2 -3  8
-2  0  1 -1 -3  1  0 -2 10
-1 -4 -3 -4 -2 -3 -4 -4 -4  5
-2 -3 -4 -4 -2 -2 -3 -4 -3  2  5
-1  3  0 -1 -3  2  1 -2  0 -3 -3  6
-1 -2 -2 -4 -2  0 -2 -3 -1  2  3 -2  7
-3 -3 -4 -5 -2 -4 -3 -4 -1  0  1 -4  0  8
-1 -3 -2 -1 -4 -1 -1 -2 -2 -3 -4 -1 -3 -4 10
 1 -1  1  0 -1  0 -1  0 -1 -3 -3  0 -2 -3 -1  5
 0 -1  0 -1 -1 -1 -1 -2 -2 -1 -1 -1 -1 -2 -1  2  5
-3 -3 -4 -5 -5 -1 -3 -3 -3 -3 -2 -3 -1  1 -4 -4 -3 15
-2 -1 -2 -3 -3 -1 -2 -3  2 -1 -1 -2  0  4 -3 -2 -2  2  8
 0 -3 -3 -4 -1 -3 -3 -4 -4  4  1 -3  1 -1 -3 -2  0 -3 -1  5
-2 -1  4  5 -3  0  1 -1  0 -4 -4  0 -3 -4 -2  0  0 -5 -3 -4  5
-1  0  0  1 -3  4  5 -2  0 -3 -3  1 -1 -4 -1  0 -1 -2 -2 -3  2  5
-1 -1 -1 -1 -2 -1 -1 -2 -1 -1 -1 -1 -1 -2 -2 -1  0 -3 -1 -1 -1 -1 -1
-5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5  1
"""


@lru_cache(maxsize=None)
def blosum62() -> ExchangeMatrix:
    """The BLOSUM62 matrix over the 24-symbol protein alphabet."""
    return from_triangle_text("blosum62", PROTEIN, _ORDER, _BLOSUM62_TRIANGLE)


@lru_cache(maxsize=None)
def blosum50() -> ExchangeMatrix:
    """The BLOSUM50 matrix over the 24-symbol protein alphabet."""
    return from_triangle_text("blosum50", PROTEIN, _ORDER, _BLOSUM50_TRIANGLE)
