"""PAM substitution matrices (Dayhoff et al., 1978).

Stored like the BLOSUM tables: lower triangles in the conventional
24-symbol order, inflated lazily.  PAM250 is the matrix family the
original 1993 Repro paper used for distant-repeat recognition.
"""

from __future__ import annotations

from functools import lru_cache

from ..sequences.alphabet import PROTEIN
from .exchange import ExchangeMatrix, from_triangle_text

__all__ = ["pam250", "pam120"]

_ORDER = "ARNDCQEGHILKMFPSTWYVBZX*"

_PAM250_TRIANGLE = """
 2
-2  6
 0  0  2
 0 -1  2  4
-2 -4 -4 -5 12
 0  1  1  2 -5  4
 0 -1  1  3 -5  2  4
 1 -3  0  1 -3 -1  0  5
-1  2  2  1 -3  3  1 -2  6
-1 -2 -2 -2 -2 -2 -2 -3 -2  5
-2 -3 -3 -4 -6 -2 -3 -4 -2  2  6
-1  3  1  0 -5  1  0 -2  0 -2 -3  5
-1  0 -2 -3 -5 -1 -2 -3 -2  2  4  0  6
-3 -4 -3 -6 -4 -5 -5 -5 -2  1  2 -5  0  9
 1  0  0 -1 -3  0 -1  0  0 -2 -3 -1 -2 -5  6
 1  0  1  0  0 -1  0  1 -1 -1 -3  0 -2 -3  1  2
 1 -1  0  0 -2 -1  0  0 -1  0 -2  0 -1 -3  0  1  3
-6  2 -4 -7 -8 -5 -7 -7 -3 -5 -2 -3 -4  0 -6 -2 -5 17
-3 -4 -2 -4  0 -4 -4 -5  0 -1 -1 -4 -2  7 -5 -3 -3  0 10
 0 -2 -2 -2 -2 -2 -2 -1 -2  4  2 -2  2 -1 -1 -1  0 -6 -2  4
 0 -1  2  3 -4  1  3  0  1 -2 -3  1 -2 -4 -1  0  0 -5 -3 -2  3
 0  0  1  3 -5  3  3  0  2 -2 -3  0 -2 -5  0  0 -1 -6 -4 -2  2  3
 0 -1  0 -1 -3 -1 -1 -1 -1 -1 -1 -1 -1 -2 -1  0  0 -4 -2 -1 -1 -1 -1
-8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8  1
"""

_PAM120_TRIANGLE = """
 3
-3  6
-1 -1  4
 0 -3  2  5
-3 -4 -5 -7  9
-1  1  0  1 -7  6
 0 -3  1  3 -7  2  5
 1 -4  0  0 -4 -3 -1  5
-3  1  2  0 -4  3 -1 -4  7
-1 -2 -2 -3 -3 -3 -3 -4 -4  6
-3 -4 -4 -5 -7 -2 -4 -5 -3  1  5
-2  2  1 -1 -7  0 -1 -3 -2 -3 -4  5
-2 -1 -3 -4 -6 -1 -3 -4 -4  1  3  0  8
-4 -5 -4 -7 -6 -6 -7 -5 -3  0  0 -7 -1  8
 1 -1 -2 -3 -4  0 -2 -2 -1 -3 -3 -2 -3 -5  6
 1 -1  1  0  0 -2 -1  1 -2 -2 -4 -1 -2 -3  1  3
 1 -2  0 -1 -3 -2 -2 -1 -3  0 -3 -1 -1 -4 -1  2  4
-7  1 -4 -8 -8 -6 -8 -8 -3 -6 -3 -5 -6 -1 -7 -2 -6 12
-4 -5 -2 -5 -1 -5 -5 -6 -1 -2 -2 -5 -4  4 -6 -3 -3 -2  8
 0 -3 -3 -3 -3 -3 -3 -2 -3  3  1 -4  1 -3 -2 -2  0 -8 -3  5
 0 -2  3  4 -6  0  3  0  1 -3 -4  0 -4 -5 -2  0  0 -6 -3 -3  4
-1 -1  0  3 -7  4  3 -2  1 -3 -3 -1 -2 -6 -1 -1 -2 -7 -5 -3  2  4
-1 -2 -1 -2 -4 -1 -1 -2 -2 -1 -2 -2 -2 -3 -2 -1 -1 -5 -3 -1 -1 -1 -2
-8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8  1
"""


@lru_cache(maxsize=None)
def pam250() -> ExchangeMatrix:
    """The PAM250 matrix over the 24-symbol protein alphabet."""
    return from_triangle_text("pam250", PROTEIN, _ORDER, _PAM250_TRIANGLE)


@lru_cache(maxsize=None)
def pam120() -> ExchangeMatrix:
    """The PAM120 matrix over the 24-symbol protein alphabet."""
    return from_triangle_text("pam120", PROTEIN, _ORDER, _PAM120_TRIANGLE)
