"""Scoring substrate: exchange matrices and affine gap penalties."""

from .blosum import blosum50, blosum62
from .exchange import ExchangeMatrix, from_triangle_text, match_mismatch
from .gaps import GapPenalties
from .pam import pam120, pam250

__all__ = [
    "ExchangeMatrix",
    "GapPenalties",
    "match_mismatch",
    "from_triangle_text",
    "blosum62",
    "blosum50",
    "pam250",
    "pam120",
]
