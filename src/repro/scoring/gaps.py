"""Gap penalty model.

The paper uses the classic affine model: a gap of length *g* costs
``open + g * extend`` (its worked example: "two points for each new gap
(gap opening) and one point times the length of the gap (gap
extension)").  In the Figure 3 recurrence this appears as the running
maxima ``MaxX``/``MaxY`` being seeded with ``M - open`` and decayed by
``extend`` per column/row.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GapPenalties"]


@dataclass(frozen=True)
class GapPenalties:
    """Affine gap penalties: a gap of length ``g`` costs ``open_ + g * extend``.

    Both components must be non-negative; they are *penalties* and are
    subtracted from alignment scores.
    """

    open_: float = 2.0
    extend: float = 1.0

    def __post_init__(self) -> None:
        if self.open_ < 0 or self.extend < 0:
            raise ValueError("gap penalties must be non-negative")

    def cost(self, length: int) -> float:
        """Total penalty of a single gap of ``length`` residues."""
        if length < 0:
            raise ValueError("gap length must be non-negative")
        if length == 0:
            return 0.0
        return self.open_ + length * self.extend

    def cost_vector(self, max_length: int) -> np.ndarray:
        """``P[g]`` for g in 0..``max_length`` (``P[0] = 0``), as float64."""
        if max_length < 0:
            raise ValueError("max_length must be non-negative")
        costs = self.open_ + self.extend * np.arange(max_length + 1, dtype=np.float64)
        costs[0] = 0.0
        return costs

    def as_integers(self) -> tuple[int, int]:
        """The penalties as exact integers (raises if they are fractional).

        Integer engines (the int16 lane engine mirroring the paper's SSE
        shorts) require integral penalties, exactly like the original.
        """
        oi, ei = int(round(self.open_)), int(round(self.extend))
        if oi != self.open_ or ei != self.extend:
            raise ValueError(
                f"gap penalties {self.open_}/{self.extend} are not integral"
            )
        return oi, ei
