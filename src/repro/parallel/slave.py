"""The distributed slave (§4.3).

A slave replicates the override triangle (cheap: read often, updated
only on acceptances), services ``ALIGN`` requests with its local
alignment engine, and ships bottom rows back to the master.  With
``n_threads > 1`` it models one SMP node: a small thread pool computes
several assignments concurrently while a receiver loop keeps applying
triangle updates — and, echoing the paper's MPI-without-thread-support
workaround, all sends go through a mutex.
"""

from __future__ import annotations

import queue as queue_mod
import threading
from dataclasses import dataclass

from ..align.base import AlignmentProblem, get_engine
from ..core.override import DenseOverrideTriangle
from ..scoring.exchange import ExchangeMatrix
from ..scoring.gaps import GapPenalties
from .msgpass import ANY, Communicator
from .master import T_ALIGN, T_MARK, T_ROW, T_STOP

__all__ = ["SlaveConfig", "slave_main"]


@dataclass(frozen=True)
class SlaveConfig:
    """Everything a slave needs to reconstruct the problem locally."""

    codes: bytes  # int8 sequence codes, as raw bytes (cheap to pickle)
    m: int
    exchange: ExchangeMatrix
    gaps: GapPenalties
    engine: str = "vector"
    n_threads: int = 1


def slave_main(comm: Communicator, config: SlaveConfig) -> None:
    """Entry point run on every slave rank (see :class:`SlaveConfig`)."""
    import numpy as np

    codes = np.frombuffer(config.codes, dtype=np.int8)
    engine = get_engine(config.engine)
    triangle = DenseOverrideTriangle(config.m)
    send_lock = threading.Lock()  # "we protect all MPI calls with a mutex"
    work: queue_mod.Queue = queue_mod.Queue()

    def compute(r: int, version: int) -> None:
        problem = AlignmentProblem(
            codes[:r],
            codes[r:],
            config.exchange,
            config.gaps,
            triangle.view_for_split(r),
        )
        row = engine.last_row(problem)
        with send_lock:
            comm.send((r, version, row), 0, T_ROW)

    def worker() -> None:
        while True:
            item = work.get()
            if item is None:
                return
            compute(*item)

    threads = [
        threading.Thread(target=worker, name=f"slave-cpu-{i}", daemon=True)
        for i in range(config.n_threads)
    ]
    for t in threads:
        t.start()

    try:
        while True:
            msg = comm.recv(source=0, tag=ANY)
            if msg.tag == T_STOP:
                return
            if msg.tag == T_MARK:
                triangle.mark(msg.payload)
            elif msg.tag == T_ALIGN:
                work.put(msg.payload)
            else:  # pragma: no cover - unknown tag means a protocol bug
                raise RuntimeError(f"slave got unexpected tag {msg.tag}")
    finally:
        for _ in threads:
            work.put(None)
        for t in threads:
            t.join(timeout=10.0)
