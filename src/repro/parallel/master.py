"""The distributed master (§4.3).

One rank — the master — is sacrificed to manage the task queue, the
bottom-row store and the override triangle, and to hand tasks to idle
slaves.  Slaves request nothing; the master pushes ``ALIGN`` work
whenever a slave has spare capacity and reabsorbs ``ROW`` replies.

Protocol (all payloads picklable):

===========  ==========  ==================================================
tag          direction   payload
===========  ==========  ==================================================
``T_ALIGN``  m -> s      ``(r, version)`` — align split r; the slave's
                         triangle replica must already be at ``version``
``T_ROW``    s -> m      ``(r, version, bottom_row)``
``T_MARK``   m -> s      ``tuple[pair, ...]`` — a newly accepted top
                         alignment; sent to *every* slave, FIFO order
                         guarantees it precedes any task that assumes it
``T_STOP``   m -> s      ``None`` — shut down
===========  ==========  ==================================================

Because the master tags each assignment with the triangle version in
force when it was sent, and per-slave FIFO ordering means the slave's
replica is at exactly that version while computing, every returned
score is attributed to the right version — the distributed run is
*deterministic* and produces the sequential algorithm's alignments.
"""

from __future__ import annotations

from ..core.result import RunStats, TopAlignment
from ..core.tasks import Task, TaskQueue
from ..core.topalign import TopAlignmentState
from .msgpass import ANY, Communicator

__all__ = ["T_ALIGN", "T_ROW", "T_MARK", "T_STOP", "MasterRunner"]

T_ALIGN = 1
T_ROW = 2
T_MARK = 3
T_STOP = 4


class MasterRunner:
    """Drives the distributed search from rank 0."""

    def __init__(
        self,
        comm: Communicator,
        state: TopAlignmentState,
        k: int,
        *,
        slave_capacity: int = 1,
        min_score: float = 0.0,
    ) -> None:
        if comm.size < 2:
            raise ValueError("need at least one slave rank")
        if k < 1:
            raise ValueError("k must be >= 1")
        self.comm = comm
        self.state = state
        self.k = k
        self.min_score = min_score
        self.slave_capacity = slave_capacity
        checker = state.invariants
        self._queue = TaskQueue(
            guard=checker.guard_task if checker is not None else None
        )
        self._inflight: dict[int, Task] = {}  # r -> checked-out task
        self._load = {rank: 0 for rank in range(1, comm.size)}
        #: Per-slave message/byte counters (the paper's "each slave
        #: sends up to 64 KB/s" observation).
        self.bytes_received = 0

    # -- helpers -----------------------------------------------------------

    def _dominates_inflight(self, score: float, r: int) -> bool:
        return all(
            t.score < score or (t.score == score and t.r > r)
            for t in self._inflight.values()
        )

    def _idle_slave(self) -> int | None:
        best = min(self._load, key=lambda rank: (self._load[rank], rank))
        return best if self._load[best] < self.slave_capacity else None

    # -- main loop -----------------------------------------------------------

    def run(self) -> tuple[list[TopAlignment], RunStats]:
        """Execute the search and stop all slaves before returning."""
        state = self.state
        for task in state.make_tasks():
            self._queue.insert(task)

        try:
            while True:
                made_progress = self._schedule()
                if state.n_found >= self.k or self._exhausted():
                    break
                if not made_progress and not self._inflight:
                    break  # nothing runnable and nothing pending
                if self._inflight:
                    self._absorb_result()
        finally:
            for rank in range(1, self.comm.size):
                self.comm.send(None, rank, T_STOP)
        return list(state.found), state.stats

    def _schedule(self) -> bool:
        """Assign tasks / accept alignments until blocked.  True if any."""
        state = self.state
        progressed = False
        while state.n_found < self.k and self._queue:
            head_score = self._queue.peek_score()
            if head_score <= self.min_score:
                break
            task = self._queue.pop_highest()
            if task.is_current(state.n_found):
                if not self._dominates_inflight(task.score, task.r):
                    self._queue.insert(task)
                    break  # must wait for in-flight upper bounds
                # Acceptance — traceback runs on the master, sequentially.
                state.accept_task(task)
                self._queue.insert(task)
                for rank in range(1, self.comm.size):
                    self.comm.send(state.found[-1].pairs, rank, T_MARK)
                progressed = True
                continue
            slave = self._idle_slave()
            if slave is None:
                self._queue.insert(task)
                break
            self.comm.send((task.r, state.n_found), slave, T_ALIGN)
            task.aligned_with = state.n_found  # version the slave will use
            self._inflight[task.r] = task
            self._load[slave] += 1
            progressed = True
        return progressed

    def _absorb_result(self) -> None:
        """Receive one ROW reply and fold it into the search state."""
        state = self.state
        msg = self.comm.recv(source=ANY, tag=T_ROW)
        r, version, row = msg.payload
        task = self._inflight.pop(r)
        self._load[msg.source] -= 1
        self.bytes_received += row.nbytes
        state.stats.alignments += 1
        state.stats.cells += r * (state.m - r)
        prev_score, prev_version = task.score, task.aligned_with
        if r not in state.bottom_rows:
            state.bottom_rows.put(r, row)
            score = float(row.max())
        else:
            state.stats.realignments += 1
            state.stats.realignments_per_top[-1] += 1
            score = state.bottom_rows.score_of(r, row)
        task.score = score
        task.aligned_with = version
        if state.invariants is not None:
            state.invariants.after_align(
                task, row, prev_score=prev_score, prev_version=prev_version
            )
        self._queue.insert(task)

    def _exhausted(self) -> bool:
        if self._inflight:
            return False
        if not self._queue:
            return True
        return self._queue.peek_score() <= self.min_score
