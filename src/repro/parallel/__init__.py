"""Parallel execution: lane groups, threads, and distributed master/slave."""

from .driver import find_top_alignments_distributed
from .groups import (
    GroupedTopAlignmentRunner,
    TaskGroup,
    find_top_alignments_grouped,
)
from .master import MasterRunner
from .msgpass import ANY, Communicator, Message, World
from .shared import ThreadedTopAlignmentRunner, find_top_alignments_threaded
from .slave import SlaveConfig, slave_main

__all__ = [
    "find_top_alignments_threaded",
    "find_top_alignments_grouped",
    "find_top_alignments_distributed",
    "ThreadedTopAlignmentRunner",
    "GroupedTopAlignmentRunner",
    "TaskGroup",
    "MasterRunner",
    "SlaveConfig",
    "slave_main",
    "World",
    "Communicator",
    "Message",
    "ANY",
]
