"""Distributed driver: cluster-of-SMPs execution (§4.3).

``find_top_alignments_distributed`` spawns ``n_slaves`` worker
processes (each optionally multi-threaded, modelling one dual-CPU DAS-2
node), runs the master protocol from the calling process, and returns
exactly the sequential algorithm's top alignments.

This is the *functional* reproduction of the paper's MPI deployment —
it proves the protocol end-to-end on real processes.  The *performance*
reproduction (Figure 8's speedups at up to 128 CPUs) lives in
:mod:`repro.simulate`, because a single development machine cannot
exhibit 128-way scaling.
"""

from __future__ import annotations

from ..core.result import RunStats, TopAlignment
from ..core.topalign import TopAlignmentState
from ..scoring.exchange import ExchangeMatrix
from ..scoring.gaps import GapPenalties
from ..sequences.sequence import Sequence
from .master import MasterRunner
from .msgpass import World
from .slave import SlaveConfig, slave_main

__all__ = ["find_top_alignments_distributed"]


def find_top_alignments_distributed(
    sequence: Sequence,
    k: int,
    exchange: ExchangeMatrix,
    gaps: GapPenalties = GapPenalties(),
    *,
    n_slaves: int = 2,
    threads_per_slave: int = 1,
    engine: str = "vector",
    min_score: float = 0.0,
) -> tuple[list[TopAlignment], RunStats]:
    """Distributed drop-in for :func:`repro.core.find_top_alignments`.

    ``n_slaves * threads_per_slave`` alignment workers run in
    ``n_slaves`` separate processes; the caller becomes the sacrificed
    master.  Results are identical to the sequential algorithm.
    """
    if n_slaves < 1:
        raise ValueError("need at least one slave")
    if threads_per_slave < 1:
        raise ValueError("threads_per_slave must be >= 1")

    state = TopAlignmentState(sequence, exchange, gaps, engine=engine)
    config = SlaveConfig(
        codes=sequence.codes.tobytes(),
        m=len(sequence),
        exchange=exchange,
        gaps=gaps,
        engine=engine,
        n_threads=threads_per_slave,
    )
    with World(n_slaves + 1) as world:
        world.start(slave_main, config)
        runner = MasterRunner(
            world.comm,
            state,
            k,
            slave_capacity=threads_per_slave,
            min_score=min_score,
        )
        return runner.run()
