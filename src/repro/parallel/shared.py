"""Shared-memory dynamic speculative scheduler (§4.2).

Worker threads repeatedly pull the highest-score task that is not
already checked out by another thread, (re)align it, and reinsert it
with its new score.  As in the paper, the parallelism is speculative:
when one task turns into a new top alignment, work in flight on other
tasks is not of interest any more — but it is not wasted either,
because the lowered scores push those tasks far back in the queue.

The scheduler preserves the sequential algorithm's output exactly.  A
current-scored task is accepted only when it *dominates* every task
still in flight (higher score, or equal score with a smaller split
point) — precisely the condition under which the sequential best-first
loop would have accepted it.  Threads that find the head current but
not yet dominant wait; that idleness is the same load imbalance the
paper reports around acceptances ("there is not enough parallelism to
keep all processors busy").

Concurrency notes:

* The override triangle is mutated only inside acceptances, which run
  under the coordinator lock.  An alignment racing with an acceptance
  may observe a partially marked triangle; it is tagged with the
  version observed at start, so its score remains a valid *upper bound*
  (more overrides never raise scores) and the task is realigned before
  it could ever be accepted.
* First-pass bottom rows are cached only from alignments that ran under
  the empty triangle.  That is guaranteed structurally: no acceptance
  can dominate a never-aligned task's ``+inf`` score, so the first
  acceptance happens strictly after every first pass completed.
"""

from __future__ import annotations

import threading
import time

from ..obs import span as obs_span
from ..scoring.exchange import ExchangeMatrix
from ..scoring.gaps import GapPenalties
from ..sequences.sequence import Sequence
from ..core.result import RunStats, TopAlignment
from ..core.tasks import TaskQueue
from ..core.topalign import TopAlignmentState

__all__ = ["ThreadedTopAlignmentRunner", "find_top_alignments_threaded"]


class ThreadedTopAlignmentRunner:
    """Runs the Figure 5 loop with ``n_threads`` speculative workers."""

    def __init__(
        self,
        state: TopAlignmentState,
        k: int,
        *,
        n_threads: int = 2,
        min_score: float = 0.0,
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        self.state = state
        self.k = k
        self.n_threads = n_threads
        self.min_score = min_score
        self._cond = threading.Condition()
        checker = state.invariants
        self._queue = TaskQueue(
            guard=checker.guard_task if checker is not None else None
        )
        self._inflight: dict[int, tuple[float, int]] = {}  # r -> (score, r)
        self._done = False
        self._error: BaseException | None = None
        #: Alignments performed beyond what the sequential run needed —
        #: the speculation overhead of §5.2 (up to 8.4 % in the paper).
        self.speculative_alignments = 0

    # -- public ------------------------------------------------------------

    def run(self) -> tuple[list[TopAlignment], RunStats]:
        """Execute and return ``(top_alignments, stats)``."""
        with self._cond:  # workers do not exist yet; lock kept for discipline
            for task in self.state.make_tasks():
                self._queue.insert(task)
        threads = [
            threading.Thread(target=self._worker, name=f"repro-worker-{i}")
            for i in range(self.n_threads)
        ]
        with obs_span(
            "best_first", driver="shared", k=self.k, threads=self.n_threads
        ):
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        if self._error is not None:
            raise self._error
        return list(self.state.found), self.state.stats

    # -- worker loop ---------------------------------------------------------

    def _dominates_inflight(self, score: float, r: int) -> bool:
        return all(
            s < score or (s == score and ri > r)
            for s, ri in self._inflight.values()
        )

    def _worker(self) -> None:
        try:
            self._worker_loop()
        except BaseException as exc:  # propagate to run()
            with self._cond:
                self._error = exc
                self._done = True
                self._cond.notify_all()

    def _worker_loop(self) -> None:
        state = self.state
        while True:
            with self._cond:
                task = None
                while task is None:
                    if self._done:
                        return
                    if not self._queue:
                        if not self._inflight:
                            self._finish()
                            return
                        self._cond.wait()
                        continue
                    candidate = self._queue.pop_highest()
                    if candidate.score <= self.min_score:
                        # Exhausted — unless an in-flight upper bound
                        # could still beat the threshold.
                        self._queue.insert(candidate)
                        if any(
                            s > self.min_score for s, _ in self._inflight.values()
                        ):
                            self._cond.wait()
                            continue
                        self._finish()
                        return
                    if candidate.is_current(state.n_found):
                        if not self._dominates_inflight(candidate.score, candidate.r):
                            self._queue.insert(candidate)
                            self._cond.wait()
                            continue
                        state.accept_task(candidate)
                        self._queue.insert(candidate)
                        if state.n_found >= self.k:
                            self._finish()
                            return
                        self._cond.notify_all()
                        continue
                    task = candidate
                    start_version = state.n_found
                    prev_score, prev_version = task.score, task.aligned_with
                    self._inflight[task.r] = (task.score, task.r)
                    problem = state.problem_for(task.r)

            # Engine work happens outside the lock.
            t0 = time.perf_counter()
            row = state.engine.last_row(problem)
            elapsed = time.perf_counter() - t0

            with self._cond:
                del self._inflight[task.r]
                state.stats.alignments += 1
                state.stats.cells += problem.cells
                state.stats.engine_seconds += elapsed
                if task.r not in state.bottom_rows:
                    state.bottom_rows.put(task.r, row)
                    score = float(row.max())
                else:
                    state.stats.realignments += 1
                    state.stats.realignments_per_top[-1] += 1
                    score = state.bottom_rows.score_of(task.r, row)
                    if start_version != state.n_found:
                        # Sequential would not have run this alignment
                        # (the triangle moved on mid-flight).
                        self.speculative_alignments += 1
                task.score = score
                task.aligned_with = start_version
                if state.invariants is not None:
                    state.invariants.after_align(
                        task,
                        row,
                        prev_score=prev_score,
                        prev_version=prev_version,
                    )
                self._queue.insert(task)
                self._cond.notify_all()

    def _finish(self) -> None:  # repro-lint: holds-lock
        self._done = True
        self._cond.notify_all()


def find_top_alignments_threaded(
    sequence: Sequence,
    k: int,
    exchange: ExchangeMatrix,
    gaps: GapPenalties = GapPenalties(),
    *,
    n_threads: int = 2,
    engine: str = "vector",
    min_score: float = 0.0,
) -> tuple[list[TopAlignment], RunStats]:
    """Threaded drop-in for :func:`repro.core.find_top_alignments`."""
    state = TopAlignmentState(sequence, exchange, gaps, engine=engine)
    runner = ThreadedTopAlignmentRunner(
        state, k, n_threads=n_threads, min_score=min_score
    )
    return runner.run()
