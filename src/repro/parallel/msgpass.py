"""Message-passing substrate (MPI substitute).

The paper distributes work with MPI over Myrinet.  This module
provides the small MPI-like core the master/slave protocol needs —
ranked processes, tagged point-to-point ``send``/``recv`` with source
filtering — implemented over :mod:`multiprocessing` queues, so the
distributed driver runs for real on a single machine.

Design notes mirroring §4.3:

* every rank owns one inbox; message order between a fixed
  (sender, receiver) pair is FIFO — the property the master relies on
  so that override-triangle updates reach a slave *before* any task
  that assumes them;
* ``recv`` buffers non-matching messages, the usual MPI envelope
  matching semantics;
* there is no interrupt-on-message facility (the paper's complaint
  about MPI), which is exactly why the master rank does nothing but
  service the queue.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
from dataclasses import dataclass
from typing import Any, Callable

__all__ = ["ANY", "Message", "Communicator", "World"]

#: Wildcard for ``recv`` source/tag filters (MPI_ANY_SOURCE / MPI_ANY_TAG).
ANY = -1


@dataclass(frozen=True)
class Message:
    """A received message envelope."""

    source: int
    tag: int
    payload: Any


class Communicator:
    """One rank's endpoint: a private inbox plus everyone's send handles."""

    def __init__(self, rank: int, inboxes: list[mp.Queue]) -> None:
        self.rank = rank
        self.size = len(inboxes)
        self._inboxes = inboxes
        self._pending: list[Message] = []

    def send(self, payload: Any, dest: int, tag: int = 0) -> None:
        """Deliver ``payload`` to rank ``dest`` (non-blocking, buffered)."""
        if not 0 <= dest < self.size:
            raise ValueError(f"destination rank {dest} outside 0..{self.size - 1}")
        self._inboxes[dest].put((self.rank, tag, payload))

    def recv(
        self, source: int = ANY, tag: int = ANY, timeout: float | None = 120.0
    ) -> Message:
        """Blocking receive with envelope matching.

        Non-matching messages are buffered and delivered by later calls
        in arrival order.  ``timeout`` guards against protocol bugs —
        a silent distributed hang is worse than a loud failure.
        """
        for idx, msg in enumerate(self._pending):
            if self._matches(msg, source, tag):
                return self._pending.pop(idx)
        while True:
            try:
                src, msg_tag, payload = self._inboxes[self.rank].get(timeout=timeout)
            except queue_mod.Empty:
                raise TimeoutError(
                    f"rank {self.rank}: no message matching source={source} "
                    f"tag={tag} within {timeout}s"
                ) from None
            msg = Message(src, msg_tag, payload)
            if self._matches(msg, source, tag):
                return msg
            self._pending.append(msg)

    def bcast_from(self, payload: Any, tag: int = 0) -> None:
        """Send ``payload`` to every other rank (a flat broadcast)."""
        for dest in range(self.size):
            if dest != self.rank:
                self.send(payload, dest, tag)

    @staticmethod
    def _matches(msg: Message, source: int, tag: int) -> bool:
        return (source == ANY or msg.source == source) and (
            tag == ANY or msg.tag == tag
        )


class World:
    """A set of ranked processes: rank 0 in the caller, the rest spawned.

    Usage::

        world = World(n_ranks)
        world.start(entry, payload)      # runs entry(comm, payload) on ranks 1..n-1
        comm = world.comm                # rank 0's communicator
        ...                              # drive the protocol
        world.shutdown()                 # join children (entry must have returned)
    """

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("world size must be >= 1")
        self.size = size
        ctx = mp.get_context("fork")
        self._ctx = ctx
        self._inboxes = [ctx.Queue() for _ in range(size)]
        self._procs: list[mp.Process] = []
        self.comm = Communicator(0, self._inboxes)

    def start(
        self, entry: Callable[[Communicator, Any], None], payload: Any
    ) -> None:
        """Spawn ranks ``1..size-1`` running ``entry(comm, payload)``."""
        if self._procs:
            raise RuntimeError("world already started")
        for rank in range(1, self.size):
            proc = self._ctx.Process(
                target=_child_main,
                args=(rank, self._inboxes, entry, payload),
                name=f"repro-rank-{rank}",
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)

    def shutdown(self, timeout: float = 30.0) -> None:
        """Join all children; terminate stragglers after ``timeout``."""
        for proc in self._procs:
            proc.join(timeout=timeout)
            if proc.is_alive():  # pragma: no cover - protocol bug escape hatch
                proc.terminate()
                proc.join(timeout=5.0)
        self._procs.clear()

    def __enter__(self) -> "World":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def _child_main(
    rank: int,
    inboxes: list[mp.Queue],
    entry: Callable[[Communicator, Any], None],
    payload: Any,
) -> None:
    comm = Communicator(rank, inboxes)
    entry(comm, payload)
