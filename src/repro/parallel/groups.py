"""Static neighbour-group scheduling for the lane engine (§4.1).

Matrices are grouped in fixed, consecutive groups of ``G`` split
points: group 1 holds splits 1..G, group 2 holds G+1..2G, and so on —
"group 1 contains matrices 1–4, group 2 contains matrices 5–8".  The
task queue schedules *groups*; a group's score is the score of its
best member.  When a group reaches the head:

* if its best member was already aligned with the current override
  triangle, that member is accepted as the next top alignment;
* otherwise all members are realigned *in one lane batch*, including
  members whose score is already current — that recomputation is the
  speculation the paper measures at under 0.70 % extra alignments,
  "the odds are that they have to be computed anyway".

Results are identical to the sequential algorithm: group scores are
upper bounds exactly like task scores, and acceptance still only fires
for the globally dominant current task.
"""

from __future__ import annotations

from ..core.result import RunStats, TopAlignment
from ..core.tasks import Task, TaskQueue
from ..core.topalign import TopAlignmentState
from ..scoring.exchange import ExchangeMatrix
from ..scoring.gaps import GapPenalties
from ..sequences.sequence import Sequence

__all__ = ["TaskGroup", "GroupedTopAlignmentRunner", "find_top_alignments_grouped"]


class TaskGroup:
    """A fixed set of neighbouring split tasks scheduled as one unit."""

    __slots__ = ("tasks",)

    def __init__(self, tasks: list[Task]) -> None:
        if not tasks:
            raise ValueError("a task group cannot be empty")
        self.tasks = tasks

    @property
    def score(self) -> float:
        """Group score: the best member's score (the queue key)."""
        return max(task.score for task in self.tasks)

    @property
    def first_r(self) -> int:
        """Smallest member split point (deterministic tie-break key)."""
        return self.tasks[0].r

    def best_member(self) -> Task:
        """Highest-score member; ties resolve to the smallest ``r``."""
        return max(self.tasks, key=lambda t: (t.score, -t.r))

    def stale_members(self, n_found: int) -> list[Task]:
        """Members whose score predates the current override triangle."""
        return [t for t in self.tasks if not t.is_current(n_found)]


class GroupedTopAlignmentRunner:
    """Figure 5 at group granularity, driving a batched engine."""

    def __init__(
        self,
        state: TopAlignmentState,
        k: int,
        *,
        group_size: int = 4,
        min_score: float = 0.0,
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        if group_size < 1:
            raise ValueError("group_size must be >= 1")
        self.state = state
        self.k = k
        self.group_size = group_size
        self.min_score = min_score
        #: Alignments of members that were already current — pure
        #: speculation overhead (§5.1's < 0.70 % claim).
        self.wasted_alignments = 0

    def run(self) -> tuple[list[TopAlignment], RunStats]:
        """Execute and return ``(top_alignments, stats)``."""
        state = self.state
        tasks = state.make_tasks()
        groups = [
            TaskGroup(tasks[i : i + self.group_size])
            for i in range(0, len(tasks), self.group_size)
        ]
        queue = TaskQueue()
        # TaskQueue stores Task-like items: duck-type groups through a
        # lightweight wrapper Task whose r is the group's first split.
        wrappers = {}
        for group in groups:
            wrapper = Task(r=group.first_r, score=group.score)
            wrappers[wrapper.r] = group
            queue.insert(wrapper)

        while state.n_found < self.k and queue:
            wrapper = queue.pop_highest()
            group = wrappers[wrapper.r]
            if wrapper.score <= self.min_score:
                break
            best = group.best_member()
            if best.is_current(state.n_found) and best.score == wrapper.score:
                state.accept_task(best)
            else:
                stale = len(group.stale_members(state.n_found))
                self.wasted_alignments += len(group.tasks) - stale
                state.align_tasks_batch(group.tasks)
            wrapper.score = group.score
            queue.insert(wrapper)

        return list(state.found), state.stats


def find_top_alignments_grouped(
    sequence: Sequence,
    k: int,
    exchange: ExchangeMatrix,
    gaps: GapPenalties = GapPenalties(),
    *,
    group_size: int = 4,
    engine: str = "lanes",
    min_score: float = 0.0,
) -> tuple[list[TopAlignment], RunStats]:
    """Group-scheduled drop-in for :func:`repro.core.find_top_alignments`.

    ``group_size=4`` with the int16 lane engine mirrors the paper's SSE
    configuration, ``group_size=8`` its SSE2 configuration.
    """
    state = TopAlignmentState(sequence, exchange, gaps, engine=engine)
    runner = GroupedTopAlignmentRunner(
        state, k, group_size=group_size, min_score=min_score
    )
    return runner.run()
