"""Calibrate a :class:`~repro.simulate.machine.MachineModel` from this host.

The paper's Table 2 machine models are hard-coded from its published
timings; this module builds the equivalent model for *this* machine by
timing the actual engines, so the simulator can also be run in
"local units".  The tier mapping mirrors the paper's:

==============  =====================================================
``conventional``  pure-Python scalar engine (the non-SIMD baseline)
``vector``        numpy row-vectorised engine (one matrix at a time)
``sse``           4-lane int16 batch engine
``sse2``          8-lane int16 batch engine
==============  =====================================================
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..align.base import AlignmentProblem, get_engine
from ..align.lanes import LanesEngine
from ..scoring.blosum import blosum62
from ..scoring.gaps import GapPenalties
from ..sequences.workloads import pseudo_titin
from .machine import MachineModel

__all__ = ["CalibrationReport", "measure_rate", "calibrate_local"]


@dataclass(frozen=True)
class CalibrationReport:
    """Measured throughputs plus the derived machine model."""

    model: MachineModel
    seconds: dict[str, float]
    cells: dict[str, int]

    def improvement(self, tier: str, baseline: str = "conventional") -> float:
        """Measured speed improvement of ``tier`` over ``baseline``."""
        return self.model.improvement(tier, baseline)


def measure_rate(engine, problems: list[AlignmentProblem], *, repeats: int = 1) -> tuple[float, int]:
    """Time ``engine`` over ``problems``; returns (seconds, cells).

    Uses the batch interface so lane engines get their lockstep groups.
    """
    cells = sum(p.cells for p in problems) * repeats
    start = time.perf_counter()
    for _ in range(repeats):
        engine.last_rows_batch(problems)
    return time.perf_counter() - start, cells


def calibrate_local(
    *,
    size: int = 400,
    scalar_size: int = 120,
    repeats: int = 1,
    seed: int = 99,
) -> CalibrationReport:
    """Measure this host's engines and build a ``MachineModel``.

    ``size`` controls the square-ish matrices used for the numpy
    engines; the scalar engine gets a smaller ``scalar_size`` because it
    is orders of magnitude slower (which is the point).
    """
    gaps = GapPenalties(8, 1)
    exchange = blosum62()

    def problems_for(n: int, count: int) -> list[AlignmentProblem]:
        seq = pseudo_titin(2 * n + count, seed=seed)
        return [
            AlignmentProblem(seq.codes[: n + i], seq.codes[n + i :], exchange, gaps)
            for i in range(count)
        ]

    seconds: dict[str, float] = {}
    cells: dict[str, int] = {}
    rates: dict[str, float] = {}

    configs = [
        ("conventional", get_engine("scalar"), problems_for(scalar_size, 1)),
        ("vector", get_engine("vector"), problems_for(size, 1)),
        ("sse", LanesEngine(lanes=4, dtype="int16"), problems_for(size, 4)),
        ("sse2", LanesEngine(lanes=8, dtype="int16"), problems_for(size, 8)),
    ]
    for tier, engine, problems in configs:
        secs, n_cells = measure_rate(engine, problems, repeats=repeats)
        seconds[tier] = secs
        cells[tier] = n_cells
        rates[tier] = n_cells / secs if secs > 0 else float("inf")

    model = MachineModel(name="local", rates=rates, cpus_per_node=1)
    return CalibrationReport(model=model, seconds=seconds, cells=cells)
