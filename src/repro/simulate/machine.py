"""CPU cost models, calibrated from the paper's own measurements.

Table 2 pins down every rate we need:

* Pentium III, conventional: the largest titin split (17175 x 17175
  cells) takes 5.2 s  -> 5.67e7 cells/s;
* Pentium III, SSE: 4 such matrices in 3.0 s -> 3.93e8 cells/s
  (the paper's 6.9x improvement);
* Pentium 4, conventional: 2.7 s -> 1.09e8 cells/s;
* Pentium 4, SSE: 4 in 1.8 s -> 6.56e8 (6.0x);
* Pentium 4, SSE2: 8 in 2.2 s -> 1.07e9 cells/s ("more than a billion
  matrix entries per second", 9.8x).

§5.2 gives the SMP contention model: with the cache-aware kernels the
second CPU of a node adds 100 %; without cache awareness, memory-bus
contention limits it to +25 %.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineModel", "PENTIUM3", "PENTIUM4", "pentium3", "pentium4"]

_TITIN_HALF = 17175.0 * 17175.0  # cells of the largest titin split matrix


@dataclass(frozen=True)
class MachineModel:
    """Per-CPU throughput model of one cluster node.

    Parameters
    ----------
    name:
        Model label.
    rates:
        cells/second per instruction tier, e.g. ``{"conventional":
        5.67e7, "sse": 3.93e8}``.
    cpus_per_node:
        CPUs sharing one node's memory bus (DAS-2: 2).
    smp_efficiency:
        Per-CPU rate multiplier when *both* CPUs of a node are busy.
        1.0 for the cache-aware kernels (§5.2: "+100 %"), 0.625 for the
        non-cache-aware ones (2 x 0.625 = 1.25 -> "+25 %").
    traceback_overhead:
        Seconds per traced path cell on top of the matrix recompute
        (pointer chasing is slower than streaming).
    """

    name: str
    rates: dict[str, float]
    cpus_per_node: int = 2
    smp_efficiency: float = 1.0
    traceback_overhead: float = 1e-6

    def rate(self, tier: str, *, busy_cpus: int = 1) -> float:
        """Effective cells/second of one CPU at ``tier``.

        ``busy_cpus`` is how many CPUs of the node are concurrently
        active; beyond one, the SMP efficiency factor applies.
        """
        try:
            base = self.rates[tier]
        except KeyError:
            raise KeyError(
                f"machine {self.name!r} has no tier {tier!r}; "
                f"available: {sorted(self.rates)}"
            ) from None
        if busy_cpus <= 1:
            return base
        return base * self.smp_efficiency

    def align_seconds(self, cells: int, tier: str, *, busy_cpus: int = 1) -> float:
        """Time to score one matrix of ``cells`` entries."""
        return cells / self.rate(tier, busy_cpus=busy_cpus)

    def traceback_seconds(self, cells: int, path_length: int, tier: str) -> float:
        """Time to recompute a full matrix and walk its path back."""
        return self.align_seconds(cells, tier) + path_length * self.traceback_overhead

    def improvement(self, tier: str, baseline: str = "conventional") -> float:
        """Throughput ratio of ``tier`` over ``baseline`` (Table 2's numbers)."""
        return self.rates[tier] / self.rates[baseline]


def pentium3() -> MachineModel:
    """The DAS-2 node model: 1.0 GHz dual Pentium III."""
    return MachineModel(
        name="pentium3",
        rates={
            "conventional": _TITIN_HALF / 5.2,
            "sse": 4.0 * _TITIN_HALF / 3.0,
        },
        cpus_per_node=2,
        smp_efficiency=1.0,
    )


def pentium4() -> MachineModel:
    """The paper's SSE2 test machine: 2.53 GHz Pentium 4."""
    return MachineModel(
        name="pentium4",
        rates={
            "conventional": _TITIN_HALF / 2.7,
            "sse": 4.0 * _TITIN_HALF / 1.8,
            "sse2": 8.0 * _TITIN_HALF / 2.2,
        },
        cpus_per_node=1,
        smp_efficiency=1.0,
    )


#: Singleton-style defaults for convenience.
PENTIUM3 = pentium3()
PENTIUM4 = pentium4()
