"""Network model: a Myrinet-like switched interconnect (§4.3/§5.2).

DAS-2 connects its nodes through Myrinet — "a 2 Gb/s bidirectional,
switched network".  The model is deliberately simple: per-message
latency plus payload over per-link bandwidth, with per-slave byte
counters so benchmarks can check the paper's observation that "each
slave processor sends up to 64 KB/s, and neither the master processor
nor the Myrinet network forms a bottleneck".
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["NetworkModel"]


@dataclass
class NetworkModel:
    """Latency/bandwidth cost model with per-endpoint accounting.

    Parameters
    ----------
    latency:
        One-way message latency in seconds (Myrinet-era: ~10 us).
    bandwidth:
        Per-link bandwidth in bytes/second (2 Gb/s ~ 2.5e8 B/s).
    """

    latency: float = 10e-6
    bandwidth: float = 2.5e8
    bytes_by_endpoint: dict[int, int] = field(default_factory=dict)
    messages: int = 0

    def transfer_seconds(self, nbytes: int, *, endpoint: int | None = None) -> float:
        """Cost of one message of ``nbytes`` payload; records accounting."""
        if nbytes < 0:
            raise ValueError("message size cannot be negative")
        self.messages += 1
        if endpoint is not None:
            self.bytes_by_endpoint[endpoint] = (
                self.bytes_by_endpoint.get(endpoint, 0) + nbytes
            )
        return self.latency + nbytes / self.bandwidth

    def endpoint_rate(self, endpoint: int, elapsed: float) -> float:
        """Average bytes/second an endpoint sent over ``elapsed`` seconds."""
        if elapsed <= 0:
            return 0.0
        return self.bytes_by_endpoint.get(endpoint, 0) / elapsed

    def peak_endpoint_rate(self, elapsed: float) -> float:
        """Max average send rate over all endpoints (the 64 KB/s check)."""
        if not self.bytes_by_endpoint:
            return 0.0
        return max(
            self.endpoint_rate(ep, elapsed) for ep in self.bytes_by_endpoint
        )
