"""Discrete-event simulation of the paper's cluster runs (§4.3, §5.2).

A single development machine cannot exhibit 128-way scaling, so the
Figure 8 study is reproduced by *simulating* DAS-2 — but not with a
synthetic workload: the simulator executes the **real algorithm**.  An
:class:`AlignmentOracle` lazily computes, with the real engines, the
score every (split, override-triangle-version) combination the
simulated schedule requests, so task durations, realignment counts and
speculation behaviour are all genuine.  Only *time* is modelled: per-CPU
throughput from :mod:`repro.simulate.machine` (calibrated from Table 2)
and message costs from :mod:`repro.simulate.network`.

Because first passes always run under the empty triangle and
acceptances are deterministic, one oracle can be shared across
simulations at different processor counts and top-alignment targets —
they all discover the same acceptance sequence, which is also how the
paper's speedups are comparable across configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..align.base import AlignmentProblem, get_engine
from ..align.matrix import full_matrix
from ..align.traceback import traceback
from ..core.bottomrows import BottomRowStore
from ..core.result import TopAlignment
from ..core.tasks import Task, TaskQueue
from ..scoring.exchange import ExchangeMatrix
from ..scoring.gaps import GapPenalties
from ..sequences.sequence import Sequence
from .machine import PENTIUM3, MachineModel
from .network import NetworkModel

__all__ = [
    "VersionedTriangle",
    "AlignmentOracle",
    "ClusterConfig",
    "SimulationResult",
    "ClusterSimulator",
    "simulate_cluster",
]


class VersionedTriangle:
    """Override triangle whose row masks can be queried *at any version*.

    Cell ``(i, j)`` stores ``a + 1`` where ``a`` is the index of the
    acceptance that marked it (0 = unmarked); the mask at version ``v``
    is ``0 < stamp <= v``.  This is what lets the oracle recompute what
    a slave saw at assignment time.
    """

    def __init__(self, m: int) -> None:
        self.m = m
        self._stamp = np.zeros((m + 1, m + 1), dtype=np.int32)

    def mark(self, pairs: tuple[tuple[int, int], ...], acceptance_index: int) -> None:
        """Stamp the pairs of acceptance ``acceptance_index`` (0-based)."""
        for i, j in pairs:
            if not 1 <= i < j <= self.m:
                raise ValueError(f"pair ({i}, {j}) outside the triangle")
            if self._stamp[i, j] != 0:
                raise ValueError(f"pair ({i}, {j}) marked twice")
            self._stamp[i, j] = acceptance_index + 1

    def view(self, r: int, version: int) -> "_VersionView":
        """Engine-facing override view of split ``r`` at ``version``."""
        return _VersionView(self._stamp, r, version)


class _VersionView:
    __slots__ = ("_stamp", "_r", "_version")

    def __init__(self, stamp: np.ndarray, r: int, version: int) -> None:
        self._stamp = stamp
        self._r = r
        self._version = version

    def row_mask(self, y: int) -> np.ndarray | None:
        if self._version == 0:
            return None
        row = self._stamp[y, self._r + 1 :]
        mask = (row > 0) & (row <= self._version)
        return mask if mask.any() else None


class AlignmentOracle:
    """Memoised "what would the algorithm compute" backend.

    ``score(r, version)`` and ``accept(r, version)`` produce exactly
    what :class:`repro.core.topalign.TopAlignmentState` would, for any
    triangle version — computed lazily with a real engine and cached,
    so many simulated schedules can share one oracle.
    """

    def __init__(
        self,
        sequence: Sequence,
        exchange: ExchangeMatrix,
        gaps: GapPenalties = GapPenalties(),
        *,
        engine: str = "vector",
    ) -> None:
        self.codes = sequence.codes
        self.m = len(sequence)
        self.exchange = exchange
        self.gaps = gaps
        self.engine = get_engine(engine)
        self.triangle = VersionedTriangle(self.m)
        self.bottom_rows = BottomRowStore(self.m)
        self.acceptances: list[TopAlignment] = []
        self._scores: dict[tuple[int, int], float] = {}
        #: Matrix cells actually evaluated (distinct computations only).
        self.cells_computed = 0

    def problem(self, r: int, version: int) -> AlignmentProblem:
        """The alignment problem of split ``r`` at triangle ``version``."""
        return AlignmentProblem(
            self.codes[:r],
            self.codes[r:],
            self.exchange,
            self.gaps,
            self.triangle.view(r, version),
        )

    def score(self, r: int, version: int) -> float:
        """Bottom-row score of split ``r`` under triangle ``version``."""
        if version > len(self.acceptances):
            raise ValueError(
                f"version {version} not yet reached "
                f"({len(self.acceptances)} acceptances known)"
            )
        key = (r, version)
        if key in self._scores:
            return self._scores[key]
        row = self.engine.last_row(self.problem(r, version))
        self.cells_computed += r * (self.m - r)
        if r not in self.bottom_rows:
            if version != 0:
                raise AssertionError(
                    "first pass of a split must run under the empty triangle"
                )
            self.bottom_rows.put(r, row)
            score = float(row.max())
        elif version == 0:
            score = float(self.bottom_rows.get(r).max())
        else:
            score = self.bottom_rows.score_of(r, row)
        self._scores[key] = score
        return score

    def accept(self, r: int, version: int) -> TopAlignment:
        """The acceptance of split ``r`` as top alignment ``version``.

        Replays from cache when this acceptance was already discovered
        by an earlier simulation; otherwise performs the real traceback
        and extends the acceptance sequence.
        """
        if version < len(self.acceptances):
            cached = self.acceptances[version]
            if cached.r != r:
                raise AssertionError(
                    f"divergent schedules: acceptance {version} was split "
                    f"{cached.r}, now {r}"
                )
            return cached
        if version != len(self.acceptances):
            raise ValueError("acceptances must be discovered in order")
        problem = self.problem(r, version)
        matrix = full_matrix(problem)
        self.cells_computed += r * (self.m - r)
        bottom = np.asarray(matrix[-1], dtype=np.float64)
        valid = self.bottom_rows.valid_mask(r, bottom)
        candidates = np.where(valid, bottom, -np.inf)
        end_x = int(np.argmax(candidates))
        path = traceback(problem, matrix, problem.rows, end_x)
        pairs = tuple((step.y, r + step.x) for step in path.pairs)
        alignment = TopAlignment(
            index=version, r=r, score=float(candidates[end_x]), pairs=pairs
        )
        self.triangle.mark(pairs, version)
        self.acceptances.append(alignment)
        return alignment

    @property
    def distinct_alignments(self) -> int:
        """Number of distinct (split, version) scores computed so far."""
        return len(self._scores)


@dataclass(frozen=True)
class ClusterConfig:
    """One simulated deployment.

    ``processors`` counts CPUs.  With ``dedicated_master=True`` (the
    paper's MPI setup) one CPU only runs the queue/traceback and
    ``processors - 1`` CPUs align; messages cost network time.  With
    ``dedicated_master=False`` (allowed only for ``processors == 1``)
    the single CPU does everything and communication is free — the
    sequential baseline.
    """

    processors: int
    machine: MachineModel = PENTIUM3
    tier: str = "sse"
    traceback_tier: str = "conventional"
    dedicated_master: bool = True
    network: NetworkModel = field(default_factory=NetworkModel)
    min_score: float = 0.0

    def __post_init__(self) -> None:
        if self.processors < 1:
            raise ValueError("need at least one processor")
        if self.dedicated_master and self.processors < 2:
            raise ValueError("a dedicated master needs at least 2 processors")
        if not self.dedicated_master and self.processors != 1:
            raise ValueError("shared master only supported for 1 processor")


@dataclass
class SimulationResult:
    """Outcome of one simulated run."""

    config: ClusterConfig
    k: int
    #: Simulated seconds until the k-th top alignment was accepted.
    makespan: float
    #: Simulated time of each acceptance.
    acceptance_times: list[float]
    #: Alignment tasks executed (including speculative ones).
    alignments_executed: int
    #: Alignments the sequential algorithm would have executed.
    alignments_sequential: int
    top_alignments: list[TopAlignment] = field(default_factory=list)

    @property
    def speculation_overhead(self) -> float:
        """Fraction of extra alignments vs the sequential run (§5.2's 8.4 %)."""
        if self.alignments_sequential == 0:
            return 0.0
        return (
            self.alignments_executed - self.alignments_sequential
        ) / self.alignments_sequential


class ClusterSimulator:
    """Event-driven replay of the master/slave protocol in simulated time.

    Pass a :class:`~repro.simulate.trace.TraceRecorder` as ``trace`` to
    collect per-CPU busy spans for utilisation/Gantt analysis.
    """

    def __init__(
        self, oracle: AlignmentOracle, config: ClusterConfig, *, trace=None
    ) -> None:
        self.oracle = oracle
        self.config = config
        self.trace = trace

    # -- cost helpers ---------------------------------------------------------

    def _cells(self, r: int) -> int:
        return r * (self.oracle.m - r)

    def _node_of(self, worker: int) -> int:
        return worker // self.config.machine.cpus_per_node

    def _align_seconds(self, r: int, *, busy_cpus: int = 1) -> float:
        return self.config.machine.align_seconds(
            self._cells(r), self.config.tier, busy_cpus=busy_cpus
        )

    def _traceback_seconds(self, alignment: TopAlignment) -> float:
        return self.config.machine.traceback_seconds(
            self._cells(alignment.r), len(alignment.pairs), self.config.traceback_tier
        )

    def _roundtrip_seconds(self, r: int, worker: int) -> float:
        if not self.config.dedicated_master:
            return 0.0
        net = self.config.network
        # Task request down (tiny), bottom row back up (2-byte scores,
        # as in the paper's short-integer implementation).
        down = net.transfer_seconds(32, endpoint=0)
        up = net.transfer_seconds(2 * (self.oracle.m - r), endpoint=worker + 1)
        return down + up

    # -- main loop ----------------------------------------------------------

    def run(self, k: int) -> SimulationResult:
        """Simulate until ``k`` top alignments are accepted (or exhausted)."""
        if k < 1:
            raise ValueError("k must be >= 1")
        oracle = self.oracle
        cfg = self.config
        n_workers = cfg.processors - 1 if cfg.dedicated_master else 1

        import heapq

        queue = TaskQueue()
        for r in range(1, oracle.m):
            queue.insert(Task(r))
        worker_free = [0.0] * n_workers
        idle = list(range(n_workers - 1, -1, -1))  # pop() yields lowest id
        inflight: dict[int, tuple[Task, int, int]] = {}  # r -> (task, version, worker)
        events: list[tuple[float, int, int]] = []  # (completion_time, seq, r)
        seq_counter = 0
        clock = 0.0
        master_free = 0.0
        version = 0
        acceptance_times: list[float] = []
        executed = 0

        def dominates(task: Task) -> bool:
            return all(
                t.score < task.score or (t.score == task.score and t.r > task.r)
                for t, _, _ in inflight.values()
            )

        def pop_stale() -> Task | None:
            """Highest-score stale task above the threshold, if any."""
            skipped: list[Task] = []
            picked: Task | None = None
            while queue:
                cand = queue.pop_highest()
                if cand.score <= cfg.min_score:
                    skipped.append(cand)
                    break
                if cand.aligned_with == version:
                    skipped.append(cand)
                    continue
                picked = cand
                break
            for t in skipped:
                queue.insert(t)
            return picked

        def progress() -> None:
            """Accept and assign everything possible at the current clock."""
            nonlocal version, master_free, executed, seq_counter
            while len(acceptance_times) < k:
                # Acceptance: head current, above threshold, dominant.
                if queue:
                    head = queue.pop_highest()
                    if (
                        head.aligned_with == version
                        and head.score > cfg.min_score
                        and dominates(head)
                    ):
                        start = max(clock, master_free)
                        alignment = oracle.accept(head.r, version)
                        master_free = start + self._traceback_seconds(alignment)
                        if self.trace is not None:
                            self.trace.record(
                                -1, start, master_free, "traceback", head.r
                            )
                        acceptance_times.append(master_free)
                        version += 1
                        queue.insert(head)
                        continue
                    queue.insert(head)
                # Assignment of stale work to idle workers.
                if not idle:
                    return
                task = pop_stale()
                if task is None:
                    return
                worker = idle.pop()
                start = max(clock, master_free, worker_free[worker])
                # SMP contention (§5.2): CPUs sharing a node run at the
                # machine's SMP efficiency while siblings are busy.
                # Approximated with the node occupancy at assignment.
                node = self._node_of(worker)
                busy = 1 + sum(
                    1
                    for _, _, w in inflight.values()
                    if self._node_of(w) == node
                )
                duration = self._align_seconds(
                    task.r, busy_cpus=busy
                ) + self._roundtrip_seconds(task.r, worker)
                done = start + duration
                worker_free[worker] = done
                if self.trace is not None:
                    self.trace.record(worker, start, done, "align", task.r)
                inflight[task.r] = (task, version, worker)
                heapq.heappush(events, (done, seq_counter, task.r))
                seq_counter += 1
                executed += 1

        progress()
        while events and len(acceptance_times) < k:
            done, _, r = heapq.heappop(events)
            clock = done
            task, assigned_version, worker = inflight.pop(r)
            if not cfg.dedicated_master:
                # Single-CPU mode: the worker also did any tracebacks,
                # which master_free already accounts for.
                clock = max(clock, master_free)
            task.score = oracle.score(r, assigned_version)
            task.aligned_with = assigned_version
            queue.insert(task)
            idle.append(worker)
            idle.sort(reverse=True)
            progress()

        makespan = acceptance_times[-1] if acceptance_times else clock
        return SimulationResult(
            config=cfg,
            k=k,
            makespan=makespan,
            acceptance_times=acceptance_times,
            alignments_executed=executed,
            alignments_sequential=0,  # filled in by simulate_cluster
            top_alignments=list(oracle.acceptances[: len(acceptance_times)]),
        )


def simulate_cluster(
    sequence: Sequence,
    k: int,
    exchange: ExchangeMatrix,
    gaps: GapPenalties = GapPenalties(),
    *,
    config: ClusterConfig,
    oracle: AlignmentOracle | None = None,
    engine: str = "vector",
) -> SimulationResult:
    """Simulate one cluster run; see :class:`ClusterSimulator`.

    A pre-built (shareable) ``oracle`` makes parameter sweeps cheap.
    The result's ``alignments_sequential`` is filled in by replaying a
    one-processor schedule, so ``speculation_overhead`` is meaningful.
    """
    if oracle is None:
        oracle = AlignmentOracle(sequence, exchange, gaps, engine=engine)
    result = ClusterSimulator(oracle, config).run(k)
    seq_config = ClusterConfig(
        processors=1,
        machine=config.machine,
        tier=config.tier,
        traceback_tier=config.traceback_tier,
        dedicated_master=False,
    )
    seq_result = ClusterSimulator(oracle, seq_config).run(k)
    result.alignments_sequential = seq_result.alignments_executed
    return result
