"""Performance-model substrate: machines, network, cluster simulation."""

from .calibrate import CalibrationReport, calibrate_local, measure_rate
from .cluster import (
    AlignmentOracle,
    ClusterConfig,
    ClusterSimulator,
    SimulationResult,
    VersionedTriangle,
    simulate_cluster,
)
from .events import Event, EventLoop
from .machine import PENTIUM3, PENTIUM4, MachineModel, pentium3, pentium4
from .firstpass import FirstPassOracle, simulate_first_pass
from .network import NetworkModel
from .sweep import SweepRecord, records_to_csv, sweep_cluster
from .trace import Span, TraceRecorder, TraceReport

__all__ = [
    "Event",
    "EventLoop",
    "MachineModel",
    "PENTIUM3",
    "PENTIUM4",
    "pentium3",
    "pentium4",
    "NetworkModel",
    "VersionedTriangle",
    "AlignmentOracle",
    "ClusterConfig",
    "ClusterSimulator",
    "SimulationResult",
    "simulate_cluster",
    "calibrate_local",
    "measure_rate",
    "CalibrationReport",
    "FirstPassOracle",
    "simulate_first_pass",
    "TraceRecorder",
    "TraceReport",
    "Span",
    "SweepRecord",
    "sweep_cluster",
    "records_to_csv",
]
