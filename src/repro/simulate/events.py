"""A minimal discrete-event engine.

The cluster simulator needs nothing fancy: a monotone clock, a heap of
timestamped events, deterministic ordering for simultaneous events.
Kept generic (and separately tested) so the network and machine models
can be exercised in isolation.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Event", "EventLoop"]


@dataclass(order=True)
class Event:
    """One scheduled occurrence.

    Ordering is ``(time, priority, seq)``: ties at the same timestamp
    resolve by explicit priority, then insertion order — simulations
    stay deterministic without relying on payload comparability.
    """

    time: float
    priority: int
    seq: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventLoop:
    """Heap-backed event queue with a monotone clock."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self.now = 0.0

    def schedule(
        self, time: float, kind: str, payload: Any = None, *, priority: int = 0
    ) -> Event:
        """Add an event at absolute ``time`` (must not precede the clock)."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule into the past: {time} < now {self.now}"
            )
        event = Event(time, priority, next(self._counter), kind, payload)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove the earliest event and advance the clock to it."""
        if not self._heap:
            raise IndexError("event loop is empty")
        event = heapq.heappop(self._heap)
        self.now = event.time
        return event

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
