"""Parameter sweeps over the cluster simulator.

The Figure 8 study is a grid: processor counts x top-alignment targets
(x machines, x tiers).  :func:`sweep_cluster` runs such a grid against
one shared oracle (so each distinct alignment is computed once across
the whole sweep), returns flat records, and exports CSV — the raw
material for EXPERIMENTS.md and for anyone re-plotting the figure.
"""

from __future__ import annotations

import csv
import io
import os
from dataclasses import asdict, dataclass
from typing import Sequence as Seq

from ..scoring.exchange import ExchangeMatrix
from ..scoring.gaps import GapPenalties
from ..sequences.sequence import Sequence
from .cluster import AlignmentOracle, ClusterConfig, ClusterSimulator
from .machine import PENTIUM3, MachineModel

__all__ = ["SweepRecord", "sweep_cluster", "records_to_csv"]


@dataclass(frozen=True)
class SweepRecord:
    """One grid point of a cluster sweep."""

    processors: int
    k: int
    tier: str
    machine: str
    makespan: float
    speedup_vs_conventional: float
    speedup_vs_tier: float
    efficiency: float
    alignments_executed: int
    speculation_overhead: float


def sweep_cluster(
    sequence: Sequence,
    exchange: ExchangeMatrix,
    gaps: GapPenalties = GapPenalties(),
    *,
    processors: Seq[int] = (2, 4, 8, 16, 32, 64, 128),
    ks: Seq[int] = (1, 2, 5, 10, 25),
    machine: MachineModel = PENTIUM3,
    tier: str = "sse",
    engine: str = "vector",
    oracle: AlignmentOracle | None = None,
) -> list[SweepRecord]:
    """Run the (processors x ks) grid and return one record per point."""
    if oracle is None:
        oracle = AlignmentOracle(sequence, exchange, gaps, engine=engine)
    records: list[SweepRecord] = []
    for k in sorted(set(ks)):
        conv = ClusterSimulator(
            oracle,
            ClusterConfig(
                processors=1,
                machine=machine,
                tier="conventional",
                dedicated_master=False,
            ),
        ).run(k)
        tier_base = ClusterSimulator(
            oracle,
            ClusterConfig(
                processors=1, machine=machine, tier=tier, dedicated_master=False
            ),
        ).run(k)
        for p in processors:
            result = ClusterSimulator(
                oracle,
                ClusterConfig(processors=p, machine=machine, tier=tier),
            ).run(k)
            vs_tier = tier_base.makespan / result.makespan
            records.append(
                SweepRecord(
                    processors=p,
                    k=k,
                    tier=tier,
                    machine=machine.name,
                    makespan=result.makespan,
                    speedup_vs_conventional=conv.makespan / result.makespan,
                    speedup_vs_tier=vs_tier,
                    efficiency=vs_tier / max(p - 1, 1),
                    alignments_executed=result.alignments_executed,
                    speculation_overhead=(
                        (result.alignments_executed - tier_base.alignments_executed)
                        / tier_base.alignments_executed
                        if tier_base.alignments_executed
                        else 0.0
                    ),
                )
            )
    return records


def records_to_csv(
    records: list[SweepRecord], target: str | os.PathLike | None = None
) -> str:
    """Serialise records to CSV; optionally also write to ``target``."""
    buffer = io.StringIO()
    if records:
        writer = csv.DictWriter(
            buffer, fieldnames=list(asdict(records[0])), lineterminator="\n"
        )
        writer.writeheader()
        for record in records:
            writer.writerow(asdict(record))
    text = buffer.getvalue()
    if target is not None:
        with open(os.fspath(target), "w", encoding="ascii") as handle:
            handle.write(text)
    return text
