"""Full-titin-scale simulation of the *first* top alignment (Figure 8, k=1).

The oracle-backed simulator executes real alignments, which caps the
sequence length a CPython host can study.  For k = 1, however, the
schedule does not depend on score *dynamics* at all: every split is
aligned exactly once under the empty triangle, the best one is traced
back, done.  Task costs (``r * (m - r)`` cells), the sacrificed master,
message costs and the sequential traceback fully determine the
makespan.

:class:`FirstPassOracle` supplies synthetic scores with a configurable
winner so that :class:`~repro.simulate.cluster.ClusterSimulator` can
run the k = 1 study at the paper's actual scale (m = 34350) — this is
the configuration behind the paper's "831-fold improvement at 128
processors" headline and its 96.1 % efficiency figure.
"""

from __future__ import annotations

from ..core.result import TopAlignment
from .cluster import ClusterConfig, ClusterSimulator, SimulationResult

__all__ = ["FirstPassOracle", "simulate_first_pass"]


class FirstPassOracle:
    """Synthetic oracle valid for exactly one acceptance.

    Scores form a tent peaking at ``winner_r`` (defaults to the middle
    split — for titin that is the paper's "largest matrix" case), and
    the accepted path has ``min(r, m - r)`` matched pairs, the longest
    an alignment of that split can have.
    """

    def __init__(self, m: int, winner_r: int | None = None) -> None:
        if m < 2:
            raise ValueError("sequence length must be at least 2")
        self.m = m
        self.winner_r = winner_r if winner_r is not None else m // 2
        if not 1 <= self.winner_r < m:
            raise ValueError(f"winner_r={self.winner_r} outside 1..{m - 1}")
        self.acceptances: list[TopAlignment] = []

    def score(self, r: int, version: int) -> float:
        if version != 0:
            raise ValueError(
                "FirstPassOracle only models the empty-triangle first pass"
            )
        return float(self.m - abs(r - self.winner_r))

    def accept(self, r: int, version: int) -> TopAlignment:
        if version != 0 or self.acceptances:
            raise ValueError("FirstPassOracle supports exactly one acceptance")
        if r != self.winner_r:
            raise AssertionError(
                f"schedule accepted split {r}, expected winner {self.winner_r}"
            )
        length = min(r, self.m - r)
        pairs = tuple((i, r + i) for i in range(1, length + 1))
        alignment = TopAlignment(
            index=0, r=r, score=self.score(r, 0), pairs=pairs
        )
        self.acceptances.append(alignment)
        return alignment


def simulate_first_pass(
    m: int, config: ClusterConfig, *, winner_r: int | None = None
) -> SimulationResult:
    """Makespan of finding the first top alignment of an m-residue input."""
    oracle = FirstPassOracle(m, winner_r)
    return ClusterSimulator(oracle, config).run(1)
