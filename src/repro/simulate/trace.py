"""Simulation tracing: per-CPU timelines, utilisation, phase analysis.

The paper explains its Figure 8 efficiencies qualitatively ("3.9 %
performance loss is caused by sacrificing one master processor and by a
small load imbalance at the end of the iteration, since the traceback
... is done sequentially").  Tracing makes those components measurable:
a :class:`TraceRecorder` attached to a
:class:`~repro.simulate.cluster.ClusterSimulator` collects every task
execution and acceptance as timestamped spans, from which utilisation,
idle fractions, the traceback share, and a text Gantt chart are derived.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Span", "TraceRecorder", "TraceReport"]


@dataclass(frozen=True)
class Span:
    """One busy interval of one processor."""

    cpu: int  # worker id, or -1 for the master
    start: float
    end: float
    kind: str  # "align" or "traceback"
    r: int  # split point

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class TraceRecorder:
    """Collects spans; attach via ``ClusterSimulator(..., trace=recorder)``."""

    spans: list[Span] = field(default_factory=list)

    def record(self, cpu: int, start: float, end: float, kind: str, r: int) -> None:
        if end < start:
            raise ValueError("span ends before it starts")
        self.spans.append(Span(cpu, start, end, kind, r))

    def report(self, makespan: float, n_workers: int) -> "TraceReport":
        """Aggregate the spans over ``makespan`` simulated seconds."""
        if makespan <= 0:
            raise ValueError("makespan must be positive")
        busy = {cpu: 0.0 for cpu in range(n_workers)}
        traceback_time = 0.0
        align_time = 0.0
        for span in self.spans:
            if span.kind == "traceback":
                traceback_time += span.duration
            else:
                align_time += span.duration
                if span.cpu in busy:
                    busy[span.cpu] += span.duration
        utilisation = {
            cpu: min(seconds / makespan, 1.0) for cpu, seconds in busy.items()
        }
        return TraceReport(
            makespan=makespan,
            n_workers=n_workers,
            align_time=align_time,
            traceback_time=traceback_time,
            utilisation=utilisation,
            spans=list(self.spans),
        )


@dataclass
class TraceReport:
    """Digested trace: the quantities behind the paper's efficiency story."""

    makespan: float
    n_workers: int
    align_time: float
    traceback_time: float
    utilisation: dict[int, float]
    spans: list[Span]

    @property
    def mean_utilisation(self) -> float:
        """Average busy fraction across workers."""
        if not self.utilisation:
            return 0.0
        return sum(self.utilisation.values()) / len(self.utilisation)

    @property
    def idle_fraction(self) -> float:
        """1 - mean utilisation: the paper's "idle slave processors"."""
        return 1.0 - self.mean_utilisation

    @property
    def traceback_fraction(self) -> float:
        """Share of the makespan spent in sequential tracebacks."""
        return min(self.traceback_time / self.makespan, 1.0)

    def gantt(self, *, width: int = 72, max_cpus: int = 16) -> str:
        """A text Gantt chart (one row per CPU, '#' = busy, '.' = idle)."""
        lines = []
        cpus = sorted({s.cpu for s in self.spans})[:max_cpus]
        scale = width / self.makespan
        for cpu in cpus:
            row = ["."] * width
            for span in self.spans:
                if span.cpu != cpu:
                    continue
                lo = int(span.start * scale)
                hi = max(int(span.end * scale), lo + 1)
                mark = "T" if span.kind == "traceback" else "#"
                for i in range(lo, min(hi, width)):
                    row[i] = mark
            label = "master" if cpu == -1 else f"cpu{cpu:3d}"
            lines.append(f"{label:>7} |{''.join(row)}|")
        return "\n".join(lines)
