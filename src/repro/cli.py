"""Command-line interface: ``python -m repro`` / the ``repro`` script.

Subcommands
-----------
``find``       run repeat detection on a FASTA file (or stdin)
``scan``       rank the records of a FASTA file by repeat content
``annotate``   render scan results as GFF3 + profile JSON + HTML report
``align``      align two sequences and render the superposition (§2.1 style)
``search``     rank FASTA records by best local alignment to a query
``generate``   emit synthetic workloads (pseudo-titin, implanted repeats)
``bench``      regenerate one of the paper's evaluation artifacts
``simulate``   run the DAS-2 cluster simulator at a given processor count
``report``     full analysis report (alignments, families, MSA, dot plot)
``engines``    list available alignment engines
``lint``       run the project's static-analysis rules (see ANALYSIS.md)
``serve``      run the job-queue service (HTTP JSON API + worker pool)
``submit``     submit FASTA records to a running service
``status``     show a service job's record (and optionally its events)
``fetch``      fetch a cached result by digest or job id
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence as Seq

from . import __version__
from .core.api import find_repeats
from .scoring.blosum import blosum50, blosum62
from .scoring.exchange import match_mismatch
from .scoring.gaps import GapPenalties
from .scoring.pam import pam120, pam250
from .sequences.alphabet import alphabet_for
from .sequences.fasta import read_fasta, write_fasta
from .sequences.workloads import RepeatSpec, implant_repeats, pseudo_titin

__all__ = ["main", "build_parser"]

_MATRICES = {
    "blosum62": blosum62,
    "blosum50": blosum50,
    "pam250": pam250,
    "pam120": pam120,
}


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Internal-repeat detection via parallel top alignments "
        "(Romein, Heringa & Bal, SC 2003 reproduction).",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    find = sub.add_parser("find", help="detect repeats in FASTA sequences")
    find.add_argument("fasta", nargs="?", default="-", help="FASTA path or '-' for stdin")
    find.add_argument("-k", "--top-alignments", type=int, default=20)
    find.add_argument("--alphabet", default="protein", choices=["protein", "dna", "rna"])
    find.add_argument(
        "--matrix",
        default=None,
        choices=sorted(_MATRICES) + ["simple"],
        help="exchange matrix (default: blosum62 for protein, simple +2/-1 otherwise)",
    )
    find.add_argument("--gap-open", type=float, default=8.0)
    find.add_argument("--gap-extend", type=float, default=1.0)
    find.add_argument("--engine", default="vector")
    find.add_argument(
        "--group",
        type=int,
        default=1,
        help="speculative batch width G (1 = sequential best-first)",
    )
    find.add_argument(
        "--algorithm", default="new", choices=["new", "old"],
        help="'old' runs the quartic 1993-style baseline (same results)",
    )
    find.add_argument("--min-score", type=float, default=0.0)
    find.add_argument(
        "--prune",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="exact in-fill pruning bounds (bit-identical results; "
        "--no-prune computes every matrix in full)",
    )
    find.add_argument(
        "--index",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="seed the best-first heap from the k-mer index tier "
        "(bit-identical results, fewer alignments)",
    )
    find.add_argument(
        "--index-k", type=int, default=0,
        help="k-mer width (0 = per-alphabet default)",
    )
    find.add_argument("--show-alignments", action="store_true")
    find.add_argument(
        "--msa",
        action="store_true",
        help="render a multiple alignment of each repeat family's copies",
    )
    find.add_argument("--max-gap", type=int, default=0)

    gen = sub.add_parser("generate", help="emit a synthetic workload as FASTA")
    gen.add_argument("kind", choices=["titin", "implanted"])
    gen.add_argument("--length", type=int, default=1000)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--unit-length", type=int, default=40)
    gen.add_argument("--copies", type=int, default=4)
    gen.add_argument("--divergence", type=float, default=0.3)
    gen.add_argument("--output", default="-")

    bench = sub.add_parser("bench", help="regenerate a paper artifact")
    bench.add_argument(
        "artifact",
        choices=["table1", "table2", "figure8", "realign", "batched", "index", "pruning"],
    )
    bench.add_argument("--length", type=int, default=None)
    bench.add_argument("-k", "--top-alignments", type=int, default=None)
    bench.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the artifact's raw numbers as JSON "
        "(batched/index/pruning only)",
    )
    bench.add_argument(
        "--emit-metrics",
        default=None,
        metavar="PATH",
        help="enable repro.obs collection and dump the registry snapshot "
        "+ trace trees as JSON after the run",
    )

    scan = sub.add_parser("scan", help="rank FASTA records by repeat content")
    scan.add_argument("fasta", nargs="?", default="-")
    scan.add_argument("-k", "--top-alignments", type=int, default=10)
    scan.add_argument("--alphabet", default="protein", choices=["protein", "dna", "rna"])
    scan.add_argument("--mask", action="store_true", help="mask low-complexity tracts")
    scan.add_argument("--min-length", type=int, default=10)
    scan.add_argument("--engine", default="vector")
    scan.add_argument(
        "--group",
        type=int,
        default=1,
        help="speculative batch width G (1 = sequential best-first)",
    )
    scan.add_argument(
        "--prune",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="exact in-fill pruning bounds (bit-identical results; "
        "--no-prune computes every matrix in full)",
    )
    scan.add_argument("--limit", type=int, default=0, help="print only the top N")
    scan.add_argument(
        "--index",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="route records through the k-mer index tier "
        "(skip / defer / full-scan classes; accepted tops unchanged)",
    )
    scan.add_argument(
        "--index-k", type=int, default=0,
        help="k-mer width (0 = per-alphabet default)",
    )
    scan.add_argument(
        "--index-threshold",
        type=float,
        default=0.0,
        help="significance threshold: alignments below it are discarded and "
        "records the index proves below it are skipped entirely",
    )
    scan.add_argument(
        "--index-cache",
        default=None,
        metavar="DIR",
        help="content-addressed index store (warm reruns rebuild nothing)",
    )
    scan.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the machine-readable scan document (copy "
        "coordinates, scores, routing, residues) — the input that "
        "'repro annotate' consumes offline",
    )

    annotate = sub.add_parser(
        "annotate",
        help="render scan results as GFF3 + profile JSON + HTML report",
    )
    annotate.add_argument(
        "source",
        help="a 'repro scan --json' document, or a FASTA file to scan "
        "first ('-' = FASTA on stdin)",
    )
    annotate.add_argument(
        "--prefix",
        default="repro-annot",
        help="output prefix: writes <prefix>.gff3, <prefix>.profile.json, "
        "<prefix>.html and <prefix>.wig",
    )
    annotate.add_argument(
        "--window",
        type=int,
        default=0,
        help="profile window width in residues (0 = auto, ~120 windows)",
    )
    annotate.add_argument(
        "--title", default="repro repeat annotation", help="HTML report title"
    )
    annotate.add_argument(
        "--no-msa",
        action="store_true",
        help="skip per-family multiple alignments in the HTML report",
    )
    annotate.add_argument("-k", "--top-alignments", type=int, default=10)
    annotate.add_argument(
        "--alphabet", default="protein", choices=["protein", "dna", "rna"]
    )
    annotate.add_argument(
        "--mask", action="store_true", help="mask low-complexity tracts"
    )
    annotate.add_argument("--min-length", type=int, default=10)
    annotate.add_argument("--engine", default="vector")

    align = sub.add_parser("align", help="align two sequences and render them")
    align.add_argument("seq1", help="first sequence (text, vertical)")
    align.add_argument("seq2", help="second sequence (text, horizontal)")
    align.add_argument("--alphabet", default="dna", choices=["protein", "dna", "rna"])
    align.add_argument("--matrix", default=None, choices=sorted(_MATRICES) + ["simple"])
    align.add_argument("--gap-open", type=float, default=2.0)
    align.add_argument("--gap-extend", type=float, default=1.0)

    search = sub.add_parser(
        "search", help="rank FASTA records by best local alignment to a query"
    )
    search.add_argument("query", help="query sequence text")
    search.add_argument("fasta", nargs="?", default="-")
    search.add_argument("--alphabet", default="protein", choices=["protein", "dna", "rna"])
    search.add_argument("--matrix", default=None, choices=sorted(_MATRICES) + ["simple"])
    search.add_argument("--gap-open", type=float, default=8.0)
    search.add_argument("--gap-extend", type=float, default=1.0)
    search.add_argument("--lanes", type=int, default=8)
    search.add_argument("--top", type=int, default=10)

    simulate = sub.add_parser(
        "simulate", help="simulate a DAS-2 cluster run (Figure 8 style)"
    )
    simulate.add_argument("--length", type=int, default=300)
    simulate.add_argument("-k", "--top-alignments", type=int, default=5)
    simulate.add_argument("-P", "--processors", type=int, default=16)
    simulate.add_argument("--machine", default="pentium3", choices=["pentium3", "pentium4"])
    simulate.add_argument("--tier", default="sse")
    simulate.add_argument("--gantt", action="store_true", help="print a CPU timeline")

    report = sub.add_parser(
        "report", help="full analysis report for FASTA sequences"
    )
    report.add_argument("fasta", nargs="?", default="-")
    report.add_argument("-k", "--top-alignments", type=int, default=15)
    report.add_argument("--alphabet", default="protein", choices=["protein", "dna", "rna"])
    report.add_argument("--gap-open", type=float, default=8.0)
    report.add_argument("--gap-extend", type=float, default=1.0)
    report.add_argument("--max-gap", type=int, default=1)
    report.add_argument(
        "--shuffles", type=int, default=0,
        help="shuffle-null significance (0 = skip)",
    )
    report.add_argument("--no-dotplot", action="store_true")

    sub.add_parser("engines", help="list registered alignment engines")

    lint = sub.add_parser(
        "lint",
        help="project-specific static analysis (invariant-guarding rules)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    lint.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text"
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    lint.add_argument(
        "--changed",
        action="store_true",
        help="lint only git-changed files plus their reverse import deps",
    )
    lint.add_argument(
        "--stats",
        action="store_true",
        help="print timing/size counters as JSON instead of findings",
    )
    lint.add_argument(
        "--graph",
        nargs=2,
        metavar=("QUERY", "SYMBOL"),
        help="query the program graph: callers|callees|locks <symbol>",
    )
    lint.add_argument(
        "--no-cache", action="store_true", help="disable the facts cache"
    )
    lint.add_argument(
        "--cache-dir", default=None, help="facts cache directory"
    )

    serve = sub.add_parser(
        "serve", help="run the repeat-finder job service (HTTP + worker pool)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765, help="0 = ephemeral")
    serve.add_argument("--workers", type=int, default=2, help="0 = no in-process pool")
    serve.add_argument("--queue-capacity", type=int, default=64, help="0 = unbounded")
    serve.add_argument("--data-dir", default="repro-service-data")
    serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        help="top alignments accepted between checkpoints",
    )
    serve.add_argument(
        "--cluster-port",
        type=int,
        default=None,
        help="also run a cluster coordinator on this port (0 = ephemeral); "
        "jobs route cluster-wide while worker nodes are alive",
    )
    serve.add_argument(
        "--tenants",
        default=None,
        metavar="FILE",
        help="tenant config JSON (API keys, weights, quotas); omitted = "
        "open mode, every request is the unlimited public tenant. "
        "SIGHUP hot-reloads the file",
    )
    serve.add_argument(
        "--dispatch-window",
        type=int,
        default=0,
        help="jobs the gateway keeps in the spool at once "
        "(0 = auto: max(4, 2 x workers))",
    )

    cluster = sub.add_parser(
        "cluster", help="multi-node sharded execution (coordinator / node / scan)"
    )
    cluster_sub = cluster.add_subparsers(dest="cluster_command", required=True)

    coord = cluster_sub.add_parser(
        "coordinator", help="run a standalone cluster coordinator"
    )
    coord.add_argument("--host", default="127.0.0.1")
    coord.add_argument("--port", type=int, default=9410, help="0 = ephemeral")
    coord.add_argument(
        "--scan-shard-size", type=int, default=4, help="records per scan shard"
    )
    coord.add_argument(
        "--lease-seconds", type=float, default=60.0, help="shard lease deadline"
    )
    coord.add_argument(
        "--node-timeout", type=float, default=6.0, help="heartbeat staleness bound"
    )

    node = cluster_sub.add_parser("node", help="run a worker node agent")
    node.add_argument(
        "--join", required=True, metavar="HOST:PORT", help="coordinator address"
    )
    node.add_argument("--node-id", default="", help="default: hostname-pid")
    node.add_argument(
        "--max-shards", type=int, default=0, help="exit after N shards (0 = unbounded)"
    )

    cscan = cluster_sub.add_parser(
        "scan", help="rank FASTA records by repeat content, sharded over a cluster"
    )
    cscan.add_argument("fasta", nargs="?", default="-")
    cscan.add_argument(
        "--join", required=True, metavar="HOST:PORT", help="coordinator address"
    )
    cscan.add_argument("-k", "--top-alignments", type=int, default=10)
    cscan.add_argument(
        "--alphabet", default="protein", choices=["protein", "dna", "rna"]
    )
    cscan.add_argument("--mask", action="store_true", help="mask low-complexity tracts")
    cscan.add_argument("--min-length", type=int, default=10)
    cscan.add_argument("--engine", default="vector")
    cscan.add_argument(
        "--index",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="enable the k-mer index tier on every shard (and order shards "
        "most-promising-first)",
    )
    cscan.add_argument(
        "--index-k", type=int, default=0,
        help="k-mer width (0 = per-alphabet default)",
    )
    cscan.add_argument("--timeout", type=float, default=600.0)

    submit = sub.add_parser("submit", help="submit FASTA records to a service")
    submit.add_argument("fasta", nargs="?", default="-", help="FASTA path or '-' for stdin")
    submit.add_argument("--url", default="http://127.0.0.1:8765")
    submit.add_argument("-k", "--top-alignments", type=int, default=20)
    submit.add_argument("--alphabet", default="protein", choices=["protein", "dna", "rna"])
    submit.add_argument(
        "--matrix", default=None, choices=sorted(_MATRICES) + ["simple"]
    )
    submit.add_argument("--gap-open", type=float, default=8.0)
    submit.add_argument("--gap-extend", type=float, default=1.0)
    submit.add_argument("--engine", default="vector")
    submit.add_argument("--group", type=int, default=1)
    submit.add_argument("--algorithm", default="new", choices=["new", "old"])
    submit.add_argument("--min-score", type=float, default=0.0)
    submit.add_argument("--max-gap", type=int, default=0)
    submit.add_argument("--priority", type=int, default=0, help="higher runs earlier")
    submit.add_argument(
        "--index",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="workers seed the best-first heap from the k-mer index tier",
    )
    submit.add_argument(
        "--index-k", type=int, default=0,
        help="k-mer width (0 = per-alphabet default)",
    )
    submit.add_argument(
        "--wait", action="store_true", help="block until every job finishes"
    )
    submit.add_argument(
        "--follow", action="store_true", help="stream progress events (implies --wait)"
    )
    submit.add_argument("--timeout", type=float, default=600.0)
    submit.add_argument(
        "--idempotency-key",
        default=None,
        help="replay-safe submission key (single-record submits only): a "
        "duplicate POST returns the original job instead of a new one",
    )

    status = sub.add_parser("status", help="show a service job record")
    status.add_argument("job_id")
    status.add_argument("--url", default="http://127.0.0.1:8765")
    status.add_argument(
        "--events", action="store_true", help="also print the job's event lines"
    )

    fetch = sub.add_parser("fetch", help="fetch a cached result by digest or job id")
    fetch.add_argument("ref", help="result digest (full or unique prefix) or job id")
    fetch.add_argument("--url", default="http://127.0.0.1:8765")
    fetch.add_argument(
        "--summary", action="store_true", help="render a summary instead of raw JSON"
    )
    for client_cmd in (submit, status, fetch):
        client_cmd.add_argument(
            "--api-key",
            default=None,
            help="tenant API key (default: the REPRO_API_KEY environment "
            "variable); required when the service runs with --tenants",
        )
    return parser


def _cmd_find(args: argparse.Namespace) -> int:
    alphabet = alphabet_for(args.alphabet)
    if args.matrix is None:
        exchange = None
    elif args.matrix == "simple":
        exchange = match_mismatch(alphabet, 2.0, -1.0)
    else:
        exchange = _MATRICES[args.matrix]()
        if alphabet.name != "protein":
            raise SystemExit(f"matrix {args.matrix} requires --alphabet protein")
    source = sys.stdin if args.fasta == "-" else args.fasta
    records = read_fasta(source, alphabet)
    if not records:
        raise SystemExit("no FASTA records found")
    for record in records:
        seed_bounds = None
        if args.index:
            from .core.api import RepeatFinder
            from .index import seed_score_bounds

            resolver = RepeatFinder(
                exchange=exchange,
                gaps=GapPenalties(args.gap_open, args.gap_extend),
            )
            seed_bounds = seed_score_bounds(record, resolver.resolve_exchange(record))
        result = find_repeats(
            record,
            top_alignments=args.top_alignments,
            exchange=exchange,
            gaps=GapPenalties(args.gap_open, args.gap_extend),
            engine=args.engine,
            algorithm=args.algorithm,
            group=args.group,
            min_score=args.min_score,
            prune=args.prune,
            max_gap=args.max_gap,
            seed_bounds=seed_bounds,
        )
        name = record.id or "<unnamed>"
        print(f">{name} length={len(record)}")
        print(
            f"  top alignments: {len(result.top_alignments)}  "
            f"repeat families: {len(result.repeats)}  "
            f"alignments computed: {result.stats.alignments}"
        )
        for repeat in result.repeats:
            spans = ", ".join(f"{s}-{e}" for s, e in repeat.copies)
            print(
                f"  family {repeat.family}: {repeat.n_copies} copies "
                f"(~{repeat.unit_length:.0f} aa, {repeat.columns} conserved cols): "
                f"{spans}"
            )
        if args.show_alignments:
            for aln in result.top_alignments:
                p0, p1 = aln.prefix_interval
                s0, s1 = aln.suffix_interval
                print(
                    f"  top#{aln.index} score={aln.score:g} r={aln.r} "
                    f"{p0}-{p1} ~ {s0}-{s1} ({len(aln)} pairs)"
                )
        if args.msa and result.repeats:
            from .core.msa import align_family, render_msa

            for repeat in result.repeats:
                try:
                    msa = align_family(record, repeat, result.top_alignments)
                except ValueError:
                    continue
                print(
                    f"  family {repeat.family} alignment "
                    f"({msa.mean_identity:.0%} identity):"
                )
                for line in render_msa(msa).splitlines():
                    print(f"    {line}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "titin":
        seq = pseudo_titin(args.length, seed=args.seed)
    else:
        workload = implant_repeats(
            args.length,
            RepeatSpec(
                unit_length=args.unit_length,
                copies=args.copies,
                substitution_rate=args.divergence,
            ),
            seed=args.seed,
        )
        seq = workload.sequence
    target = sys.stdout if args.output == "-" else args.output
    write_fasta(seq, target)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench.harness import (
        batched_report,
        batched_rows,
        figure8_series,
        index_report,
        index_rows,
        pruning_report,
        pruning_rows,
        realignment_rows,
        table1_rows,
        table2_rows,
    )

    if args.emit_metrics:
        from . import obs

        obs.enable()

    if args.artifact == "batched":
        kwargs = {}
        if args.length:
            kwargs["length"] = args.length
        if args.top_alignments:
            kwargs["k"] = args.top_alignments
        report = batched_report(**kwargs)
        print(batched_rows(report=report).render())
        if args.json:
            import json

            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(report, fh, indent=2)
            print(f"wrote {args.json}")
    elif args.artifact == "index":
        kwargs = {}
        if args.length:
            kwargs["length"] = args.length
        if args.top_alignments:
            kwargs["k"] = args.top_alignments
        report = index_report(**kwargs)
        print(index_rows(report=report).render())
        if args.json:
            import json

            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(report, fh, indent=2)
            print(f"wrote {args.json}")
    elif args.artifact == "pruning":
        kwargs = {}
        if args.length:
            kwargs["length"] = args.length
        if args.top_alignments:
            kwargs["k"] = args.top_alignments
        report = pruning_report(**kwargs)
        print(pruning_rows(report=report).render())
        if args.json:
            import json

            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(report, fh, indent=2)
            print(f"wrote {args.json}")
    elif args.artifact == "table1":
        kwargs = {}
        if args.top_alignments:
            kwargs["k"] = args.top_alignments
        print(table1_rows(**kwargs).render())
    elif args.artifact == "table2":
        print(table2_rows(size=args.length or 300).render())
    elif args.artifact == "realign":
        kwargs = {}
        if args.top_alignments:
            kwargs["k"] = args.top_alignments
        print(realignment_rows(**kwargs).render())
    else:
        series = figure8_series(
            length=args.length or 360,
            ks=(1, 2, 5, 10, 25) if args.top_alignments is None else (args.top_alignments,),
        )
        print("Figure 8 — speed improvement vs processors (simulated DAS-2)")
        for k, points in sorted(series.items()):
            row = "  ".join(f"P={p}:{s:.0f}" for p, s, _ in points)
            print(f"k={k:3d}  {row}")
    if args.emit_metrics:
        from . import obs

        obs.write_snapshot(args.emit_metrics)
        print(f"wrote {args.emit_metrics}")
    return 0


def _cmd_scan(args: argparse.Namespace) -> int:
    from .core.api import RepeatFinder
    from .core.scan import DatabaseScanner

    alphabet = alphabet_for(args.alphabet)
    source = sys.stdin if args.fasta == "-" else args.fasta
    records = read_fasta(source, alphabet)
    if not records:
        raise SystemExit("no FASTA records found")
    index_config = None
    index_store = None
    if args.index:
        from .index import IndexConfig, IndexStore

        index_config = IndexConfig(k=args.index_k)
        if args.index_cache:
            index_store = IndexStore(args.index_cache)
    scanner = DatabaseScanner(
        finder=RepeatFinder(
            top_alignments=args.top_alignments,
            min_score=args.index_threshold,
        ),
        mask=args.mask,
        min_length=args.min_length,
        engine=args.engine,
        group=args.group,
        prune=args.prune,
        index=index_config,
        index_store=index_store,
    )
    reports = scanner.rank(records)
    if args.json:
        import json

        from .core.scan import scan_to_payload

        payload = scan_to_payload(
            reports,
            records,
            alphabet=args.alphabet,
            index_stats=scanner.index_stats or None,
        )
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}", file=sys.stderr)
    if args.limit:
        reports = reports[: args.limit]
    routed_col = "  routed" if args.index else ""
    print(
        f"{'rank':>4}  {'id':<24} {'len':>6} {'best':>7} "
        f"{'families':>8} {'repeat%':>8}{routed_col}"
    )
    for rank, rep in enumerate(reports, 1):
        if rep.failed:
            print(f"{rank:>4}  {rep.id[:24]:<24} {rep.length:>6} FAILED: {rep.error}")
            continue
        routed = f"  {rep.routed or '-'}" if args.index else ""
        print(
            f"{rank:>4}  {rep.id[:24]:<24} {rep.length:>6} {rep.best_score:>7g} "
            f"{rep.n_families:>8} {rep.repeat_fraction:>8.1%}{routed}"
        )
    if args.index and scanner.index_stats:
        s = scanner.index_stats
        print(
            f"index: {s.get('full', 0)} full / {s.get('defer', 0)} defer / "
            f"{s.get('skip', 0)} skip; builds={s.get('index_builds', 0)} "
            f"loads={s.get('index_loads', 0)}",
            file=sys.stderr,
        )
    failures = [rep for rep in reports if rep.failed]
    if failures:
        print(f"{len(failures)} of {len(reports)} record(s) failed", file=sys.stderr)
        return 1
    return 0


def _cmd_annotate(args: argparse.Namespace) -> int:
    import json

    from .annot import annotate_document, annotate_scan, validate_gff3
    from .core.api import RepeatFinder
    from .core.scan import DatabaseScanner, load_scan_payload

    # A scan document starts with '{'; anything else is treated as FASTA.
    is_json = False
    if args.source != "-":
        with open(args.source, "r", encoding="utf-8") as fh:
            head = fh.read(64).lstrip()
        is_json = head.startswith("{")
    if is_json:
        with open(args.source, "r", encoding="utf-8") as fh:
            try:
                document = load_scan_payload(json.load(fh))
            except (ValueError, KeyError) as exc:
                raise SystemExit(f"bad scan document {args.source}: {exc}")
        annotation = annotate_document(
            document, window=args.window, msa=not args.no_msa
        )
    else:
        alphabet = alphabet_for(args.alphabet)
        source = sys.stdin if args.source == "-" else args.source
        records = read_fasta(source, alphabet)
        if not records:
            raise SystemExit("no FASTA records found")
        scanner = DatabaseScanner(
            finder=RepeatFinder(top_alignments=args.top_alignments),
            mask=args.mask,
            min_length=args.min_length,
            engine=args.engine,
        )
        reports = scanner.scan(records)
        by_id: dict[str, list] = {}
        for record in records:
            by_id.setdefault(record.id, []).append(record)
        ordered = [
            (by_id[rep.id].pop(0) if by_id.get(rep.id) else None)
            for rep in reports
        ]
        annotation = annotate_scan(
            reports, ordered, window=args.window, msa=not args.no_msa
        )

    gff_text = annotation.gff3()
    problems = validate_gff3(gff_text)
    if problems:
        for problem in problems:
            print(f"gff3 validation: {problem}", file=sys.stderr)
        return 1
    outputs = {
        f"{args.prefix}.gff3": gff_text,
        f"{args.prefix}.profile.json": annotation.profile_json(),
        f"{args.prefix}.html": annotation.html(title=args.title),
        f"{args.prefix}.wig": annotation.wig(),
    }
    for path, text in outputs.items():
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {path}")
    n_ok = sum(1 for entry in annotation.sequences if entry.ok)
    n_failed = len(annotation.sequences) - n_ok
    print(
        f"annotated {n_ok} sequence(s), {annotation.n_families} repeat "
        f"famil{'y' if annotation.n_families == 1 else 'ies'}"
        + (f"; {n_failed} record(s) failed" if n_failed else "")
    )
    return 0


def _cmd_align(args: argparse.Namespace) -> int:
    import numpy as np

    from .align import AlignmentProblem, full_matrix, render_alignment, traceback

    alphabet = alphabet_for(args.alphabet)
    if args.matrix in (None, "simple"):
        exchange = match_mismatch(alphabet, 2.0, -1.0)
    else:
        if alphabet.name != "protein":
            raise SystemExit(f"matrix {args.matrix} requires --alphabet protein")
        exchange = _MATRICES[args.matrix]()
    problem = AlignmentProblem.from_sequences(
        args.seq1.upper(), args.seq2.upper(), exchange,
        GapPenalties(args.gap_open, args.gap_extend),
    )
    matrix = full_matrix(problem)
    if matrix.max() <= 0:
        print("no positive-scoring local alignment")
        return 0
    end = np.unravel_index(np.argmax(matrix), matrix.shape)
    path = traceback(problem, matrix, int(end[0]), int(end[1]))
    top, mid, bot = render_alignment(problem, path)
    print(f"score {path.score:g} "
          f"(residues {path.start.y}-{path.end.y} vs {path.start.x}-{path.end.x})")
    for line in (top, mid, bot):
        print(f"  {line}")
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    from .align.search import search_database
    from .sequences.sequence import Sequence

    alphabet = alphabet_for(args.alphabet)
    if args.matrix in (None, "simple"):
        exchange = (
            _MATRICES["blosum62"]()
            if alphabet.name == "protein" and args.matrix is None
            else match_mismatch(alphabet, 2.0, -1.0)
        )
    else:
        if alphabet.name != "protein":
            raise SystemExit(f"matrix {args.matrix} requires --alphabet protein")
        exchange = _MATRICES[args.matrix]()
    source = sys.stdin if args.fasta == "-" else args.fasta
    database = read_fasta(source, alphabet)
    if not database:
        raise SystemExit("no FASTA records found")
    query = Sequence(args.query.upper(), alphabet, id="query")
    hits = search_database(
        query,
        database,
        exchange,
        GapPenalties(args.gap_open, args.gap_extend),
        lanes=args.lanes,
        top=args.top,
    )
    print(f"{'rank':>4}  {'id':<24} {'len':>6} {'score':>7}")
    for rank, hit in enumerate(hits, 1):
        print(f"{rank:>4}  {hit.id[:24]:<24} {hit.length:>6} {hit.score:>7g}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .scoring.gaps import GapPenalties as GP
    from .sequences.workloads import pseudo_titin
    from .simulate import (
        AlignmentOracle,
        ClusterConfig,
        ClusterSimulator,
        TraceRecorder,
        pentium3,
        pentium4,
    )

    machine = pentium3() if args.machine == "pentium3" else pentium4()
    seq = pseudo_titin(args.length, seed=1912)
    oracle = AlignmentOracle(seq, blosum62(), GP(8, 1))
    base = ClusterSimulator(
        oracle,
        ClusterConfig(
            processors=1, machine=machine, tier="conventional", dedicated_master=False
        ),
    ).run(args.top_alignments)
    recorder = TraceRecorder()
    sim = ClusterSimulator(
        oracle,
        ClusterConfig(processors=args.processors, machine=machine, tier=args.tier),
        trace=recorder,
    )
    result = sim.run(args.top_alignments)
    print(
        f"pseudo-titin {args.length} aa, k={args.top_alignments}, "
        f"P={args.processors} ({machine.name}, {args.tier} tier)"
    )
    print(f"  simulated makespan:     {result.makespan:.4f} s")
    print(f"  sequential baseline:    {base.makespan:.4f} s (conventional tier)")
    print(f"  speed improvement:      {base.makespan / result.makespan:.1f}x")
    print(f"  alignments executed:    {result.alignments_executed}")
    report = recorder.report(result.makespan, n_workers=args.processors - 1)
    print(f"  mean worker utilisation {report.mean_utilisation:.1%}, "
          f"traceback share {report.traceback_fraction:.1%}")
    if args.gantt:
        print(report.gantt())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .core.report import analyze

    alphabet = alphabet_for(args.alphabet)
    source = sys.stdin if args.fasta == "-" else args.fasta
    records = read_fasta(source, alphabet)
    if not records:
        raise SystemExit("no FASTA records found")
    for record in records:
        report = analyze(
            record,
            top_alignments=args.top_alignments,
            gaps=GapPenalties(args.gap_open, args.gap_extend),
            max_gap=args.max_gap,
            significance_shuffles=args.shuffles,
        )
        print(report.render(dotplot=not args.no_dotplot))
    return 0


def _cmd_engines(_: argparse.Namespace) -> int:
    from .align.base import available_engines

    for name in available_engines():
        print(name)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis.linter import main as lint_main

    argv = list(args.paths)
    if args.format != "text":
        argv += ["--format", args.format]
    if args.list_rules:
        argv += ["--list-rules"]
    if args.changed:
        argv += ["--changed"]
    if args.stats:
        argv += ["--stats"]
    if args.graph:
        argv += ["--graph", *args.graph]
    if args.no_cache:
        argv += ["--no-cache"]
    if args.cache_dir:
        argv += ["--cache-dir", args.cache_dir]
    return lint_main(argv)


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service.server import ServiceConfig, serve

    config = ServiceConfig(
        data_dir=args.data_dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        checkpoint_every=args.checkpoint_every,
        cluster_port=args.cluster_port,
        tenants_file=args.tenants,
        dispatch_window=args.dispatch_window,
    )
    return serve(config)


def _cmd_cluster(args: argparse.Namespace) -> int:
    if args.cluster_command == "coordinator":
        return _cluster_coordinator(args)
    if args.cluster_command == "node":
        from .cluster.node import node_main

        return node_main(
            args.join, node_id=args.node_id, max_shards=args.max_shards
        )
    return _cluster_scan(args)


def _cluster_coordinator(args: argparse.Namespace) -> int:
    import signal
    import threading

    from .cluster.coordinator import Coordinator, CoordinatorConfig

    coordinator = Coordinator(
        CoordinatorConfig(
            host=args.host,
            port=args.port,
            scan_shard_size=args.scan_shard_size,
            lease_seconds=args.lease_seconds,
            node_timeout=args.node_timeout,
        )
    ).start()
    print(
        f"repro cluster coordinator listening on {coordinator.address}", flush=True
    )
    done = threading.Event()
    signal.signal(signal.SIGTERM, lambda *_: done.set())
    signal.signal(signal.SIGINT, lambda *_: done.set())
    done.wait()
    coordinator.stop()
    print("repro cluster coordinator stopped", flush=True)
    return 0


def _cluster_scan(args: argparse.Namespace) -> int:
    from .cluster.client import ClusterClient, ClusterError
    from .service.protocol import JobSpec

    host, _sep, port = args.join.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"--join expects host:port, got {args.join!r}")
    alphabet = alphabet_for(args.alphabet)
    source = sys.stdin if args.fasta == "-" else args.fasta
    records = read_fasta(source, alphabet)
    if not records:
        raise SystemExit("no FASTA records found")
    spec = JobSpec(
        sequence="AA",
        alphabet=args.alphabet,
        top_alignments=args.top_alignments,
        engine=args.engine,
    )
    payload = [{"id": rec.id, "sequence": rec.text} for rec in records]
    options = {"mask": args.mask, "min_length": args.min_length}
    if args.index:
        options["index"] = True
        options["index_k"] = args.index_k
    try:
        with ClusterClient(host, int(port)) as client:
            reports = client.scan(spec, payload, options, timeout=args.timeout)
    except (ClusterError, ConnectionError, TimeoutError) as exc:
        print(f"cluster scan failed: {exc}", file=sys.stderr)
        return 1
    ranked = sorted(
        reports,
        key=lambda r: (r["result"] is None, -r["best_score"], r["id"]),
    )
    print(f"{'rank':>4}  {'id':<24} {'len':>6} {'best':>7} {'families':>8} {'repeat%':>8}")
    for rank, rep in enumerate(ranked, 1):
        if rep["result"] is None:
            print(f"{rank:>4}  {rep['id'][:24]:<24} {rep['length']:>6} FAILED: {rep['error']}")
            continue
        print(
            f"{rank:>4}  {rep['id'][:24]:<24} {rep['length']:>6} "
            f"{rep['best_score']:>7g} {rep['n_families']:>8} "
            f"{rep['repeat_fraction']:>8.1%}"
        )
    failures = sum(1 for rep in reports if rep["result"] is None)
    if failures:
        print(f"{failures} of {len(reports)} record(s) failed", file=sys.stderr)
        return 1
    return 0


def _render_result_summary(payload: dict) -> str:
    lines = [
        f">{payload.get('sequence_id') or '<unnamed>'} length={payload['length']} "
        f"digest={payload['digest'][:16]}",
        f"  top alignments: {len(payload['top_alignments'])}  "
        f"repeat families: {len(payload['repeats'])}  "
        f"alignments computed: {payload['stats']['alignments']}",
    ]
    for repeat in payload["repeats"]:
        spans = ", ".join(f"{s}-{e}" for s, e in repeat["copies"])
        lines.append(
            f"  family {repeat['family']}: {repeat['n_copies']} copies "
            f"(~{repeat['unit_length']:.0f} aa, {repeat['columns']} conserved "
            f"cols): {spans}"
        )
    return "\n".join(lines)


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    from .service.client import (
        ClientBacklogFull,
        ServiceAuthError,
        ServiceClient,
        ServiceError,
    )

    alphabet = alphabet_for(args.alphabet)
    source = sys.stdin if args.fasta == "-" else args.fasta
    records = read_fasta(source, alphabet)
    if not records:
        raise SystemExit("no FASTA records found")
    if args.idempotency_key and len(records) > 1:
        # One key maps to one job; reusing it across records would
        # replay the first record for all the rest.
        raise SystemExit("--idempotency-key requires a single-record FASTA")
    client = ServiceClient(args.url, api_key=args.api_key)
    job_ids: list[str] = []
    for record in records:
        spec = {
            "sequence": record.text,
            "alphabet": args.alphabet,
            "seq_id": record.id,
            "top_alignments": args.top_alignments,
            "matrix": args.matrix,
            "gap_open": args.gap_open,
            "gap_extend": args.gap_extend,
            "engine": args.engine,
            "group": args.group,
            "algorithm": args.algorithm,
            "min_score": args.min_score,
            "max_gap": args.max_gap,
            "priority": args.priority,
            "index": args.index,
            "index_k": args.index_k,
        }
        try:
            job = client.submit(spec, idempotency_key=args.idempotency_key)
        except ServiceAuthError as exc:
            print(_auth_error_message(exc), file=sys.stderr)
            return 77  # EX_NOPERM
        except ClientBacklogFull as exc:
            print(
                f"service is shedding load ({exc.message}); retry in "
                f"{exc.retry_after}s ({len(job_ids)} of {len(records)} submitted)",
                file=sys.stderr,
            )
            return 75  # EX_TEMPFAIL
        except ServiceError as exc:
            print(f"submit failed for {record.id or '<unnamed>'}: {exc}", file=sys.stderr)
            return 1
        tag = (
            "replay" if job.get("replayed")
            else "cache" if job.get("from_cache")
            else job["state"]
        )
        print(f"job {job['id']} [{tag}] digest={job['digest'][:16]} id={record.id}")
        job_ids.append(job["id"])

    if not (args.wait or args.follow):
        return 0
    failed = 0
    for job_id in job_ids:
        if args.follow:
            for event in client.events(job_id, follow=True):
                print(f"  {job_id} {json.dumps(event, sort_keys=True)}")
        record = client.wait(job_id, timeout=args.timeout)
        if record["state"] != "done":
            failed += 1
            print(
                f"job {job_id} {record['state']}: {record.get('error', '')}",
                file=sys.stderr,
            )
            continue
        print(_render_result_summary(client.result(record["digest"])))
    return 1 if failed else 0


def _auth_error_message(exc) -> str:
    """A readable 401/403 for humans at a terminal."""
    if exc.code == 401:
        hint = "pass --api-key or set REPRO_API_KEY"
        detail = exc.message or "missing or unrecognized API key"
        return f"authentication failed: {detail} ({hint})"
    return f"access denied: {exc.message or 'tenant is disabled'}"


def _cmd_status(args: argparse.Namespace) -> int:
    import json

    from .service.client import ServiceAuthError, ServiceClient, ServiceError

    client = ServiceClient(args.url, api_key=args.api_key)
    try:
        record = client.status(args.job_id)
    except ServiceAuthError as exc:
        print(_auth_error_message(exc), file=sys.stderr)
        return 77  # EX_NOPERM
    except ServiceError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    print(json.dumps(record, indent=2, sort_keys=True))
    if args.events:
        for event in client.events(args.job_id):
            print(json.dumps(event, sort_keys=True))
    return 0


def _cmd_fetch(args: argparse.Namespace) -> int:
    import json

    from .service.client import ServiceAuthError, ServiceClient, ServiceError

    client = ServiceClient(args.url, api_key=args.api_key)
    try:
        payload = client.result(args.ref)
    except ServiceAuthError as exc:
        print(_auth_error_message(exc), file=sys.stderr)
        return 77  # EX_NOPERM
    except ServiceError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    if args.summary:
        print(_render_result_summary(payload))
    else:
        print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def main(argv: Seq[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "find": _cmd_find,
        "scan": _cmd_scan,
        "annotate": _cmd_annotate,
        "align": _cmd_align,
        "search": _cmd_search,
        "generate": _cmd_generate,
        "bench": _cmd_bench,
        "simulate": _cmd_simulate,
        "report": _cmd_report,
        "engines": _cmd_engines,
        "lint": _cmd_lint,
        "serve": _cmd_serve,
        "cluster": _cmd_cluster,
        "submit": _cmd_submit,
        "status": _cmd_status,
        "fetch": _cmd_fetch,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
