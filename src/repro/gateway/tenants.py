"""Tenant identity: API-key resolution over a file-backed directory.

The directory is a JSON file mapping tenant names to API keys, weights
and quotas (see :data:`EXAMPLE_CONFIG` / README "Multi-tenancy &
operations").  Two properties matter operationally:

* **Constant-time key comparison.**  ``resolve`` compares the presented
  key against *every* configured tenant with :func:`hmac.compare_digest`
  and never returns early on mismatch, so response timing leaks neither
  key bytes nor which tenant a probe grazed.
* **SIGHUP hot-reload.**  ``install_sighup`` re-reads the file on
  SIGHUP without dropping a request: the parsed tenant table is swapped
  atomically under a lock, and a file that fails to parse keeps the
  previous table (rejecting all traffic because of a typo'd rollout
  would be worse than serving one config behind).

With no file configured the directory is **open**: every request —
keyed or not — resolves to the built-in unlimited ``public`` tenant,
preserving the service's original trust-everyone behavior for local
and test use.
"""

from __future__ import annotations

import hmac
import json
import re
import signal
import threading
from dataclasses import dataclass, replace
from pathlib import Path

__all__ = [
    "AuthError",
    "ForbiddenError",
    "TenantSpec",
    "TenantDirectory",
    "PUBLIC_TENANT",
]

#: Tenant names become path components (idempotency store) and metric
#: label values, so the charset is restricted up front.
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")

EXAMPLE_CONFIG = """\
{
  "tenants": {
    "acme": {"api_key": "acme-secret", "weight": 4, "max_in_flight": 8,
             "rate": 20, "burst": 40, "spool_bytes": 8388608},
    "guest": {"api_key": "guest-secret"}
  }
}
"""


class AuthError(RuntimeError):
    """No/unrecognized API key (HTTP 401)."""


class ForbiddenError(RuntimeError):
    """A valid key whose tenant is disabled (HTTP 403)."""


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's identity, weight and quota budget.

    Quota semantics (0 = unlimited everywhere):

    ``weight``
        fair-share weight in the deficit-round-robin scheduler;
    ``max_in_flight``
        jobs admitted but not yet terminal (lane + spool + running);
    ``rate`` / ``burst``
        requests-per-second token bucket over *all* ``POST /jobs``
        traffic, cache hits and replays included;
    ``spool_bytes``
        total serialized payload bytes of the tenant's in-flight jobs.
    """

    name: str
    api_key: str = ""
    weight: float = 1.0
    max_in_flight: int = 0
    rate: float = 0.0
    burst: float = 0.0
    spool_bytes: int = 0
    enabled: bool = True


#: What every request resolves to when the directory runs open.
PUBLIC_TENANT = TenantSpec(name="public")

_SPEC_FIELDS = {
    "api_key", "weight", "max_in_flight", "rate", "burst", "spool_bytes",
    "enabled",
}


def _parse_config(payload: dict) -> dict[str, TenantSpec]:
    if not isinstance(payload, dict) or not isinstance(payload.get("tenants"), dict):
        raise ValueError('tenant config must be {"tenants": {name: {...}}}')
    tenants: dict[str, TenantSpec] = {}
    for name, raw in payload["tenants"].items():
        if not _NAME_RE.match(name):
            raise ValueError(f"bad tenant name {name!r} (letters/digits/._- only)")
        if not isinstance(raw, dict):
            raise ValueError(f"tenant {name!r}: expected an object")
        unknown = set(raw) - _SPEC_FIELDS
        if unknown:
            raise ValueError(f"tenant {name!r}: unknown fields {sorted(unknown)}")
        spec = replace(TenantSpec(name=name), **raw)
        if not spec.api_key or not isinstance(spec.api_key, str):
            raise ValueError(f"tenant {name!r}: api_key must be a non-empty string")
        if spec.weight <= 0:
            raise ValueError(f"tenant {name!r}: weight must be positive")
        if min(spec.max_in_flight, spec.rate, spec.burst, spec.spool_bytes) < 0:
            raise ValueError(f"tenant {name!r}: quotas must be >= 0")
        tenants[name] = spec
    if not tenants:
        raise ValueError("tenant config names no tenants")
    keys = [t.api_key for t in tenants.values()]
    if len(set(keys)) != len(keys):
        raise ValueError("two tenants share an api_key")
    return tenants


class TenantDirectory:
    """Thread-safe API-key → :class:`TenantSpec` resolution."""

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self._lock = threading.Lock()
        self._tenants: dict[str, TenantSpec] = {}
        self.reloads = 0
        self.reload_errors = 0
        if self.path is not None:
            # Initial load fails fast: a service must not start open
            # because its tenant file is broken.
            self._tenants = _parse_config(
                json.loads(self.path.read_text(encoding="utf-8"))
            )

    @property
    def open(self) -> bool:
        """True when no tenant file is configured (trust-everyone mode)."""
        return self.path is None

    def resolve(self, api_key: str | None) -> TenantSpec:
        """The tenant owning ``api_key``.

        Raises :class:`AuthError` for a missing/unknown key and
        :class:`ForbiddenError` for a disabled tenant.  The comparison
        loop always visits every tenant — no early exit on match.
        """
        if self.open:
            return PUBLIC_TENANT
        if not api_key:
            raise AuthError("missing API key")
        with self._lock:
            tenants = list(self._tenants.values())
        matched: TenantSpec | None = None
        for tenant in tenants:
            if hmac.compare_digest(
                tenant.api_key.encode("utf-8"), api_key.encode("utf-8")
            ):
                matched = tenant
        if matched is None:
            raise AuthError("unrecognized API key")
        if not matched.enabled:
            raise ForbiddenError(f"tenant {matched.name!r} is disabled")
        return matched

    def get(self, name: str) -> TenantSpec | None:
        with self._lock:
            return self._tenants.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._tenants)

    def reload(self) -> bool:
        """Re-read the tenant file; on any error keep the current table."""
        if self.path is None:
            return False
        try:
            tenants = _parse_config(
                json.loads(self.path.read_text(encoding="utf-8"))
            )
        except (OSError, TypeError, ValueError) as exc:
            self.reload_errors += 1
            print(f"tenant reload failed (keeping previous config): {exc}", flush=True)
            return False
        with self._lock:
            self._tenants = tenants
        self.reloads += 1
        return True

    def install_sighup(self) -> bool:
        """Reload on SIGHUP; False where unsupported (non-POSIX / not main thread)."""
        if not hasattr(signal, "SIGHUP"):
            return False  # pragma: no cover - POSIX-only branch
        if threading.current_thread() is not threading.main_thread():
            return False
        signal.signal(signal.SIGHUP, lambda *_: self.reload())
        return True

    def snapshot(self) -> dict[str, dict]:
        """Quota/weight table for ``/stats`` — never includes API keys."""
        with self._lock:
            return {
                name: {
                    "weight": t.weight,
                    "max_in_flight": t.max_in_flight,
                    "rate": t.rate,
                    "burst": t.burst,
                    "spool_bytes": t.spool_bytes,
                    "enabled": t.enabled,
                }
                for name, t in sorted(self._tenants.items())
            }
