"""Deficit-round-robin fair-share scheduling across tenant lanes.

The gateway holds one FIFO *lane* per tenant and releases jobs into the
bounded spool queue one grant at a time (see
:mod:`repro.gateway.admission`).  :class:`DeficitRoundRobin` decides
whose head-of-lane job goes next: each visit to a tenant tops its
*deficit* up by ``quantum × weight`` and the tenant is served while its
deficit covers the head item's cost, so over time each backlogged
tenant receives service proportional to its weight.

**Starvation bound.**  Every full rotation over the active tenants adds
at least ``quantum × weight`` to each pending tenant's deficit, so a
tenant whose head item costs ``c`` is served within
``ceil(c / (quantum × weight))`` rotations — and one rotation is at
most ``sum(floor(quantum × w_t / min_cost))`` grants plus one visit per
tenant.  With unit costs (the gateway's default) that collapses to:
*a pending tenant waits at most* ``sum(weights) + n_tenants`` *grants*,
which is exactly what the hypothesis property test asserts.

A tenant's deficit is reset when its lane drains (classic DRR), so
idle tenants accumulate no credit and cannot burst later.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any

__all__ = ["DeficitRoundRobin", "LaneItem"]


@dataclass
class LaneItem:
    """One queued unit of work inside a tenant lane."""

    job_id: str
    priority: int = 0
    cost: float = 1.0
    #: Opaque payload riding along (the gateway does not use it; tests do).
    meta: Any = None


@dataclass
class _Lane:
    weight: float = 1.0
    deficit: float = 0.0
    items: deque = field(default_factory=deque)


class DeficitRoundRobin:
    """Weighted DRR over named lanes; thread-safe, one grant per call."""

    def __init__(self, quantum: float = 1.0) -> None:
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self.quantum = quantum
        self._lock = threading.Lock()
        self._lanes: dict[str, _Lane] = {}
        #: Round-robin order over lanes with pending items.
        self._active: deque[str] = deque()
        self.grants = 0

    # -- configuration -----------------------------------------------------

    def set_weight(self, tenant: str, weight: float) -> None:
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        with self._lock:
            self._lane(tenant).weight = float(weight)

    def _lane(self, tenant: str) -> _Lane:
        lane = self._lanes.get(tenant)
        if lane is None:
            lane = self._lanes[tenant] = _Lane()
        return lane

    # -- producer ------------------------------------------------------------

    def enqueue(self, tenant: str, item: LaneItem) -> None:
        with self._lock:
            lane = self._lane(tenant)
            lane.items.append(item)
            if tenant not in self._active:
                self._active.append(tenant)

    def requeue_front(self, tenant: str, item: LaneItem) -> None:
        """Put a granted item back at the head (spool refused it)."""
        with self._lock:
            lane = self._lane(tenant)
            lane.items.appendleft(item)
            # Refund the cost the failed grant already deducted.
            lane.deficit += item.cost
            if tenant not in self._active:
                self._active.appendleft(tenant)

    def remove(self, tenant: str, job_id: str) -> bool:
        """Drop a queued item from its lane (cancellation)."""
        with self._lock:
            lane = self._lanes.get(tenant)
            if lane is None:
                return False
            for item in lane.items:
                if item.job_id == job_id:
                    lane.items.remove(item)
                    if not lane.items:
                        lane.deficit = 0.0
                        self._retire(tenant)
                    return True
            return False

    def _retire(self, tenant: str) -> None:  # repro-lint: holds-lock
        try:
            self._active.remove(tenant)
        except ValueError:
            pass

    # -- consumer ------------------------------------------------------------

    def grant(self) -> tuple[str, LaneItem] | None:
        """The next (tenant, item) under weighted fair share, or ``None``.

        Serves a tenant while its deficit covers the head cost, then
        rotates; each unserved visit tops the deficit up, so the bound
        documented above holds for any positive weights.
        """
        with self._lock:
            # Terminates: every iteration serves, retires an empty lane,
            # or tops a pending lane's deficit up by quantum × weight —
            # deficits grow monotonically, so some head cost is reached.
            while self._active:
                tenant = self._active[0]
                lane = self._lanes[tenant]
                if not lane.items:  # emptied via remove(); retire it
                    lane.deficit = 0.0
                    self._active.popleft()
                    continue
                head = lane.items[0]
                if lane.deficit >= head.cost:
                    lane.items.popleft()
                    lane.deficit -= head.cost
                    if not lane.items:
                        lane.deficit = 0.0
                        self._active.popleft()
                    self.grants += 1
                    return tenant, head
                lane.deficit += self.quantum * lane.weight
                self._active.rotate(-1)
            return None

    # -- introspection ---------------------------------------------------

    def depth(self, tenant: str | None = None) -> int:
        with self._lock:
            if tenant is not None:
                lane = self._lanes.get(tenant)
                return len(lane.items) if lane is not None else 0
            return sum(len(lane.items) for lane in self._lanes.values())

    def snapshot(self) -> dict[str, dict]:
        """Per-lane depth/weight/deficit for ``/stats``."""
        with self._lock:
            return {
                tenant: {
                    "depth": len(lane.items),
                    "weight": lane.weight,
                    "deficit": round(lane.deficit, 6),
                }
                for tenant, lane in sorted(self._lanes.items())
            }
