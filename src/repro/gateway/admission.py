"""The admission layer: every job enters the service through here.

:class:`Gateway` owns the contract the HTTP server and the executors
individually lack — *who* may submit (tenant resolution), *how much*
(quotas), *in what order* (weighted fair share) and *exactly once*
(idempotency keys):

1. resolve the API key to a :class:`~repro.gateway.tenants.TenantSpec`
   (constant-time; open mode resolves everything to ``public``);
2. replay a committed idempotency key, or win/await the in-flight one;
3. charge the tenant's token bucket, in-flight and spool-byte budgets
   (:class:`~repro.gateway.quota.QuotaExceeded` → 429 + Retry-After);
4. serve cache-born-done jobs straight from the result cache;
5. route to the cluster when worker nodes are alive, otherwise place
   the job in the tenant's **lane** and let deficit-round-robin decide
   release order.

**Lazy dispatch is what makes fair share real.**  The spool queue
serializes jobs the moment they are submitted, so draining lanes
eagerly would freeze arrival order — FIFO with extra steps.  Instead
the gateway keeps at most ``dispatch_window`` jobs in the spool
(enough to keep every worker busy plus a small runway) and *pumps* one
DRR grant at a time as slots free up.  A heavy tenant's backlog waits
in its lane, where the scheduler — not arrival time — decides what
runs next, so a light tenant's job overtakes hundreds of queued heavy
jobs without preemption.

The gateway deliberately takes its stores (job store, spool queue,
result cache) as constructor arguments and defers every
``repro.service`` import into the call paths: ``service.server``
imports this module at module scope, and the one-way import rule
(RPR007's spirit, ``serve()``'s cluster pattern) is what keeps the
package graph acyclic.
"""

from __future__ import annotations

import json
import math
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from ..obs import MetricsRegistry
from ..obs.prometheus import render_prometheus
from .fairshare import DeficitRoundRobin, LaneItem
from .idempotency import IdempotencyStore
from .quota import QuotaExceeded, TokenBucket
from .tenants import AuthError, ForbiddenError, TenantDirectory, TenantSpec

__all__ = ["Admission", "Gateway"]


@dataclass
class Admission:
    """What one admitted ``POST /jobs`` produced."""

    record: Any  # JobRecord (duck-typed; see module docstring)
    from_cache: bool
    replayed: bool
    tenant: TenantSpec


class Gateway:
    """Tenant admission + fair-share dispatch over injected stores."""

    def __init__(
        self,
        store,
        queue,
        cache,
        *,
        directory: TenantDirectory | None = None,
        dispatch_window: int = 0,
        workers: int = 0,
    ) -> None:
        self.store = store
        self.queue = queue
        self.cache = cache
        self.directory = directory or TenantDirectory()
        #: Spool occupancy target.  Auto (0) keeps every worker busy
        #: with one queued job of runway each, floored at 4 so the
        #: workerless test configuration still drains.
        self.window = int(dispatch_window) or max(4, 2 * int(workers))
        self.idempotency = IdempotencyStore(store.root / "gateway" / "idempotency")
        self.drr = DeficitRoundRobin()
        self._lock = threading.Lock()
        #: tenant name -> {job_id: payload bytes} for every non-terminal
        #: admitted job (lane, spool, running, or cluster-routed).
        self._active: dict[str, dict[str, int]] = {}
        self._buckets: dict[str, tuple[tuple[float, float], TokenBucket]] = {}
        #: Cluster hooks installed by the service: ``cluster_route()``
        #: says whether live nodes exist, ``cluster_spawn(job_id, spec)``
        #: starts the routed job.  Both optional.
        self.cluster_route: Callable[[], bool] | None = None
        self.cluster_spawn: Callable[[str, Any], None] | None = None
        self._pump_thread: threading.Thread | None = None
        self._pump_stop = threading.Event()
        #: Tenants that ever admitted work — keeps their gauges
        #: published (at zero) after their backlog drains.
        self._tenants_seen: set[str] = set()
        # Private always-on registry, the coordinator's discipline: a
        # gateway whose tenants are invisible is not operable.
        self.metrics = MetricsRegistry()
        self._c_admissions = self.metrics.counter(
            "repro_gateway_admissions_total",
            help="Jobs admitted, by tenant and route",
            tenant="public",
            route="spool",
        )
        self.metrics.counter(
            "repro_gateway_rejections_total",
            help="Submissions refused at admission, by tenant and reason",
            tenant="public",
            reason="rate",
        )
        self.metrics.counter(
            "repro_gateway_grants_total",
            help="Lane items released into the spool queue, by tenant",
            tenant="public",
        )

    # -- deferred service imports (see module docstring) -------------------

    @staticmethod
    def _protocol():
        from ..service.protocol import JobSpec, JobState, job_digest

        return JobSpec, JobState, job_digest

    @staticmethod
    def _backlog_full():
        from ..service.queue import BacklogFull

        return BacklogFull

    # -- admission ---------------------------------------------------------

    def resolve(self, api_key: str | None) -> TenantSpec:
        """Tenant for ``api_key``, counting auth failures as rejections."""
        try:
            return self.directory.resolve(api_key)
        except AuthError:
            self._reject("-", "auth")
            raise
        except ForbiddenError:
            self._reject("-", "forbidden")
            raise

    def submit(
        self,
        payload: dict,
        *,
        api_key: str | None = None,
        idempotency_key: str | None = None,
    ) -> Admission:
        """Admit one job; the docstring flow, top to bottom.

        Raises ``SpecError`` (400), :class:`AuthError` (401),
        :class:`ForbiddenError` (403), :class:`QuotaExceeded` /
        ``BacklogFull`` (429) or ``IdempotencyConflict`` (409).
        """
        JobSpec, _JobState, job_digest = self._protocol()
        tenant = self.resolve(api_key)
        spec = JobSpec.from_dict(payload)
        digest = job_digest(spec)

        ticket = None
        if idempotency_key:
            outcome = self.idempotency.claim(tenant.name, idempotency_key)
            if isinstance(outcome, dict):
                replay = self._replay(tenant, outcome)
                if replay is not None:
                    return replay
                # The mapped record vanished (admission rollback or
                # manual cleanup): re-admit and rebind the key below.
            else:
                ticket = outcome
        try:
            admission = self._admit(tenant, payload, spec, digest)
        except BaseException:
            if ticket is not None:
                ticket.abort()
            raise
        if ticket is not None:
            ticket.commit(admission.record.id, digest)
        elif idempotency_key:
            self.idempotency.bind(
                tenant.name, idempotency_key, admission.record.id, digest
            )
        return admission

    def _replay(self, tenant: TenantSpec, mapping: dict) -> Admission | None:
        record = self.store.get(str(mapping.get("job_id", "")))
        if record is None:
            return None
        self._admit_count(tenant.name, "replay")
        return Admission(record, record.served_from_cache, True, tenant)

    def _admit(self, tenant: TenantSpec, payload: dict, spec, digest: str) -> Admission:
        wait = self._bucket(tenant).take()
        if wait > 0:
            self._reject(tenant.name, "rate")
            raise QuotaExceeded(
                tenant.name,
                "rate",
                f"tenant {tenant.name!r} over its request rate "
                f"({tenant.rate:g}/s); retry in {math.ceil(wait)}s",
                retry_after=math.ceil(wait),
            )

        if self.cache.get(digest) is not None:
            # Born done: the content-addressed cache already holds the
            # answer, so the job never occupies quota or a lane slot.
            record = self._born_done(tenant, spec, digest)
            self._admit_count(tenant.name, "cache")
            return Admission(record, True, False, tenant)

        cost = len(json.dumps(payload, sort_keys=True).encode("utf-8"))
        with self._lock:
            self._reap_locked()
            active = self._active.setdefault(tenant.name, {})
            self._check_quotas(tenant, active, cost)
            to_cluster = self.cluster_route is not None and self.cluster_route()
            if not to_cluster:
                self._check_backlog(tenant)
            record = self.store.new_job(
                spec.to_dict(), digest, spec.priority, tenant=tenant.name
            )
            self.store.grant_result_access(digest, tenant.name)
            active[record.id] = cost
            if to_cluster:
                self.store.append_event(
                    record.id, "queued", digest=digest, priority=spec.priority,
                    route="cluster", tenant=tenant.name,
                )
            else:
                self.drr.set_weight(tenant.name, tenant.weight)
                self.drr.enqueue(
                    tenant.name, LaneItem(record.id, priority=spec.priority)
                )
                self.store.append_event(
                    record.id, "queued", digest=digest, priority=spec.priority,
                    tenant=tenant.name,
                )
        if to_cluster:
            self.cluster_spawn(record.id, spec)
            self._admit_count(tenant.name, "cluster")
        else:
            self.pump()
            self._admit_count(tenant.name, "spool")
        return Admission(record, False, False, tenant)

    def _born_done(self, tenant: TenantSpec, spec, digest: str):
        _JobSpec, JobState, _job_digest = self._protocol()
        record = self.store.new_job(
            spec.to_dict(), digest, spec.priority, tenant=tenant.name
        )
        record.state = JobState.DONE
        record.served_from_cache = True
        record.finished = time.time()
        record.found = spec.top_alignments
        self.store.put(record)
        self.store.grant_result_access(digest, tenant.name)
        self.store.append_event(record.id, "cache-hit", digest=digest)
        return record

    def _check_quotas(self, tenant: TenantSpec, active: dict, cost: int) -> None:
        if tenant.max_in_flight and len(active) >= tenant.max_in_flight:
            self._reject(tenant.name, "in_flight")
            raise QuotaExceeded(
                tenant.name,
                "in_flight",
                f"tenant {tenant.name!r} at max in-flight jobs "
                f"({len(active)}/{tenant.max_in_flight})",
                retry_after=self.queue.retry_after_hint(len(active)),
            )
        if tenant.spool_bytes:
            used = sum(active.values())
            if used + cost > tenant.spool_bytes:
                self._reject(tenant.name, "spool_bytes")
                raise QuotaExceeded(
                    tenant.name,
                    "spool_bytes",
                    f"tenant {tenant.name!r} over its spool budget "
                    f"({used + cost}/{tenant.spool_bytes} bytes)",
                    retry_after=self.queue.retry_after_hint(len(active)),
                )

    def _check_backlog(self, tenant: TenantSpec) -> None:
        """The service-wide load valve: lanes + spool count as backlog."""
        if not self.queue.capacity:
            return
        total = sum(len(jobs) for jobs in self._active.values())
        if total >= self.queue.capacity:
            self._reject(tenant.name, "backlog")
            BacklogFull = self._backlog_full()
            raise BacklogFull(
                total, self.queue.capacity, self.queue.retry_after_hint(total)
            )

    def _bucket(self, tenant: TenantSpec) -> TokenBucket:
        with self._lock:
            shape = (tenant.rate, tenant.burst)
            entry = self._buckets.get(tenant.name)
            if entry is None or entry[0] != shape:
                # New tenant, or a hot-reload changed its rate/burst.
                entry = (shape, TokenBucket(tenant.rate, tenant.burst))
                self._buckets[tenant.name] = entry
            return entry[1]

    # -- dispatch ----------------------------------------------------------

    def pump(self) -> int:
        """Grant lane items into the spool while it has window room."""
        BacklogFull = self._backlog_full()
        moved = 0
        with self._lock:
            window = self.window
            if self.queue.capacity:
                window = min(window, self.queue.capacity)
            while self.queue.depth() + self.queue.in_flight() < max(1, window):
                granted = self.drr.grant()
                if granted is None:
                    break
                tenant_name, item = granted
                try:
                    self.queue.submit(item.job_id, item.priority)
                except BacklogFull:
                    self.drr.requeue_front(tenant_name, item)
                    break
                self.metrics.counter(
                    "repro_gateway_grants_total", tenant=tenant_name
                ).inc()
                moved += 1
        return moved

    def reap(self) -> int:
        """Release quota held by jobs that reached a terminal state."""
        with self._lock:
            return self._reap_locked()

    def _reap_locked(self) -> int:  # repro-lint: holds-lock
        reaped = 0
        for tenant_name in list(self._active):
            jobs = self._active[tenant_name]
            for job_id in list(jobs):
                record = self.store.get(job_id)
                if record is None or record.terminal:
                    del jobs[job_id]
                    reaped += 1
            if not jobs:
                del self._active[tenant_name]
        return reaped

    def discard(self, tenant_name: str, job_id: str) -> bool:
        """Drop a lane-queued job (cancellation before it reached the spool)."""
        return self.drr.remove(tenant_name or "public", job_id)

    def recover(self) -> int:
        """Rebuild lanes and quota ledgers from the job store (restart).

        Queued records without a spool marker were waiting in a lane
        when the previous server died; they re-enter their tenant's
        lane.  Every other non-terminal record just re-occupies quota.
        """
        _JobSpec, JobState, _job_digest = self._protocol()
        restored = 0
        with self._lock:
            for job_id in self.store.list_ids():
                record = self.store.get(job_id)
                if record is None or record.terminal:
                    continue
                tenant_name = record.tenant or "public"
                active = self._active.setdefault(tenant_name, {})
                if job_id in active:
                    continue
                active[job_id] = len(
                    json.dumps(record.spec, sort_keys=True).encode("utf-8")
                )
                if record.state == JobState.QUEUED and not self.queue.contains(job_id):
                    tenant = self.directory.get(tenant_name)
                    if tenant is not None:
                        self.drr.set_weight(tenant_name, tenant.weight)
                    self.drr.enqueue(
                        tenant_name, LaneItem(job_id, priority=record.priority)
                    )
                    restored += 1
        self.pump()
        return restored

    # -- pump thread -------------------------------------------------------

    def start_pump(self, interval: float = 0.05) -> None:
        """Run reap+pump on a timer (the server process owns exactly one)."""
        if self._pump_thread is not None:
            return
        self._pump_stop.clear()

        def _loop() -> None:
            while not self._pump_stop.wait(interval):
                self.reap()
                self.pump()

        self._pump_thread = threading.Thread(
            target=_loop, name="gateway-pump", daemon=True
        )
        self._pump_thread.start()

    def stop_pump(self, timeout: float = 5.0) -> None:
        if self._pump_thread is None:
            return
        self._pump_stop.set()
        self._pump_thread.join(timeout=timeout)
        self._pump_thread = None

    # -- bookkeeping / introspection ---------------------------------------

    def _admit_count(self, tenant_name: str, route: str) -> None:
        self._tenants_seen.add(tenant_name)
        self.metrics.counter(
            "repro_gateway_admissions_total", tenant=tenant_name, route=route
        ).inc()

    def _reject(self, tenant_name: str, reason: str) -> None:
        self.metrics.counter(
            "repro_gateway_rejections_total", tenant=tenant_name, reason=reason
        ).inc()

    def snapshot(self) -> dict:
        """Gateway state for ``/stats`` (no API keys, ever)."""
        with self._lock:
            active = {
                name: {"jobs": len(jobs), "spool_bytes": sum(jobs.values())}
                for name, jobs in sorted(self._active.items())
            }
        return {
            "mode": "open" if self.directory.open else "tenants",
            "dispatch_window": self.window,
            "lanes": self.drr.snapshot(),
            "active": active,
            "tenants": self.directory.snapshot(),
            "idempotency_keys": self.idempotency.entries(),
            "config_reloads": self.directory.reloads,
            "config_reload_errors": self.directory.reload_errors,
        }

    def render_metrics(self) -> str:
        """The ``repro_gateway_*`` exposition block for ``/metrics``."""
        for tenant_name, lane in self.drr.snapshot().items():
            self.metrics.gauge(
                "repro_gateway_lane_depth",
                help="Jobs waiting in each tenant's fair-share lane",
                tenant=tenant_name,
            ).set(lane["depth"])
        with self._lock:
            ledgers = {
                name: (len(jobs), sum(jobs.values()))
                for name, jobs in self._active.items()
            }
        for tenant_name in self._tenants_seen - set(ledgers):
            ledgers[tenant_name] = (0, 0)
        for tenant_name, (jobs, spool_bytes) in sorted(ledgers.items()):
            self.metrics.gauge(
                "repro_gateway_active_jobs",
                help="Admitted, non-terminal jobs per tenant",
                tenant=tenant_name,
            ).set(jobs)
            self.metrics.gauge(
                "repro_gateway_spool_bytes",
                help="Serialized payload bytes held by each tenant's active jobs",
                tenant=tenant_name,
            ).set(spool_bytes)
        self.metrics.gauge(
            "repro_gateway_config_reloads",
            help="Successful tenant-config hot reloads (SIGHUP)",
        ).set(self.directory.reloads)
        return render_prometheus(self.metrics)
