"""``repro.gateway`` — multi-tenant admission over the service stack.

The traffic-shaping contract between the HTTP server and the
spool/cluster executors, which none of the existing layers own:

* :mod:`~repro.gateway.tenants` — API-key → tenant resolution
  (constant-time compare, file-backed config, SIGHUP hot reload);
* :mod:`~repro.gateway.quota` — per-tenant token bucket, in-flight and
  spool-byte budgets (→ 429 + Retry-After);
* :mod:`~repro.gateway.fairshare` — deficit-round-robin lanes so a
  heavy tenant cannot starve a light one;
* :mod:`~repro.gateway.idempotency` — per-tenant idempotency keys on
  ``POST /jobs`` (replay returns the original job, exactly once under
  concurrent duplicates);
* :mod:`~repro.gateway.admission` — the :class:`Gateway` tying those
  together and pumping lane grants into the bounded spool queue.

The package is stdlib-only (plus :mod:`repro.obs`) and takes its
stores by injection, so ``repro.service`` can import it at module
scope without a cycle.
"""

from .admission import Admission, Gateway
from .fairshare import DeficitRoundRobin, LaneItem
from .idempotency import IdempotencyConflict, IdempotencyStore
from .quota import QuotaExceeded, TokenBucket
from .tenants import (
    AuthError,
    ForbiddenError,
    PUBLIC_TENANT,
    TenantDirectory,
    TenantSpec,
)

__all__ = [
    "Admission",
    "AuthError",
    "DeficitRoundRobin",
    "ForbiddenError",
    "Gateway",
    "IdempotencyConflict",
    "IdempotencyStore",
    "LaneItem",
    "PUBLIC_TENANT",
    "QuotaExceeded",
    "TenantDirectory",
    "TenantSpec",
    "TokenBucket",
]
