"""Per-tenant admission quotas: token-bucket rate, in-flight, spool bytes.

All three quotas shed load the same way — :class:`QuotaExceeded`, which
the HTTP layer maps to ``429`` with a ``Retry-After`` header — so a
well-behaved client needs exactly one retry discipline regardless of
*which* budget it blew (the :class:`~repro.service.client.ServiceClient`
submit loop already implements it).

A quota value of ``0`` means *unlimited*: the built-in open-mode tenant
runs with every quota at 0, which is how a service without a tenants
file keeps its original trust-everyone behavior.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Callable

__all__ = ["QuotaExceeded", "TokenBucket"]


class QuotaExceeded(RuntimeError):
    """A tenant blew one of its admission budgets (HTTP 429)."""

    def __init__(
        self, tenant: str, reason: str, message: str, retry_after: int = 1
    ) -> None:
        super().__init__(message)
        self.tenant = tenant
        #: Short machine-readable budget name: ``rate`` | ``in_flight``
        #: | ``spool_bytes`` | ``backlog`` — the rejection metric label.
        self.reason = reason
        self.retry_after = max(1, int(retry_after))


class TokenBucket:
    """Classic token bucket over a monotonic clock.

    ``rate`` is tokens/second, ``burst`` the bucket capacity (defaults
    to ``max(1, ceil(rate))`` so a momentarily idle tenant can always
    submit at least once).  ``rate == 0`` disables the bucket entirely.
    The clock is injectable so tests never sleep.
    """

    def __init__(
        self,
        rate: float,
        burst: float = 0.0,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate < 0 or burst < 0:
            raise ValueError("rate and burst must be >= 0")
        self.rate = float(rate)
        self.burst = float(burst) if burst > 0 else max(1.0, math.ceil(rate))
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()
        self._lock = threading.Lock()

    def take(self, n: float = 1.0) -> float:
        """Try to spend ``n`` tokens; 0.0 on success, else seconds to wait.

        Refusals do not spend partial tokens, so a rejected caller who
        honors the returned wait is guaranteed admission headroom when
        it comes back (absent competing traffic).
        """
        if self.rate <= 0:
            return 0.0
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._stamp) * self.rate
            )
            self._stamp = now
            if self._tokens >= n:
                self._tokens -= n
                return 0.0
            return (n - self._tokens) / self.rate

    def peek(self) -> float:
        """Tokens available right now (observability only)."""
        if self.rate <= 0:
            return float("inf")
        with self._lock:
            now = self._clock()
            return min(self.burst, self._tokens + (now - self._stamp) * self.rate)
