"""Per-tenant idempotency keys for ``POST /jobs``.

A client that retries a submission (connection drop, 5xx, its own
crash) sends the same ``Idempotency-Key`` header; the gateway then
returns the *original* job record instead of admitting a duplicate.
Keys are scoped per tenant — two tenants reusing the same key string
never collide — and stored on disk, so replays survive a server
restart.

Concurrency is the interesting part.  Two duplicate POSTs can race
before the first one has a job id.  The store resolves the race with
the same primitive the spool queue uses for claims — an atomic
filesystem operation:

* the **winner** creates ``<key>.lock`` with ``O_CREAT|O_EXCL``
  (exactly one creator succeeds), admits the job, then atomically
  renames the final ``{job_id, digest}`` record into place and drops
  the lock;
* every **loser** sees the lock, polls briefly for the final record,
  and replays it — or, if the winner *aborted* (its admission was quota-
  rejected), retakes the lock and becomes the winner itself;
* a loser that outwaits ``wait_timeout`` raises
  :class:`IdempotencyConflict`, which the HTTP layer maps to ``409``
  (the request is already in flight; retry, don't duplicate).

A crashed winner cannot wedge the key forever: locks older than
``stale_lock_seconds`` are broken and retaken.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path

__all__ = ["IdempotencyConflict", "IdempotencyStore", "PendingTicket"]


class IdempotencyConflict(RuntimeError):
    """A duplicate request is in flight and did not finish in time (409)."""


def _write_final(final: Path, job_id: str, digest: str) -> None:
    tmp = final.parent / f".{final.name}.{os.getpid()}.tmp"
    tmp.write_text(
        json.dumps(
            {"job_id": job_id, "digest": digest, "created": time.time()},
            sort_keys=True,
        ),
        encoding="utf-8",
    )
    os.replace(tmp, final)


class PendingTicket:
    """The winner's handle on a claimed key: commit or abort exactly once."""

    def __init__(self, store: "IdempotencyStore", final: Path, lock: Path) -> None:
        self._store = store
        self._final = final
        self._lock = lock
        self.settled = False

    def commit(self, job_id: str, digest: str) -> None:
        """Bind the key to the admitted job (atomic rename, then unlock)."""
        if self.settled:
            return
        _write_final(self._final, job_id, digest)
        self._unlock()

    def abort(self) -> None:
        """Release the key unbound (admission failed; a retry may win it)."""
        if self.settled:
            return
        self._unlock()

    def _unlock(self) -> None:
        self.settled = True
        try:
            self._lock.unlink()
        except OSError:
            pass


class IdempotencyStore:
    """File-backed ``(tenant, key) → {job_id, digest}`` map."""

    def __init__(
        self,
        root: str | os.PathLike,
        *,
        wait_timeout: float = 10.0,
        poll_interval: float = 0.01,
        stale_lock_seconds: float = 60.0,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.wait_timeout = wait_timeout
        self.poll_interval = poll_interval
        self.stale_lock_seconds = stale_lock_seconds

    def _final_path(self, tenant: str, key: str) -> Path:
        # Keys are client-chosen free text; hashing keeps the filename
        # fixed-width and path-safe without restricting the charset.
        hashed = hashlib.sha256(key.encode("utf-8")).hexdigest()
        directory = self.root / tenant
        directory.mkdir(parents=True, exist_ok=True)
        return directory / f"{hashed}.json"

    def peek(self, tenant: str, key: str) -> dict | None:
        """The committed record for ``key``, if any (no claim attempt)."""
        return self._read(self._final_path(tenant, key))

    @staticmethod
    def _read(final: Path) -> dict | None:
        try:
            return json.loads(final.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None

    def claim(self, tenant: str, key: str) -> dict | PendingTicket:
        """Resolve ``key``: a replay record (dict) or a winner's ticket.

        Exactly one concurrent caller per key gets a
        :class:`PendingTicket`; the rest block (bounded) until the
        winner commits and then receive the committed record.
        """
        final = self._final_path(tenant, key)
        lock = final.parent / f"{final.name}.lock"
        deadline = time.monotonic() + self.wait_timeout
        while True:
            committed = self._read(final)
            if committed is not None:
                return committed
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                self._break_stale_lock(lock)
                if time.monotonic() > deadline:
                    raise IdempotencyConflict(
                        f"idempotency key already in flight for tenant {tenant!r}"
                    ) from None
                # Bounded wait for the racing winner; not a service
                # handler hot loop — the winner commits in milliseconds.
                time.sleep(self.poll_interval)
                continue
            os.close(fd)
            # Won the lock — but the winner that held it before us may
            # have committed between our read and our open.
            committed = self._read(final)
            if committed is not None:
                try:
                    lock.unlink()
                except OSError:
                    pass
                return committed
            return PendingTicket(self, final, lock)

    def bind(self, tenant: str, key: str, job_id: str, digest: str) -> None:
        """Unconditionally (re)bind ``key`` — the mapped-job-vanished path."""
        _write_final(self._final_path(tenant, key), job_id, digest)

    def _break_stale_lock(self, lock: Path) -> None:
        try:
            age = time.time() - lock.stat().st_mtime
        except OSError:
            return  # already gone — the next loop iteration retries
        if age > self.stale_lock_seconds:
            try:
                lock.unlink()
            except OSError:
                pass

    def entries(self, tenant: str | None = None) -> int:
        pattern = f"{tenant}/*.json" if tenant else "*/*.json"
        return sum(1 for _ in self.root.glob(pattern))
