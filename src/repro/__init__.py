"""repro — parallel top-alignment repeat detection.

A production-quality reproduction of Romein, Heringa & Bal,
*A Million-Fold Speed Improvement in Genomic Repeats Detection*
(SC 2003): the O(n³) nonoverlapping top-alignment algorithm behind the
Repro protein-repeat detector, its SIMD-style batched alignment
engines, shared/distributed-memory schedulers, and a discrete-event
cluster simulator reproducing the paper's performance study.

Quickstart::

    from repro import find_repeats, tandem_repeat_sequence

    seq = tandem_repeat_sequence("ATGC", 3)       # "ATGCATGCATGC"
    result = find_repeats(seq, top_alignments=3)
    for aln in result.top_alignments:
        print(aln.score, aln.pairs)
"""

from .scoring import GapPenalties, blosum62, match_mismatch, pam250
from .sequences import (
    DNA,
    PROTEIN,
    RNA,
    Alphabet,
    Sequence,
    implant_repeats,
    pseudo_titin,
    random_sequence,
    read_fasta,
    tandem_repeat_sequence,
    write_fasta,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Alphabet",
    "DNA",
    "RNA",
    "PROTEIN",
    "Sequence",
    "read_fasta",
    "write_fasta",
    "random_sequence",
    "tandem_repeat_sequence",
    "implant_repeats",
    "pseudo_titin",
    "GapPenalties",
    "match_mismatch",
    "blosum62",
    "pam250",
    "find_top_alignments",
    "find_repeats",
    "RepeatFinder",
]

_CORE_EXPORTS = {"find_top_alignments", "find_repeats", "RepeatFinder"}


def __getattr__(name):
    """Lazily expose the core API (keeps ``import repro`` light)."""
    if name in _CORE_EXPORTS:
        from . import core

        return getattr(core, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
