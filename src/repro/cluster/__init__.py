"""repro.cluster: multi-node sharded execution over real sockets.

The distributed-memory story of §4, lifted from in-process message
passing to TCP: a coordinator with a node registry and lease-based
shard scheduling (:mod:`coordinator`, :mod:`registry`, :mod:`shards`),
worker node agents (:mod:`node`), a socket transport reproducing the
``parallel.msgpass`` envelope semantics so the paper's master/slave
protocol runs across machines (:mod:`transport`), and the bit-identity
execution/merge helpers (:mod:`execution`).

Failure model: a node may die at any moment (SIGKILL included).  Its
leases are released — fast path on connection drop, slow path on
heartbeat expiry or lease deadline — and reassigned, so a cluster scan
completes bit-identical to a single-node run as long as one node
survives.
"""

from .client import ClusterClient, ClusterError
from .coordinator import ClusterJob, Coordinator, CoordinatorConfig
from .execution import finish_from_rows, merge_scan_reports, run_rows_shard, run_scan_shard
from .node import NodeAgent, NodeConfig, node_main
from .registry import NodeInfo, NodeRegistry
from .shards import Lease, Shard, ShardScheduler, plan_record_shards, plan_row_shards
from .transport import SocketCommunicator, SocketWorld

__all__ = [
    "ClusterClient",
    "ClusterError",
    "ClusterJob",
    "Coordinator",
    "CoordinatorConfig",
    "Lease",
    "NodeAgent",
    "NodeConfig",
    "NodeInfo",
    "NodeRegistry",
    "Shard",
    "ShardScheduler",
    "SocketCommunicator",
    "SocketWorld",
    "finish_from_rows",
    "merge_scan_reports",
    "node_main",
    "plan_record_shards",
    "plan_row_shards",
    "run_rows_shard",
    "run_scan_shard",
]
