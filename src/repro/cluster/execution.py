"""Shard execution (node side) and job completion (coordinator side).

Bit-identity is the contract of this module, in both shard kinds:

``scan`` shards
    Records of a database scan are searched independently, so a node
    running :class:`~repro.core.scan.DatabaseScanner` over its record
    slice produces exactly the reports the single-node scanner would
    have produced for those records.  Concatenating shard reports in
    shard order therefore reproduces the full single-node scan — the
    equivalence the acceptance tests assert byte-for-byte.

``rows`` shards
    In :func:`~repro.core.topalign.find_top_alignments`, every task
    starts at ``score = +inf``, so each split is aligned once under the
    *empty* (version-0) override triangle before anything is accepted.
    Those version-0 bottom rows are embarrassingly parallel; nodes
    compute them with the same engine call the sequential loop makes
    and ship them back bit-exact (dtype + raw bytes).
    :func:`finish_from_rows` then seeds a fresh state with the rows —
    tasks carry ``score = row.max(), aligned_with = 0``, precisely the
    state the sequential loop reaches after its first pass — and runs
    the identical best-first loop, so the acceptance order, alignments
    and families match the single-node run exactly.  Work counters
    legitimately differ (the checkpoint-resume contract).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.result import RepeatResult
from ..core.scan import DatabaseScanner
from ..core.tasks import Task, TaskQueue
from ..core.topalign import TopAlignmentState
from ..sequences.sequence import Sequence
from ..service.protocol import JobSpec
from ..service.workers import build_finder
from .protocol import report_to_dict

__all__ = [
    "finish_from_rows",
    "index_config_from_options",
    "merge_scan_reports",
    "run_rows_shard",
    "run_scan_shard",
    "scan_shard_priorities",
    "scan_spec_dict",
]

#: Placeholder sequence for scan specs: :func:`build_finder` only reads
#: scoring/search knobs, but :class:`JobSpec` validation requires one.
SCAN_PLACEHOLDER = "AA"


def scan_spec_dict(spec: JobSpec) -> dict[str, Any]:
    """A :class:`JobSpec` dict reusable across every record of a scan."""
    payload = spec.to_dict()
    payload["sequence"] = SCAN_PLACEHOLDER
    payload["seq_id"] = ""
    return payload


def index_config_from_options(options: dict[str, Any]):
    """The :class:`~repro.index.IndexConfig` an options dict asks for.

    Returns ``None`` when indexing is off.  Only the wire-safe knobs
    (``index_k``) are plumbed; the calibration knobs keep their
    defaults so every node routes identically.
    """
    if not options.get("index"):
        return None
    from ..index.routing import IndexConfig

    return IndexConfig(k=int(options.get("index_k", 0) or 0))


def _scanner_for(payload: dict[str, Any]) -> DatabaseScanner:
    spec = JobSpec.from_dict(payload["spec"])
    options = payload.get("options") or {}
    return DatabaseScanner(
        finder=build_finder(spec),
        mask=bool(options.get("mask", False)),
        mask_window=int(options.get("mask_window", 12)),
        mask_threshold=float(options.get("mask_threshold", 1.5)),
        min_length=int(options.get("min_length", 10)),
        index=index_config_from_options(options),
    )


def run_scan_shard(payload: dict[str, Any]) -> dict[str, Any]:
    """Execute one ``scan`` shard; returns the wire-ready result.

    ``reports`` holds one dict per scanned record, in record order
    (records below the scanner's ``min_length`` are skipped, exactly as
    the single-node scanner skips them).
    """
    spec = JobSpec.from_dict(payload["spec"])
    scanner = _scanner_for(payload)
    sequences = [
        Sequence(rec["sequence"].upper(), spec.alphabet, id=rec.get("id", ""))
        for rec in payload["records"]
    ]
    reports = scanner.scan(sequences)
    return {
        "shard_id": payload["shard_id"],
        "first_index": payload["first_index"],
        "n_records": len(payload["records"]),
        "reports": [report_to_dict(report) for report in reports],
    }


def run_rows_shard(payload: dict[str, Any]) -> dict[str, Any]:
    """Execute one ``rows`` shard: version-0 bottom rows for a split range.

    Uses the same state/engine construction and the same
    ``engine.last_row(problem_for(r))`` call the sequential first pass
    makes, so each row is bit-identical to the one the single-node loop
    would have cached.
    """
    spec = JobSpec.from_dict(payload["spec"])
    finder = build_finder(spec)
    sequence = Sequence(spec.normalized_sequence(), spec.alphabet, id=spec.seq_id)
    exchange = finder.resolve_exchange(sequence)
    state = TopAlignmentState(sequence, exchange, finder.gaps, engine=spec.engine)
    rows = []
    for r in range(int(payload["r_start"]), int(payload["r_stop"])):
        row = state.engine.last_row(state.problem_for(r))
        rows.append((int(r), np.asarray(row)))
    return {"shard_id": payload["shard_id"], "rows": rows}


def scan_shard_priorities(
    spec: JobSpec,
    records: list[dict[str, str]],
    ranges: list[tuple[int, int]],
    options: dict[str, Any],
) -> list[int]:
    """Per-shard lease priority: the best k-mer promise in each range.

    O(total record length) — one profile per record, no kernel work —
    so the coordinator can order scan shards most-promising-first
    before any lease is issued.  A record that fails to profile simply
    contributes no promise (the shard still runs; nodes isolate
    per-record failures themselves).
    """
    config = index_config_from_options(options)
    if config is None:
        return [0] * len(ranges)
    from ..index.kmer import build_profile
    from ..index.routing import promise_score

    finder = build_finder(spec)
    promises: list[float] = []
    for rec in records:
        try:
            seq = Sequence(
                rec["sequence"].upper(), spec.alphabet, id=rec.get("id", "")
            )
            profile = build_profile(seq, **config.profile_params())
            promises.append(
                promise_score(profile, finder.resolve_exchange(seq), config)
            )
        except Exception:  # noqa: BLE001 - promise is advisory only
            promises.append(0.0)
    return [
        int(round(max(promises[start:stop], default=0.0)))
        for start, stop in ranges
    ]


def merge_scan_reports(shard_results: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Concatenate shard reports in shard order (the full scan's output)."""
    merged: list[dict[str, Any]] = []
    for shard in shard_results:
        merged.extend(shard["reports"])
    return merged


def finish_from_rows(
    spec: JobSpec, rows: dict[int, np.ndarray]
) -> RepeatResult:
    """Finish a sharded single-sequence job from its version-0 rows.

    Seeds a fresh :class:`TopAlignmentState` with the node-computed
    bottom rows and runs the best-first loop of
    :func:`~repro.core.topalign.find_top_alignments` verbatim.  Seeding
    is sound because in the sequential loop every task (score ``+inf``)
    is aligned exactly once at triangle version 0 before the first
    acceptance: a task with ``score = row.max(), aligned_with = 0`` and
    its row cached in ``bottom_rows`` is byte-for-byte the state those
    first alignments leave behind, so the deterministic ``(score, -r)``
    heap replays the identical acceptance order.
    """
    finder = build_finder(spec)
    sequence = Sequence(spec.normalized_sequence(), spec.alphabet, id=spec.seq_id)
    exchange = finder.resolve_exchange(sequence)
    state = TopAlignmentState(sequence, exchange, finder.gaps, engine=spec.engine)
    missing = [r for r in range(1, state.m) if r not in rows]
    if missing:
        raise ValueError(f"missing version-0 rows for split(s) {missing[:8]}")

    checker = state.invariants
    queue = TaskQueue(guard=checker.guard_task if checker is not None else None)
    for r in range(1, state.m):
        row = np.asarray(rows[r], dtype=np.float64)
        state.bottom_rows.put(r, row)
        queue.insert(Task(r, score=float(row.max()), aligned_with=0))
    state.stats.alignments += state.m - 1  # the rows the nodes computed

    k = spec.top_alignments
    while state.n_found < k and queue:
        task = queue.pop_highest()
        if task.score <= spec.min_score:
            break
        if task.is_current(state.n_found):
            state.accept_task(task)
        else:
            state.align_task(task)
        queue.insert(task)

    alignments = list(state.found)
    repeats = finder.delineate(alignments, len(sequence))
    return RepeatResult(
        top_alignments=alignments, repeats=repeats, stats=state.stats
    )
