"""Client for a cluster coordinator (used by the CLI and the smoke test).

One connection, strict request/response.  Results come back as the
canonical JSON dicts of :mod:`repro.cluster.protocol`, so comparing a
cluster scan against a local :class:`~repro.core.scan.DatabaseScanner`
run is a plain ``==`` on shortest-repr-float structures.
"""

from __future__ import annotations

import time
from typing import Any

from ..service.protocol import JobSpec
from . import protocol
from .transport import Channel, connect

__all__ = ["ClusterClient", "ClusterError"]


class ClusterError(RuntimeError):
    """The coordinator rejected a request or a job failed."""


class ClusterClient:
    """Thin request/response wrapper over one coordinator connection."""

    def __init__(
        self, host: str, port: int, *, timeout: float = 30.0, attempts: int = 20
    ) -> None:
        self._channel: Channel = connect(
            host, port, timeout=timeout, attempts=attempts
        )
        self._channel.send({"kind": protocol.HELLO, "role": "client"})
        welcome = self._channel.recv(timeout=timeout)
        if welcome.get("kind") != protocol.WELCOME:
            raise ClusterError(f"expected welcome, got {welcome!r}")

    def close(self) -> None:
        self._channel.close()

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request(self, frame: dict, timeout: float = 60.0) -> dict:
        self._channel.send(frame)
        reply = self._channel.recv(timeout=timeout)
        if reply.get("kind") == protocol.ERROR:
            raise ClusterError(reply.get("error", "coordinator error"))
        if reply.get("kind") != protocol.OK:
            # Every non-error coordinator reply is an ``ok`` frame; a
            # stray kind here means the request/response pairing slipped.
            raise ClusterError(f"unexpected reply kind {reply.get('kind')!r}")
        return reply

    # -- operations ------------------------------------------------------

    def submit_scan(
        self,
        spec: JobSpec,
        records: list[dict[str, str]],
        options: dict[str, Any] | None = None,
    ) -> str:
        """Submit a sharded scan; returns the cluster job id."""
        reply = self._request({
            "kind": protocol.SUBMIT_SCAN,
            "spec": spec.to_dict(),
            "records": records,
            "options": dict(options or {}),
        })
        return reply["job_id"]

    def job_status(self, job_id: str) -> dict[str, Any]:
        reply = self._request({"kind": protocol.JOB_STATUS, "job_id": job_id})
        return reply["status"]

    def wait_scan(
        self, job_id: str, *, timeout: float = 300.0, poll: float = 0.1
    ) -> list[dict[str, Any]]:
        """Poll until a scan job finishes; returns its merged reports."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.job_status(job_id)
            if status["state"] == "done":
                return status["reports"]
            if status["state"] == "failed":
                raise ClusterError(
                    f"cluster job {job_id} failed: {status.get('error')}"
                )
            if time.monotonic() >= deadline:
                raise TimeoutError(f"cluster job {job_id} still running")
            time.sleep(poll)

    def scan(
        self,
        spec: JobSpec,
        records: list[dict[str, str]],
        options: dict[str, Any] | None = None,
        *,
        timeout: float = 300.0,
    ) -> list[dict[str, Any]]:
        """Submit a scan and block for its merged reports."""
        return self.wait_scan(
            self.submit_scan(spec, records, options), timeout=timeout
        )

    def stats(self) -> dict[str, Any]:
        return self._request({"kind": protocol.STATS})["stats"]

    def metrics(self) -> str:
        return self._request({"kind": protocol.METRICS})["text"]
