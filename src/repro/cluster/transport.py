"""Socket transport: length-prefixed JSON frames + msgpass semantics.

This is the **only** module in :mod:`repro.cluster` that touches raw
sockets (lint rule RPR012 enforces that); everything above it speaks
:class:`Channel` objects and plain Python payloads.

Wire format
-----------
One frame = a 4-byte big-endian length prefix followed by that many
bytes of UTF-8 JSON.  Payloads go through a small tagged codec
(:func:`encode_payload` / :func:`decode_payload`) so the protocol can
carry the objects the paper's master/slave protocol actually exchanges
— numpy bottom rows, byte strings, tuples of pairs — without pickle on
the wire (a cluster port must not be a remote-code-execution port).

msgpass lift
------------
:class:`SocketCommunicator` reproduces the envelope semantics of
:class:`repro.parallel.msgpass.Communicator` — tagged point-to-point
``send``/``recv`` with source/tag filtering and buffering of
non-matching messages — over real TCP connections, in a star topology
with rank 0 as the hub (which is the only shape §4.3's master/slave
protocol uses: slaves never talk to each other).  FIFO order per
(sender, receiver) pair falls out of TCP byte-stream ordering plus one
dedicated reader thread per connection.  :class:`SocketWorld` mirrors
:class:`repro.parallel.msgpass.World`, so ``MasterRunner`` and
``slave_main`` run unchanged across real processes on real sockets.
"""

from __future__ import annotations

import base64
import json
import multiprocessing as mp
import queue as queue_mod
import socket
import struct
import threading
import time
from typing import Any, Callable

import numpy as np

__all__ = [
    "ANY",
    "DEFAULT_TIMEOUT",
    "Channel",
    "FrameError",
    "Listener",
    "Message",
    "SocketCommunicator",
    "SocketWorld",
    "connect",
    "decode_payload",
    "encode_payload",
]

#: Wildcard for ``recv`` source/tag filters (mirrors msgpass.ANY).
ANY = -1

#: Every socket this package creates carries an explicit timeout — a
#: silent distributed hang is worse than a loud failure (RPR012).
DEFAULT_TIMEOUT = 30.0

#: Frames larger than this are protocol bugs, not payloads.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_LEN = struct.Struct(">I")


class FrameError(ConnectionError):
    """The peer closed mid-frame or sent a malformed frame."""


# ---------------------------------------------------------------------------
# payload codec — JSON with tagged ndarray/bytes/tuple extensions
# ---------------------------------------------------------------------------


def encode_payload(obj: Any) -> Any:
    """JSON-encodable form of ``obj`` (ndarray/bytes/tuple tagged)."""
    if isinstance(obj, np.ndarray):
        return {
            "__nd__": {
                "dtype": obj.dtype.str,
                "shape": list(obj.shape),
                "b64": base64.b64encode(np.ascontiguousarray(obj).tobytes()).decode(
                    "ascii"
                ),
            }
        }
    if isinstance(obj, (bytes, bytearray)):
        return {"__bytes__": base64.b64encode(bytes(obj)).decode("ascii")}
    if isinstance(obj, tuple):
        return {"__tuple__": [encode_payload(item) for item in obj]}
    if isinstance(obj, list):
        return [encode_payload(item) for item in obj]
    if isinstance(obj, dict):
        encoded = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                raise TypeError(f"frame dict keys must be str, got {type(key)}")
            if key.startswith("__") and key.endswith("__"):
                raise TypeError(f"frame dict key {key!r} collides with codec tags")
            encoded[key] = encode_payload(value)
        return encoded
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot encode {type(obj).__name__} into a JSON frame")


def decode_payload(obj: Any) -> Any:
    """Inverse of :func:`encode_payload`."""
    if isinstance(obj, dict):
        if "__nd__" in obj:
            spec = obj["__nd__"]
            data = base64.b64decode(spec["b64"])
            return np.frombuffer(data, dtype=np.dtype(spec["dtype"])).reshape(
                spec["shape"]
            )
        if "__bytes__" in obj:
            return base64.b64decode(obj["__bytes__"])
        if "__tuple__" in obj:
            return tuple(decode_payload(item) for item in obj["__tuple__"])
        return {key: decode_payload(value) for key, value in obj.items()}
    if isinstance(obj, list):
        return [decode_payload(item) for item in obj]
    return obj


# ---------------------------------------------------------------------------
# channels — framed, locked, timeout-carrying connections
# ---------------------------------------------------------------------------


class Channel:
    """One framed TCP connection: locked sends, timeout-bounded reads.

    ``send`` may be called from several threads (the node agent's
    heartbeat thread shares the channel with its work loop — the same
    "protect all MPI calls with a mutex" workaround §4.3 describes);
    ``recv`` must stay on one thread per channel, which is what keeps
    per-pair FIFO order trivial.
    """

    def __init__(self, sock: socket.socket, *, timeout: float = DEFAULT_TIMEOUT) -> None:
        sock.settimeout(timeout)
        self._sock = sock
        self._send_lock = threading.Lock()
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def peername(self) -> str:
        try:
            host, port = self._sock.getpeername()[:2]
            return f"{host}:{port}"
        except OSError:
            return "<closed>"

    def send(self, obj: Any) -> None:
        """Send one frame (thread-safe)."""
        body = json.dumps(
            encode_payload(obj), separators=(",", ":"), allow_nan=False
        ).encode("utf-8")
        if len(body) > MAX_FRAME_BYTES:
            raise FrameError(f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES")
        with self._send_lock:
            self._sock.sendall(_LEN.pack(len(body)) + body)

    def recv(self, timeout: float | None = None) -> Any:
        """Receive one frame; raises :class:`FrameError` on EOF/garbage
        and :class:`TimeoutError` when ``timeout`` (or the channel
        default) elapses with no complete frame."""
        if timeout is not None:
            self._sock.settimeout(timeout)
        try:
            header = self._recv_exact(_LEN.size)
            (length,) = _LEN.unpack(header)
            if length > MAX_FRAME_BYTES:
                raise FrameError(f"peer announced an {length}-byte frame")
            body = self._recv_exact(length)
        except socket.timeout:
            raise TimeoutError("no complete frame within the timeout") from None
        try:
            return decode_payload(json.loads(body.decode("utf-8")))
        except ValueError as exc:
            raise FrameError(f"malformed frame: {exc}") from None

    def _recv_exact(self, n: int) -> bytes:
        chunks: list[bytes] = []
        remaining = n
        while remaining:
            chunk = self._sock.recv(min(remaining, 1 << 20))
            if not chunk:
                raise FrameError("connection closed mid-frame")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def close(self) -> None:
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()


class Listener:
    """A bound, listening TCP socket handing out :class:`Channel` objects."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, *, timeout: float = DEFAULT_TIMEOUT
    ) -> None:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, port))
        sock.listen(128)
        self._sock = sock
        self.host, self.port = sock.getsockname()[:2]

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def accept(self, timeout: float | None = None) -> Channel:
        """Accept one connection; raises :class:`TimeoutError` when none
        arrives in time (callers poll so shutdown stays responsive)."""
        if timeout is not None:
            self._sock.settimeout(timeout)
        try:
            sock, _addr = self._sock.accept()
        except socket.timeout:
            raise TimeoutError("no incoming connection within the timeout") from None
        return Channel(sock)

    def close(self) -> None:
        self._sock.close()


def connect(
    host: str, port: int, *, timeout: float = DEFAULT_TIMEOUT, attempts: int = 1,
    retry_delay: float = 0.1,
) -> Channel:
    """Open a framed connection, optionally retrying a slow-to-bind peer."""
    last: Exception | None = None
    for attempt in range(max(1, attempts)):
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return Channel(sock, timeout=timeout)
        except OSError as exc:
            last = exc
            if attempt + 1 < attempts:
                time.sleep(retry_delay * (attempt + 1))
    raise ConnectionError(f"cannot connect to {host}:{port}: {last}")


# ---------------------------------------------------------------------------
# msgpass over sockets
# ---------------------------------------------------------------------------


class Message:
    """A received envelope (same shape as msgpass.Message)."""

    __slots__ = ("source", "tag", "payload")

    def __init__(self, source: int, tag: int, payload: Any) -> None:
        self.source = source
        self.tag = tag
        self.payload = payload


class SocketCommunicator:
    """Tagged send/recv with envelope matching, over TCP channels.

    Star topology: rank 0 (the hub) holds one channel per peer rank;
    every other rank holds a single channel to the hub and may only
    address rank 0.  The guarantees §4.3's protocol relies on hold by
    construction:

    * FIFO per (sender, receiver) pair — each pair shares one TCP
      connection, and the hub drains each connection with a dedicated
      reader thread into one inbox queue;
    * ``recv`` buffers non-matching envelopes for later calls, in
      arrival order (MPI envelope-matching semantics).
    """

    def __init__(self, rank: int, size: int, channels: dict[int, Channel]) -> None:
        self.rank = rank
        self.size = size
        self._channels = channels
        self._pending: list[Message] = []
        self._inbox: queue_mod.Queue = queue_mod.Queue()
        self._readers: list[threading.Thread] = []
        for peer, channel in channels.items():
            thread = threading.Thread(
                target=self._drain,
                args=(peer, channel),
                name=f"sockcomm-{rank}-reader-{peer}",
                daemon=True,
            )
            thread.start()
            self._readers.append(thread)

    def _drain(self, peer: int, channel: Channel) -> None:
        while True:
            try:
                frame = channel.recv(timeout=3600.0)
            except (FrameError, TimeoutError, OSError):
                return  # peer is gone; recv() reports the silence as a timeout
            self._inbox.put((frame["source"], frame["tag"], frame["payload"]))

    def send(self, payload: Any, dest: int, tag: int = 0) -> None:
        """Deliver ``payload`` to rank ``dest`` (buffered by the kernel)."""
        if not 0 <= dest < self.size:
            raise ValueError(f"destination rank {dest} outside 0..{self.size - 1}")
        channel = self._channels.get(dest)
        if channel is None:
            raise ValueError(
                f"rank {self.rank} has no channel to rank {dest} "
                "(socket communicators are a star around rank 0)"
            )
        channel.send({"source": self.rank, "tag": tag, "payload": payload})

    def recv(
        self, source: int = ANY, tag: int = ANY, timeout: float | None = 120.0
    ) -> Message:
        """Blocking receive with envelope matching (see msgpass.recv)."""
        for idx, msg in enumerate(self._pending):
            if self._matches(msg, source, tag):
                return self._pending.pop(idx)
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                raise TimeoutError(
                    f"rank {self.rank}: no message matching source={source} "
                    f"tag={tag} within {timeout}s"
                )
            try:
                src, msg_tag, payload = self._inbox.get(timeout=remaining)
            except queue_mod.Empty:
                raise TimeoutError(
                    f"rank {self.rank}: no message matching source={source} "
                    f"tag={tag} within {timeout}s"
                ) from None
            msg = Message(src, msg_tag, payload)
            if self._matches(msg, source, tag):
                return msg
            self._pending.append(msg)

    def bcast_from(self, payload: Any, tag: int = 0) -> None:
        """Send ``payload`` to every connected peer."""
        for dest in self._channels:
            self.send(payload, dest, tag)

    def close(self) -> None:
        for channel in self._channels.values():
            channel.close()

    @staticmethod
    def _matches(msg: Message, source: int, tag: int) -> bool:
        return (source == ANY or msg.source == source) and (
            tag == ANY or msg.tag == tag
        )


def _socket_child_main(
    rank: int,
    size: int,
    host: str,
    port: int,
    entry: Callable[[SocketCommunicator, Any], None],
    payload: Any,
) -> None:
    channel = connect(host, port, attempts=50, retry_delay=0.05)
    channel.send({"source": rank, "tag": 0, "payload": {"hello_rank": rank}})
    comm = SocketCommunicator(rank, size, {0: channel})
    try:
        entry(comm, payload)
    finally:
        comm.close()


class SocketWorld:
    """Drop-in for :class:`repro.parallel.msgpass.World` over TCP.

    Rank 0 lives in the caller; ranks ``1..size-1`` are spawned
    processes that connect back over loopback sockets.  The same
    ``start(entry, payload) / comm / shutdown()`` contract lets the
    distributed master/slave protocol run unchanged on a real network
    transport.
    """

    def __init__(self, size: int, *, host: str = "127.0.0.1") -> None:
        if size < 1:
            raise ValueError("world size must be >= 1")
        self.size = size
        self._listener = Listener(host, 0)
        self._procs: list[mp.process.BaseProcess] = []
        self.comm: SocketCommunicator | None = None

    def start(
        self, entry: Callable[[SocketCommunicator, Any], None], payload: Any
    ) -> None:
        """Spawn ranks ``1..size-1`` and wire up the hub communicator."""
        if self._procs or self.comm is not None:
            raise RuntimeError("world already started")
        ctx = mp.get_context("fork")
        for rank in range(1, self.size):
            proc = ctx.Process(
                target=_socket_child_main,
                args=(
                    rank,
                    self.size,
                    self._listener.host,
                    self._listener.port,
                    entry,
                    payload,
                ),
                name=f"repro-sockrank-{rank}",
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)
        channels: dict[int, Channel] = {}
        deadline = time.monotonic() + DEFAULT_TIMEOUT
        while len(channels) < self.size - 1:
            channel = self._listener.accept(timeout=max(0.1, deadline - time.monotonic()))
            hello = channel.recv(timeout=DEFAULT_TIMEOUT)
            rank = int(hello["payload"]["hello_rank"])
            channels[rank] = channel
        self.comm = SocketCommunicator(0, self.size, channels)

    def shutdown(self, timeout: float = 30.0) -> None:
        """Join all children; terminate stragglers after ``timeout``."""
        for proc in self._procs:
            proc.join(timeout=timeout)
            if proc.is_alive():  # pragma: no cover - protocol bug escape hatch
                proc.terminate()
                proc.join(timeout=5.0)
        self._procs.clear()
        if self.comm is not None:
            self.comm.close()
            self.comm = None
        self._listener.close()

    def __enter__(self) -> "SocketWorld":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
