"""Control-plane protocol of the cluster (coordinator ⇄ node / client).

Every frame is a JSON object with a ``kind`` field, carried over the
:mod:`repro.cluster.transport` framing.  Nodes *pull*: a node sends
``ready`` whenever it has a free slot and the coordinator answers with
exactly one of ``lease`` / ``wait`` / ``shutdown``.  ``heartbeat`` and
``result`` frames are one-way (no response), which keeps the node's
request/response loop trivially race-free while a background thread
heartbeats over the same channel.  A draining node (SIGTERM) finishes
its current shard, then sends a one-way ``goodbye`` instead of another
``ready`` — the coordinator marks it drained (a clean exit, not a
death) and stops counting it toward capacity.

Shards
------
A shard is the unit of leased work, one of two kinds:

``scan``
    a contiguous slice of a multi-record database scan — each record
    is searched independently, so any partition of the records merges
    back bit-identically (the :class:`~repro.core.scan.DatabaseScanner`
    equivalence the acceptance tests assert);
``rows``
    a contiguous range of split points ``r`` of one large sequence —
    the version-0 bottom rows of §3's first pass, which dominate the
    new algorithm's work.  The coordinator seeds a
    :class:`~repro.core.topalign.TopAlignmentState` with the returned
    rows and finishes the best-first loop locally, reproducing the
    sequential acceptance order exactly.

Results are serialized with shortest-repr floats (plain ``json``), so
two payloads compare equal iff the underlying results are
bit-identical — the same discipline :mod:`repro.service.protocol`
uses for the content-addressed cache.
"""

from __future__ import annotations

from typing import Any

from ..core.result import RepeatResult
from ..core.scan import SequenceReport

__all__ = [
    "HELLO",
    "WELCOME",
    "HEARTBEAT",
    "GOODBYE",
    "READY",
    "LEASE",
    "WAIT",
    "SHUTDOWN",
    "RESULT",
    "SUBMIT_SCAN",
    "JOB_STATUS",
    "STATS",
    "METRICS",
    "ERROR",
    "OK",
    "ProtocolError",
    "report_to_dict",
    "result_to_dict",
    "scan_shard",
    "rows_shard",
]

# node / client -> coordinator
HELLO = "hello"
HEARTBEAT = "heartbeat"
GOODBYE = "goodbye"  # one-way: draining node leaving cleanly
READY = "ready"
RESULT = "result"
SUBMIT_SCAN = "submit_scan"
JOB_STATUS = "job_status"
STATS = "stats"
METRICS = "metrics"

# coordinator -> node / client
WELCOME = "welcome"
LEASE = "lease"
WAIT = "wait"
SHUTDOWN = "shutdown"
ERROR = "error"
OK = "ok"


class ProtocolError(RuntimeError):
    """The peer sent a frame the protocol does not allow here."""


def scan_shard(shard_id: int, spec: dict[str, Any], records: list[dict[str, str]],
               first_index: int, options: dict[str, Any] | None = None
               ) -> dict[str, Any]:
    """A ``scan`` shard: search ``records`` under the finder ``spec``.

    ``first_index`` is the offset of ``records[0]`` in the full record
    list, so merged reports come back in submission order.  ``options``
    carries the :class:`~repro.core.scan.DatabaseScanner` knobs (mask,
    mask_window, mask_threshold, min_length, index, index_k).
    """
    return {
        "kind": "scan",
        "shard_id": shard_id,
        "spec": spec,
        "records": records,
        "first_index": first_index,
        "options": dict(options or {}),
    }


def rows_shard(shard_id: int, spec: dict[str, Any], r_start: int, r_stop: int
               ) -> dict[str, Any]:
    """A ``rows`` shard: version-0 bottom rows for ``r in [r_start, r_stop)``."""
    return {
        "kind": "rows",
        "shard_id": shard_id,
        "spec": spec,
        "r_start": r_start,
        "r_stop": r_stop,
    }


def result_to_dict(result: RepeatResult) -> dict[str, Any]:
    """Canonical JSON form of a :class:`RepeatResult` (stats excluded).

    Work counters are deliberately left out: sharded and local runs
    must produce bit-identical *alignments and families*, while their
    counters legitimately differ (the same contract checkpoint resume
    documents).
    """
    return {
        "top_alignments": [
            {
                "index": int(a.index),
                "r": int(a.r),
                "score": float(a.score),
                "pairs": [[int(i), int(j)] for i, j in a.pairs],
            }
            for a in result.top_alignments
        ],
        "repeats": [
            {
                "family": int(rep.family),
                "copies": [[int(s), int(e)] for s, e in rep.copies],
                "columns": int(rep.columns),
                "n_copies": int(rep.n_copies),
                "unit_length": float(rep.unit_length),
            }
            for rep in result.repeats
        ],
    }


def report_to_dict(report: SequenceReport) -> dict[str, Any]:
    """Canonical JSON form of one scanned record's report."""
    return {
        "id": report.id,
        "length": int(report.length),
        "error": report.error,
        "routed": report.routed,
        "result": None if report.result is None else result_to_dict(report.result),
        "best_score": float(report.best_score),
        "n_families": int(report.n_families),
        "repeat_fraction": float(report.repeat_fraction),
    }
