"""Shard planning and the lease-based shard scheduler.

The scheduling model reproduces §4's fault-tolerant work distribution
with today's vocabulary:

* every shard is handed out as a **lease** — an assignment with a
  deadline.  A node that dies (SIGKILL, heartbeat loss, connection
  drop) never loses work: its leases are *released* back to the
  pending queue and reassigned, so the run completes as long as one
  node survives;
* an expired lease is not proof of death, only of slowness, so the
  shard is simply leased again — the **first** result for a shard
  wins and late duplicates are dropped (results are deterministic, so
  which copy wins is unobservable);
* failed shards retry with **jittered exponential backoff** (bounded
  attempts) so one poisoned shard cannot hot-loop the cluster;
* an idle node with nothing pending **steals** work: it gets a
  duplicate lease on the longest-running in-flight shard — the same
  speculation-over-idleness trade the paper's master makes when it
  hands out tasks it may have to discard.

The scheduler is pure bookkeeping (no sockets, no threads, no clock of
its own — callers pass ``now``), which is what makes its failover
properties unit-testable without a cluster.
"""

from __future__ import annotations

import random
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = [
    "Lease",
    "Shard",
    "ShardScheduler",
    "merge_shard_results",
    "plan_record_shards",
    "plan_row_shards",
]


@dataclass(frozen=True)
class Shard:
    """One leasable unit of work (payload already wire-encodable).

    ``priority`` orders the initial pending queue (higher first; ties
    by shard id): the coordinator sets it from the k-mer index promise
    of each record range so repeat-bearing shards are leased first and
    first-result-wins leases finish the interesting work early.
    """

    shard_id: int
    payload: dict[str, Any]
    priority: int = 0


@dataclass
class Lease:
    """One live assignment of a shard to a node."""

    lease_id: int
    shard: Shard
    node_id: str
    issued_at: float
    deadline: float
    attempt: int
    stolen: bool = False


@dataclass
class _ShardState:
    shard: Shard
    attempt: int = 0
    not_before: float = 0.0
    done: bool = False
    result: Any = None
    leases: list[int] = field(default_factory=list)  # live lease ids


def plan_record_shards(n_records: int, shard_size: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` record ranges of at most ``shard_size``."""
    if shard_size < 1:
        raise ValueError("shard_size must be >= 1")
    return [
        (start, min(start + shard_size, n_records))
        for start in range(0, n_records, shard_size)
    ]


def plan_row_shards(m: int, n_shards: int) -> list[tuple[int, int]]:
    """Split the split-point range ``1..m-1`` into ``n_shards`` even ranges.

    Work per split r is proportional to ``r * (m - r)``, but even
    ranges keep the plan trivial and work stealing absorbs the skew —
    the same argument §4.3 makes for its dynamic distribution.
    """
    total = m - 1
    if total < 1:
        raise ValueError("sequence must have at least 2 residues")
    n_shards = max(1, min(n_shards, total))
    bounds = [1 + (total * i) // n_shards for i in range(n_shards + 1)]
    return [
        (bounds[i], bounds[i + 1])
        for i in range(n_shards)
        if bounds[i] < bounds[i + 1]
    ]


def merge_shard_results(results: dict[int, Any], n_shards: int) -> list[Any]:
    """Shard results in shard-id order (raises if any shard is missing)."""
    missing = [i for i in range(n_shards) if i not in results]
    if missing:
        raise ValueError(f"missing results for shard(s) {missing}")
    return [results[i] for i in range(n_shards)]


class ShardScheduler:
    """Lease bookkeeping for one job's shards.

    Thread-safe; every time-dependent method takes ``now`` explicitly
    (monotonic seconds) so tests can drive failover deterministically.
    """

    def __init__(
        self,
        shards: Iterable[Shard],
        *,
        lease_seconds: float = 60.0,
        max_attempts: int = 4,
        backoff_base: float = 0.25,
        backoff_cap: float = 10.0,
        max_duplicates: int = 2,
        seed: int = 0x5EED,
    ) -> None:
        self._lock = threading.Lock()
        self._states = {s.shard_id: _ShardState(shard=s) for s in shards}
        if not self._states:
            raise ValueError("a job needs at least one shard")
        # Most-promising-first: priority descending, shard id ascending.
        # Requeues (backoff, released leases) append at the tail — a
        # retried shard has already had its fair shot at the front.
        self._pending: deque[int] = deque(
            sorted(
                self._states,
                key=lambda sid: (-self._states[sid].shard.priority, sid),
            )
        )
        self._leases: dict[int, Lease] = {}
        self._next_lease_id = 0
        self.lease_seconds = lease_seconds
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.max_duplicates = max_duplicates
        #: Seeded: backoff jitter must never make a failover test flaky.
        self._rng = random.Random(seed)
        # counters (read under the lock via stats())
        self.leases_issued = 0
        self.leases_expired = 0
        self.leases_stolen = 0
        self.leases_released = 0
        self.retries = 0
        self.duplicates_dropped = 0
        self.failed_shard: int | None = None
        self.failure: str | None = None

    # -- assignment ------------------------------------------------------

    def next_lease(self, node_id: str, now: float) -> Lease | None:
        """Lease the next runnable shard to ``node_id``, stealing if idle.

        Returns ``None`` when there is nothing useful for this node to
        do right now (backoff pending, or all in-flight work already
        duplicated up to ``max_duplicates``).
        """
        with self._lock:
            while self._pending:
                shard_id = self._pending[0]
                state = self._states[shard_id]
                if state.done:
                    self._pending.popleft()
                    continue
                if state.not_before > now:
                    break  # backoff: head stays queued until eligible
                self._pending.popleft()
                return self._issue(state, node_id, now, stolen=False)
            return self._steal(node_id, now)

    def _issue(  # repro-lint: holds-lock
        self, state: _ShardState, node_id: str, now: float, *, stolen: bool
    ) -> Lease:
        self._next_lease_id += 1
        state.attempt += 1
        lease = Lease(
            lease_id=self._next_lease_id,
            shard=state.shard,
            node_id=node_id,
            issued_at=now,
            deadline=now + self.lease_seconds,
            attempt=state.attempt,
            stolen=stolen,
        )
        state.leases.append(lease.lease_id)
        self._leases[lease.lease_id] = lease
        self.leases_issued += 1
        if stolen:
            self.leases_stolen += 1
        return lease

    def _steal(self, node_id: str, now: float) -> Lease | None:  # repro-lint: holds-lock
        """Duplicate the longest-running in-flight shard for an idle node."""
        candidates = [
            state
            for state in self._states.values()
            if not state.done
            and state.leases
            and len(state.leases) < self.max_duplicates
            and all(
                self._leases[lid].node_id != node_id for lid in state.leases
            )
        ]
        if not candidates:
            return None
        oldest = min(
            candidates,
            key=lambda s: min(self._leases[lid].issued_at for lid in s.leases),
        )
        return self._issue(oldest, node_id, now, stolen=True)

    # -- completion ------------------------------------------------------

    def complete(self, lease_id: int, result: Any) -> bool:
        """Record a shard result; False when a duplicate lost the race."""
        with self._lock:
            lease = self._leases.pop(lease_id, None)
            if lease is None:
                self.duplicates_dropped += 1
                return False
            state = self._states[lease.shard.shard_id]
            self._drop_leases(state)
            if state.done:
                self.duplicates_dropped += 1
                return False
            state.done = True
            state.result = result
            return True

    def fail(self, lease_id: int, error: str, now: float) -> bool:
        """Record a shard failure; requeue with backoff or kill the job.

        Returns True while the shard will be retried; False once the
        attempt budget is spent (``failed_shard``/``failure`` are set).
        """
        with self._lock:
            lease = self._leases.pop(lease_id, None)
            if lease is None:
                return True  # a duplicate already succeeded or failed it
            state = self._states[lease.shard.shard_id]
            if state.done:
                return True
            self._drop_leases(state)
            if state.attempt >= self.max_attempts:
                self.failed_shard = state.shard.shard_id
                self.failure = error
                return False
            self.retries += 1
            backoff = min(
                self.backoff_cap, self.backoff_base * (2 ** (state.attempt - 1))
            )
            # Full jitter: anywhere in (0.5, 1.0] of the computed delay.
            state.not_before = now + backoff * (0.5 + 0.5 * self._rng.random())
            self._pending.append(state.shard.shard_id)
            return True

    def _drop_leases(self, state: _ShardState) -> None:  # repro-lint: holds-lock
        for lid in state.leases:
            self._leases.pop(lid, None)
        state.leases.clear()

    # -- failover --------------------------------------------------------

    def expire(self, now: float) -> list[Lease]:
        """Return leases past their deadline to the pending queue."""
        expired: list[Lease] = []
        with self._lock:
            for lease in list(self._leases.values()):
                if lease.deadline <= now:
                    expired.append(lease)
                    self._release_locked(lease)
                    self.leases_expired += 1
        return expired

    def release_node(self, node_id: str) -> list[Lease]:
        """Release every lease held by a (dead) node for reassignment."""
        released: list[Lease] = []
        with self._lock:
            for lease in list(self._leases.values()):
                if lease.node_id == node_id:
                    released.append(lease)
                    self._release_locked(lease)
                    self.leases_released += 1
        return released

    def _release_locked(self, lease: Lease) -> None:  # repro-lint: holds-lock
        self._leases.pop(lease.lease_id, None)
        state = self._states[lease.shard.shard_id]
        if lease.lease_id in state.leases:
            state.leases.remove(lease.lease_id)
        if not state.done and not state.leases:
            # Attempt count stands (a lost lease still spent an attempt);
            # no backoff — the node died, the shard did nothing wrong.
            if state.shard.shard_id not in self._pending:
                self._pending.append(state.shard.shard_id)

    # -- introspection ---------------------------------------------------

    @property
    def done(self) -> bool:
        with self._lock:
            return all(state.done for state in self._states.values())

    @property
    def failed(self) -> bool:
        with self._lock:
            return self.failed_shard is not None

    def results(self) -> dict[int, Any]:
        with self._lock:
            return {
                shard_id: state.result
                for shard_id, state in self._states.items()
                if state.done
            }

    def in_flight(self) -> int:
        with self._lock:
            return len(self._leases)

    def pending(self) -> int:
        with self._lock:
            return sum(1 for s in self._states.values() if not s.done and not s.leases)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "shards": len(self._states),
                "done": sum(1 for s in self._states.values() if s.done),
                "in_flight": len(self._leases),
                "leases_issued": self.leases_issued,
                "leases_expired": self.leases_expired,
                "leases_stolen": self.leases_stolen,
                "leases_released": self.leases_released,
                "retries": self.retries,
                "duplicates_dropped": self.duplicates_dropped,
            }
