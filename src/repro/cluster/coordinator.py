"""The cluster coordinator: node registry + lease scheduler over TCP.

One coordinator federates any number of worker nodes behind a single
address.  Its moving parts:

* an **accept loop** handing each connection (node or client) to a
  dedicated handler thread — connections are long-lived, one per peer;
* the **node registry** (:mod:`repro.cluster.registry`), fed by
  heartbeats and connection state.  A SIGKILLed node is detected on
  the *fast path* — its TCP connection drops and the handler thread
  releases its leases immediately — with stale-heartbeat expiry as the
  slow-path backstop;
* per-job **lease schedulers** (:mod:`repro.cluster.shards`), polled
  by nodes: a ``ready`` frame returns a lease, a ``wait`` hint, or a
  ``shutdown``.  Leases that expire or belong to dead nodes go back to
  pending, so no shard is ever lost with a node;
* a **monitor thread** driving heartbeat expiry, lease deadlines and
  the registered/alive gauges;
* a private, always-collecting :class:`~repro.obs.MetricsRegistry`
  holding the ``repro_cluster_*`` families — independent of the
  process-wide ``REPRO_METRICS`` gate because a coordinator without
  visibility into its nodes is not operable.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core.result import RepeatResult
from ..obs import LATENCY_BUCKETS, MetricsRegistry
from ..obs.prometheus import render_prometheus
from ..service.protocol import JobSpec
from . import protocol
from .execution import (
    finish_from_rows,
    merge_scan_reports,
    scan_shard_priorities,
    scan_spec_dict,
)
from .registry import NodeRegistry
from .shards import Shard, ShardScheduler, merge_shard_results, plan_record_shards, plan_row_shards
from .transport import Channel, FrameError, Listener

__all__ = ["ClusterJob", "Coordinator", "CoordinatorConfig"]

#: Shard latency buckets: sub-second toy shards up to multi-minute scans.
SHARD_BUCKETS = LATENCY_BUCKETS


@dataclass
class CoordinatorConfig:
    """Tuning knobs of one coordinator."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral (the listener reports the real port)
    heartbeat_interval: float = 1.0  # what nodes are told to send
    node_timeout: float = 6.0  # stale-heartbeat expiry (slow path)
    lease_seconds: float = 60.0
    scan_shard_size: int = 4  # records per scan shard
    rows_shards_per_node: int = 2  # rows shards per alive node
    max_attempts: int = 4
    backoff_base: float = 0.25
    backoff_cap: float = 10.0
    max_duplicates: int = 2
    monitor_interval: float = 0.25
    wait_hint: float = 0.2  # how long an idle node should sleep


class ClusterJob:
    """One cluster-wide job: a shard scheduler plus completion state."""

    def __init__(self, job_id: str, kind: str, scheduler: ShardScheduler,
                 n_shards: int, spec: JobSpec, tenant: str = "") -> None:
        self.job_id = job_id
        self.kind = kind  # "scan" | "rows"
        self.scheduler = scheduler
        self.n_shards = n_shards
        self.spec = spec
        #: Owning tenant (gateway admission); "" for untenanted work.
        self.tenant = tenant
        self.created = time.time()
        self.done = threading.Event()
        self.state = "running"
        self.error: str | None = None
        self.result: Any = None  # scan: merged report dicts

    def status(self) -> dict[str, Any]:
        stats = self.scheduler.stats()
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "state": self.state,
            "tenant": self.tenant,
            "error": self.error,
            "shards": stats["shards"],
            "shards_done": stats["done"],
            "in_flight": stats["in_flight"],
            "scheduler": stats,
        }


class Coordinator:
    """Accepts nodes and clients; schedules shards; survives node death."""

    def __init__(self, config: CoordinatorConfig | None = None) -> None:
        self.config = config or CoordinatorConfig()
        self._listener = Listener(self.config.host, self.config.port)
        self.registry = NodeRegistry()
        self.metrics = MetricsRegistry()
        self._jobs_lock = threading.Lock()
        self._jobs: dict[str, ClusterJob] = {}
        self._job_seq = 0
        self._stopping = threading.Event()
        self._threads: list[threading.Thread] = []
        self.started = time.time()
        #: (job_id, lease_id) → monotonic issue time; resolved into the
        #: lease-latency EWMA when the shard's result arrives.
        self._lease_issued_at: dict[tuple[str, int], float] = {}
        #: EWMA of issue→result latency — the autoscale "are shards
        #: taking longer than they should" signal (0 until first result).
        self.lease_latency = 0.0
        self._latency_alpha = 0.2
        # Pre-create the families so /metrics shows them at zero.
        self._g_registered = self.metrics.gauge(
            "repro_cluster_nodes_registered",
            help="Worker nodes that ever joined this coordinator",
        )
        self._g_alive = self.metrics.gauge(
            "repro_cluster_nodes_alive", help="Worker nodes currently alive"
        )
        self._c_issued = self.metrics.counter(
            "repro_cluster_leases_issued_total", help="Shard leases handed out"
        )
        self._c_expired = self.metrics.counter(
            "repro_cluster_leases_expired_total",
            help="Leases that passed their deadline and were reassigned",
        )
        self._c_stolen = self.metrics.counter(
            "repro_cluster_leases_stolen_total",
            help="Duplicate leases issued to idle nodes (work stealing)",
        )
        self._c_released = self.metrics.counter(
            "repro_cluster_leases_released_total",
            help="Leases released because their node died",
        )
        self._h_shard = self.metrics.histogram(
            "repro_cluster_shard_seconds",
            buckets=SHARD_BUCKETS,
            help="Node-reported shard execution latency",
        )
        self.metrics.counter(
            "repro_cluster_results_total",
            help="Shard results received, by status",
            status="ok",
        )
        self._c_drained = self.metrics.counter(
            "repro_cluster_nodes_drained_total",
            help="Nodes that left via a clean goodbye drain",
        )
        self._g_queue_depth = self.metrics.gauge(
            "repro_cluster_queue_depth",
            help="Unleased shards across running jobs (autoscale signal)",
        )
        self._g_lease_latency = self.metrics.gauge(
            "repro_cluster_lease_latency_seconds",
            help="EWMA of lease issue-to-result latency (autoscale signal)",
        )
        #: Tenants whose backlog gauge was ever published (kept at zero
        #: after their work drains; see render_metrics).
        self._backlog_tenants: set[str] = set()

    # -- lifecycle -------------------------------------------------------

    @property
    def address(self) -> str:
        return self._listener.address

    @property
    def port(self) -> int:
        return self._listener.port

    def start(self) -> "Coordinator":
        if self._threads:
            return self  # already running
        accept = threading.Thread(
            target=self._accept_loop, name="cluster-accept", daemon=True
        )
        monitor = threading.Thread(
            target=self._monitor_loop, name="cluster-monitor", daemon=True
        )
        accept.start()
        monitor.start()
        self._threads = [accept, monitor]
        return self

    def stop(self, timeout: float = 10.0) -> None:
        self._stopping.set()
        self._listener.close()
        for thread in self._threads:
            thread.join(timeout=timeout)
        with self._jobs_lock:
            for job in self._jobs.values():
                if job.state == "running":
                    job.state = "failed"
                    job.error = "coordinator stopped"
                    job.done.set()

    def __enter__(self) -> "Coordinator":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- job submission --------------------------------------------------

    def submit_scan(
        self, spec: JobSpec, records: list[dict[str, str]],
        options: dict[str, Any] | None = None, tenant: str = "",
    ) -> ClusterJob:
        """Shard a database scan over the cluster; returns the live job."""
        if not records:
            raise ValueError("a scan needs at least one record")
        spec_payload = scan_spec_dict(spec)
        ranges = plan_record_shards(len(records), self.config.scan_shard_size)
        # With indexing on, lease repeat-promising record ranges first:
        # first-result-wins then finishes the interesting shards early.
        priorities = scan_shard_priorities(spec, records, ranges, options or {})
        shards = [
            Shard(
                shard_id=i,
                payload=protocol.scan_shard(
                    i, spec_payload, records[start:stop], start, options
                ),
                priority=priorities[i],
            )
            for i, (start, stop) in enumerate(ranges)
        ]
        return self._register_job("scan", shards, spec, tenant)

    def submit_rows_job(self, spec: JobSpec, tenant: str = "") -> ClusterJob:
        """Shard one large single-sequence job's first pass over the cluster."""
        m = len(spec.normalized_sequence())
        n_shards = max(1, self.registry.alive_count()) * self.config.rows_shards_per_node
        ranges = plan_row_shards(m, n_shards)
        spec_payload = spec.to_dict()
        shards = [
            Shard(
                shard_id=i,
                payload=protocol.rows_shard(i, spec_payload, r_start, r_stop),
            )
            for i, (r_start, r_stop) in enumerate(ranges)
        ]
        return self._register_job("rows", shards, spec, tenant)

    def _register_job(self, kind: str, shards: list[Shard], spec: JobSpec,
                      tenant: str = "") -> ClusterJob:
        scheduler = ShardScheduler(
            shards,
            lease_seconds=self.config.lease_seconds,
            max_attempts=self.config.max_attempts,
            backoff_base=self.config.backoff_base,
            backoff_cap=self.config.backoff_cap,
            max_duplicates=self.config.max_duplicates,
        )
        with self._jobs_lock:
            self._job_seq += 1
            job_id = f"cj-{self._job_seq:06d}"
            job = ClusterJob(job_id, kind, scheduler, len(shards), spec, tenant)
            self._jobs[job_id] = job
        return job

    def wait(self, job: ClusterJob, timeout: float | None = None) -> ClusterJob:
        """Block until ``job`` reaches a terminal state."""
        if not job.done.wait(timeout):
            raise TimeoutError(f"cluster job {job.job_id} still running")
        return job

    def execute_job_spec(self, spec: JobSpec, timeout: float | None = None,
                         tenant: str = "") -> RepeatResult:
        """Run one single-sequence job cluster-wide, bit-identical to local.

        The nodes compute the version-0 bottom rows; the coordinator
        finishes the best-first loop locally (it is cheap relative to
        the first pass, which dominates §3's cost model).
        """
        job = self.wait(self.submit_rows_job(spec, tenant), timeout)
        if job.state != "done":
            raise RuntimeError(f"cluster job {job.job_id} failed: {job.error}")
        shard_results = merge_shard_results(job.scheduler.results(), job.n_shards)
        rows: dict[int, np.ndarray] = {}
        for shard in shard_results:
            for r, row in shard["rows"]:
                rows[int(r)] = np.asarray(row)
        return finish_from_rows(spec, rows)

    def get_job(self, job_id: str) -> ClusterJob | None:
        with self._jobs_lock:
            return self._jobs.get(job_id)

    # -- accept / per-connection handlers --------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                channel = self._listener.accept(timeout=0.5)
            except TimeoutError:
                continue
            except OSError:
                return  # listener closed by stop()
            threading.Thread(
                target=self._serve_connection,
                args=(channel,),
                name=f"cluster-conn-{channel.peername()}",
                daemon=True,
            ).start()

    def _serve_connection(self, channel: Channel) -> None:
        try:
            hello = channel.recv(timeout=10.0)
        except (FrameError, TimeoutError, OSError):
            channel.close()
            return
        if not isinstance(hello, dict) or hello.get("kind") != protocol.HELLO:
            channel.close()
            return
        role = hello.get("role", "node")
        try:
            if role == "node":
                self._serve_node(channel, hello)
            else:
                self._serve_client(channel)
        finally:
            channel.close()

    def _serve_node(self, channel: Channel, hello: dict) -> None:
        node_id = str(hello.get("node_id") or f"node-{channel.peername()}")
        self.registry.register(
            node_id,
            address=channel.peername(),
            pid=int(hello.get("pid", 0)),
            meta={"capacity": hello.get("capacity", 1)},
        )
        self._refresh_node_gauges()
        channel.send({
            "kind": protocol.WELCOME,
            "node_id": node_id,
            "heartbeat_interval": self.config.heartbeat_interval,
        })
        try:
            while not self._stopping.is_set():
                frame = channel.recv(timeout=3600.0)
                kind = frame.get("kind")
                if kind == protocol.READY:
                    channel.send(self._lease_for(node_id))
                elif kind == protocol.HEARTBEAT:
                    self.registry.heartbeat(node_id)
                elif kind == protocol.RESULT:
                    self._handle_result(node_id, frame)
                elif kind == protocol.GOODBYE:
                    # Clean drain: the node reported every lease it held
                    # before saying goodbye, so there is nothing to fail
                    # over — just stop counting it toward capacity.
                    self.registry.mark_drained(node_id)
                    self._c_drained.inc()
                    break
                else:
                    channel.send({
                        "kind": protocol.ERROR,
                        "error": f"unexpected frame kind {kind!r} from a node",
                    })
        except (FrameError, TimeoutError, OSError):
            pass  # connection gone — the fast failover path below
        self._node_lost(node_id)

    def _serve_client(self, channel: Channel) -> None:
        channel.send({"kind": protocol.WELCOME, "role": "client"})
        while not self._stopping.is_set():
            try:
                frame = channel.recv(timeout=3600.0)
            except (FrameError, TimeoutError, OSError):
                return
            try:
                channel.send(self._client_response(frame))
            except (FrameError, OSError):
                return

    def _client_response(self, frame: dict) -> dict:
        kind = frame.get("kind")
        try:
            if kind == protocol.SUBMIT_SCAN:
                spec = JobSpec.from_dict(frame["spec"])
                job = self.submit_scan(
                    spec, frame["records"], frame.get("options"),
                    tenant=str(frame.get("tenant", "")),
                )
                return {
                    "kind": protocol.OK,
                    "job_id": job.job_id,
                    "n_shards": job.n_shards,
                }
            if kind == protocol.JOB_STATUS:
                job = self.get_job(frame["job_id"])
                if job is None:
                    return {"kind": protocol.ERROR, "error": "no such job"}
                status = job.status()
                if job.state == "done" and job.kind == "scan":
                    status["reports"] = job.result
                return {"kind": protocol.OK, "status": status}
            if kind == protocol.STATS:
                return {"kind": protocol.OK, "stats": self.stats()}
            if kind == protocol.METRICS:
                return {"kind": protocol.OK, "text": self.render_metrics()}
            return {"kind": protocol.ERROR, "error": f"unknown request {kind!r}"}
        except (KeyError, ValueError, TypeError) as exc:
            return {"kind": protocol.ERROR, "error": str(exc)}

    # -- scheduling ------------------------------------------------------

    def _lease_for(self, node_id: str) -> dict:
        if self._stopping.is_set():
            return {"kind": protocol.SHUTDOWN}
        now = time.monotonic()
        with self._jobs_lock:
            jobs = [j for j in self._jobs.values() if j.state == "running"]
        for job in jobs:
            lease = job.scheduler.next_lease(node_id, now)
            if lease is not None:
                self._c_issued.inc()
                if lease.stolen:
                    self._c_stolen.inc()
                with self._jobs_lock:
                    self._lease_issued_at[(job.job_id, lease.lease_id)] = now
                return {
                    "kind": protocol.LEASE,
                    "job_id": job.job_id,
                    "lease_id": lease.lease_id,
                    "attempt": lease.attempt,
                    "shard": lease.shard.payload,
                }
        return {"kind": protocol.WAIT, "delay": self.config.wait_hint}

    def _handle_result(self, node_id: str, frame: dict) -> None:
        job = self.get_job(str(frame.get("job_id", "")))
        if job is None:
            return
        lease_id = int(frame.get("lease_id", -1))
        elapsed = float(frame.get("elapsed", 0.0))
        with self._jobs_lock:
            issued = self._lease_issued_at.pop((job.job_id, lease_id), None)
        if issued is not None:
            latency = max(0.0, time.monotonic() - issued)
            self.lease_latency = (
                latency if self.lease_latency == 0.0
                else self._latency_alpha * latency
                + (1 - self._latency_alpha) * self.lease_latency
            )
        if frame.get("ok"):
            won = job.scheduler.complete(lease_id, frame.get("value"))
            if won:
                self._h_shard.observe(elapsed)
                self.metrics.counter(
                    "repro_cluster_results_total", status="ok"
                ).inc()
                self.registry.record_shard(
                    node_id, records=int(frame.get("records", 0))
                )
                if job.scheduler.done:
                    self._finalize(job)
            else:
                self.metrics.counter(
                    "repro_cluster_results_total", status="duplicate"
                ).inc()
        else:
            self.metrics.counter(
                "repro_cluster_results_total", status="error"
            ).inc()
            self.registry.record_shard(node_id, failed=True)
            retrying = job.scheduler.fail(
                lease_id, str(frame.get("error", "shard failed")), time.monotonic()
            )
            if not retrying:
                job.state = "failed"
                job.error = job.scheduler.failure
                job.done.set()

    def _finalize(self, job: ClusterJob) -> None:
        if job.done.is_set():
            return
        if job.kind == "scan":
            shard_results = merge_shard_results(
                job.scheduler.results(), job.n_shards
            )
            job.result = merge_scan_reports(shard_results)
        # rows jobs: the waiting execute_job_spec() call does the finish —
        # handler threads must never run a best-first loop.
        job.state = "done"
        job.done.set()
        with self._jobs_lock:
            # Late duplicates of a finished job never resolve; drop
            # their issue stamps so the map cannot grow without bound.
            for key in [k for k in self._lease_issued_at if k[0] == job.job_id]:
                del self._lease_issued_at[key]

    # -- failover --------------------------------------------------------

    def _node_lost(self, node_id: str) -> None:
        if self.registry.mark_dead(node_id):
            self._release_node_leases(node_id)
        self._refresh_node_gauges()

    def _release_node_leases(self, node_id: str) -> None:
        with self._jobs_lock:
            jobs = [j for j in self._jobs.values() if j.state == "running"]
        for job in jobs:
            released = job.scheduler.release_node(node_id)
            if released:
                self._c_released.inc(len(released))

    def _monitor_loop(self) -> None:
        while not self._stopping.is_set():
            for node_id in self.registry.expire(self.config.node_timeout):
                self._release_node_leases(node_id)
            now = time.monotonic()
            with self._jobs_lock:
                jobs = [j for j in self._jobs.values() if j.state == "running"]
            for job in jobs:
                expired = job.scheduler.expire(now)
                if expired:
                    self._c_expired.inc(len(expired))
            self._refresh_node_gauges()
            self._stopping.wait(self.config.monitor_interval)

    def _refresh_node_gauges(self) -> None:
        self._g_registered.set(self.registry.registered_count())
        self._g_alive.set(self.registry.alive_count())

    # -- introspection ---------------------------------------------------

    def autoscale(self) -> dict[str, Any]:
        """The signals an external autoscaler needs to size the fleet.

        ``queue_depth`` (unleased shards waiting for a node),
        ``lease_latency`` (EWMA of issue→result seconds) and the
        per-tenant shard backlog: depth × latency ≈ seconds of queued
        work, the scale-up trigger; alive > backlog ≈ idle capacity,
        the scale-down one.  Published on ``/stats`` and as
        ``repro_cluster_*`` gauges on ``/metrics``.
        """
        with self._jobs_lock:
            running = [j for j in self._jobs.values() if j.state == "running"]
        queue_depth = 0
        backlog: dict[str, int] = {}
        for job in running:
            pending = job.scheduler.pending()
            queue_depth += pending
            tenant = job.tenant or "public"
            backlog[tenant] = backlog.get(tenant, 0) + pending
        return {
            "queue_depth": queue_depth,
            "lease_latency": self.lease_latency,
            "nodes_alive": self.registry.alive_count(),
            "nodes_drained": self.registry.drained_count(),
            "tenant_backlog": dict(sorted(backlog.items())),
        }

    def stats(self) -> dict[str, Any]:
        with self._jobs_lock:
            jobs = {job_id: job.status() for job_id, job in self._jobs.items()}
        return {
            "address": self.address,
            "uptime": time.time() - self.started,
            "nodes_registered": self.registry.registered_count(),
            "nodes_alive": self.registry.alive_count(),
            "nodes_drained": self.registry.drained_count(),
            "nodes": self.registry.snapshot(),
            "jobs": jobs,
            "autoscale": self.autoscale(),
        }

    def render_metrics(self) -> str:
        self._refresh_node_gauges()
        signals = self.autoscale()
        self._g_queue_depth.set(signals["queue_depth"])
        self._g_lease_latency.set(signals["lease_latency"])
        backlog = signals["tenant_backlog"]
        # Drained tenants drop to an explicit 0, not a stale last value.
        self._backlog_tenants |= set(backlog)
        for tenant in sorted(self._backlog_tenants):
            self.metrics.gauge(
                "repro_cluster_tenant_backlog",
                help="Unleased shards per owning tenant (autoscale signal)",
                tenant=tenant,
            ).set(backlog.get(tenant, 0))
        return render_prometheus(self.metrics)
