"""The worker node agent: join, heartbeat, pull leases, execute, report.

A node holds exactly **one** connection to its coordinator.  The main
loop is strict request/response — ``ready`` → (``lease`` | ``wait`` |
``shutdown``) — while a background thread sends one-way ``heartbeat``
frames over the *same* channel (sends are mutex-protected in
:class:`~repro.cluster.transport.Channel`, the "protect all MPI calls
with a mutex" workaround §4.3 describes).  Because heartbeats and
results never get responses, the main loop's recv only ever sees
replies to its own requests.

Shard execution goes through :mod:`repro.cluster.execution`, i.e. the
same ``build_finder``/engine path the service workers use, keeping the
bit-identity contract in one place.

**Drain.**  SIGTERM (and SIGINT) does not kill the node mid-shard: it
sets the drain flag, the agent finishes the lease it currently holds,
reports the result, sends a one-way ``goodbye`` and exits 0.  No
result is lost and the coordinator never has to fail over a drained
node's lease — SIGKILL remains the crash path the failover machinery
covers.
"""

from __future__ import annotations

import os
import signal
import socket as socket_mod
import threading
import time
from dataclasses import dataclass

from .execution import run_rows_shard, run_scan_shard
from . import protocol
from .transport import Channel, FrameError, connect

__all__ = ["NodeAgent", "NodeConfig", "node_main", "SHARD_DELAY_ENV"]

#: Test/ops knob: extra seconds slept while holding each lease, so a
#: shard can be made arbitrarily slow without changing its result (the
#: SIGKILL-failover tests use it to guarantee a mid-lease kill lands).
SHARD_DELAY_ENV = "REPRO_CLUSTER_SHARD_DELAY"


@dataclass
class NodeConfig:
    """How one node agent joins and behaves."""

    host: str
    port: int
    node_id: str = ""  # default: hostname-pid
    connect_attempts: int = 50
    connect_retry_delay: float = 0.1
    max_shards: int = 0  # exit after this many shards (0 = unbounded)


class NodeAgent:
    """One worker node process (usable in-thread from tests)."""

    def __init__(self, config: NodeConfig) -> None:
        self.config = config
        self.node_id = config.node_id or (
            f"{socket_mod.gethostname()}-{os.getpid()}"
        )
        self._stop = threading.Event()
        self._draining = threading.Event()
        self._channel: Channel | None = None
        self.shards_done = 0
        self.drained = False

    def stop(self) -> None:
        self._stop.set()

    def request_drain(self) -> None:
        """Finish the current shard (if any), say goodbye, exit cleanly.

        Signal-handler safe: only sets an event the work loop polls
        between frames.
        """
        self._draining.set()

    def run(self) -> int:
        """Join the coordinator and work until told to shut down."""
        channel = connect(
            self.config.host,
            self.config.port,
            attempts=self.config.connect_attempts,
            retry_delay=self.config.connect_retry_delay,
        )
        self._channel = channel
        delay = float(os.environ.get(SHARD_DELAY_ENV, "0") or 0)
        try:
            channel.send({
                "kind": protocol.HELLO,
                "role": "node",
                "node_id": self.node_id,
                "pid": os.getpid(),
                "capacity": 1,
            })
            welcome = channel.recv(timeout=10.0)
            if welcome.get("kind") != protocol.WELCOME:
                raise protocol.ProtocolError(f"expected welcome, got {welcome!r}")
            interval = float(welcome.get("heartbeat_interval", 1.0))
            heartbeat = threading.Thread(
                target=self._heartbeat_loop,
                args=(channel, interval),
                name=f"{self.node_id}-heartbeat",
                daemon=True,
            )
            heartbeat.start()
            self._work_loop(channel, delay)
        except (FrameError, TimeoutError, ConnectionError, OSError):
            return 1  # coordinator gone — nothing left to do here
        finally:
            self._stop.set()
            channel.close()
        return 0

    def _heartbeat_loop(self, channel: Channel, interval: float) -> None:
        while not self._stop.wait(interval):
            try:
                channel.send({
                    "kind": protocol.HEARTBEAT,
                    "node_id": self.node_id,
                })
            except (FrameError, OSError):
                return

    def _work_loop(self, channel: Channel, delay: float) -> None:
        while not self._stop.is_set():
            if self._draining.is_set():
                # Between leases, so nothing is in flight: announce the
                # clean exit and stop pulling work.
                self._say_goodbye(channel)
                return
            channel.send({"kind": protocol.READY, "node_id": self.node_id})
            reply = channel.recv(timeout=60.0)
            kind = reply.get("kind")
            if kind == protocol.SHUTDOWN:
                return
            if kind == protocol.WAIT:
                time.sleep(float(reply.get("delay", 0.2)))
                continue
            if kind != protocol.LEASE:
                raise protocol.ProtocolError(
                    f"expected lease/wait/shutdown, got {kind!r}"
                )
            self._execute_lease(channel, reply, delay)
            if self.config.max_shards and self.shards_done >= self.config.max_shards:
                return

    def _say_goodbye(self, channel: Channel) -> None:
        self.drained = True
        try:
            channel.send({"kind": protocol.GOODBYE, "node_id": self.node_id})
        except (FrameError, OSError):
            pass  # coordinator already gone; drain is still clean locally

    def _execute_lease(self, channel: Channel, lease: dict, delay: float) -> None:
        shard = lease["shard"]
        start = time.perf_counter()
        result: dict = {
            "kind": protocol.RESULT,
            "node_id": self.node_id,
            "job_id": lease["job_id"],
            "lease_id": lease["lease_id"],
        }
        try:
            if delay > 0:
                # Sleep while *holding* the lease so a test can SIGKILL
                # this process mid-shard deterministically.
                # repro-lint: allow[RPR013] REPRO_CLUSTER_SHARD_DELAY is a deliberate failover-test knob; off in production (defaults to 0)
                time.sleep(delay)
            if shard["kind"] == "scan":
                value = run_scan_shard(shard)
                result["records"] = value["n_records"]
            elif shard["kind"] == "rows":
                value = run_rows_shard(shard)
            else:
                raise protocol.ProtocolError(
                    f"unknown shard kind {shard['kind']!r}"
                )
            result["ok"] = True
            result["value"] = value
        except Exception as exc:  # noqa: BLE001 - a shard must not kill the node
            result["ok"] = False
            result["error"] = f"{type(exc).__name__}: {exc}"
        result["elapsed"] = time.perf_counter() - start
        channel.send(result)
        self.shards_done += 1


def node_main(join: str, *, node_id: str = "", max_shards: int = 0) -> int:
    """CLI entry: ``repro cluster node --join host:port``.

    SIGTERM/SIGINT drain rather than kill: the node finishes the shard
    it holds, reports it, sends ``goodbye`` and exits 0.
    """
    host, _, port = join.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"--join expects host:port, got {join!r}")
    agent = NodeAgent(
        NodeConfig(host=host, port=int(port), node_id=node_id, max_shards=max_shards)
    )
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: agent.request_drain())
    return agent.run()
