"""The coordinator's node registry.

Tracks every worker node that ever joined: address, capacity, liveness
(driven by heartbeats and connection state) and work counters.  A node
is **alive** while its heartbeat is fresh and its connection is open;
a node whose heartbeat goes stale — or whose TCP connection drops, the
fast path a SIGKILL takes — is marked dead and its leases are returned
to the scheduler by the coordinator.  Dead nodes stay in the registry
(registered ≥ alive) so ``/stats`` keeps a record of churn.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

__all__ = ["NodeInfo", "NodeRegistry"]


@dataclass
class NodeInfo:
    """One worker node as the coordinator sees it."""

    node_id: str
    address: str = ""
    pid: int = 0
    registered_at: float = 0.0  # epoch, for operators
    last_seen: float = 0.0  # monotonic, for liveness decisions
    alive: bool = True
    #: True when the node left via ``goodbye`` (clean drain) rather
    #: than dying — churn accounting tells the two apart.
    drained: bool = False
    shards_done: int = 0
    shards_failed: int = 0
    records_scanned: int = 0
    meta: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "node_id": self.node_id,
            "address": self.address,
            "pid": self.pid,
            "registered_at": self.registered_at,
            "alive": self.alive,
            "drained": self.drained,
            "shards_done": self.shards_done,
            "shards_failed": self.shards_failed,
            "records_scanned": self.records_scanned,
        }


class NodeRegistry:
    """Thread-safe registry of worker nodes keyed by node id."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._nodes: dict[str, NodeInfo] = {}

    def register(self, node_id: str, *, address: str = "", pid: int = 0,
                 meta: dict | None = None) -> NodeInfo:
        """Add (or resurrect) a node; returns its record."""
        with self._lock:
            info = self._nodes.get(node_id)
            if info is None:
                info = NodeInfo(node_id=node_id, registered_at=time.time())
                self._nodes[node_id] = info
            info.address = address or info.address
            info.pid = pid or info.pid
            info.alive = True
            info.drained = False  # a rejoining node is working again
            info.last_seen = time.monotonic()
            if meta:
                info.meta.update(meta)
            return info

    def heartbeat(self, node_id: str) -> bool:
        """Refresh liveness; False when the node was never registered."""
        with self._lock:
            info = self._nodes.get(node_id)
            if info is None:
                return False
            info.alive = True
            info.last_seen = time.monotonic()
            return True

    def mark_dead(self, node_id: str) -> bool:
        """Flag a node dead (connection drop); True if it was alive."""
        with self._lock:
            info = self._nodes.get(node_id)
            if info is None or not info.alive:
                return False
            info.alive = False
            return True

    def mark_drained(self, node_id: str) -> bool:
        """Flag a node as having left via a clean ``goodbye`` drain."""
        with self._lock:
            info = self._nodes.get(node_id)
            if info is None:
                return False
            info.drained = True
            return True

    def drained_count(self) -> int:
        with self._lock:
            return sum(1 for info in self._nodes.values() if info.drained)

    def record_shard(self, node_id: str, *, failed: bool = False,
                     records: int = 0) -> None:
        """Bump a node's work counters after a shard result."""
        with self._lock:
            info = self._nodes.get(node_id)
            if info is None:
                return
            if failed:
                info.shards_failed += 1
            else:
                info.shards_done += 1
                info.records_scanned += records
            info.last_seen = time.monotonic()

    def expire(self, timeout: float) -> list[str]:
        """Mark nodes with stale heartbeats dead; returns the newly dead."""
        now = time.monotonic()
        newly_dead: list[str] = []
        with self._lock:
            for info in self._nodes.values():
                if info.alive and now - info.last_seen > timeout:
                    info.alive = False
                    newly_dead.append(info.node_id)
        return newly_dead

    def get(self, node_id: str) -> NodeInfo | None:
        with self._lock:
            return self._nodes.get(node_id)

    def is_alive(self, node_id: str) -> bool:
        with self._lock:
            info = self._nodes.get(node_id)
            return info is not None and info.alive

    def alive_count(self) -> int:
        with self._lock:
            return sum(1 for info in self._nodes.values() if info.alive)

    def registered_count(self) -> int:
        with self._lock:
            return len(self._nodes)

    def snapshot(self) -> dict[str, dict]:
        """Per-node state for ``/stats`` (sorted by node id)."""
        with self._lock:
            return {
                node_id: info.to_dict()
                for node_id, info in sorted(self._nodes.items())
            }
