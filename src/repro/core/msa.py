"""Multiple alignment of repeat copies.

Repro's phase 2 implicitly builds a multiple alignment: every column
class is one MSA column, every copy one row.  This module makes that
explicit — it lays the copies of a family out against the ordered
column classes, fills the in-between residues, and renders the
classic block view with a conservation line.  This is the output a
biologist actually reads ("delineate the repeats").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sequences.sequence import Sequence
from .delineate import column_classes
from .result import Repeat, TopAlignment

__all__ = ["RepeatAlignment", "align_family", "render_msa"]

_GAP = "-"


@dataclass(frozen=True)
class RepeatAlignment:
    """An explicit multiple alignment of one repeat family's copies.

    ``rows`` holds one gapped string per copy (equal lengths);
    ``spans`` the 1-based inclusive source interval of each row;
    ``conservation`` one symbol per column: ``*`` fully conserved,
    ``+`` majority-conserved (> half), space otherwise.
    """

    rows: tuple[str, ...]
    spans: tuple[tuple[int, int], ...]
    conservation: str

    @property
    def n_columns(self) -> int:
        """Alignment width."""
        return len(self.conservation)

    @property
    def mean_identity(self) -> float:
        """Mean per-column agreement with the column majority (gaps count
        against identity)."""
        if not self.rows or not self.conservation:
            return 0.0
        agree = 0
        total = 0
        for col in range(self.n_columns):
            letters = [row[col] for row in self.rows]
            residues = [c for c in letters if c != _GAP]
            if not residues:
                continue
            best = max(set(residues), key=residues.count)
            agree += sum(1 for c in letters if c == best)
            total += len(letters)
        return agree / total if total else 0.0


def align_family(
    sequence: Sequence,
    repeat: Repeat,
    alignments: list[TopAlignment],
    *,
    min_spacing: int | None = None,
) -> RepeatAlignment:
    """Lay one family's copies out against the column classes.

    Columns are the ordered column classes that fall inside the family's
    copies; each copy contributes its residue where it owns a position
    of that class, residues between two consecutive class positions are
    packed into intermediate columns, and gaps pad the rest.
    """
    classes = column_classes(alignments, min_spacing=min_spacing)
    copy_sets = [set(range(s, e + 1)) for s, e in repeat.copies]

    # Class ids used by this family, in rank order.
    used = [
        cid
        for cid, cls in enumerate(classes)
        if any(cls & cs for cs in copy_sets)
    ]
    if not used:
        raise ValueError("repeat family shares no columns with the alignments")

    # For each copy, position of each used class (or None).
    anchor: list[list[int | None]] = []
    for cs in copy_sets:
        row = []
        for cid in used:
            hits = sorted(classes[cid] & cs)
            row.append(hits[0] if hits else None)
        anchor.append(row)

    # Between consecutive anchors, copies may carry unaligned residues;
    # give every inter-anchor segment the width of the widest copy.
    text = sequence.text
    n_anchor = len(used)
    seg_width = [0] * (n_anchor + 1)  # before first, between, after last
    for idx, (start, end) in enumerate(repeat.copies):
        anchors = anchor[idx]
        prev = start - 1
        for a_i in range(n_anchor):
            pos = anchors[a_i]
            if pos is None:
                continue
            seg_width[a_i] = max(seg_width[a_i], pos - prev - 1)
            prev = pos
        seg_width[n_anchor] = max(seg_width[n_anchor], end - prev)

    rows = []
    for idx, (start, end) in enumerate(repeat.copies):
        anchors = anchor[idx]
        out: list[str] = []
        prev = start - 1
        for a_i in range(n_anchor):
            pos = anchors[a_i]
            if pos is None:
                out.append(_GAP * seg_width[a_i] + _GAP)
                continue
            segment = text[prev : pos - 1]
            out.append(segment.rjust(seg_width[a_i], _GAP) + text[pos - 1])
            prev = pos
        tail = text[prev:end]
        out.append(tail.ljust(seg_width[n_anchor], _GAP))
        rows.append("".join(out))

    width = max(len(r) for r in rows)
    rows = [r.ljust(width, _GAP) for r in rows]

    conservation = []
    for col in range(width):
        letters = [row[col] for row in rows]
        residues = [c for c in letters if c != _GAP]
        if residues and len(set(residues)) == 1 and len(residues) == len(letters):
            conservation.append("*")
        elif residues and residues.count(
            max(set(residues), key=residues.count)
        ) * 2 > len(letters):
            conservation.append("+")
        else:
            conservation.append(" ")

    return RepeatAlignment(
        rows=tuple(rows),
        spans=tuple(repeat.copies),
        conservation="".join(conservation),
    )


def render_msa(alignment: RepeatAlignment, *, block: int = 60) -> str:
    """Classic block rendering with coordinates and a conservation line."""
    lines: list[str] = []
    label_width = max(
        len(f"{s}-{e}") for s, e in alignment.spans
    )
    for start in range(0, alignment.n_columns, block):
        for (s, e), row in zip(alignment.spans, alignment.rows):
            label = f"{s}-{e}".rjust(label_width)
            lines.append(f"{label}  {row[start : start + block]}")
        lines.append(
            " " * label_width + "  " + alignment.conservation[start : start + block]
        )
        lines.append("")
    return "\n".join(lines).rstrip()
