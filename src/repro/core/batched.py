"""Speculative lane-batched best-first driver (§3 + §4.1 combined).

The sequential loop of :func:`repro.core.topalign.find_top_alignments`
pops one task per iteration, so a lockstep engine only ever sees
single-problem "batches" and the paper's coarse-grained SIMD gain
(Figure 7) never reaches the hot path.  This driver merges the two
ideas the paper combines for its headline speedup:

* **best-first queue** (§3) — stale scores are upper bounds, so the
  heap's head is accepted the moment its score is current;
* **lockstep lane batches** (§4.1) — when the head is *stale*, the
  driver keeps popping further stale tasks (up to ``group`` of them)
  and realigns them all in one engine batch.

The extra lanes are *speculative* in exactly the paper's §5 sense: if
the first lane's fresh score keeps it at the head and it is accepted,
the override triangle grows, every other lane's just-computed score is
stale again, and that work was wasted.  Waste is tracked per run in
``RunStats.speculative_waste`` — a speculative lane realignment counts
as wasted when an acceptance invalidates it before its fresh score was
ever consumed by an acceptance decision.

**Equivalence guarantee.**  The driver returns *bit-identical* top
alignments to the sequential (G=1) loop, by the same argument that
covers every other execution mode:

* acceptance fires only when the popped head is current, i.e. its score
  is exact under the current triangle and dominates every queued score
  — each of which is an upper bound on its own fresh score.  The
  accepted task therefore attains the maximum fresh score, and the heap
  key ``(-score, r)`` resolves ties to the smallest split point exactly
  as the sequential loop does;
* speculative realignment only *refreshes* scores earlier than the
  sequential schedule would — it never changes what any score converges
  to, because a task's fresh score is a pure function of its split and
  the triangle version;
* gathering stops at the first current (or exhausted) task, so tasks
  the sequential loop would leave untouched below a pending acceptance
  are not churned.

Batches only ever shrink below ``group`` when the heap runs out of
leading stale tasks, so the first passes — where every task is stale —
run at full lane width, which is where the lockstep engines earn their
throughput.
"""

from __future__ import annotations

from ..obs import get_registry
from ..obs import span as obs_span
from ..scoring.exchange import ExchangeMatrix
from ..scoring.gaps import GapPenalties
from ..sequences.sequence import Sequence
from .result import RunStats, TopAlignment
from .tasks import Task, TaskQueue
from .topalign import TopAlignmentState

#: Bucket boundaries for the driver-level batch-width histogram —
#: powers-of-two lane groups up to the paper's SSE2 width and beyond.
_BATCH_BUCKETS = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0)

__all__ = ["BatchedTopAlignmentRunner", "find_top_alignments_batched"]


class BatchedTopAlignmentRunner:
    """Figure 5 with speculative top-G batching of stale realignments.

    Parameters
    ----------
    state:
        The shared search state (also selects the engine — a lockstep
        engine such as ``"lanes"`` is what makes batching pay off).
    k:
        Number of nonoverlapping top alignments to compute.
    group:
        Maximum lanes per engine batch (the paper's G: 4 for SSE, 8 for
        SSE2).  ``group=1`` degenerates to the sequential loop.
    min_score:
        Alignments scoring at or below this are not reported.
    """

    def __init__(
        self,
        state: TopAlignmentState,
        k: int,
        *,
        group: int = 8,
        min_score: float = 0.0,
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        if group < 1:
            raise ValueError("group must be >= 1")
        self.state = state
        self.k = k
        self.group = group
        self.min_score = min_score
        #: Realignments issued on non-head lanes (all speculation, wasted
        #: or not); first passes are excluded — every mode performs them.
        self.speculative_lanes = 0

    def _gather_batch(self, head: Task, queue: TaskQueue) -> tuple[list[Task], Task | None]:
        """The head plus up to ``group - 1`` further stale tasks.

        Scanning stops at the first current or sub-threshold task (it is
        returned for reinsertion, unrealigned): a current task above the
        remaining heap is the next acceptance candidate, and anything
        below it is work the sequential loop may never reach.
        """
        batch = [head]
        blocked: Task | None = None
        n_found = self.state.n_found
        while len(batch) < self.group and queue:
            candidate = queue.pop_highest()
            if candidate.score <= self.min_score or candidate.is_current(n_found):
                blocked = candidate
                break
            batch.append(candidate)
        return batch, blocked

    def run(self) -> tuple[list[TopAlignment], RunStats]:
        """Execute and return ``(top_alignments, stats)``."""
        state = self.state
        state.stats.group = self.group
        checker = state.invariants
        queue = TaskQueue(guard=checker.guard_task if checker is not None else None)
        for task in state.make_tasks():
            queue.insert(task)
        prune_ctx = state.prune_context
        if prune_ctx is not None:
            prune_ctx.configure(self.min_score)
        registry = get_registry()
        if registry.collecting:
            heap_gauge = registry.gauge(
                "repro_heap_depth",
                help="Best-first task-heap size observed at the last acceptance",
            )
            batch_histogram = registry.histogram(
                "repro_driver_batch_lanes",
                buckets=_BATCH_BUCKETS,
                help="Stale tasks realigned per speculative engine batch",
            )
        else:
            heap_gauge = batch_histogram = None
        # Splits speculatively realigned at the current triangle version
        # whose fresh score has not yet fed an acceptance decision.
        pending: set[int] = set()

        with obs_span(
            "best_first", driver="batched", k=self.k, group=self.group, m=state.m
        ):
            while state.n_found < self.k and queue:
                head = queue.pop_highest()
                if head.score <= self.min_score:
                    # Stale scores are upper bounds, so nothing in the queue
                    # can still beat min_score: the sequence is exhausted.
                    break
                if head.is_current(state.n_found):
                    # The speculative realignment (if any) produced this
                    # acceptance — it was useful; every other pending lane
                    # is invalidated by the triangle growing underneath it.
                    pending.discard(head.r)
                    with obs_span("accept", r=head.r, index=state.n_found):
                        state.accept_task(head)
                    queue.insert(head)
                    state.stats.speculative_waste += len(pending)
                    pending.clear()
                    if heap_gauge is not None:
                        heap_gauge.set(len(queue))
                    if checker is not None and checker.mode == "full":
                        # Every queued upper bound must still dominate its
                        # fresh score under the just-grown triangle.
                        checker.verify_upper_bounds(queue.tasks())
                    continue

                batch, blocked = self._gather_batch(head, queue)
                # Non-head lanes with a cached first pass are speculative
                # realignment *candidates*; they only count (below) if the
                # batch actually realigned them — a lane the prune bounds
                # skip performs no work that could be wasted.
                speculative = [t for t in batch[1:] if t.r in state.bottom_rows]
                if batch_histogram is not None:
                    batch_histogram.observe(len(batch))
                if prune_ctx is not None:
                    # Live acceptance threshold for every lane in the
                    # batch: the best score *outside* it — what a lane
                    # must beat to top the heap after reinsertion.
                    if blocked is not None:
                        outside = blocked.score
                    elif queue:
                        outside = queue.peek_score()
                    else:
                        outside = prune_ctx.floor
                    prune_ctx.threshold = max(prune_ctx.floor, outside)
                state.align_tasks_batch(batch)
                for task in speculative:
                    # A fresh version stamp means the lane really realigned
                    # (pruned lanes stay stale at their old version).
                    if task.aligned_with == state.n_found:
                        self.speculative_lanes += 1
                        pending.add(task.r)
                for task in batch:
                    queue.insert(task)
                if blocked is not None:
                    queue.insert(blocked)

        return list(state.found), state.stats


def find_top_alignments_batched(
    sequence: Sequence,
    k: int,
    exchange: ExchangeMatrix,
    gaps: GapPenalties = GapPenalties(),
    *,
    group: int = 8,
    engine: str = "lanes",
    triangle: str = "dense",
    min_score: float = 0.0,
    state: TopAlignmentState | None = None,
) -> tuple[list[TopAlignment], RunStats]:
    """Batched drop-in for :func:`repro.core.find_top_alignments`.

    ``group=4`` with the int16 lane engine mirrors the paper's SSE
    configuration, ``group=8`` its SSE2 configuration; results are
    bit-identical to the sequential driver either way.
    """
    if state is None:
        state = TopAlignmentState(
            sequence, exchange, gaps, engine=engine, triangle=triangle
        )
    runner = BatchedTopAlignmentRunner(state, k, group=group, min_score=min_score)
    return runner.run()
