"""The paper's contribution: the O(n³) top-alignment algorithm and Repro."""

from .api import RepeatFinder, find_repeats
from .batched import BatchedTopAlignmentRunner, find_top_alignments_batched
from .bottomrows import BottomRowStore
from .consensus import (
    UnitChoice,
    block_identity,
    consensus_of_copies,
    phase_tandem,
    select_unit_length,
)
from .checkpoint import load_checkpoint, save_checkpoint
from .delineate import column_classes, delineate_repeats
from .dotplot import dotplot_matrix, render_dotplot
from .linearspace import RecomputingBottomRowStore
from .msa import RepeatAlignment, align_family, render_msa
from .oldalgo import old_find_top_alignments
from .override import (
    DenseOverrideTriangle,
    OverrideTriangle,
    SparseOverrideTriangle,
    SplitOverrideView,
)
from .report import AnalysisReport, FamilyModel, analyze, extract_families
from .result import Repeat, RepeatResult, RunStats, TopAlignment
from .scan import (
    DatabaseScanner,
    SequenceReport,
    load_scan_payload,
    result_from_dict,
    result_to_dict,
    scan_fasta,
    scan_to_payload,
)
from .session import TopAlignmentSession
from .significance import (
    NullDistribution,
    estimate_null,
    score_pvalue,
    shuffled,
)
from .tasks import NEVER_ALIGNED, Task, TaskQueue
from .topalign import TopAlignmentState, find_top_alignments

__all__ = [
    "find_top_alignments",
    "find_top_alignments_batched",
    "old_find_top_alignments",
    "BatchedTopAlignmentRunner",
    "TopAlignmentState",
    "find_repeats",
    "RepeatFinder",
    "TopAlignment",
    "Repeat",
    "RepeatResult",
    "RunStats",
    "Task",
    "TaskQueue",
    "NEVER_ALIGNED",
    "OverrideTriangle",
    "DenseOverrideTriangle",
    "SparseOverrideTriangle",
    "SplitOverrideView",
    "BottomRowStore",
    "column_classes",
    "delineate_repeats",
    "UnitChoice",
    "select_unit_length",
    "consensus_of_copies",
    "phase_tandem",
    "block_identity",
    "DatabaseScanner",
    "SequenceReport",
    "scan_fasta",
    "TopAlignmentSession",
    "RecomputingBottomRowStore",
    "NullDistribution",
    "estimate_null",
    "score_pvalue",
    "shuffled",
    "dotplot_matrix",
    "render_dotplot",
    "save_checkpoint",
    "load_checkpoint",
    "RepeatAlignment",
    "align_family",
    "render_msa",
    "AnalysisReport",
    "FamilyModel",
    "analyze",
    "extract_families",
    "result_to_dict",
    "result_from_dict",
    "scan_to_payload",
    "load_scan_payload",
]
