"""Repeat delineation from top alignments (Repro phase 2).

The paper's scope is the top-alignment phase; delineation — turning
"some tens of top alignments" into explicit repeat copies — is the
second half of the Repro method (Heringa & Argos 1993), which the paper
describes as consuming the top alignments and lists refinements of as
future work.  This module implements the core of that phase:

1. Every matched pair ``(i, j)`` of every top alignment asserts that
   positions *i* and *j* occupy the same column of the repeat's
   implicit multiple alignment.  The transitive closure of those
   assertions — connected components of the pair graph — yields the
   *column classes* (networkx does the closure).
2. Positions covered by column classes are scanned left to right.
   Copies are maximal runs of covered positions whose column *rank*
   (classes ordered by first occurrence) strictly increases — every
   copy traverses the repeat unit's columns in order, so a rank drop
   (or a revisit, which is a rank tie) marks the start of the next
   copy.
3. Families are separated by their column-class sets: runs sharing
   classes belong to the same family.

On clean input (e.g. ``ATGCATGCATGC`` with its three top alignments of
Figure 4) this recovers exactly the tandem copies; on diverged input it
produces the conserved cores, which is what Repro reports.
"""

from __future__ import annotations

import networkx as nx

from .result import Repeat, TopAlignment

__all__ = ["column_classes", "delineate_repeats"]


def column_classes(
    alignments: list[TopAlignment],
    *,
    min_size: int = 2,
    min_spacing: int | None = None,
) -> list[set[int]]:
    """Equivalence classes of sequence positions implied by the alignments.

    Each class is a set of 1-based positions that the top alignments
    (transitively) place in the same repeat column.  Classes smaller
    than ``min_size`` are dropped (a position equivalent only to itself
    carries no repeat signal).

    Raw transitive closure is brittle: overlapping alignments at
    different copy offsets contribute slightly off-grid pairs whose
    closure chains can merge *every* column into one class.  The model
    forbids that — two positions occupying the same column belong to
    different copies, so they must be at least one copy apart.  Pairs
    are therefore merged greedily in alignment-score order, and a merge
    that would put two positions closer than ``min_spacing`` into one
    class is rejected (the consistency weighting of the full Repro
    phase 2, reduced to a hard constraint).  ``min_spacing=None``
    estimates half the dominant period from the best alignment's median
    pair offset; ``0`` disables the constraint (pure closure).
    """
    if not alignments:
        return []
    ordered = sorted(alignments, key=lambda a: (-a.score, a.index))
    if min_spacing is None:
        best_offsets = sorted(j - i for i, j in ordered[0].pairs)
        period = best_offsets[len(best_offsets) // 2]
        # Half the dominant period; period-1/-2 repeats (homopolymers,
        # dinucleotide tandems) legitimately pair adjacent positions, so
        # the constraint switches off for them.
        min_spacing = max(1, period // 2)

    parent: dict[int, int] = {}
    members: dict[int, list[int]] = {}  # root -> sorted positions

    def find(pos: int) -> int:
        root = pos
        while parent[root] != root:
            root = parent[root]
        while parent[pos] != root:  # path compression
            parent[pos], pos = root, parent[pos]
        return root

    def add(pos: int) -> None:
        if pos not in parent:
            parent[pos] = pos
            members[pos] = [pos]

    def compatible(a: list[int], b: list[int]) -> bool:
        if min_spacing <= 1:
            return True
        merged = sorted(a + b)
        return all(
            q - p >= min_spacing for p, q in zip(merged, merged[1:])
        )

    for alignment in ordered:
        for i, j in alignment.pairs:
            add(i)
            add(j)
            ri, rj = find(i), find(j)
            if ri == rj:
                continue
            if not compatible(members[ri], members[rj]):
                continue  # inconsistent with the repeat model: skip
            # Union by size, keep the member lists sorted.
            if len(members[ri]) < len(members[rj]):
                ri, rj = rj, ri
            parent[rj] = ri
            members[ri] = sorted(members[ri] + members.pop(rj))

    classes = [set(positions) for positions in members.values()]
    return sorted(
        (c for c in classes if len(c) >= min_size),
        key=lambda c: min(c),
    )


def delineate_repeats(
    alignments: list[TopAlignment],
    sequence_length: int,
    *,
    min_copy_length: int = 2,
    max_gap: int = 0,
    min_score_fraction: float = 0.25,
    min_spacing: int | None = None,
) -> list[Repeat]:
    """Derive repeat families and copy intervals from top alignments.

    Parameters
    ----------
    alignments:
        Output of the top-alignment phase.
    sequence_length:
        Length of the underlying sequence (``m``).
    min_copy_length:
        Copies spanning fewer positions are discarded as noise.
    max_gap:
        Number of consecutive *uncovered* positions tolerated inside a
        copy before it is split (0 = strict; small values bridge
        diverged residues inside otherwise conserved copies).
    min_score_fraction:
        Alignments scoring below this fraction of the best alignment
        are ignored.  Raw transitive closure is brittle: one spurious
        low-scoring alignment can merge unrelated column classes (the
        full Repro method weights its consistency matrix by alignment
        score for the same reason).  Set to 0 to use every alignment.
    min_spacing:
        Forwarded to :func:`column_classes`: the minimum distance
        between two positions sharing a column (``None`` = auto).
    """
    if alignments and min_score_fraction > 0:
        threshold = max(a.score for a in alignments) * min_score_fraction
        alignments = [a for a in alignments if a.score >= threshold]
    classes = column_classes(alignments, min_spacing=min_spacing)
    if not classes:
        return []

    # Map position -> column-class id.
    col_of: dict[int, int] = {}
    for cid, cls in enumerate(classes):
        for pos in cls:
            col_of[pos] = cid

    # Scan for copies: maximal runs of covered positions with strictly
    # increasing column rank, tolerating up to max_gap uncovered
    # positions inside a copy.  Class ids are assigned in first-
    # occurrence order, so the id *is* the rank.
    runs: list[tuple[int, int, set[int]]] = []  # (start, end, class ids)
    start = None
    seen: set[int] = set()
    prev_rank = -1
    gap = 0
    last_covered = 0
    for pos in range(1, sequence_length + 1):
        cid = col_of.get(pos)
        if cid is None:
            if start is not None:
                gap += 1
                if gap > max_gap:
                    runs.append((start, last_covered, seen))
                    start, seen, prev_rank, gap = None, set(), -1, 0
            continue
        if start is None or cid <= prev_rank:
            # Fresh run, or a rank drop/revisit: the next copy begins.
            if start is not None:
                runs.append((start, last_covered, seen))
            start, seen, gap = pos, {cid}, 0
        else:
            seen = seen | {cid}
            gap = 0
        prev_rank = cid
        last_covered = pos
    if start is not None:
        runs.append((start, last_covered, seen))

    runs = [r for r in runs if r[1] - r[0] + 1 >= min_copy_length]
    if not runs:
        return []

    # Group runs into families: runs sharing any column class are copies
    # of the same repeat.
    family_graph = nx.Graph()
    family_graph.add_nodes_from(range(len(runs)))
    class_to_runs: dict[int, list[int]] = {}
    for idx, (_, _, cls) in enumerate(runs):
        for cid in cls:
            class_to_runs.setdefault(cid, []).append(idx)
    for members in class_to_runs.values():
        for a, b in zip(members, members[1:]):
            family_graph.add_edge(a, b)

    repeats: list[Repeat] = []
    for fam_id, component in enumerate(
        sorted(nx.connected_components(family_graph), key=min)
    ):
        members = sorted(component)
        if len(members) < 2:
            continue  # a family needs at least two copies
        copies = tuple((runs[i][0], runs[i][1]) for i in members)
        columns = len(set().union(*(runs[i][2] for i in members)))
        repeats.append(Repeat(family=fam_id, copies=copies, columns=columns))
    # Renumber families densely after the >=2-copy filter.
    return [
        Repeat(family=n, copies=r.copies, columns=r.columns)
        for n, r in enumerate(repeats)
    ]
