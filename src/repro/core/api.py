"""High-level public API.

Most users need exactly one call::

    from repro import find_repeats
    result = find_repeats(sequence, top_alignments=20)

:class:`RepeatFinder` is the configurable object behind it, useful when
scanning many sequences with the same scoring model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..align.base import AlignmentEngine, get_engine
from ..scoring.blosum import blosum62
from ..scoring.exchange import ExchangeMatrix, match_mismatch
from ..scoring.gaps import GapPenalties
from ..sequences.sequence import Sequence
from .delineate import delineate_repeats
from .oldalgo import old_find_top_alignments
from .result import RepeatResult
from .topalign import find_top_alignments

__all__ = ["RepeatFinder", "find_repeats"]


def _default_exchange(sequence: Sequence) -> ExchangeMatrix:
    """BLOSUM62 for proteins, the paper's +2/-1 toy matrix for nucleotides."""
    if sequence.alphabet.name == "protein":
        return blosum62()
    return match_mismatch(sequence.alphabet, 2.0, -1.0)


@dataclass
class RepeatFinder:
    """Reusable, configured repeat detector.

    Parameters
    ----------
    exchange:
        Exchange matrix; defaults per sequence alphabet (BLOSUM62 for
        protein, +2/-1 for nucleotide alphabets).
    gaps:
        Affine gap penalties (default open 2, extend 1 — the paper's
        worked example; use e.g. ``GapPenalties(10, 1)`` with BLOSUM62
        for realistic protein work).
    top_alignments:
        How many nonoverlapping top alignments to compute — "typically
        10–30, some more for large sequences" (§3).
    engine:
        Alignment engine name (``"vector"``, ``"scalar"``, ``"lanes"``,
        ``"striped"``, ...).
    algorithm:
        ``"new"`` (the paper's O(n³) algorithm) or ``"old"`` (the 1993
        O(n⁴) baseline) — both return identical alignments.
    group:
        Scheduling group width for the new algorithm: 1 (default) runs
        the sequential best-first loop, larger values the speculative
        lane-batched driver (:mod:`repro.core.batched`).  Results are
        identical either way.
    min_score:
        Alignments scoring at or below this are not reported.
    prune:
        Enable the exact in-fill pruning bounds (default ``True``; see
        :mod:`repro.align.pruning`).  Reported repeats are identical
        either way — pruning only skips provably-losing fill work.
        Ignored by the old O(n⁴) algorithm.
    min_copy_length, max_gap, min_score_fraction:
        Delineation knobs (see
        :func:`repro.core.delineate.delineate_repeats`).
    """

    exchange: ExchangeMatrix | None = None
    gaps: GapPenalties = field(default_factory=GapPenalties)
    top_alignments: int = 20
    engine: str = "vector"
    algorithm: str = "new"
    group: int = 1
    min_score: float = 0.0
    prune: bool = True
    min_copy_length: int = 2
    max_gap: int = 0
    min_score_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.algorithm not in ("new", "old"):
            raise ValueError("algorithm must be 'new' or 'old'")
        if self.top_alignments < 1:
            raise ValueError("top_alignments must be >= 1")
        if self.group < 1:
            raise ValueError("group must be >= 1")
        if self.group > 1 and self.algorithm != "new":
            raise ValueError("group > 1 requires the new algorithm")
        # Shared across records of a scan: one engine instance (so its
        # lane scratch buffers persist) and one exchange per alphabet.
        self._engine_instance: AlignmentEngine | None = None
        self._exchange_cache: dict[str, ExchangeMatrix] = {}

    def _engine_for_run(self) -> AlignmentEngine:
        if self._engine_instance is None:
            self._engine_instance = get_engine(self.engine)
        return self._engine_instance

    def resolve_exchange(self, sequence: Sequence) -> ExchangeMatrix:
        """The exchange matrix this finder uses for ``sequence``.

        Explicit configuration wins; otherwise the per-alphabet default
        (cached per alphabet, so a scan over mixed records builds each
        matrix once).  Exposed for callers that drive the search state
        directly — the incremental service executor checkpoints and
        resumes runs, and must score them under exactly the matrix
        :meth:`find` would have used.
        """
        if self.exchange is not None:
            return self.exchange
        name = sequence.alphabet.name
        cached = self._exchange_cache.get(name)
        if cached is None:
            cached = _default_exchange(sequence)
            self._exchange_cache[name] = cached
        return cached

    def delineate(self, alignments, length: int):
        """Phase 2 under this finder's knobs (see :func:`delineate_repeats`).

        Split out of :meth:`find` so external drivers (the service
        worker resuming from a checkpoint) turn independently-computed
        top alignments into the identical :class:`RepeatResult` families.
        """
        return delineate_repeats(
            alignments,
            length,
            min_copy_length=self.min_copy_length,
            max_gap=self.max_gap,
            min_score_fraction=self.min_score_fraction,
        )

    def find(self, sequence: Sequence | str, *, seed_bounds=None) -> RepeatResult:
        """Run both Repro phases on ``sequence`` and return everything.

        ``seed_bounds`` optionally seeds the best-first heap with
        finite per-split upper bounds (see
        :func:`repro.index.bounds.seed_score_bounds`); results are
        identical, low-promise splits are just never aligned.  Ignored
        by the old O(n⁴) algorithm, which has no heap to seed.
        """
        if isinstance(sequence, str):
            sequence = Sequence(sequence, "protein")
        exchange = self.resolve_exchange(sequence)
        engine = self._engine_for_run()
        if self.algorithm == "new":
            alignments, stats = find_top_alignments(
                sequence,
                self.top_alignments,
                exchange,
                self.gaps,
                engine=engine,
                min_score=self.min_score,
                group=self.group,
                seed_bounds=seed_bounds,
                prune=self.prune,
            )
        else:
            alignments, stats = old_find_top_alignments(
                sequence,
                self.top_alignments,
                exchange,
                self.gaps,
                engine=engine,
                min_score=self.min_score,
            )
        repeats = self.delineate(alignments, len(sequence))
        return RepeatResult(top_alignments=alignments, repeats=repeats, stats=stats)


def find_repeats(
    sequence: Sequence | str,
    top_alignments: int = 20,
    *,
    exchange: ExchangeMatrix | None = None,
    gaps: GapPenalties | None = None,
    engine: str = "vector",
    algorithm: str = "new",
    group: int = 1,
    min_score: float = 0.0,
    prune: bool = True,
    min_copy_length: int = 2,
    max_gap: int = 0,
    min_score_fraction: float = 0.25,
    seed_bounds=None,
) -> RepeatResult:
    """One-shot repeat detection (see :class:`RepeatFinder`)."""
    finder = RepeatFinder(
        exchange=exchange,
        gaps=gaps if gaps is not None else GapPenalties(),
        top_alignments=top_alignments,
        engine=engine,
        algorithm=algorithm,
        group=group,
        min_score=min_score,
        prune=prune,
        min_copy_length=min_copy_length,
        max_gap=max_gap,
        min_score_fraction=min_score_fraction,
    )
    return finder.find(sequence, seed_bounds=seed_bounds)
