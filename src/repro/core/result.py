"""Result types: top alignments, repeats, statistics."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TopAlignment", "Repeat", "RunStats", "RepeatResult"]


@dataclass(frozen=True)
class TopAlignment:
    """One accepted nonoverlapping top alignment.

    Attributes
    ----------
    index:
        Acceptance order (0 = first/best top alignment).
    r:
        The split point whose matrix produced it.
    score:
        Alignment score (identical with and without the override
        triangle — shadow alignments are never accepted).
    pairs:
        The matched residue pairs ``(i, j)`` in *global* 1-based
        sequence coordinates, ``i <= r < j``, ordered along the path.
    """

    index: int
    r: int
    score: float
    pairs: tuple[tuple[int, int], ...]

    def __post_init__(self) -> None:
        for i, j in self.pairs:
            if not i <= self.r < j:
                raise ValueError(
                    f"pair ({i}, {j}) does not straddle split r={self.r}"
                )

    @property
    def prefix_interval(self) -> tuple[int, int]:
        """1-based inclusive span of the alignment on the prefix side."""
        return self.pairs[0][0], self.pairs[-1][0]

    @property
    def suffix_interval(self) -> tuple[int, int]:
        """1-based inclusive span of the alignment on the suffix side."""
        return self.pairs[0][1], self.pairs[-1][1]

    def __len__(self) -> int:
        return len(self.pairs)

    def overlaps(self, other: "TopAlignment") -> bool:
        """Whether two alignments share any matched pair (must never happen)."""
        return bool(set(self.pairs) & set(other.pairs))


@dataclass(frozen=True)
class Repeat:
    """One delineated repeat family (Repro phase 2 output).

    ``copies`` holds the 1-based inclusive ``(start, end)`` interval of
    each detected copy; ``columns`` is the number of equivalence
    classes (alignment columns) supporting the family — a proxy for the
    conserved core length of the repeat unit.
    """

    family: int
    copies: tuple[tuple[int, int], ...]
    columns: int

    @property
    def n_copies(self) -> int:
        """Number of detected copies."""
        return len(self.copies)

    @property
    def unit_length(self) -> float:
        """Mean copy length."""
        if not self.copies:
            return 0.0
        return sum(e - s + 1 for s, e in self.copies) / len(self.copies)


@dataclass
class RunStats:
    """Instrumentation of one top-alignment run.

    These counters back the §3/§5.1 claims: the realignment fraction
    (90–97 % avoided), speculation overhead (<0.70 % extra alignments
    for lane groups), and the cost model of the cluster simulator.
    """

    #: Bottom-row alignments computed by the engine (first passes and
    #: realignments; excludes traceback recomputations).
    alignments: int = 0
    #: Alignments beyond the first per task (i.e. with a non-empty
    #: override triangle history).
    realignments: int = 0
    #: Matrix cells evaluated across all alignments.
    cells: int = 0
    #: Full-matrix traceback recomputations (one per accepted alignment).
    tracebacks: int = 0
    #: Realignments performed between consecutive acceptances, indexed
    #: by the top-alignment number being searched for.
    realignments_per_top: list[int] = field(default_factory=list)
    #: Wall-clock seconds spent in engine calls (approximate).
    engine_seconds: float = 0.0
    #: Configuration tag of the engine that computed the alignments
    #: (``AlignmentEngine.describe()``; "" until a state binds one).
    engine: str = ""
    #: Scheduling group width G (1 = strictly sequential best-first;
    #: set by the speculative batched driver).
    group: int = 1
    #: Speculative lane realignments invalidated by an acceptance before
    #: their fresh score was ever consumed (§5.1-style waste).
    speculative_waste: int = 0

    def realignment_fraction(self, m: int, k: int) -> float:
        """Realignments performed / realignments a full-rescan strategy
        (the old algorithm) would perform, ``(k - 1) * (m - 1)``.

        The §3 claim is that this is 0.03–0.10.
        """
        naive = (k - 1) * (m - 1)
        if naive <= 0:
            return 0.0
        return self.realignments / naive

    @property
    def cells_per_second(self) -> float:
        """Engine throughput — the unit the batched benchmark compares."""
        if self.engine_seconds <= 0.0:
            return 0.0
        return self.cells / self.engine_seconds

    @property
    def waste_ratio(self) -> float:
        """Invalidated speculative realignments / all alignments."""
        if self.alignments <= 0:
            return 0.0
        return self.speculative_waste / self.alignments


@dataclass
class RepeatResult:
    """Everything :func:`repro.core.api.find_repeats` returns."""

    top_alignments: list[TopAlignment]
    repeats: list[Repeat]
    stats: RunStats
