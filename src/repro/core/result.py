"""Result types: top alignments, repeats, statistics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["TopAlignment", "Repeat", "RunStats", "RepeatResult"]


@dataclass(frozen=True)
class TopAlignment:
    """One accepted nonoverlapping top alignment.

    Attributes
    ----------
    index:
        Acceptance order (0 = first/best top alignment).
    r:
        The split point whose matrix produced it.
    score:
        Alignment score (identical with and without the override
        triangle — shadow alignments are never accepted).
    pairs:
        The matched residue pairs ``(i, j)`` in *global* 1-based
        sequence coordinates, ``i <= r < j``, ordered along the path.
    """

    index: int
    r: int
    score: float
    pairs: tuple[tuple[int, int], ...]

    def __post_init__(self) -> None:
        for i, j in self.pairs:
            if not i <= self.r < j:
                raise ValueError(
                    f"pair ({i}, {j}) does not straddle split r={self.r}"
                )

    @property
    def prefix_interval(self) -> tuple[int, int]:
        """1-based inclusive span of the alignment on the prefix side."""
        return self.pairs[0][0], self.pairs[-1][0]

    @property
    def suffix_interval(self) -> tuple[int, int]:
        """1-based inclusive span of the alignment on the suffix side."""
        return self.pairs[0][1], self.pairs[-1][1]

    def __len__(self) -> int:
        return len(self.pairs)

    def overlaps(self, other: "TopAlignment") -> bool:
        """Whether two alignments share any matched pair (must never happen)."""
        return bool(set(self.pairs) & set(other.pairs))


@dataclass(frozen=True)
class Repeat:
    """One delineated repeat family (Repro phase 2 output).

    ``copies`` holds the 1-based inclusive ``(start, end)`` interval of
    each detected copy; ``columns`` is the number of equivalence
    classes (alignment columns) supporting the family — a proxy for the
    conserved core length of the repeat unit.
    """

    family: int
    copies: tuple[tuple[int, int], ...]
    columns: int

    @property
    def n_copies(self) -> int:
        """Number of detected copies."""
        return len(self.copies)

    @property
    def unit_length(self) -> float:
        """Mean copy length."""
        if not self.copies:
            return 0.0
        return sum(e - s + 1 for s, e in self.copies) / len(self.copies)


#: RunStats counter field -> (global mirror metric, help text).  The
#: mirror names are the public metric catalogue documented in README's
#: "Observability" section.
_STAT_MIRRORS: dict[str, tuple[str, str]] = {
    "alignments": (
        "repro_alignments_total",
        "Bottom-row alignments computed by the engines (first passes and realignments)",
    ),
    "realignments": (
        "repro_realignments_total",
        "Alignments beyond the first per task (non-empty override-triangle history)",
    ),
    "cells": (
        "repro_cells_total",
        "Dynamic-programming matrix cells evaluated",
    ),
    "tracebacks": (
        "repro_tracebacks_total",
        "Full-matrix traceback recomputations (one per accepted top alignment)",
    ),
    "speculative_waste": (
        "repro_speculative_waste_total",
        "Speculative lane realignments invalidated before their score was consumed",
    ),
    "engine_seconds": (
        "repro_engine_seconds_total",
        "Monotonic seconds spent inside engine calls",
    ),
    "pruned_cells": (
        "repro_prune_cells_total",
        "Matrix cells skipped because a prune bound proved them unnecessary",
    ),
    "pruned_lanes": (
        "repro_prune_lanes_total",
        "Fills cut short (or skipped outright) by the exact pruning bounds",
    ),
}


def _stat_property(name: str) -> property:
    """A RunStats counter: local per-run value + global registry mirror.

    The getter reads the per-run instrument; the setter applies the
    delta to it *and* forwards the same delta to the process-wide
    registry counter when collection is enabled — so ``stats.cells +=
    n`` is the single bookkeeping statement for both scopes (no
    parallel tallies to drift apart).
    """

    def fget(self: "RunStats") -> Any:
        return self._values[name]

    def fset(self: "RunStats", value: Any) -> None:
        mirrors = self._mirrors
        if mirrors is not None:
            delta = value - self._values[name]
            if delta:
                mirrors[name].inc(delta)
        self._values[name] = value

    return property(fget, fset, doc=f"Per-run {name.replace('_', ' ')} counter.")


class RunStats:
    """Instrumentation of one top-alignment run.

    These counters back the §3/§5.1 claims: the realignment fraction
    (90–97 % avoided), speculation overhead (<0.70 % extra alignments
    for lane groups), and the cost model of the cluster simulator.

    Since the :mod:`repro.obs` subsystem, RunStats is a *view* over
    per-run instruments rather than a parallel bookkeeping path: each
    counter assignment updates the run-local instrument and, when
    process-wide metrics collection is enabled (the service,
    ``--emit-metrics`` bench runs, ``REPRO_METRICS=1``), mirrors the
    delta into the global registry counters named in
    ``_STAT_MIRRORS``.  With collection disabled the mirror branch is
    a single ``None`` check, keeping the hot path at its pre-obs cost.
    """

    __slots__ = ("_values", "_mirrors", "realignments_per_top", "engine", "group")

    #: Counter fields, in (legacy dataclass) declaration order — the
    #: positional-argument order of ``__init__``.
    _COUNTER_FIELDS = (
        "alignments",
        "realignments",
        "cells",
        "tracebacks",
        "engine_seconds",
        "speculative_waste",
        "pruned_cells",
        "pruned_lanes",
    )

    def __init__(
        self,
        alignments: int = 0,
        realignments: int = 0,
        cells: int = 0,
        tracebacks: int = 0,
        realignments_per_top: list[int] | None = None,
        engine_seconds: float = 0.0,
        engine: str = "",
        group: int = 1,
        speculative_waste: int = 0,
        pruned_cells: int = 0,
        pruned_lanes: int = 0,
    ) -> None:
        self._values: dict[str, Any] = {
            "alignments": alignments,
            "realignments": realignments,
            "cells": cells,
            "tracebacks": tracebacks,
            "engine_seconds": engine_seconds,
            "speculative_waste": speculative_waste,
            "pruned_cells": pruned_cells,
            "pruned_lanes": pruned_lanes,
        }
        #: Realignments performed between consecutive acceptances,
        #: indexed by the top-alignment number being searched for.
        self.realignments_per_top: list[int] = (
            realignments_per_top if realignments_per_top is not None else []
        )
        #: Configuration tag of the engine that computed the alignments
        #: (``AlignmentEngine.describe()``; "" until a state binds one).
        self.engine = engine
        #: Scheduling group width G (1 = strictly sequential best-first;
        #: set by the speculative batched driver).
        self.group = group
        self._mirrors: dict[str, Any] | None = None
        self._bind_mirrors()

    def _bind_mirrors(self) -> None:
        """Attach global registry counters (None while collection is off)."""
        from ..obs import get_registry

        registry = get_registry()
        if registry.collecting:
            self._mirrors = {
                field_name: registry.counter(metric, help=help_text)
                for field_name, (metric, help_text) in _STAT_MIRRORS.items()
            }
        else:
            self._mirrors = None

    #: Bottom-row alignments computed by the engine (first passes and
    #: realignments; excludes traceback recomputations).
    alignments = _stat_property("alignments")
    #: Alignments beyond the first per task (i.e. with a non-empty
    #: override triangle history).
    realignments = _stat_property("realignments")
    #: Matrix cells evaluated across all alignments.
    cells = _stat_property("cells")
    #: Full-matrix traceback recomputations (one per accepted alignment).
    tracebacks = _stat_property("tracebacks")
    #: Monotonic seconds spent in engine calls (approximate).
    engine_seconds = _stat_property("engine_seconds")
    #: Speculative lane realignments invalidated by an acceptance before
    #: their fresh score was ever consumed (§5.1-style waste).
    speculative_waste = _stat_property("speculative_waste")
    #: Matrix cells never evaluated because a prune bound proved the
    #: fill could not beat the acceptance threshold (align.pruning).
    pruned_cells = _stat_property("pruned_cells")
    #: Fills cut short by a bound — skipped outright (lane-level) or
    #: terminated mid-fill (row/column-level).
    pruned_lanes = _stat_property("pruned_lanes")

    # -- serialisation support (checkpoints, multiprocessing) -------------

    def __getstate__(self) -> dict[str, Any]:
        return {
            **self._values,
            "realignments_per_top": self.realignments_per_top,
            "engine": self.engine,
            "group": self.group,
        }

    def __setstate__(self, state: dict[str, Any]) -> None:
        # .get(): checkpoints written before a counter existed load as 0.
        self._values = {name: state.get(name, 0) for name in self._COUNTER_FIELDS}
        self.realignments_per_top = state["realignments_per_top"]
        self.engine = state["engine"]
        self.group = state["group"]
        # Rebind against the *receiving* process's registry: mirror
        # instruments hold locks and must never cross a pickle boundary.
        self._bind_mirrors()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RunStats):
            return NotImplemented
        return self.__getstate__() == other.__getstate__()

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v!r}" for k, v in self.__getstate__().items())
        return f"RunStats({parts})"

    def realignment_fraction(self, m: int, k: int) -> float:
        """Realignments performed / realignments a full-rescan strategy
        (the old algorithm) would perform, ``(k - 1) * (m - 1)``.

        The §3 claim is that this is 0.03–0.10.
        """
        naive = (k - 1) * (m - 1)
        if naive <= 0:
            return 0.0
        return self.realignments / naive

    @property
    def cells_per_second(self) -> float:
        """Engine throughput — the unit the batched benchmark compares."""
        if self.engine_seconds <= 0.0:
            return 0.0
        return self.cells / self.engine_seconds

    @property
    def waste_ratio(self) -> float:
        """Invalidated speculative realignments / all alignments."""
        if self.alignments <= 0:
            return 0.0
        return self.speculative_waste / self.alignments


@dataclass
class RepeatResult:
    """Everything :func:`repro.core.api.find_repeats` returns."""

    top_alignments: list[TopAlignment]
    repeats: list[Repeat]
    stats: RunStats
