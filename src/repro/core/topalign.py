"""The new O(n³) top-alignment algorithm (§3, Figure 5).

:class:`TopAlignmentState` holds everything one search over a sequence
needs — the split tasks, override triangle, bottom-row store and
engine — and exposes the two operations of Figure 5's loop:

* :meth:`TopAlignmentState.align_task` — ``AlignWithoutTraceback``:
  score a split under the current triangle, with shadow-alignment
  rejection against the cached first-pass bottom row;
* :meth:`TopAlignmentState.accept_task` — lines 13–14: recompute the
  winning matrix, trace the alignment back, and mark its pairs in the
  override triangle.

:func:`find_top_alignments` runs the sequential best-first loop on top
of this state.  The shared-memory scheduler, the distributed
master/slave driver and the cluster simulator reuse the same state
object with their own scheduling policies, which is how the paper's
"exactly the same top alignments" guarantee carries over to every
execution mode.
"""

from __future__ import annotations

import os
import time

import numpy as np

from ..align.base import AlignmentProblem, get_engine
from ..align.matrix import full_matrix
from ..align.profile import QueryProfile
from ..align.pruning import PruneContext, PruneGate
from ..align.traceback import traceback
from ..obs import get_registry
from ..obs import span as obs_span
from ..scoring.exchange import ExchangeMatrix
from ..scoring.gaps import GapPenalties
from ..sequences.sequence import Sequence
from .bottomrows import BottomRowStore
from .override import DenseOverrideTriangle, OverrideTriangle, SparseOverrideTriangle
from .result import RunStats, TopAlignment
from .tasks import Task, TaskQueue

__all__ = ["TopAlignmentState", "find_top_alignments"]


class TopAlignmentState:
    """Mutable search state shared by all execution modes.

    Parameters
    ----------
    sequence:
        The sequence to search for internal repeats.
    exchange, gaps:
        Scoring model.  Integral scores are strongly recommended — the
        shadow-validity test compares scores for exact equality, which
        is exact in float64 only for integral values (the paper's
        implementation used short integers throughout).
    engine:
        Alignment engine name or instance (default ``"vector"``).
    triangle:
        ``"dense"`` (default) or ``"sparse"`` override-triangle storage.
    memory:
        ``"full"`` (default) caches every first-pass bottom row — the
        paper's O(n²) store; ``"linear"`` uses the Appendix A on-demand
        recomputation scheme with at most ``linear_capacity`` resident
        rows.
    seed_bounds:
        Optional array of ``m - 1`` finite upper bounds on the
        first-pass score of splits ``r = 1..m-1`` (entry ``i`` bounds
        split ``i + 1``), typically from
        :func:`repro.index.bounds.seed_score_bounds`.  Tasks start at
        these bounds instead of ``+inf``, so splits whose bound never
        tops the heap are never aligned — accepted tops are unchanged
        because acceptance always compares freshly-aligned scores.
        Bounds **must** dominate the true first-pass scores; the
        invariant checker verifies this on every alignment.
    prune:
        Enable the exact in-fill pruning bounds (default ``True``; see
        :mod:`repro.align.pruning`).  Accepted tops are bit-identical
        either way — pruned fills only ever record provable upper
        bounds as *stale* heap scores, never fresh alignments.
    """

    def __init__(
        self,
        sequence: Sequence,
        exchange: ExchangeMatrix,
        gaps: GapPenalties = GapPenalties(),
        *,
        engine: str = "vector",
        triangle: str = "dense",
        memory: str = "full",
        linear_capacity: int = 32,
        seed_bounds: np.ndarray | None = None,
        prune: bool = True,
    ) -> None:
        if len(sequence) < 2:
            raise ValueError("sequence must have at least 2 residues")
        if sequence.alphabet.name != exchange.alphabet.name:
            raise ValueError(
                f"sequence alphabet {sequence.alphabet.name!r} does not match "
                f"exchange matrix alphabet {exchange.alphabet.name!r}"
            )
        self.sequence = sequence
        self.codes = sequence.codes
        self.m = len(sequence)
        self.exchange = exchange
        self.gaps = gaps
        self.engine = get_engine(engine)
        # The query profile: the full n_symbols x m substitution gather,
        # computed once here so every problem's seq2 block is a zero-copy
        # suffix view (the SSW-style precomputation; see align.profile).
        self.profile = QueryProfile(self.codes, exchange)
        # Exact-pruning bound tables (align.pruning); None disables all
        # pruning and every fill runs to completion.
        self.prune_context = PruneContext(self.profile) if prune else None
        if triangle == "dense":
            self.triangle: OverrideTriangle = DenseOverrideTriangle(self.m)
        elif triangle == "sparse":
            self.triangle = SparseOverrideTriangle(self.m)
        else:
            raise ValueError("triangle must be 'dense' or 'sparse'")
        if memory == "full":
            self.bottom_rows = BottomRowStore(self.m)
        elif memory == "linear":
            from .linearspace import RecomputingBottomRowStore

            self.bottom_rows = RecomputingBottomRowStore(
                self.codes,
                exchange,
                gaps,
                self.engine,
                capacity=linear_capacity,
                profile=self.profile,
            )
        else:
            raise ValueError("memory must be 'full' or 'linear'")
        if seed_bounds is not None:
            seed_bounds = np.asarray(seed_bounds, dtype=np.float64)
            if seed_bounds.shape != (self.m - 1,):
                raise ValueError(
                    f"seed_bounds must have shape ({self.m - 1},), "
                    f"got {seed_bounds.shape}"
                )
            if not np.isfinite(seed_bounds).all():
                raise ValueError("seed_bounds must be finite")
            # The task guard requires non-negative scores; a negative
            # bound means "cannot score above zero", which 0 expresses.
            seed_bounds = np.maximum(seed_bounds, 0.0)
        self.seed_bounds = seed_bounds
        self.found: list[TopAlignment] = []
        self.stats = RunStats(engine=self.engine.describe())
        self.stats.realignments_per_top.append(0)
        # Debug-mode invariant checking (REPRO_CHECK_INVARIANTS=1|full);
        # the env test avoids importing the analysis package on hot paths.
        self.invariants = None
        if os.environ.get("REPRO_CHECK_INVARIANTS", ""):
            from ..analysis.invariants import checker_from_env

            self.invariants = checker_from_env(self)

    # -- problem construction --------------------------------------------

    @property
    def n_found(self) -> int:
        """Number of accepted top alignments (== triangle version)."""
        return len(self.found)

    def problem_for(
        self,
        r: int,
        *,
        with_override: bool = True,
        prune: PruneGate | None = None,
    ) -> AlignmentProblem:
        """The alignment problem of split ``r`` under the current triangle."""
        override = self.triangle.view_for_split(r) if with_override else None
        return AlignmentProblem(
            self.codes[:r],
            self.codes[r:],
            self.exchange,
            self.gaps,
            override,
            profile=self.profile.suffix(r),
            prune=prune,
        )

    # -- Figure 5 operations ----------------------------------------------

    def make_tasks(self) -> list[Task]:
        """Fresh never-aligned tasks for every split point (lines 2–7).

        With :attr:`seed_bounds` set, tasks start at their finite upper
        bound instead of ``+inf`` — still never-aligned (acceptance
        requires a fresh alignment first), but sortable below already
        aligned work, so hopeless splits sink in the heap unaligned.
        """
        if self.seed_bounds is None:
            return [Task(r) for r in range(1, self.m)]
        return [
            Task(r, score=float(self.seed_bounds[r - 1]))
            for r in range(1, self.m)
        ]

    def align_task(self, task: Task) -> float:
        """``AlignWithoutTraceback``: score split ``task.r`` now.

        Caches the bottom row on the task's first alignment; on
        realignments applies the Appendix A shadow-validity rule.  The
        task's ``score`` and ``aligned_with`` are updated in place and
        the new score returned.

        A task's *first* alignment is always computed under the empty
        triangle, whatever the current version: the cached row is the
        shadow-validity reference, and the Appendix A rule is defined
        against the version-0 row.  Without heap seeding this is moot
        (every first pass happens before the first acceptance); with
        finite seed bounds a task may be popped for the first time
        after acceptances, and the override view must be withheld so
        later shadow decisions — and therefore the accepted tops —
        stay bit-identical to an unseeded run.
        """
        first = task.r not in self.bottom_rows
        gate = self._gate_for(task)
        if gate is not None and gate.prune_before_fill():
            return self._record_pruned(task, gate)
        row = self._engine_row(
            self.problem_for(task.r, with_override=not first, prune=gate)
        )
        if gate is not None and gate.pruned:
            return self._record_pruned(task, gate)
        return self._record_row(task, row)

    def _gate_for(self, task: Task) -> PruneGate | None:
        """A per-fill prune gate for ``task``, or ``None`` (pruning off).

        Tasks at or below the floor get no gate: they are about to be
        retired by the drivers' exhaustion test, and an unprunable full
        fill is the only transition guaranteed to make progress on them
        (a prune could leave their score unchanged).
        """
        ctx = self.prune_context
        if ctx is None or task.score <= ctx.floor:
            return None
        return ctx.gate_for(task.r, cap=task.score)

    def _record_pruned(self, task: Task, gate: PruneGate) -> float:
        """Record a pruned fill: the bound becomes the stale heap score.

        ``aligned_with`` is untouched and no bottom row is cached, so
        acceptance — which requires a fresh alignment — can never fire
        on a bound; accepted tops stay bit-identical (see
        :mod:`repro.align.pruning`).
        """
        prev_score = task.score
        task.score = min(gate.bound, prev_score)
        self.stats.pruned_lanes += 1
        self.stats.pruned_cells += gate.pruned_cells
        if self.invariants is not None:
            self.invariants.after_prune(task, gate, prev_score=prev_score)
        return task.score

    def _record_row(self, task: Task, row: np.ndarray) -> float:
        """Put-or-shadow-score bookkeeping shared by both alignment paths.

        First alignments cache the bottom row; realignments apply the
        Appendix A shadow-validity rule.  The task's ``score`` and
        ``aligned_with`` are updated in place, the invariant checker (if
        armed) validates the transition, and the new score is returned.
        """
        prev_score, prev_version = task.score, task.aligned_with
        if task.r not in self.bottom_rows:
            # First pass: ``row`` was computed under the empty triangle
            # (see align_task), so it is scored — and versioned — as the
            # canonical version-0 alignment even when acceptances have
            # already happened.  A late first pass therefore never
            # satisfies ``is_current`` directly; the task must realign
            # under the live triangle (with the shadow rule) before it
            # can be accepted.
            self.bottom_rows.put(task.r, row)
            score = float(row.max())
            version = 0
        else:
            self.stats.realignments += 1
            self.stats.realignments_per_top[-1] += 1
            score = self.bottom_rows.score_of(task.r, row)
            version = self.n_found
        task.score = score
        task.aligned_with = version
        if self.invariants is not None:
            self.invariants.after_align(
                task, row, prev_score=prev_score, prev_version=prev_version
            )
        return score

    def accept_task(self, task: Task) -> TopAlignment:
        """Accept ``task`` as the next top alignment (lines 13–14).

        Recomputes the split's full matrix under the *same* triangle the
        task was last scored with, picks the best valid bottom-row cell
        (ties: leftmost), traces the path back, converts it to global
        pairs and marks the override triangle.
        """
        if task.aligned_with != self.n_found:
            raise ValueError(
                f"task r={task.r} was aligned with triangle version "
                f"{task.aligned_with}, not the current {self.n_found}"
            )
        if task.score <= 0:
            raise ValueError("cannot accept a non-positive top alignment")
        problem = self.problem_for(task.r)
        matrix = full_matrix(problem)
        self.stats.tracebacks += 1
        bottom = np.asarray(matrix[-1], dtype=np.float64)
        valid = self.bottom_rows.valid_mask(task.r, bottom)
        candidates = np.where(valid, bottom, -np.inf)
        end_x = int(np.argmax(candidates))
        best = float(candidates[end_x])
        if best != task.score:
            raise AssertionError(
                f"accepted score {best} does not match task score {task.score} "
                f"for split r={task.r}"
            )
        path = traceback(problem, matrix, problem.rows, end_x)
        pairs = tuple((step.y, task.r + step.x) for step in path.pairs)
        alignment = TopAlignment(
            index=self.n_found, r=task.r, score=task.score, pairs=pairs
        )
        self.triangle.mark(pairs)
        self.found.append(alignment)
        self.stats.realignments_per_top.append(0)
        if self.invariants is not None:
            self.invariants.after_accept(alignment)
        return alignment

    # -- engine plumbing ----------------------------------------------------

    def _engine_row(self, problem: AlignmentProblem) -> np.ndarray:
        start = time.perf_counter()
        row = self.engine.last_row(problem)
        self.stats.engine_seconds += time.perf_counter() - start
        self.stats.alignments += 1
        gate = problem.prune
        if gate is not None and gate.pruned:
            # The fill stopped early; only the evaluated rows count.
            self.stats.cells += gate.cells_filled
        else:
            self.stats.cells += problem.cells
        return row

    def align_tasks_batch(self, tasks: list[Task]) -> list[float]:
        """Score several tasks in one engine batch (lane groups, §4.1).

        Semantically identical to calling :meth:`align_task` on each;
        engines with a true batched implementation (the lane engine)
        compute them in lockstep.
        """
        scores = [0.0] * len(tasks)
        fill: list[tuple[int, Task, AlignmentProblem]] = []
        for i, task in enumerate(tasks):
            gate = self._gate_for(task)
            if gate is not None and gate.prune_before_fill():
                # Lane-level prune: the split never reaches the engine.
                scores[i] = self._record_pruned(task, gate)
                continue
            problem = self.problem_for(
                task.r, with_override=task.r in self.bottom_rows, prune=gate
            )
            fill.append((i, task, problem))
        if fill:
            problems = [problem for _, _, problem in fill]
            start = time.perf_counter()
            rows = self.engine.last_rows_batch(problems)
            self.stats.engine_seconds += time.perf_counter() - start
            self.stats.alignments += len(problems)
            for (i, task, problem), row in zip(fill, rows):
                gate = problem.prune
                if gate is not None and gate.pruned:
                    self.stats.cells += gate.cells_filled
                    scores[i] = self._record_pruned(task, gate)
                else:
                    self.stats.cells += problem.cells
                    scores[i] = self._record_row(task, row)
        return scores


def find_top_alignments(
    sequence: Sequence,
    k: int,
    exchange: ExchangeMatrix,
    gaps: GapPenalties = GapPenalties(),
    *,
    engine: str = "vector",
    triangle: str = "dense",
    min_score: float = 0.0,
    group: int = 1,
    state: TopAlignmentState | None = None,
    seed_bounds: np.ndarray | None = None,
    prune: bool = True,
) -> tuple[list[TopAlignment], RunStats]:
    """Compute up to ``k`` nonoverlapping top alignments (Figure 5).

    Returns the accepted alignments in decreasing-score order together
    with run statistics.  Fewer than ``k`` alignments are returned when
    the sequence is exhausted (the best remaining score would be
    ``<= min_score``).

    ``group`` selects the scheduling grain: 1 (default) runs the
    sequential best-first loop below; larger values delegate to the
    speculative batched driver (:mod:`repro.core.batched`), which
    realigns the heap's top ``group`` stale tasks per lockstep engine
    batch and returns bit-identical top alignments.

    Passing a pre-built ``state`` lets callers (tests, the simulator)
    inspect internals afterwards; otherwise one is created.
    ``seed_bounds`` (ignored when ``state`` is passed) seeds the heap
    with finite per-split upper bounds — see
    :class:`TopAlignmentState`.  ``prune`` (also ignored when ``state``
    is passed, which carries its own context) toggles the exact in-fill
    pruning bounds of :mod:`repro.align.pruning`; accepted tops are
    bit-identical either way.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if group < 1:
        raise ValueError("group must be >= 1")
    if state is None:
        state = TopAlignmentState(
            sequence,
            exchange,
            gaps,
            engine=engine,
            triangle=triangle,
            seed_bounds=seed_bounds,
            prune=prune,
        )
    if group > 1:
        from .batched import BatchedTopAlignmentRunner

        runner = BatchedTopAlignmentRunner(state, k, group=group, min_score=min_score)
        return runner.run()
    checker = state.invariants
    queue = TaskQueue(guard=checker.guard_task if checker is not None else None)
    for task in state.make_tasks():
        queue.insert(task)
    prune_ctx = state.prune_context
    if prune_ctx is not None:
        prune_ctx.configure(min_score)
    registry = get_registry()
    heap_gauge = (
        registry.gauge(
            "repro_heap_depth",
            help="Best-first task-heap size observed at the last acceptance",
        )
        if registry.collecting
        else None
    )

    with obs_span("best_first", driver="sequential", k=k, m=state.m):
        while state.n_found < k and queue:
            task = queue.pop_highest()
            if task.score <= min_score:
                # Stale scores are upper bounds, so nothing in the queue can
                # still beat min_score: the sequence is exhausted.
                break
            if task.is_current(state.n_found):
                with obs_span("accept", r=task.r, index=state.n_found):
                    state.accept_task(task)
                if heap_gauge is not None:
                    heap_gauge.set(len(queue))
                if checker is not None and checker.mode == "full":
                    # Every queued upper bound must still dominate its fresh
                    # score under the just-grown triangle.
                    checker.verify_upper_bounds(queue.tasks())
            else:
                if prune_ctx is not None:
                    # Live acceptance threshold: the next-best heap score
                    # is what this fill must beat to stay at the head.
                    prune_ctx.threshold = max(
                        prune_ctx.floor,
                        queue.peek_score() if queue else prune_ctx.floor,
                    )
                state.align_task(task)
            queue.insert(task)

    return list(state.found), state.stats
