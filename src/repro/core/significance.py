"""Statistical significance of top-alignment scores.

A top alignment's raw score does not say whether the repeat is *real*:
every sequence, shuffled, still has some best self-alignment.  The
standard treatment (Karlin–Altschul / Waterman) is that optimal local
alignment scores of unrelated sequences follow an extreme-value (Gumbel)
distribution.  This module estimates that null distribution empirically
— shuffle the sequence, rerun the first top alignment, repeat — and
reports empirical and Gumbel-fitted p-values.

Used by examples and the scanner to separate genuine repeat
architecture from background self-similarity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..scoring.exchange import ExchangeMatrix
from ..scoring.gaps import GapPenalties
from ..sequences.sequence import Sequence
from .topalign import find_top_alignments

__all__ = ["NullDistribution", "shuffled", "estimate_null", "score_pvalue"]


def shuffled(sequence: Sequence, rng: np.random.Generator) -> Sequence:
    """A composition-preserving shuffle of ``sequence``."""
    codes = sequence.codes.copy()
    rng.shuffle(codes)
    return Sequence(codes, sequence.alphabet, id=f"{sequence.id}-shuffled")


@dataclass(frozen=True)
class NullDistribution:
    """Empirical null of best self-alignment scores plus a Gumbel fit.

    The Gumbel location/scale are method-of-moments estimates:
    ``scale = std * sqrt(6)/pi``, ``loc = mean - gamma * scale``.
    """

    scores: np.ndarray
    loc: float
    scale: float

    def empirical_pvalue(self, score: float) -> float:
        """Fraction of null scores >= ``score`` (add-one smoothed)."""
        n = self.scores.size
        return (int((self.scores >= score).sum()) + 1) / (n + 1)

    def gumbel_pvalue(self, score: float) -> float:
        """Right-tail p-value under the fitted Gumbel distribution."""
        if self.scale <= 0:
            return 1.0 if score <= self.loc else 0.0
        z = (score - self.loc) / self.scale
        # P(X >= s) = 1 - exp(-exp(-z)), computed stably for large z.
        inner = np.exp(-z)
        return float(-np.expm1(-inner))


_EULER_GAMMA = 0.5772156649015329


def estimate_null(
    sequence: Sequence,
    exchange: ExchangeMatrix,
    gaps: GapPenalties = GapPenalties(),
    *,
    shuffles: int = 30,
    seed: int = 0,
    engine: str = "vector",
) -> NullDistribution:
    """Estimate the null distribution of the best self-alignment score.

    Runs the first top alignment on ``shuffles`` composition-preserving
    shuffles.  Cost: ``shuffles`` first passes — O(shuffles · n³) — so
    keep ``shuffles`` modest for long sequences.
    """
    if shuffles < 2:
        raise ValueError("need at least 2 shuffles to fit a distribution")
    rng = np.random.default_rng(seed)
    scores = np.empty(shuffles, dtype=np.float64)
    for i in range(shuffles):
        null_seq = shuffled(sequence, rng)
        tops, _ = find_top_alignments(null_seq, 1, exchange, gaps, engine=engine)
        scores[i] = tops[0].score if tops else 0.0
    std = float(scores.std(ddof=1))
    scale = std * np.sqrt(6.0) / np.pi
    loc = float(scores.mean()) - _EULER_GAMMA * scale
    return NullDistribution(scores=scores, loc=loc, scale=scale)


def score_pvalue(
    sequence: Sequence,
    exchange: ExchangeMatrix,
    gaps: GapPenalties = GapPenalties(),
    *,
    shuffles: int = 30,
    seed: int = 0,
    engine: str = "vector",
) -> tuple[float, float, NullDistribution]:
    """Best self-alignment score of ``sequence`` with its p-value.

    Returns ``(score, gumbel_pvalue, null)``.
    """
    tops, _ = find_top_alignments(sequence, 1, exchange, gaps, engine=engine)
    score = tops[0].score if tops else 0.0
    null = estimate_null(
        sequence, exchange, gaps, shuffles=shuffles, seed=seed, engine=engine
    )
    return score, null.gumbel_pvalue(score), null
