"""Self-comparison dot plots.

Figure 4 explains top alignments on a self-comparison grid; a dot plot
is the visual tool every repeat analysis starts from.  This module
renders one as text: residue-match dots (optionally word-filtered) with
the accepted top alignments overlaid — a direct, dependency-free way to
*see* what the algorithm found.
"""

from __future__ import annotations

import numpy as np

from ..sequences.sequence import Sequence
from .result import TopAlignment

__all__ = ["dotplot_matrix", "render_dotplot"]


def dotplot_matrix(sequence: Sequence, *, word: int = 1) -> np.ndarray:
    """Boolean self-match matrix above the main diagonal.

    ``matrix[i, j]`` (0-based) is True when the length-``word`` words
    starting at positions i and j are identical and ``i < j``.  Larger
    ``word`` filters background noise exactly like classic dot-plot
    tools.
    """
    if word < 1:
        raise ValueError("word must be >= 1")
    codes = sequence.codes
    n = codes.size - word + 1
    if n <= 0:
        return np.zeros((0, 0), dtype=bool)
    eq = codes[:n, None] == codes[None, :n]
    for offset in range(1, word):
        eq &= codes[offset : offset + n, None] == codes[None, offset : offset + n]
    return np.triu(eq, k=1)


def render_dotplot(
    sequence: Sequence,
    alignments: list[TopAlignment] | None = None,
    *,
    word: int = 2,
    max_size: int = 60,
) -> str:
    """Text dot plot with top alignments overlaid.

    ``.`` marks a word match, digits mark cells on a top alignment's
    path (the digit is ``index % 10``).  Sequences longer than
    ``max_size`` are downsampled by an integer stride; alignment marks
    survive downsampling (any path cell in the bucket marks it).
    """
    m = len(sequence)
    if m == 0:
        return "(empty sequence)"
    stride = max(1, -(-m // max_size))  # ceil division
    size = -(-m // stride)
    grid = [[" "] * size for _ in range(size)]

    dots = dotplot_matrix(sequence, word=word)
    if dots.size:
        ys, xs = np.nonzero(dots)
        for y, x in zip(ys // stride, xs // stride):
            grid[y][x] = "."

    for alignment in alignments or []:
        mark = str(alignment.index % 10)
        for i, j in alignment.pairs:
            grid[(i - 1) // stride][(j - 1) // stride] = mark

    header = (
        f"self dot plot of {sequence.id or '<unnamed>'} "
        f"({m} residues, word={word}, 1 cell = {stride} residue(s))"
    )
    lines = [header]
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    return "\n".join(lines)
