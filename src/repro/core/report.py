"""Full-analysis reports: everything Repro knows about one sequence.

Assembles the whole pipeline's output — top alignments with identities,
repeat families with multiple alignments, unit-length analysis, the dot
plot, optional shuffle-null significance — into one human-readable text
report.  This is the library's user-facing product, mirroring what the
REPRO web server returned to biologists.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..align.base import AlignmentProblem
from ..align.matrix import full_matrix
from ..align.traceback import alignment_identity, traceback
from ..scoring.exchange import ExchangeMatrix
from ..scoring.gaps import GapPenalties
from ..sequences.sequence import Sequence
from .api import RepeatFinder, _default_exchange
from .consensus import consensus_of_copies, select_unit_length
from .dotplot import render_dotplot
from .msa import align_family, render_msa
from .result import RepeatResult
from .significance import estimate_null

__all__ = ["AnalysisReport", "analyze"]


@dataclass
class AnalysisReport:
    """Structured result of :func:`analyze`, renderable as text."""

    sequence: Sequence
    exchange: ExchangeMatrix
    gaps: GapPenalties
    result: RepeatResult
    identities: list[float]
    pvalue: float | None

    def render(self, *, dotplot: bool = True, msa: bool = True) -> str:
        """The full text report."""
        seq = self.sequence
        result = self.result
        lines = [
            f"REPRO analysis of {seq.id or '<unnamed>'}",
            f"  length {len(seq)} ({seq.alphabet.name}); scoring "
            f"{self.exchange.name}, gap {self.gaps.open_:g}+{self.gaps.extend:g}/res",
            f"  alignments computed: {result.stats.alignments} "
            f"({result.stats.realignments} realignments, "
            f"{result.stats.tracebacks} tracebacks)",
            "",
            f"top alignments ({len(result.top_alignments)}):",
        ]
        for aln, identity in zip(result.top_alignments, self.identities):
            p0, p1 = aln.prefix_interval
            s0, s1 = aln.suffix_interval
            lines.append(
                f"  #{aln.index:<3d} score {aln.score:>7g}  "
                f"{p0:>5}-{p1:<5} ~ {s0:>5}-{s1:<5} "
                f"({len(aln)} pairs, {identity:.0%} identity)"
            )
        if self.pvalue is not None:
            verdict = "significant" if self.pvalue < 0.01 else "not significant"
            lines += [
                "",
                f"significance vs shuffle null: p = {self.pvalue:.3g} ({verdict})",
            ]
        lines += ["", f"repeat families ({len(result.repeats)}):"]
        for repeat in result.repeats:
            spans = ", ".join(f"{s}..{e}" for s, e in repeat.copies[:8])
            if repeat.n_copies > 8:
                spans += f", ... ({repeat.n_copies} total)"
            lines.append(
                f"  family {repeat.family}: {repeat.n_copies} copies, "
                f"~{repeat.unit_length:.0f} residues, "
                f"{repeat.columns} conserved columns: {spans}"
            )
            region_start = min(s for s, _ in repeat.copies)
            region_end = max(e for _, e in repeat.copies)
            if region_end - region_start + 1 >= 4:
                choice = select_unit_length(seq[region_start - 1 : region_end])
                lines.append(
                    f"    unit analysis: best period {choice.unit_length} "
                    f"({choice.copies} blocks, {choice.identity:.0%} identity)"
                )
            consensus = consensus_of_copies(seq, list(repeat.copies))
            lines.append(f"    consensus: {consensus.text}")
            if msa:
                try:
                    family_msa = align_family(
                        seq, repeat, result.top_alignments
                    )
                except ValueError:
                    pass
                else:
                    lines.append(
                        f"    alignment ({family_msa.mean_identity:.0%} identity):"
                    )
                    for line in render_msa(family_msa).splitlines():
                        lines.append(f"      {line}")
            lines.append("")
        if dotplot:
            lines.append(
                render_dotplot(seq, result.top_alignments, word=2, max_size=56)
            )
        return "\n".join(lines).rstrip() + "\n"


def analyze(
    sequence: Sequence | str,
    *,
    top_alignments: int = 15,
    exchange: ExchangeMatrix | None = None,
    gaps: GapPenalties | None = None,
    max_gap: int = 1,
    significance_shuffles: int = 0,
    seed: int = 0,
    **finder_kwargs,
) -> AnalysisReport:
    """Run the complete pipeline and return a renderable report.

    ``significance_shuffles > 0`` adds the shuffle-null p-value (costs
    that many extra first passes).
    """
    if isinstance(sequence, str):
        sequence = Sequence(sequence, "protein")
    gaps = gaps if gaps is not None else GapPenalties()
    resolved = exchange or _default_exchange(sequence)
    finder = RepeatFinder(
        exchange=resolved,
        gaps=gaps,
        top_alignments=top_alignments,
        max_gap=max_gap,
        **finder_kwargs,
    )
    result = finder.find(sequence)

    identities = []
    for aln in result.top_alignments:
        problem = AlignmentProblem(
            sequence.codes[: aln.r], sequence.codes[aln.r :], resolved, gaps
        )
        matrix = full_matrix(problem)
        end_i, end_j = aln.pairs[-1]
        path = traceback(problem, matrix, end_i, end_j - aln.r)
        identities.append(alignment_identity(problem, path))

    pvalue = None
    if significance_shuffles > 0 and result.top_alignments:
        null = estimate_null(
            sequence,
            resolved,
            gaps,
            shuffles=significance_shuffles,
            seed=seed,
        )
        pvalue = null.gumbel_pvalue(result.top_alignments[0].score)

    return AnalysisReport(
        sequence=sequence,
        exchange=resolved,
        gaps=gaps,
        result=result,
        identities=identities,
        pvalue=pvalue,
    )
