"""Full-analysis reports: everything Repro knows about one sequence.

Assembles the whole pipeline's output — top alignments with identities,
repeat families with multiple alignments, unit-length analysis, the dot
plot, optional shuffle-null significance — into one human-readable text
report.  This is the library's user-facing product, mirroring what the
REPRO web server returned to biologists.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..align.base import AlignmentProblem
from ..align.matrix import full_matrix
from ..align.traceback import alignment_identity, traceback
from ..scoring.exchange import ExchangeMatrix
from ..scoring.gaps import GapPenalties
from ..sequences.sequence import Sequence
from .api import RepeatFinder, _default_exchange
from .consensus import UnitChoice, consensus_of_copies, select_unit_length
from .dotplot import render_dotplot
from .msa import RepeatAlignment, align_family, render_msa
from .result import RepeatResult, TopAlignment
from .significance import estimate_null

__all__ = ["AnalysisReport", "FamilyModel", "analyze", "extract_families"]


@dataclass(frozen=True)
class FamilyModel:
    """Everything downstream consumers need about one repeat family.

    This is the single family-assembly path shared by the text renderer
    (:meth:`AnalysisReport.render`) and the annotation layer
    (:mod:`repro.annot`): consensus, unit analysis and the explicit MSA
    are derived here exactly once, as data rather than rendered strings.
    """

    family: int
    #: 1-based inclusive ``(start, end)`` span of each detected copy.
    copies: tuple[tuple[int, int], ...]
    #: Equivalence classes (alignment columns) supporting the family.
    columns: int
    #: Mean copy length in residues.
    unit_length: float
    #: Majority consensus text of the copies.
    consensus: str
    #: Best score among top alignments touching the family region
    #: (0.0 when none intersects — should not happen for real families).
    score: float
    #: Mean per-column identity of the explicit MSA (0.0 when the MSA
    #: could not be built).
    identity: float
    #: §6 period selection over the family region (``None`` when the
    #: region is too short to analyse).
    unit_choice: UnitChoice | None = None
    #: Explicit multiple alignment of the copies (``None`` when the
    #: family shares no columns with the alignments, or when extraction
    #: ran with ``msa=False``).
    msa: RepeatAlignment | None = None

    @property
    def n_copies(self) -> int:
        """Number of detected copies."""
        return len(self.copies)

    @property
    def region(self) -> tuple[int, int]:
        """1-based inclusive span covering every copy of the family."""
        return (
            min(s for s, _ in self.copies),
            max(e for _, e in self.copies),
        )


def _family_score(
    copies: tuple[tuple[int, int], ...], alignments: list[TopAlignment]
) -> float:
    """Best top-alignment score whose intervals touch the family's copies."""
    best = 0.0
    for aln in alignments:
        for lo, hi in (aln.prefix_interval, aln.suffix_interval):
            if any(lo <= e and s <= hi for s, e in copies):
                best = max(best, float(aln.score))
                break
    return best


def extract_families(
    sequence: Sequence,
    result: RepeatResult,
    *,
    msa: bool = True,
    min_unit_region: int = 4,
) -> list[FamilyModel]:
    """Assemble the structured :class:`FamilyModel` for every family.

    ``msa=False`` skips the explicit multiple alignment (the most
    expensive derivation) — the corresponding fields come back as
    ``None``/0.0, matching what ``render(msa=False)`` shows.
    """
    models: list[FamilyModel] = []
    for repeat in result.repeats:
        region_start = min(s for s, _ in repeat.copies)
        region_end = max(e for _, e in repeat.copies)
        unit_choice = None
        if region_end - region_start + 1 >= min_unit_region:
            unit_choice = select_unit_length(
                sequence[region_start - 1 : region_end]
            )
        consensus = consensus_of_copies(sequence, list(repeat.copies))
        family_msa = None
        if msa:
            try:
                family_msa = align_family(
                    sequence, repeat, result.top_alignments
                )
            except ValueError:
                family_msa = None
        models.append(
            FamilyModel(
                family=repeat.family,
                copies=repeat.copies,
                columns=repeat.columns,
                unit_length=repeat.unit_length,
                consensus=consensus.text,
                score=_family_score(repeat.copies, result.top_alignments),
                identity=family_msa.mean_identity if family_msa else 0.0,
                unit_choice=unit_choice,
                msa=family_msa,
            )
        )
    return models


@dataclass
class AnalysisReport:
    """Structured result of :func:`analyze`, renderable as text."""

    sequence: Sequence
    exchange: ExchangeMatrix
    gaps: GapPenalties
    result: RepeatResult
    identities: list[float]
    pvalue: float | None

    def render(self, *, dotplot: bool = True, msa: bool = True) -> str:
        """The full text report."""
        seq = self.sequence
        result = self.result
        lines = [
            f"REPRO analysis of {seq.id or '<unnamed>'}",
            f"  length {len(seq)} ({seq.alphabet.name}); scoring "
            f"{self.exchange.name}, gap {self.gaps.open_:g}+{self.gaps.extend:g}/res",
            f"  alignments computed: {result.stats.alignments} "
            f"({result.stats.realignments} realignments, "
            f"{result.stats.tracebacks} tracebacks)",
            "",
            f"top alignments ({len(result.top_alignments)}):",
        ]
        for aln, identity in zip(result.top_alignments, self.identities):
            p0, p1 = aln.prefix_interval
            s0, s1 = aln.suffix_interval
            lines.append(
                f"  #{aln.index:<3d} score {aln.score:>7g}  "
                f"{p0:>5}-{p1:<5} ~ {s0:>5}-{s1:<5} "
                f"({len(aln)} pairs, {identity:.0%} identity)"
            )
        if self.pvalue is not None:
            verdict = "significant" if self.pvalue < 0.01 else "not significant"
            lines += [
                "",
                f"significance vs shuffle null: p = {self.pvalue:.3g} ({verdict})",
            ]
        lines += ["", f"repeat families ({len(result.repeats)}):"]
        for model in extract_families(seq, result, msa=msa):
            spans = ", ".join(f"{s}..{e}" for s, e in model.copies[:8])
            if model.n_copies > 8:
                spans += f", ... ({model.n_copies} total)"
            lines.append(
                f"  family {model.family}: {model.n_copies} copies, "
                f"~{model.unit_length:.0f} residues, "
                f"{model.columns} conserved columns: {spans}"
            )
            if model.unit_choice is not None:
                choice = model.unit_choice
                lines.append(
                    f"    unit analysis: best period {choice.unit_length} "
                    f"({choice.copies} blocks, {choice.identity:.0%} identity)"
                )
            lines.append(f"    consensus: {model.consensus}")
            if model.msa is not None:
                lines.append(
                    f"    alignment ({model.msa.mean_identity:.0%} identity):"
                )
                for line in render_msa(model.msa).splitlines():
                    lines.append(f"      {line}")
            lines.append("")
        if dotplot:
            lines.append(
                render_dotplot(seq, result.top_alignments, word=2, max_size=56)
            )
        return "\n".join(lines).rstrip() + "\n"


def analyze(
    sequence: Sequence | str,
    *,
    top_alignments: int = 15,
    exchange: ExchangeMatrix | None = None,
    gaps: GapPenalties | None = None,
    max_gap: int = 1,
    significance_shuffles: int = 0,
    seed: int = 0,
    **finder_kwargs,
) -> AnalysisReport:
    """Run the complete pipeline and return a renderable report.

    ``significance_shuffles > 0`` adds the shuffle-null p-value (costs
    that many extra first passes).
    """
    if isinstance(sequence, str):
        sequence = Sequence(sequence, "protein")
    gaps = gaps if gaps is not None else GapPenalties()
    resolved = exchange or _default_exchange(sequence)
    finder = RepeatFinder(
        exchange=resolved,
        gaps=gaps,
        top_alignments=top_alignments,
        max_gap=max_gap,
        **finder_kwargs,
    )
    result = finder.find(sequence)

    identities = []
    for aln in result.top_alignments:
        problem = AlignmentProblem(
            sequence.codes[: aln.r], sequence.codes[aln.r :], resolved, gaps
        )
        matrix = full_matrix(problem)
        end_i, end_j = aln.pairs[-1]
        path = traceback(problem, matrix, end_i, end_j - aln.r)
        identities.append(alignment_identity(problem, path))

    pvalue = None
    if significance_shuffles > 0 and result.top_alignments:
        null = estimate_null(
            sequence,
            resolved,
            gaps,
            shuffles=significance_shuffles,
            seed=seed,
        )
        pvalue = null.gumbel_pvalue(result.top_alignments[0].score)

    return AnalysisReport(
        sequence=sequence,
        exchange=resolved,
        gaps=gaps,
        result=result,
        identities=identities,
        pvalue=pvalue,
    )
