"""Database scanning: repeat detection across many sequences.

The Repro web server's everyday job is not one titin — it is screening
whole protein sets for repeat-bearing candidates.  :class:`DatabaseScanner`
wraps :class:`~repro.core.api.RepeatFinder` with the practical plumbing
that requires: optional low-complexity masking, per-sequence summaries,
ranking, and a FASTA entry point.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

import numpy as np

from ..sequences.fasta import iter_fasta
from ..sequences.sequence import Sequence
from ..sequences.stats import mask_low_complexity
from .api import RepeatFinder
from .result import Repeat, RepeatResult, RunStats, TopAlignment

if TYPE_CHECKING:  # imported lazily at runtime (see _scan_indexed)
    from ..index.routing import IndexConfig
    from ..index.store import IndexStore

__all__ = [
    "SCAN_FORMAT",
    "SCAN_FORMAT_VERSION",
    "SequenceReport",
    "DatabaseScanner",
    "ScanDocument",
    "scan_fasta",
    "result_to_dict",
    "result_from_dict",
    "scan_to_payload",
    "load_scan_payload",
]

#: Format marker / schema version of the ``repro scan --json`` payload.
SCAN_FORMAT = "repro-scan"
SCAN_FORMAT_VERSION = 1


@dataclass(frozen=True)
class SequenceReport:
    """Summary of one scanned sequence.

    ``result`` is ``None`` exactly when the record failed, in which
    case ``error`` carries the failure description.  A failed record
    still produces a report — one bad sequence in a database scan must
    not discard the work done on every other record.
    """

    id: str
    length: int
    result: RepeatResult | None
    error: str | None = None
    #: Routing class assigned by the index tier ("skip"/"defer"/"full"),
    #: or ``None`` when the scan ran unindexed.
    routed: str | None = None

    @property
    def failed(self) -> bool:
        """Whether scanning this record raised instead of finishing."""
        return self.result is None

    @property
    def best_score(self) -> float:
        """Best top-alignment score (0 when no alignment was found)."""
        if self.result is None or not self.result.top_alignments:
            return 0.0
        return self.result.top_alignments[0].score

    @property
    def repeat_fraction(self) -> float:
        """Fraction of residues covered by delineated repeat copies."""
        if self.result is None or self.length == 0 or not self.result.repeats:
            return 0.0
        covered = np.zeros(self.length, dtype=bool)
        for repeat in self.result.repeats:
            for start, end in repeat.copies:
                covered[start - 1 : end] = True
        return float(covered.mean())

    @property
    def n_families(self) -> int:
        """Number of delineated repeat families."""
        if self.result is None:
            return 0
        return len(self.result.repeats)

    @property
    def is_repetitive(self) -> bool:
        """Whether the scan found at least one repeat family."""
        return self.n_families > 0


@dataclass
class DatabaseScanner:
    """Scan many sequences with one configuration and rank the hits.

    Parameters
    ----------
    finder:
        The configured single-sequence detector.  The scanner reuses
        this one finder — and therefore its engine instance (with its
        lane scratch buffers) and per-alphabet exchange matrices —
        across every record of a scan, instead of rebuilding scoring
        objects per sequence.
    mask:
        Apply low-complexity masking before scanning (recommended for
        real protein sets; masked residues score neutrally).
    mask_window / mask_threshold:
        Parameters of :func:`repro.sequences.stats.mask_low_complexity`.
    min_length:
        Sequences shorter than this are skipped (a split needs at least
        two residues; realistic repeats need far more).
    engine / group / prune:
        Optional overrides applied to ``finder`` — convenience knobs so
        callers (the CLI ``scan`` command) can pick the lane engine,
        the speculative batch width and the exact-pruning toggle
        without building a finder by hand.
    index:
        Optional :class:`repro.index.IndexConfig`.  When set, every
        record is profiled by the k-mer tier first: *skip*-class
        records (estimate below the finder's ``min_score``) report
        zero alignments in O(n) without entering the O(n³) pipeline,
        and the rest run with seeded heap bounds, *full*-class
        (repeat-promising) records first.  Reports keep input order
        regardless of execution order.
    index_store:
        Optional :class:`repro.index.IndexStore`; profiles are then
        loaded from / persisted to the content-addressed store, so a
        rerun of the same database rebuilds zero indices.
    """

    finder: RepeatFinder = field(default_factory=RepeatFinder)
    mask: bool = False
    mask_window: int = 12
    mask_threshold: float = 1.5
    min_length: int = 10
    engine: str | None = None
    group: int | None = None
    prune: bool | None = None
    index: "IndexConfig | None" = None
    index_store: "IndexStore | None" = None

    def __post_init__(self) -> None:
        overrides = {}
        if self.engine is not None:
            overrides["engine"] = self.engine
        if self.group is not None:
            overrides["group"] = self.group
        if self.prune is not None:
            overrides["prune"] = self.prune
        if overrides:
            self.finder = dataclasses.replace(self.finder, **overrides)
        #: Per-scan index-tier statistics (populated by indexed scans).
        self.index_stats: dict[str, Any] = {}

    def scan(self, sequences: Iterable[Sequence]) -> list[SequenceReport]:
        """Scan sequences in order; returns one report per scanned record.

        A record whose scan raises is recorded as a failed report
        (``result=None``, ``error`` set) and the scan continues with
        the remaining records.
        """
        if self.index is not None:
            return self._scan_indexed(sequences)
        reports: list[SequenceReport] = []
        for seq in sequences:
            if len(seq) < self.min_length:
                continue
            try:
                target = (
                    mask_low_complexity(
                        seq, self.mask_window, self.mask_threshold
                    )
                    if self.mask
                    else seq
                )
                result = self.finder.find(target)
            except Exception as exc:  # noqa: BLE001 - per-record isolation
                reports.append(
                    SequenceReport(
                        id=seq.id,
                        length=len(seq),
                        result=None,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                )
                continue
            reports.append(
                SequenceReport(id=seq.id, length=len(seq), result=result)
            )
        return reports

    def _failed_report(self, seq: Sequence, exc: Exception) -> SequenceReport:
        return SequenceReport(
            id=seq.id,
            length=len(seq),
            result=None,
            error=f"{type(exc).__name__}: {exc}",
        )

    def _scan_indexed(
        self, sequences: Iterable[Sequence]
    ) -> list[SequenceReport]:
        """The index-routed scan: profile, route, then align by promise.

        Execution order is *full* class first (most promising by
        estimate), then *defer*; skip-class records never reach the
        finder.  The returned reports are re-assembled in input order,
        so downstream consumers (ranking, cluster shard merging) see
        exactly the layout of an unindexed scan.
        """
        from ..index.bounds import seed_score_bounds
        from ..index.metrics import observe_tightness, record_route
        from ..index.routing import ROUTE_FULL, ROUTE_SKIP, classify

        config = self.index
        assert config is not None
        stats = {
            "records": 0,
            "skip": 0,
            "defer": 0,
            "full": 0,
            "failed": 0,
            "index_builds": 0,
            "index_loads": 0,
            "index_seconds": 0.0,
        }
        self.index_stats = stats
        reports: dict[int, SequenceReport] = {}
        pending: list[tuple[int, Sequence, Sequence, Any]] = []
        for order, seq in enumerate(sequences):
            if len(seq) < self.min_length:
                continue
            stats["records"] += 1
            try:
                target = (
                    mask_low_complexity(
                        seq, self.mask_window, self.mask_threshold
                    )
                    if self.mask
                    else seq
                )
                started = time.perf_counter()
                profile, built = self._profile_for(target, config)
                stats["index_seconds"] += time.perf_counter() - started
                stats["index_builds" if built else "index_loads"] += 1
                decision = classify(
                    profile,
                    self.finder.resolve_exchange(target),
                    min_score=self.finder.min_score,
                    config=config,
                )
                record_route(decision.route)
                stats[decision.route] += 1
            except Exception as exc:  # noqa: BLE001 - per-record isolation
                stats["failed"] += 1
                reports[order] = self._failed_report(seq, exc)
                continue
            if decision.route == ROUTE_SKIP:
                # O(n) exit: an empty result, not a missing one — the
                # record was screened, and screening concluded nothing
                # above min_score can exist here.
                reports[order] = SequenceReport(
                    id=seq.id,
                    length=len(seq),
                    result=RepeatResult(
                        top_alignments=[],
                        repeats=[],
                        stats=RunStats(engine="index-skip"),
                    ),
                    routed=decision.route,
                )
            else:
                pending.append((order, seq, target, decision))
        pending.sort(
            key=lambda entry: (
                0 if entry[3].route == ROUTE_FULL else 1,
                -entry[3].estimate,
                entry[0],
            )
        )
        for order, seq, target, decision in pending:
            try:
                bounds = seed_score_bounds(
                    target, self.finder.resolve_exchange(target)
                )
                result = self.finder.find(target, seed_bounds=bounds)
                for top in result.top_alignments:
                    if top.score > 0:
                        observe_tightness(bounds[top.r - 1] / top.score)
            except Exception as exc:  # noqa: BLE001 - per-record isolation
                stats["failed"] += 1
                reports[order] = self._failed_report(seq, exc)
                continue
            reports[order] = SequenceReport(
                id=seq.id,
                length=len(seq),
                result=result,
                routed=decision.route,
            )
        return [reports[order] for order in sorted(reports)]

    def _profile_for(self, target: Sequence, config: "IndexConfig"):
        """(profile, built) from the store when present, else in-memory."""
        if self.index_store is not None:
            return self.index_store.build_or_load(target, config)
        from ..index.kmer import build_profile
        from ..index.metrics import observe_build_seconds

        started = time.perf_counter()
        profile = build_profile(target, **config.profile_params())
        observe_build_seconds(time.perf_counter() - started)
        return profile, True

    def rank(self, sequences: Iterable[Sequence]) -> list[SequenceReport]:
        """Scan and sort by best alignment score (descending), then id.

        Failed records sort after every successful one.
        """
        reports = self.scan(sequences)
        return sorted(reports, key=lambda r: (r.failed, -r.best_score, r.id))

    def annotate_scan(
        self,
        sequences: Iterable[Sequence],
        *,
        window: int = 0,
        msa: bool = True,
    ):
        """Scan ``sequences`` and build the annotation product surface.

        Returns a :class:`repro.annot.Annotation` — profile tracks,
        GFF3 and the HTML report are then pure renders of that object.
        The import is deferred so ``repro.core`` keeps no static
        dependency on the annotation layer.
        """
        from ..annot import annotate_scan as _annotate

        sequence_list = list(sequences)
        reports = self.scan(sequence_list)
        by_id: dict[str, list[Sequence]] = {}
        for seq in sequence_list:
            by_id.setdefault(seq.id, []).append(seq)
        ordered: list[Sequence | None] = []
        for report in reports:
            pool = by_id.get(report.id)
            ordered.append(pool.pop(0) if pool else None)
        return _annotate(reports, ordered, window=window, msa=msa)


# ---------------------------------------------------------------------------
# Machine-readable scan output (``repro scan --json``)
# ---------------------------------------------------------------------------


def result_to_dict(result: RepeatResult) -> dict[str, Any]:
    """Plain-JSON form of a :class:`RepeatResult` (inverse of
    :func:`result_from_dict`).

    Floats round-trip exactly through ``json`` (shortest-repr), so a
    loaded result compares equal to the original.
    """
    return {
        "top_alignments": [
            {
                "index": int(a.index),
                "r": int(a.r),
                "score": float(a.score),
                "pairs": [[int(i), int(j)] for i, j in a.pairs],
            }
            for a in result.top_alignments
        ],
        "repeats": [
            {
                "family": int(rep.family),
                "copies": [[int(s), int(e)] for s, e in rep.copies],
                "columns": int(rep.columns),
            }
            for rep in result.repeats
        ],
        "stats": result.stats.__getstate__(),
    }


def result_from_dict(payload: dict[str, Any]) -> RepeatResult:
    """Rebuild a :class:`RepeatResult` from its JSON form.

    Accepts both the :func:`result_to_dict` shape and the service's
    result-cache payload (:func:`repro.service.protocol.result_to_dict`)
    — extra keys are ignored and missing stats counters default to 0,
    so either source of truth feeds the annotation layer.
    """
    alignments = [
        TopAlignment(
            index=int(a["index"]),
            r=int(a["r"]),
            score=float(a["score"]),
            pairs=tuple((int(i), int(j)) for i, j in a["pairs"]),
        )
        for a in payload.get("top_alignments", [])
    ]
    repeats = [
        Repeat(
            family=int(rep["family"]),
            copies=tuple((int(s), int(e)) for s, e in rep["copies"]),
            columns=int(rep["columns"]),
        )
        for rep in payload.get("repeats", [])
    ]
    raw_stats = payload.get("stats", {})
    known = set(RunStats._COUNTER_FIELDS) | {
        "realignments_per_top",
        "engine",
        "group",
    }
    stats = RunStats(**{k: v for k, v in raw_stats.items() if k in known})
    return RepeatResult(top_alignments=alignments, repeats=repeats, stats=stats)


def scan_to_payload(
    reports: list[SequenceReport],
    sequences: Iterable[Sequence] = (),
    *,
    alphabet: str = "protein",
    index_stats: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """The ``repro scan --json`` document for ``reports``.

    ``sequences`` (matched to reports by record id, first-unused-wins)
    embeds each record's residue text so ``repro annotate`` can rebuild
    consensus/MSA views offline, without the original FASTA.
    """
    by_id: dict[str, list[Sequence]] = {}
    for seq in sequences:
        by_id.setdefault(seq.id, []).append(seq)
    records = []
    for report in reports:
        pool = by_id.get(report.id)
        seq = pool.pop(0) if pool else None
        records.append(
            {
                "id": report.id,
                "length": report.length,
                "sequence": seq.text if seq is not None else None,
                "routed": report.routed,
                "error": report.error,
                "result": (
                    None if report.result is None
                    else result_to_dict(report.result)
                ),
            }
        )
    payload: dict[str, Any] = {
        "format": SCAN_FORMAT,
        "version": SCAN_FORMAT_VERSION,
        "alphabet": alphabet,
        "records": records,
    }
    if index_stats:
        payload["index_stats"] = index_stats
    return payload


@dataclass(frozen=True)
class ScanDocument:
    """A parsed ``repro scan --json`` payload.

    ``sequences`` parallels ``reports``; an entry is ``None`` when the
    document was written without residue text for that record (the
    annotation layer then falls back to coordinate-only artifacts).
    """

    alphabet: str
    reports: tuple[SequenceReport, ...]
    sequences: tuple[Sequence | None, ...]


def load_scan_payload(payload: dict[str, Any]) -> ScanDocument:
    """Validate and rebuild a scan document (inverse of
    :func:`scan_to_payload`)."""
    if not isinstance(payload, dict) or payload.get("format") != SCAN_FORMAT:
        raise ValueError(
            f"not a {SCAN_FORMAT} document (missing format marker)"
        )
    version = payload.get("version")
    if version != SCAN_FORMAT_VERSION:
        raise ValueError(
            f"unsupported {SCAN_FORMAT} version {version!r} "
            f"(expected {SCAN_FORMAT_VERSION})"
        )
    alphabet = payload.get("alphabet", "protein")
    reports: list[SequenceReport] = []
    sequences: list[Sequence | None] = []
    for record in payload.get("records", []):
        result = (
            None if record.get("result") is None
            else result_from_dict(record["result"])
        )
        reports.append(
            SequenceReport(
                id=record.get("id", ""),
                length=int(record["length"]),
                result=result,
                error=record.get("error"),
                routed=record.get("routed"),
            )
        )
        text = record.get("sequence")
        sequences.append(
            None if text is None
            else Sequence(text, alphabet, id=record.get("id", ""))
        )
    return ScanDocument(
        alphabet=alphabet,
        reports=tuple(reports),
        sequences=tuple(sequences),
    )


def scan_fasta(
    path,
    *,
    alphabet: str = "protein",
    finder: RepeatFinder | None = None,
    mask: bool = False,
    min_length: int = 10,
    engine: str | None = None,
    group: int | None = None,
    index: "IndexConfig | None" = None,
    index_store: "IndexStore | None" = None,
) -> list[SequenceReport]:
    """Rank the records of a FASTA file by repeat content."""
    scanner = DatabaseScanner(
        finder=finder or RepeatFinder(),
        mask=mask,
        min_length=min_length,
        engine=engine,
        group=group,
        index=index,
        index_store=index_store,
    )
    return scanner.rank(iter_fasta(path, alphabet))
