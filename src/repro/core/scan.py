"""Database scanning: repeat detection across many sequences.

The Repro web server's everyday job is not one titin — it is screening
whole protein sets for repeat-bearing candidates.  :class:`DatabaseScanner`
wraps :class:`~repro.core.api.RepeatFinder` with the practical plumbing
that requires: optional low-complexity masking, per-sequence summaries,
ranking, and a FASTA entry point.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from ..sequences.fasta import iter_fasta
from ..sequences.sequence import Sequence
from ..sequences.stats import mask_low_complexity
from .api import RepeatFinder
from .result import RepeatResult

__all__ = ["SequenceReport", "DatabaseScanner", "scan_fasta"]


@dataclass(frozen=True)
class SequenceReport:
    """Summary of one scanned sequence.

    ``result`` is ``None`` exactly when the record failed, in which
    case ``error`` carries the failure description.  A failed record
    still produces a report — one bad sequence in a database scan must
    not discard the work done on every other record.
    """

    id: str
    length: int
    result: RepeatResult | None
    error: str | None = None

    @property
    def failed(self) -> bool:
        """Whether scanning this record raised instead of finishing."""
        return self.result is None

    @property
    def best_score(self) -> float:
        """Best top-alignment score (0 when no alignment was found)."""
        if self.result is None or not self.result.top_alignments:
            return 0.0
        return self.result.top_alignments[0].score

    @property
    def repeat_fraction(self) -> float:
        """Fraction of residues covered by delineated repeat copies."""
        if self.result is None or self.length == 0 or not self.result.repeats:
            return 0.0
        covered = np.zeros(self.length, dtype=bool)
        for repeat in self.result.repeats:
            for start, end in repeat.copies:
                covered[start - 1 : end] = True
        return float(covered.mean())

    @property
    def n_families(self) -> int:
        """Number of delineated repeat families."""
        if self.result is None:
            return 0
        return len(self.result.repeats)

    @property
    def is_repetitive(self) -> bool:
        """Whether the scan found at least one repeat family."""
        return self.n_families > 0


@dataclass
class DatabaseScanner:
    """Scan many sequences with one configuration and rank the hits.

    Parameters
    ----------
    finder:
        The configured single-sequence detector.  The scanner reuses
        this one finder — and therefore its engine instance (with its
        lane scratch buffers) and per-alphabet exchange matrices —
        across every record of a scan, instead of rebuilding scoring
        objects per sequence.
    mask:
        Apply low-complexity masking before scanning (recommended for
        real protein sets; masked residues score neutrally).
    mask_window / mask_threshold:
        Parameters of :func:`repro.sequences.stats.mask_low_complexity`.
    min_length:
        Sequences shorter than this are skipped (a split needs at least
        two residues; realistic repeats need far more).
    engine / group:
        Optional overrides applied to ``finder`` — convenience knobs so
        callers (the CLI ``scan`` command) can pick the lane engine and
        the speculative batch width without building a finder by hand.
    """

    finder: RepeatFinder = field(default_factory=RepeatFinder)
    mask: bool = False
    mask_window: int = 12
    mask_threshold: float = 1.5
    min_length: int = 10
    engine: str | None = None
    group: int | None = None

    def __post_init__(self) -> None:
        overrides = {}
        if self.engine is not None:
            overrides["engine"] = self.engine
        if self.group is not None:
            overrides["group"] = self.group
        if overrides:
            self.finder = dataclasses.replace(self.finder, **overrides)

    def scan(self, sequences: Iterable[Sequence]) -> list[SequenceReport]:
        """Scan sequences in order; returns one report per scanned record.

        A record whose scan raises is recorded as a failed report
        (``result=None``, ``error`` set) and the scan continues with
        the remaining records.
        """
        reports: list[SequenceReport] = []
        for seq in sequences:
            if len(seq) < self.min_length:
                continue
            try:
                target = (
                    mask_low_complexity(
                        seq, self.mask_window, self.mask_threshold
                    )
                    if self.mask
                    else seq
                )
                result = self.finder.find(target)
            except Exception as exc:  # noqa: BLE001 - per-record isolation
                reports.append(
                    SequenceReport(
                        id=seq.id,
                        length=len(seq),
                        result=None,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                )
                continue
            reports.append(
                SequenceReport(id=seq.id, length=len(seq), result=result)
            )
        return reports

    def rank(self, sequences: Iterable[Sequence]) -> list[SequenceReport]:
        """Scan and sort by best alignment score (descending), then id.

        Failed records sort after every successful one.
        """
        reports = self.scan(sequences)
        return sorted(reports, key=lambda r: (r.failed, -r.best_score, r.id))


def scan_fasta(
    path,
    *,
    alphabet: str = "protein",
    finder: RepeatFinder | None = None,
    mask: bool = False,
    min_length: int = 10,
    engine: str | None = None,
    group: int | None = None,
) -> list[SequenceReport]:
    """Rank the records of a FASTA file by repeat content."""
    scanner = DatabaseScanner(
        finder=finder or RepeatFinder(),
        mask=mask,
        min_length=min_length,
        engine=engine,
        group=group,
    )
    return scanner.rank(iter_fasta(path, alphabet))
