"""Linear-memory bottom rows via on-demand recomputation (Appendix A).

Storing all first-pass bottom rows costs ``m(m-1)/2`` values — 1.2 GB
of shorts for titin, "the largest data structure that we use".  The
appendix sketches the alternative: "on-demand recomputation of the last
row is also possible at the expense of extra work; this would allow an
implementation that requires only a linear amount of memory ... We
have, however, not found the need to implement this."

This module implements it.  :class:`RecomputingBottomRowStore` is a
drop-in replacement for :class:`~repro.core.bottomrows.BottomRowStore`
that keeps only an LRU cache of hot rows and recomputes evicted ones
with the plain (override-free) engine when the shadow test needs them.
Extra work is counted so the memory/compute trade-off is measurable.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..align.base import AlignmentEngine, AlignmentProblem
from ..align.profile import QueryProfile
from ..scoring.exchange import ExchangeMatrix
from ..scoring.gaps import GapPenalties

__all__ = ["RecomputingBottomRowStore"]


class RecomputingBottomRowStore:
    """Bottom-row store with bounded memory and on-demand recomputation.

    Parameters
    ----------
    codes, exchange, gaps, engine:
        Everything needed to recompute a first-pass row from scratch.
    capacity:
        Maximum number of rows kept resident.  ``sum(len(row))`` over
        ``capacity`` hottest rows is the real memory bound; with
        ``capacity ~ O(1)`` the store is O(m) as the appendix promises.
    profile:
        Optional precomputed :class:`~repro.align.profile.QueryProfile`
        of ``codes`` — recomputations then slice it instead of
        re-gathering the exchange matrix.
    """

    def __init__(
        self,
        codes: np.ndarray,
        exchange: ExchangeMatrix,
        gaps: GapPenalties,
        engine: AlignmentEngine,
        *,
        capacity: int = 32,
        profile: QueryProfile | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.m = int(codes.size)
        if self.m < 2:
            raise ValueError("sequence length must be at least 2")
        self._codes = np.ascontiguousarray(codes, dtype=np.int8)
        self._exchange = exchange
        self._gaps = gaps
        self._engine = engine
        self._profile = profile
        self.capacity = capacity
        self._cache: OrderedDict[int, np.ndarray] = OrderedDict()
        self._known: set[int] = set()
        #: Rows recomputed after eviction — the appendix's "extra work".
        self.recomputations = 0

    def __contains__(self, r: int) -> bool:
        return r in self._known

    def __len__(self) -> int:
        return len(self._known)

    @property
    def resident_rows(self) -> int:
        """Rows currently held in memory (<= capacity)."""
        return len(self._cache)

    @property
    def nbytes(self) -> int:
        """Resident memory — bounded, unlike the dense store."""
        return sum(row.nbytes for row in self._cache.values())

    def _compute(self, r: int) -> np.ndarray:
        # Deliberately gate-free (no ``prune=``): a recomputed first-pass
        # row feeds the shadow-validity test cell-for-cell, so it must be
        # the exact override-free bottom row — a prune bound is useless
        # here and truncating the fill would corrupt the mask.
        problem = AlignmentProblem(
            self._codes[:r],
            self._codes[r:],
            self._exchange,
            self._gaps,
            profile=self._profile.suffix(r) if self._profile is not None else None,
        )
        row = self._engine.last_row(problem)
        row.setflags(write=False)
        return row

    def _insert(self, r: int, row: np.ndarray) -> None:
        self._cache[r] = row
        self._cache.move_to_end(r)
        while len(self._cache) > self.capacity:
            self._cache.popitem(last=False)

    def put(self, r: int, row: np.ndarray) -> None:
        """Record split ``r``'s first-pass row (write-once semantics)."""
        if not 1 <= r < self.m:
            raise ValueError(f"split r={r} outside 1..{self.m - 1}")
        if r in self._known:
            raise ValueError(f"bottom row for split r={r} already stored")
        expected = self.m - r + 1
        if row.shape != (expected,):
            raise ValueError(
                f"bottom row for split r={r} must have length {expected}, "
                f"got {row.shape}"
            )
        frozen = np.array(row, dtype=np.float64, copy=True)
        frozen.setflags(write=False)
        self._known.add(r)
        self._insert(r, frozen)

    def get(self, r: int) -> np.ndarray:
        """The first-pass row of split ``r``, recomputing if evicted."""
        if r not in self._known:
            raise KeyError(r)
        row = self._cache.get(r)
        if row is None:
            row = self._compute(r)
            self.recomputations += 1
            self._insert(r, row)
        else:
            self._cache.move_to_end(r)
        return row

    def valid_mask(self, r: int, fresh_row: np.ndarray) -> np.ndarray:
        """Shadow-validity mask, as in the dense store."""
        original = self.get(r)
        if fresh_row.shape != original.shape:
            raise ValueError(
                f"row length mismatch for split r={r}: "
                f"{fresh_row.shape} vs {original.shape}"
            )
        return fresh_row == original

    def score_of(self, r: int, fresh_row: np.ndarray) -> float:
        """Best valid (non-shadow) score of a realignment's bottom row."""
        mask = self.valid_mask(r, fresh_row)
        if not mask.any():
            return 0.0
        return float(fresh_row[mask].max())
